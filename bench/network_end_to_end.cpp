// End-to-end network estimates: what the whole tuning pipeline buys at the
// level the paper's introduction cares about — time to run a network's
// compute-intensive routines.
//
// For each network (batch 4), compares the modelled total GEMM time of:
//   fixed    — the single best-on-average kernel, no runtime selection;
//   engine   — the deployed 8-kernel library + decision-tree selector +
//              im2col/Winograd choice (ConvEngine);
//   optimal  — brute force over all 640 configurations and lowerings.
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "core/network_estimator.hpp"
#include "core/pipeline.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Network end-to-end estimates",
                      "Section I motivation (training/inference time)");
  const auto dataset = bench::paper_dataset();
  select::PipelineOptions options;
  options.num_configs = 8;
  auto pipeline = select::run_pipeline(dataset, options);

  const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());
  const select::ConvEngine engine(
      std::shared_ptr<const select::KernelSelector>(
          std::move(pipeline.selector)),
      model);

  // Fixed baseline: the best single configuration by mean score.
  const auto means = dataset.mean_scores();
  const auto fixed = gemm::enumerate_configs()[common::argmax(means)];

  std::cout << "\nfixed baseline kernel: " << fixed.name() << "; engine: 8"
            << " kernels + decision tree + lowering choice; batch 4\n\n";
  bench::print_row({"network", "fixed_ms", "engine_ms", "optimal_ms",
                    "speedup", "of-optimal"},
                   13);
  for (const auto& network : data::paper_networks()) {
    const auto estimate =
        select::estimate_network(engine, model, network, 4, fixed);
    bench::print_row(
        {estimate.network,
         common::format_fixed(estimate.fixed_seconds * 1e3, 3),
         common::format_fixed(estimate.engine_seconds * 1e3, 3),
         common::format_fixed(estimate.optimal_seconds * 1e3, 3),
         common::format_fixed(estimate.speedup_vs_fixed(), 2) + "x",
         bench::pct(estimate.engine_efficiency())},
        13);
  }

  // Layer detail for the most selection-sensitive network.
  const auto detail = select::estimate_network(
      engine, model, data::mobilenet_v2(), 4, fixed);
  std::cout << "\nMobileNetV2 layer detail (first 10 GEMM layers):\n";
  bench::print_row({"layer", "lowering", "kernel", "engine_us", "optimal_us"},
                   16);
  for (std::size_t i = 0; i < std::min<std::size_t>(10, detail.layers.size());
       ++i) {
    const auto& layer = detail.layers[i];
    bench::print_row(
        {layer.layer, data::to_string(layer.transform), layer.chosen.name(),
         common::format_fixed(layer.engine_seconds * 1e6, 1),
         common::format_fixed(layer.optimal_seconds * 1e6, 1)},
        16);
  }
  std::cout << "\n(speedup = fixed/engine; of-optimal = optimal/engine;"
               " modelled\nGEMM time only, transforms excluded)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
