// Fault-matrix smoke bench — gates the degradation contract end to end.
//
// Runs the full extracted shape corpus through the serving stack twice:
// once fault-free (baseline selections) and once under the canned `mixed`
// fault plan at 30% with concurrent clients. Gates (non-zero exit on
// violation):
//
//   1. zero throws escape SelectionService::select() under the plan;
//   2. every shape resolves to a valid member of the candidate set
//      (or the guaranteed fallback);
//   3. the geomean predicted-time slowdown of the degraded selections vs
//      the fault-free selections is <= 1.25x (prediction by the noise-free
//      analytic CostModel, so the gate measures selection quality, not
//      injected noise);
//   4. quarantined configurations never win a shape.
//
// CI runs this as part of the fault-matrix job; it is also a handy local
// smoke test after touching src/faults or the hardened consumers.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <iostream>
#include <set>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/online.hpp"
#include "core/pruning.hpp"
#include "faults/injector.hpp"
#include "perfmodel/cost_model.hpp"
#include "serve/selection_service.hpp"

namespace aks {
namespace {

struct RunResult {
  std::vector<std::size_t> chosen;  // canonical config index per shape
  std::size_t throws = 0;
  serve::ServiceStats stats;
  std::vector<std::size_t> quarantined;
  std::size_t degraded_selects = 0;
};

RunResult run_corpus(const std::vector<gemm::GemmShape>& corpus,
                     const std::vector<std::size_t>& candidates,
                     const perf::TimingModel& timing, std::size_t threads) {
  select::OnlineTuner tuner(
      candidates,
      [&](const gemm::KernelConfig& config, const gemm::GemmShape& shape) {
        return timing.best_of(config, shape, 5);
      });
  serve::ServiceOptions options;
  options.fallback = tuner.fallback_config();
  serve::SelectionService service(tuner, options);

  std::atomic<std::size_t> throws{0};
  std::vector<std::size_t> chosen(corpus.size(),
                                  gemm::enumerate_configs().size());
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t s = t; s < corpus.size(); s += threads) {
        try {
          chosen[s] = gemm::config_index(service.select(corpus[s]));
        } catch (...) {
          throws.fetch_add(1);
        }
      }
      // Second pass over the whole corpus: hammer the warm cache from all
      // threads (and catch throws that only a waiter would observe).
      for (const auto& shape : corpus) {
        try {
          (void)service.select(shape);
        } catch (...) {
          throws.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  RunResult result;
  result.chosen = std::move(chosen);
  result.throws = throws.load();
  result.stats = service.stats();
  result.quarantined = tuner.quarantined();
  result.degraded_selects = tuner.degraded_selects();
  return result;
}

}  // namespace
}  // namespace aks

int main() {
  using namespace aks;
  bench::print_banner("Fault-matrix smoke bench: degradation under mixed@0.3",
                      "the serving-stack degradation contract (DESIGN.md)");

  const auto dataset = bench::paper_dataset();
  const auto candidates =
      select::TopNPruner().prune(dataset, 8);
  std::vector<gemm::GemmShape> corpus;
  for (const auto& lowered : data::extract_all_shapes()) {
    corpus.push_back(lowered.shape);
  }
  const auto device = perf::DeviceSpec::amd_r9_nano();
  const perf::TimingModel timing(device, 0.03, 42);
  const perf::CostModel clean_model(device);
  constexpr std::size_t kThreads = 8;

  // Baseline: pin fault-free behaviour even if AKS_FAULT_PLAN is set.
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto baseline = run_corpus(corpus, candidates, timing, kThreads);

  RunResult degraded;
  {
    faults::ScopedFaultPlan plan{faults::FaultPlan::mixed(0.3)};
    degraded = run_corpus(corpus, candidates, timing, kThreads);
  }

  const std::set<std::size_t> allowed(candidates.begin(), candidates.end());
  const std::set<std::size_t> quarantined(degraded.quarantined.begin(),
                                          degraded.quarantined.end());
  std::size_t invalid = 0;
  std::size_t quarantined_wins = 0;
  std::vector<double> ratios;
  ratios.reserve(corpus.size());
  for (std::size_t s = 0; s < corpus.size(); ++s) {
    const std::size_t pick = degraded.chosen[s];
    if (pick >= gemm::enumerate_configs().size() || allowed.count(pick) == 0) {
      ++invalid;
      continue;
    }
    if (quarantined.count(pick) != 0 && pick != candidates.front()) {
      ++quarantined_wins;
    }
    const auto& configs = gemm::enumerate_configs();
    const double clean =
        clean_model.predict_seconds(configs[baseline.chosen[s]], corpus[s]);
    const double faulty =
        clean_model.predict_seconds(configs[pick], corpus[s]);
    ratios.push_back(faulty / clean);
  }
  double geomean = 0.0;
  for (const double r : ratios) geomean += std::log(r);
  geomean = std::exp(geomean / static_cast<double>(ratios.size()));

  std::cout << "corpus " << corpus.size() << " shapes, " << candidates.size()
            << " candidate kernels, " << kThreads << " client threads\n"
            << "baseline: throws " << baseline.throws << ", misses "
            << baseline.stats.misses << "\n"
            << "mixed@0.3: throws " << degraded.throws << ", invalid picks "
            << invalid << ", quarantined " << degraded.quarantined.size()
            << ", quarantined wins " << quarantined_wins << "\n"
            << "  warm-up failures " << degraded.stats.warmup_failures
            << ", fallbacks served " << degraded.stats.fallbacks_served
            << ", degraded selects " << degraded.degraded_selects << "\n"
            << "  geomean predicted slowdown " << geomean << "x (gate 1.25x)\n";

  bool ok = true;
  const auto gate = [&ok](bool pass, const char* what) {
    if (!pass) {
      std::cout << "GATE FAILED: " << what << "\n";
      ok = false;
    }
  };
  gate(baseline.throws == 0, "fault-free run must not throw");
  gate(degraded.throws == 0, "select() threw under the mixed plan");
  gate(invalid == 0, "a shape resolved to an out-of-set config");
  gate(quarantined_wins == 0, "a quarantined config won a shape");
  gate(std::isfinite(geomean) && geomean <= 1.25,
       "geomean slowdown above 1.25x");
  std::cout << (ok ? "ALL GATES PASSED\n" : "FAULT MATRIX FAILED\n");
  return ok ? 0 : 1;
}
