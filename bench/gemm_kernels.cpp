// Microbenchmarks of the real (host-executed) tiled GEMM kernels.
//
// This exercises the functional kernel path on representative shapes and
// configurations — the workload whose GPU-side cost the perfmodel
// substitutes. Absolute numbers reflect the host CPU, not the paper's GPU;
// the purpose is to demonstrate that every configuration is runnable and to
// expose the host-side cost differences between tilings.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "gemm/registry.hpp"
#include "syclrt/queue.hpp"

namespace aks {
namespace {

struct Workload {
  gemm::GemmShape shape;
  std::vector<float> a;
  std::vector<float> b;
  std::vector<float> c;
};

Workload make_workload(const gemm::GemmShape& shape) {
  common::Rng rng(42);
  Workload w;
  w.shape = shape;
  w.a.resize(shape.m * shape.k);
  w.b.resize(shape.k * shape.n);
  w.c.resize(shape.m * shape.n);
  for (auto& v : w.a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : w.b) v = static_cast<float>(rng.uniform(-1, 1));
  return w;
}

void bench_gemm(benchmark::State& state, const gemm::KernelConfig& config,
                const gemm::GemmShape& shape) {
  auto workload = make_workload(shape);
  syclrt::Queue queue;
  for (auto _ : state) {
    gemm::launch_gemm(queue, config, workload.a, workload.b, workload.c,
                      workload.shape);
    benchmark::DoNotOptimize(workload.c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["GFLOP/s"] = benchmark::Counter(
      shape.flops() * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void bench_batched_winograd_style(benchmark::State& state, bool batched) {
  // The Winograd workload: 16 multiplies of one transformed shape, either
  // as 16 separate launches or as one batched launch.
  const gemm::GemmShape shape{196, 64, 64};
  const gemm::KernelConfig config{2, 4, 8, 8, 16};
  const std::size_t batch = 16;
  common::Rng rng(9);
  std::vector<float> a(batch * shape.m * shape.k);
  std::vector<float> b(batch * shape.k * shape.n);
  std::vector<float> c(batch * shape.m * shape.n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  syclrt::Queue queue;
  for (auto _ : state) {
    if (batched) {
      gemm::launch_batched_gemm(queue, config, a, b, c, shape, batch);
    } else {
      for (std::size_t bi = 0; bi < batch; ++bi) {
        gemm::launch_gemm(
            queue, config,
            std::span<const float>(a).subspan(bi * shape.m * shape.k,
                                              shape.m * shape.k),
            std::span<const float>(b).subspan(bi * shape.k * shape.n,
                                              shape.k * shape.n),
            std::span<float>(c).subspan(bi * shape.m * shape.n,
                                        shape.m * shape.n),
            shape);
      }
    }
    benchmark::DoNotOptimize(c.data());
  }
}

void register_benchmarks() {
  const gemm::GemmShape shapes[] = {
      {128, 128, 128},   // square, compute-ish
      {784, 64, 64},     // conv-like tall-skinny
      {16, 4096, 1000},  // FC batch-16
  };
  const gemm::KernelConfig configs[] = {
      {1, 1, 1, 8, 8},    // minimal tiling (the naive end)
      {2, 4, 8, 8, 16},   // a frequent dataset winner
      {4, 4, 4, 8, 8},    // balanced
      {8, 8, 8, 8, 8},    // maximal register tiling
  };
  benchmark::RegisterBenchmark("gemm/winograd16/separate_launches",
                               [](benchmark::State& state) {
                                 bench_batched_winograd_style(state, false);
                               });
  benchmark::RegisterBenchmark("gemm/winograd16/one_batched_launch",
                               [](benchmark::State& state) {
                                 bench_batched_winograd_style(state, true);
                               });
  for (const auto& shape : shapes) {
    for (const auto& config : configs) {
      benchmark::RegisterBenchmark(
          ("gemm/" + shape.to_string() + "/" + config.name()).c_str(),
          [config, shape](benchmark::State& state) {
            bench_gemm(state, config, shape);
          });
    }
  }
}

}  // namespace
}  // namespace aks

int main(int argc, char** argv) {
  aks::register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
