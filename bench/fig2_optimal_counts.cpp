// Figure 2: the number of times each configuration achieves optimal
// performance across the dataset.
//
// Paper headline: one configuration is best in 32 of 170 cases — more than
// three times as often as the next — yet 58 distinct configurations are
// best at least once (the long tail that makes pruning hard).
#include "bench_common.hpp"

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "gemm/config.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Figure 2: optimal-configuration counts", "Figure 2");
  const auto dataset = bench::paper_dataset();
  const auto counts = dataset.optimal_counts();

  std::vector<double> counts_d(counts.begin(), counts.end());
  const auto order = common::argsort_descending(counts_d);

  std::size_t winners = 0;
  for (const auto c : counts) winners += c > 0 ? 1u : 0u;

  std::cout << "\nTop 20 configurations by number of shapes won ("
            << dataset.num_shapes() << " shapes total):\n";
  bench::print_row({"config", "wins", "mean%"});
  const auto means = dataset.mean_scores();
  for (std::size_t i = 0; i < 20; ++i) {
    const std::size_t c = order[i];
    if (counts[c] == 0) break;
    bench::print_row({gemm::enumerate_configs()[c].name(),
                      std::to_string(counts[c]), bench::pct(means[c])});
  }

  // Win-count histogram (the figure's bar heights).
  common::Matrix csv(winners, 2);
  std::size_t row = 0;
  for (std::size_t i = 0; i < order.size() && counts[order[i]] > 0; ++i) {
    csv(row, 0) = static_cast<double>(order[i]);
    csv(row, 1) = static_cast<double>(counts[order[i]]);
    ++row;
  }
  common::write_matrix_csv("bench_out/fig2_optimal_counts.csv",
                           {"config_index", "wins"}, csv, 0);

  const std::size_t top = counts[order[0]];
  const std::size_t second = counts[order[1]];
  std::cout << "\nClaims checked against the paper:\n"
            << "  distinct configurations optimal at least once: " << winners
            << " (paper: 58)\n"
            << "  most-winning configuration wins " << top << " shapes; next "
            << second << " (paper: 32, with the top >3x the next)\n"
            << "  => the long tail of specialised winners is reproduced;\n"
            << "     the dominance of the single best configuration is\n"
            << "     weaker in the simulated dataset (see EXPERIMENTS.md).\n"
            << "\nFull histogram written to bench_out/fig2_optimal_counts.csv\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
