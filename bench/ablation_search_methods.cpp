// Ablation E: budgeted parameter-search methods vs brute force.
//
// The paper brute-forces all 640 configurations and defers "more
// intelligent parameter search methods" (basin hopping, evolutionary
// algorithms, per the Kernel Tuner discussion it cites) to future work.
// This bench runs those methods on the same space: for a set of
// representative shapes and budgets, how close does each method get to the
// exhaustive optimum?
#include "bench_common.hpp"

#include "perfmodel/cost_model.hpp"
#include "tune/search.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation E: budgeted search vs brute force",
                      "Section V future work / Section II");
  const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());
  const gemm::GemmShape shapes[] = {
      {3136, 576, 128},   // conv mid
      {50176, 1152, 256}, // conv large
      {16, 4096, 1000},   // FC batch-16
      {784, 128, 512},    // conv small
  };

  bench::print_row({"shape", "budget", "random", "annealing", "evolution"},
                   16);
  for (const auto& shape : shapes) {
    const tune::Objective objective = [&](const gemm::KernelConfig& config) {
      return model.predict_seconds(config, shape);
    };
    const auto truth = tune::exhaustive_search(objective);
    for (const std::size_t budget : {std::size_t{20}, std::size_t{60},
                                     std::size_t{160}}) {
      // Average achieved-vs-optimal over seeds (achieved = optimum/found,
      // so 100% is perfect).
      double random_sum = 0, anneal_sum = 0, evo_sum = 0;
      const int seeds = 5;
      for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        random_sum +=
            truth.best_value /
            tune::random_search(objective, budget, seed).best_value;
        tune::AnnealingOptions aopts;
        aopts.budget = budget;
        aopts.seed = seed;
        anneal_sum += truth.best_value /
                      tune::simulated_annealing(objective, aopts).best_value;
        tune::EvolutionOptions eopts;
        eopts.budget = budget;
        eopts.seed = seed;
        evo_sum += truth.best_value /
                   tune::evolutionary_search(objective, eopts).best_value;
      }
      bench::print_row({shape.to_string(), std::to_string(budget),
                        bench::pct(random_sum / seeds),
                        bench::pct(anneal_sum / seeds),
                        bench::pct(evo_sum / seeds)},
                       16);
    }
  }
  std::cout << "\n(values are % of the exhaustive-search optimum achieved by"
               " the\nbudgeted method, averaged over 5 seeds; brute force ="
               " 640 evals)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
