// Symbolic-certification gate: certifies the full 640-configuration zoo on
// all three shipped device models, times the static verifier against one
// dynamic corpus replay (the scaling argument for proving all shapes at
// once), and runs the certificate-gated selection pipeline end to end.
//
// Exit status is the gate: 0 when every (config, device) certificate is
// SAFE and the gated pipeline ships only certified configurations, 1
// otherwise. CI runs this next to akscheck certify --differential; it is
// also a handy local smoke test after touching src/check/symbolic.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "check/checked_gemm.hpp"
#include "check/symbolic/certificate.hpp"
#include "core/pipeline.hpp"
#include "gemm/config.hpp"
#include "perfmodel/device_spec.hpp"

int main() {
  using namespace aks;
  using Clock = std::chrono::steady_clock;
  namespace sym = check::symbolic;
  bench::print_banner("Symbolic safety certificates for the kernel zoo",
                      "the static-verification contract (DESIGN.md)");

  const auto& configs = gemm::enumerate_configs();
  const auto devices = perf::DeviceSpec::shipped();

  const auto t0 = Clock::now();
  const auto report = sym::certify_space(configs, devices);
  const auto t1 = Clock::now();
  const auto certify_us =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();

  std::cout << "certify_space: " << report.configs_checked << " configs x "
            << report.devices_checked << " devices in " << certify_us
            << " us (" << certify_us / static_cast<long>(configs.size())
            << " us/config, all shapes)\n"
            << "verdicts: " << report.count(sym::Verdict::safe) << " SAFE, "
            << report.count(sym::Verdict::unsafe) << " UNSAFE, "
            << report.count(sym::Verdict::unknown) << " UNKNOWN\n";

  // The cost the certificates amortise: one config, one finite shape corpus,
  // dynamically replayed. The symbolic verdict covers every shape at a
  // fraction of even this single-config figure.
  const auto t2 = Clock::now();
  std::size_t replay_findings = 0;
  for (const auto& shape : check::default_shape_corpus()) {
    replay_findings += check::check_gemm(configs[0], shape).findings.size();
  }
  const auto t3 = Clock::now();
  const auto replay_us =
      std::chrono::duration_cast<std::chrono::microseconds>(t3 - t2).count();
  std::cout << "dynamic replay of ONE config over the "
            << check::default_shape_corpus().size()
            << "-shape corpus: " << replay_us << " us, " << replay_findings
            << " finding(s)\n";

  // Certificate-gated pipeline: the safe mask feeds CertifiedPruner.
  const auto dataset = bench::paper_dataset();
  select::PipelineOptions options;
  options.num_configs = 8;
  options.split_seed = bench::kSplitSeed;
  options.model_seed = bench::kModelSeed;
  options.train_fraction = bench::kTrainFraction;
  options.certified_mask = report.safe_mask(dataset.num_configs());
  const auto result = select::run_pipeline(dataset, options);
  std::cout << "certified pipeline: " << result.configs.size()
            << " configs shipped, ceiling "
            << static_cast<int>(result.ceiling * 100.0) << "%, achieved "
            << static_cast<int>(result.achieved * 100.0) << "%\n";

  bool gate_ok = report.all_safe();
  for (const std::size_t c : result.configs) {
    if (!options.certified_mask[c]) gate_ok = false;
  }
  std::cout << (gate_ok ? "GATE PASS: every shipped config carries a SAFE "
                          "certificate\n"
                        : "GATE FAIL: uncertified configuration reachable\n");
  return gate_ok ? 0 : 1;
}
