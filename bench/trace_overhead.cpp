// Tracing-overhead gate: the trace layer is compiled into every hot path
// (SelectionService::select, queue launches, tuner sweeps), so its
// *disabled* cost must be negligible. This bench measures three things:
//
//   1. the per-select cost of the serving workload with tracing disabled
//      (no TraceSession — the shipped default),
//   2. the cost of one disabled begin/end probe pair in isolation (a single
//      relaxed atomic load each), scaled against (1), and
//   3. the same workload with a session installed, reported informationally
//      (enabled runs are a debugging mode, not a production configuration).
//
// Exit status is non-zero if the disabled probes account for more than
// kMaxOverheadFraction (2%) of a warm select, so CI can gate on this binary
// directly. The workload gate uses the probe microbenchmark rather than the
// difference of two noisy end-to-end runs: the select path contains a fixed
// number of probes, so probe_cost * probes_per_select bounds the real
// regression without the run-to-run jitter swamping a sub-2% signal.
#include "bench_common.hpp"

#include <cstdint>
#include <thread>

#include "common/timer.hpp"
#include "core/online.hpp"
#include "core/pruning.hpp"
#include "serve/selection_service.hpp"
#include "trace/trace.hpp"

namespace aks {
namespace {

constexpr double kMaxOverheadFraction = 0.02;
/// Disabled probes on the warm select path: the serve.select span checks
/// `enabled()` once before arming; close() only tests a plain bool.
constexpr double kProbesPerSelect = 1.0;

struct WorkloadResult {
  double ns_per_select = 0.0;
  std::uint64_t selects = 0;
};

WorkloadResult run_workload(const std::vector<gemm::GemmShape>& corpus,
                            const std::vector<std::size_t>& candidates,
                            std::size_t repeats) {
  const perf::TimingModel timing(perf::DeviceSpec::amd_r9_nano(), 0.03, 42);
  select::OnlineTuner tuner(
      candidates, [&](const gemm::KernelConfig& config,
                      const gemm::GemmShape& shape) {
        return timing.best_of(config, shape, 5);
      });
  serve::SelectionService service(tuner);

  // Pay the warm-up sweeps outside the timed region: the gate is about the
  // steady-state select path, not cold-start tuning.
  for (const auto& shape : corpus) (void)service.select(shape);

  common::Timer timer;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    // select() updates service state, so the calls cannot be elided.
    for (const auto& shape : corpus) (void)service.select(shape);
  }
  const double seconds = timer.elapsed_seconds();

  WorkloadResult result;
  result.selects = repeats * corpus.size();
  result.ns_per_select = seconds * 1e9 / static_cast<double>(result.selects);
  return result;
}

/// Cost of one disabled probe (a relaxed atomic load and branch), in ns.
/// Uses a real span name and a data-dependent arg so the compiler cannot
/// fold the calls away; includes loop overhead, so it over-estimates.
double disabled_probe_ns() {
  constexpr std::uint64_t kIterations = 50'000'000;
  common::Timer timer;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    trace::begin("bench.probe", {trace::arg("i", i)});
  }
  const double seconds = timer.elapsed_seconds();
  return seconds * 1e9 / static_cast<double>(kIterations);
}

int run() {
  bench::print_banner("Tracing layer: disabled-path overhead gate",
                      "src/trace must be free when not in use");

  const auto dataset = bench::paper_dataset();
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);
  select::DecisionTreePruner pruner;
  const auto candidates = pruner.prune(split.train, 8);

  std::vector<gemm::GemmShape> corpus;
  for (const auto& lowered : data::extract_all_shapes()) {
    corpus.push_back(lowered.shape);
  }
  const std::size_t repeats = 200;

  const double probe_ns = disabled_probe_ns();
  const auto disabled = run_workload(corpus, candidates, repeats);
  const double bound_fraction =
      kProbesPerSelect * probe_ns / disabled.ns_per_select;

  double enabled_ns = 0.0;
  trace::TraceStats stats;
  {
    trace::TraceOptions options;
    options.buffer_bytes_per_thread = 64ull << 20;
    trace::TraceSession session(options);
    enabled_ns = run_workload(corpus, candidates, repeats).ns_per_select;
    session.stop();
    stats = session.stats();
  }

  bench::print_row({"mode", "ns/select", "overhead"}, 16);
  bench::print_row({"disabled", common::format_fixed(disabled.ns_per_select, 1),
                    "baseline"},
                   16);
  bench::print_row({"probe bound",
                    common::format_fixed(kProbesPerSelect * probe_ns, 2),
                    bench::pct(bound_fraction)},
                   16);
  bench::print_row({"enabled", common::format_fixed(enabled_ns, 1),
                    bench::pct(enabled_ns / disabled.ns_per_select - 1.0)},
                   16);
  std::cout << "\ndisabled probe: " << common::format_fixed(probe_ns, 3)
            << " ns; enabled session recorded " << stats.recorded
            << " events from " << stats.threads << " threads ("
            << stats.dropped << " dropped)\n";

  bool ok = true;
  if (bound_fraction >= kMaxOverheadFraction) {
    std::cerr << "FAILED: disabled probes cost " << bench::pct(bound_fraction)
              << " of a warm select (budget "
              << bench::pct(kMaxOverheadFraction) << ")\n";
    ok = false;
  }
  if (stats.recorded == 0) {
    std::cerr << "FAILED: enabled session recorded no events\n";
    ok = false;
  }
  if (stats.dropped != 0) {
    std::cerr << "FAILED: enabled session dropped " << stats.dropped
              << " events despite a 64 MiB per-thread buffer\n";
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
