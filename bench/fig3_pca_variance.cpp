// Figure 3: percentage of dataset variance explained by each PCA component
// of the normalised-performance vectors.
//
// Paper: the first 4 components account for over 80% of the variance, 8 for
// 90% and 15 for 95% — which is how the paper picks the 4..15 range of
// kernel budgets examined in Figure 4.
#include "bench_common.hpp"

#include "common/csv.hpp"
#include "ml/pca.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Figure 3: PCA explained variance", "Figure 3");
  const auto dataset = bench::paper_dataset();
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);

  ml::Pca pca;
  pca.fit(split.train.scores());
  const auto& ratios = pca.explained_variance_ratio();

  std::cout << "\nExplained variance by component (first 20 of "
            << ratios.size() << "):\n";
  bench::print_row({"component", "ratio%", "cumulative%"});
  double cumulative = 0.0;
  common::Matrix csv(ratios.size(), 3);
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    cumulative += ratios[i];
    csv(i, 0) = static_cast<double>(i + 1);
    csv(i, 1) = ratios[i];
    csv(i, 2) = cumulative;
    if (i < 20) {
      bench::print_row({std::to_string(i + 1), bench::pct(ratios[i]),
                        bench::pct(cumulative)});
    }
  }
  common::write_matrix_csv("bench_out/fig3_pca_variance.csv",
                           {"component", "ratio", "cumulative"}, csv, 6);

  std::cout << "\nClaims checked against the paper:\n"
            << "  components for 80% of variance: "
            << pca.components_for_variance(0.80) << " (paper: 4)\n"
            << "  components for 90% of variance: "
            << pca.components_for_variance(0.90) << " (paper: 8)\n"
            << "  components for 95% of variance: "
            << pca.components_for_variance(0.95) << " (paper: 15)\n"
            << "  => this range motivates examining kernel budgets of 4-15.\n"
            << "\nFull curve written to bench_out/fig3_pca_variance.csv\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
