// Ablation I: budgeted search on the extended (1920-point) space.
//
// Section V: brute force "is infeasible for larger problems, where more
// intelligent parameter search methods must be used". With vector widths
// added the space triples; this bench shows how the search strategies
// handle it when each base-space evaluation nests a sweep of the cheap
// vector-width parameter (3 model evaluations per objective call).
#include "bench_common.hpp"

#include "perfmodel/cost_model.hpp"
#include "tune/extended_space.hpp"
#include "tune/search.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation I: search on the extended 1920-point space",
                      "Section II (vector widths) + Section V");
  const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());
  const gemm::GemmShape shapes[] = {
      {3136, 576, 128},
      {16, 4096, 1000},
      {784, 128, 512},
  };

  std::cout << "\nextended space: "
            << tune::enumerate_extended_configs().size()
            << " points (640 configs x 3 vector widths)\n\n";
  bench::print_row({"shape", "budget", "random%", "anneal%", "evolve%",
                    "best point"},
                   18);
  for (const auto& shape : shapes) {
    const auto truth = tune::exhaustive_extended_search(model, shape);
    // The searcher walks the base space; each step evaluates every vector
    // width and keeps the best (nested cheap-parameter sweep).
    const tune::Objective objective = [&](const gemm::KernelConfig& base) {
      double best = 1e300;
      for (const int width : tune::vector_widths()) {
        best = std::min(best, tune::predict_extended_seconds(
                                  model, {base, width}, shape));
      }
      return best;
    };
    for (const std::size_t budget : {std::size_t{40}, std::size_t{120}}) {
      double random_sum = 0, anneal_sum = 0, evolve_sum = 0;
      const int seeds = 5;
      for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        random_sum += truth.best_value /
                      tune::random_search(objective, budget, seed).best_value;
        tune::AnnealingOptions aopts;
        aopts.budget = budget;
        aopts.seed = seed;
        anneal_sum += truth.best_value /
                      tune::simulated_annealing(objective, aopts).best_value;
        tune::EvolutionOptions eopts;
        eopts.budget = budget;
        eopts.seed = seed;
        evolve_sum += truth.best_value /
                      tune::evolutionary_search(objective, eopts).best_value;
      }
      bench::print_row({shape.to_string(), std::to_string(budget),
                        bench::pct(random_sum / seeds),
                        bench::pct(anneal_sum / seeds),
                        bench::pct(evolve_sum / seeds),
                        budget == 120 ? truth.best.name() : ""},
                       18);
    }
  }
  std::cout << "\n(values are % of the 1920-point exhaustive optimum; each"
               " budget\nunit spends 3 model evaluations — one per vector"
               " width)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
