// Batched-selection throughput gate: select_batch() exists so a framework
// resolving kernels for a whole model graph (many layers, shared shapes)
// pays less per shape than issuing the selects one by one. This bench
// replays the paper's extracted shape corpus through a warm
// serve::SelectionService and measures
//
//   1. the per-shape cost of sequential select() calls (baseline),
//   2. the amortized per-shape cost of a realistic graph-build batch — the
//      corpus repeated 4x in one vector, so 3 of every 4 inputs are
//      deduplicated inside the batch, and
//   3. the amortized cost of an all-unique batch (no dedup headroom),
//      reported informationally.
//
// Exit status is non-zero if (2) exceeds kMaxAmortizedFraction (0.5x) of
// (1), or if any duplicate warm-up sweep was recorded, so CI gates on this
// binary directly alongside the trace-overhead gate. The dedup batch is the
// gated figure because that is the shape of real graph-build traffic; the
// all-unique batch bounds the worst case where batching can only save lock
// acquisitions, not work.
#include "bench_common.hpp"

#include <cstdint>
#include <vector>

#include "common/timer.hpp"
#include "core/online.hpp"
#include "core/pruning.hpp"
#include "serve/selection_service.hpp"

namespace aks {
namespace {

constexpr double kMaxAmortizedFraction = 0.5;
constexpr std::size_t kDedupRepeat = 4;
constexpr std::size_t kRepeats = 200;

int run() {
  bench::print_banner("Batched selection: amortized per-shape latency gate",
                      "the serving-layer extension of Section V");

  const auto dataset = bench::paper_dataset();
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);
  select::DecisionTreePruner pruner;
  const auto candidates = pruner.prune(split.train, 8);

  std::vector<gemm::GemmShape> corpus;
  for (const auto& lowered : data::extract_all_shapes()) {
    corpus.push_back(lowered.shape);
  }

  const perf::TimingModel timing(perf::DeviceSpec::amd_r9_nano(), 0.03, 42);
  select::OnlineTuner tuner(
      candidates, [&](const gemm::KernelConfig& config,
                      const gemm::GemmShape& shape) {
        return timing.best_of(config, shape, 5);
      });
  serve::SelectionService service(tuner);

  // Warm the full corpus outside every timed region: the gate compares
  // steady-state resolution paths, not cold-start tuning.
  (void)service.select_batch(corpus);

  // (1) sequential baseline.
  common::Timer timer;
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    for (const auto& shape : corpus) (void)service.select(shape);
  }
  const double single_ns = timer.elapsed_seconds() * 1e9 /
                           static_cast<double>(kRepeats * corpus.size());

  // (2) graph-build batch: corpus x4 in one vector (75% in-batch dupes).
  std::vector<gemm::GemmShape> graph;
  graph.reserve(corpus.size() * kDedupRepeat);
  for (std::size_t r = 0; r < kDedupRepeat; ++r) {
    graph.insert(graph.end(), corpus.begin(), corpus.end());
  }
  timer = common::Timer();
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    (void)service.select_batch(graph);
  }
  const double dedup_ns = timer.elapsed_seconds() * 1e9 /
                          static_cast<double>(kRepeats * graph.size());

  // (3) all-unique batch, informational.
  timer = common::Timer();
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    (void)service.select_batch(corpus);
  }
  const double unique_ns = timer.elapsed_seconds() * 1e9 /
                           static_cast<double>(kRepeats * corpus.size());

  const auto stats = service.stats();
  bench::print_row({"path", "ns/shape", "vs select()"}, 18);
  bench::print_row({"select()", common::format_fixed(single_ns, 1),
                    "baseline"},
                   18);
  bench::print_row({"batch dedup x4", common::format_fixed(dedup_ns, 1),
                    bench::pct(dedup_ns / single_ns)},
                   18);
  bench::print_row({"batch all-unique", common::format_fixed(unique_ns, 1),
                    bench::pct(unique_ns / single_ns)},
                   18);
  std::cout << "\nbatches " << stats.batch_requests << ", batched shapes "
            << stats.batch_shapes << ", deduplicated " << stats.batch_dedup
            << ", duplicate sweeps " << stats.duplicate_sweeps << "\n";

  bool ok = true;
  if (dedup_ns > kMaxAmortizedFraction * single_ns) {
    std::cerr << "FAILED: dedup batch amortized " << dedup_ns
              << " ns/shape exceeds " << kMaxAmortizedFraction
              << "x of a sequential select (" << single_ns << " ns)\n";
    ok = false;
  }
  if (stats.duplicate_sweeps != 0) {
    std::cerr << "FAILED: " << stats.duplicate_sweeps
              << " duplicate warm-up sweeps recorded\n";
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
