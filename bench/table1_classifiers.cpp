// Table I: performance of the runtime-selection classifiers as a percentage
// of the absolute optimal performance, for the kernel sets chosen by the
// decision-tree pruner at budgets 5, 6, 8 and 15.
//
// Paper observations: the achievable ceiling ranges 93-96.6%, but no
// classifier exceeds 89%; the decision tree matches or beats everything
// except at 15 configurations; the radial SVM collapses to ~55% (the
// majority class); classifiers get relatively worse as the number of
// classes grows.
#include "bench_common.hpp"

#include "common/csv.hpp"
#include "core/pipeline.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Table I: runtime selection classifiers", "Table I");
  const auto dataset = bench::paper_dataset();
  const std::size_t budgets[] = {5, 6, 8, 15};

  // Ceilings row: the best any selector could do with the pruned sets.
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);
  select::DecisionTreePruner pruner;
  std::vector<std::string> ceiling_row = {"(ceiling)"};
  for (const std::size_t n : budgets) {
    ceiling_row.push_back(
        bench::pct(select::pruning_ceiling(split.test, pruner.prune(split.train, n))));
  }

  const select::SelectorMethod methods[] = {
      select::SelectorMethod::kDecisionTree,
      select::SelectorMethod::kRandomForest,
      select::SelectorMethod::k1Nn,
      select::SelectorMethod::k3Nn,
      select::SelectorMethod::kLinearSvm,
      select::SelectorMethod::kRadialSvm,
  };

  bench::print_row({"classifier", "5", "6", "8", "15"}, 18);
  bench::print_row(ceiling_row, 18);

  common::Matrix csv(std::size(methods), std::size(budgets));
  for (std::size_t mi = 0; mi < std::size(methods); ++mi) {
    std::vector<std::string> row = {select::to_string(methods[mi])};
    for (std::size_t bi = 0; bi < std::size(budgets); ++bi) {
      select::PipelineOptions options;
      options.num_configs = budgets[bi];
      options.prune_method = select::PruneMethod::kDecisionTree;
      options.selector_method = methods[mi];
      options.split_seed = bench::kSplitSeed;
      options.model_seed = bench::kModelSeed;
      const auto result = select::run_pipeline(dataset, options);
      row.push_back(bench::pct(result.achieved));
      csv(mi, bi) = result.achieved;
    }
    bench::print_row(row, 18);
  }
  common::write_matrix_csv("bench_out/table1_classifiers.csv",
                           {"n5", "n6", "n8", "n15"}, csv, 6);

  std::cout << "\nPaper reference rows (for comparison):\n"
            << "  ceiling           92.99  94.98  95.37  96.61\n"
            << "  DecisionTree      86.43  84.29  86.82  83.54\n"
            << "  RandomForest      82.99  83.70  87.99  88.13\n"
            << "  1NearestNeighbor  80.45  78.44  78.30  78.21\n"
            << "  3NearestNeighbors 76.41  77.95  76.34  75.45\n"
            << "  LinearSVM         85.88  84.17  87.96  82.50\n"
            << "  RadialSVM         54.95  55.01  55.01  55.01\n"
            << "\nValues written to bench_out/table1_classifiers.csv\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
