// Ablation J: how much of Figure 4 / Table I is split luck?
//
// The paper draws every number from ONE random 136/34 split of 170 shapes.
// With 34 test shapes, the geomean-of-optimal metric has real variance;
// this bench repeats the headline measurements over ten split seeds and
// reports mean +/- stddev, which calibrates how many of the paper's
// between-method differences are resolvable at its sample size.
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation J: split-seed variance of the headline numbers",
                      "Figure 4 and Table I (single-split protocol)");
  const auto dataset = bench::paper_dataset();
  constexpr int kSeeds = 10;

  std::cout << "\nPruning ceilings over " << kSeeds
            << " train/test splits (mean +/- std, %):\n";
  bench::print_row({"N", "TopN", "DecisionTree", "PCA+KMeans"}, 18);
  for (const std::size_t n : {std::size_t{6}, std::size_t{15}}) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto method :
         {select::PruneMethod::kTopN, select::PruneMethod::kDecisionTree,
          select::PruneMethod::kPcaKMeans}) {
      std::vector<double> scores;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const auto split = dataset.split(bench::kTrainFraction, seed);
        const auto pruner = select::make_pruner(method, bench::kModelSeed);
        scores.push_back(100.0 * select::pruning_ceiling(
                                     split.test, pruner->prune(split.train, n)));
      }
      row.push_back(common::format_fixed(common::mean(scores), 1) + "+-" +
                    common::format_fixed(common::stddev(scores), 1));
    }
    bench::print_row(row, 18);
  }

  std::cout << "\nSelector scores over " << kSeeds
            << " splits (decision-tree pruned sets, mean +/- std, %):\n";
  bench::print_row({"selector", "N=6", "N=15"}, 20);
  for (const auto method :
       {select::SelectorMethod::kDecisionTree, select::SelectorMethod::k1Nn,
        select::SelectorMethod::kRadialSvm}) {
    std::vector<std::string> row = {select::to_string(method)};
    for (const std::size_t n : {std::size_t{6}, std::size_t{15}}) {
      std::vector<double> scores;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        select::PipelineOptions options;
        options.num_configs = n;
        options.selector_method = method;
        options.split_seed = seed;
        scores.push_back(100.0 * select::run_pipeline(dataset, options).achieved);
      }
      row.push_back(common::format_fixed(common::mean(scores), 1) + "+-" +
                    common::format_fixed(common::stddev(scores), 1));
    }
    bench::print_row(row, 20);
  }
  std::cout << "\n(differences inside one standard deviation are not"
               " resolvable by\nthe paper's single-split protocol — its own"
               " Section V caveat,\nquantified)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
