// Ablation F: dynamic (online) tuning vs the learned selector.
//
// The paper's introduction observes that ML frameworks tune dynamically —
// trial runs the first time a size is seen — while the paper proposes a
// trained selector with no warm-up. This bench quantifies the trade-off on
// the held-out shapes: the online tuner eventually achieves the restricted
// ceiling but pays |candidates| trial runs per novel shape; the learned
// selector answers instantly but leaves some performance behind.
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation F: online tuning vs learned selection",
                      "Section I (dynamic auto-tuning) vs Section IV");
  const auto dataset = bench::paper_dataset();
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);

  bench::print_row({"budget", "ceiling%", "learned%", "online%",
                    "warmup_runs", "warmup_ms"},
                   14);
  for (const std::size_t n : {std::size_t{5}, std::size_t{8}, std::size_t{15}}) {
    select::DecisionTreePruner pruner;
    const auto allowed = pruner.prune(split.train, n);
    const double ceiling = select::pruning_ceiling(split.test, allowed);

    select::DecisionTreeSelector learned;
    learned.fit(split.train, allowed);
    const double learned_score = select::selector_score(learned, split.test);

    // Online tuner timed by the same noisy harness that built the dataset,
    // then scored on the dataset's recorded scores.
    const perf::TimingModel timing(perf::DeviceSpec::amd_r9_nano(), 0.03, 42);
    select::OnlineTuner online(
        allowed, [&](const gemm::KernelConfig& config,
                     const gemm::GemmShape& shape) {
          return timing.best_of(config, shape, 5);
        });
    std::vector<double> online_scores;
    for (std::size_t r = 0; r < split.test.num_shapes(); ++r) {
      const auto config = online.select(split.test.shapes()[r].shape);
      online_scores.push_back(
          split.test.scores()(r, gemm::config_index(config)));
    }
    const double online_score = common::geometric_mean(online_scores);
    const double warmup_runs =
        static_cast<double>(online.cache_misses() * allowed.size() * 5);

    bench::print_row({std::to_string(n), bench::pct(ceiling),
                      bench::pct(learned_score), bench::pct(online_score),
                      common::format_fixed(warmup_runs, 0),
                      common::format_fixed(online.trial_seconds() * 1e3, 2)},
                     14);
  }
  std::cout << "\n(online pays warmup_runs kernel executions before reaching"
               " its\nscore; the learned selector answers in ~20 ns with no"
               " warm-up —\nsee bench/selection_latency)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
