// Section IV's deployment argument: "There is little to be gained by
// choosing a complex process to achieve slightly better performance if this
// leads to significantly more time being spent in that selection process."
//
// Measures the per-query latency of every trained selector, plus the
// nested-if logic emitted by the code generator — demonstrating why the
// decision tree is the deployment candidate.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/codegen.hpp"
#include "core/pipeline.hpp"
#include "dataset/benchmark_runner.hpp"

namespace aks {
namespace {

struct Context {
  data::PerfDataset dataset;
  data::DatasetSplit split;
  std::vector<std::size_t> allowed;

  Context()
      : dataset(data::build_paper_dataset()),
        split(dataset.split(0.8, 1)),
        allowed(select::DecisionTreePruner().prune(split.train, 8)) {}
};

const Context& context() {
  static const Context ctx;
  return ctx;
}

void bench_selector(benchmark::State& state,
                    select::SelectorMethod method) {
  auto selector = select::make_selector(method);
  selector->fit(context().split.train, context().allowed);
  // Rotate over the test shapes so caches do not pin one path.
  const auto& features = context().split.test.features();
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector->select(features.row(row)));
    row = (row + 1) % features.rows();
  }
}

void bench_generated_tree(benchmark::State& state) {
  select::DecisionTreeSelector selector;
  selector.fit(context().split.train, context().allowed);
  const auto& features = context().split.test.features();
  std::size_t row = 0;
  for (auto _ : state) {
    const auto r = features.row(row);
    benchmark::DoNotOptimize(
        select::evaluate_generated_logic(selector, r[0], r[1], r[2]));
    row = (row + 1) % features.rows();
  }
}

}  // namespace
}  // namespace aks

int main(int argc, char** argv) {
  using aks::select::SelectorMethod;
  const std::pair<const char*, SelectorMethod> methods[] = {
      {"select/DecisionTree", SelectorMethod::kDecisionTree},
      {"select/RandomForest", SelectorMethod::kRandomForest},
      {"select/1NearestNeighbor", SelectorMethod::k1Nn},
      {"select/3NearestNeighbors", SelectorMethod::k3Nn},
      {"select/LinearSVM", SelectorMethod::kLinearSvm},
      {"select/RadialSVM", SelectorMethod::kRadialSvm},
  };
  for (const auto& [name, method] : methods) {
    benchmark::RegisterBenchmark(name, [method](benchmark::State& state) {
      aks::bench_selector(state, method);
    });
  }
  benchmark::RegisterBenchmark("select/GeneratedNestedIfs",
                               aks::bench_generated_tree);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
