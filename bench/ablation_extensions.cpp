// Ablation G: the extension methods beyond the paper's Table I / Figure 4
// sets — gradient-boosted trees (the related work's model family), the
// agglomerative pruner, and log2 feature engineering — evaluated in the
// same protocol so they are directly comparable with the paper's rows.
#include "bench_common.hpp"

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner(
      "Ablation G: extension pruners/selectors vs the paper's set",
      "Table I and Figure 4 (extensions)");
  const auto dataset = bench::paper_dataset();
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);

  // --- Pruning: agglomerative joins the Figure 4 lineup. -------------------
  std::cout << "\nPruning ceilings (geomean % of optimal on the test set):\n";
  bench::print_row({"N", "DecisionTree", "PCA+KMeans", "Agglomerative"}, 15);
  for (const std::size_t n : {std::size_t{4}, std::size_t{6}, std::size_t{8},
                              std::size_t{12}, std::size_t{15}}) {
    select::DecisionTreePruner dtree;
    select::PcaKMeansPruner pca(0, bench::kModelSeed);
    select::AgglomerativePruner agglo;
    bench::print_row(
        {std::to_string(n),
         bench::pct(select::pruning_ceiling(split.test, dtree.prune(split.train, n))),
         bench::pct(select::pruning_ceiling(split.test, pca.prune(split.train, n))),
         bench::pct(select::pruning_ceiling(split.test, agglo.prune(split.train, n)))},
        15);
  }

  // --- Selection: gradient boosting and log2 features. ---------------------
  std::cout << "\nSelector scores (geomean % of optimal, decision-tree pruned"
               " sets):\n";
  bench::print_row({"selector", "N=6", "N=8", "N=15"}, 24);
  struct Row {
    const char* label;
    select::SelectorMethod method;
    select::FeatureMap map;
  };
  const Row rows[] = {
      {"DecisionTree (paper)", select::SelectorMethod::kDecisionTree,
       select::FeatureMap::kRaw},
      {"GradientBoosting", select::SelectorMethod::kGradientBoosting,
       select::FeatureMap::kRaw},
      {"1NN raw (paper)", select::SelectorMethod::k1Nn,
       select::FeatureMap::kRaw},
      {"1NN log2", select::SelectorMethod::k1Nn, select::FeatureMap::kLog2},
      {"LinearSVM raw (paper)", select::SelectorMethod::kLinearSvm,
       select::FeatureMap::kRaw},
      {"LinearSVM log2", select::SelectorMethod::kLinearSvm,
       select::FeatureMap::kLog2},
      {"RadialSVM raw (paper)", select::SelectorMethod::kRadialSvm,
       select::FeatureMap::kRaw},
      {"RadialSVM log2+scale", select::SelectorMethod::kRadialSvm,
       select::FeatureMap::kLog2},
  };
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.label};
    for (const std::size_t n : {std::size_t{6}, std::size_t{8}, std::size_t{15}}) {
      select::PipelineOptions options;
      options.num_configs = n;
      options.selector_method = row.method;
      options.feature_map = row.map;
      // The RadialSVM log2 row also standardises (the full preprocessing fix).
      options.scale_features =
          row.method == select::SelectorMethod::kRadialSvm &&
          row.map == select::FeatureMap::kLog2;
      options.split_seed = bench::kSplitSeed;
      cells.push_back(bench::pct(select::run_pipeline(dataset, options).achieved));
    }
    bench::print_row(cells, 24);
  }
  std::cout << "\n(log2 features fix the scale pathologies of the distance-"
               " and\nkernel-based selectors; the tree is invariant to them)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
