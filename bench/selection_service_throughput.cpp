// Serving-layer throughput: T threads hammer the SelectionService with the
// paper's full GEMM shape corpus (repeated, per-thread shuffled order) and
// we report selection throughput, hit rate and — the single-flight
// invariant — the duplicate warm-up sweep count, which must be 0.
//
// Each thread count gets a fresh service wrapping an OnlineTuner over a
// tree-pruned candidate set timed by the R9 Nano model, so every run pays
// the same cold-start: ~172 single-flight warm-up sweeps, then pure cache
// traffic. Throughput should rise from 1 to 4 threads (sharded cache, no
// global lock) while warm-up work stays constant.
//
// Exit status is non-zero if any run observed a duplicate sweep or a
// cache-inconsistent answer, so CI can gate on this binary directly.
#include "bench_common.hpp"

#include <atomic>
#include <set>
#include <thread>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/online.hpp"
#include "core/pruning.hpp"
#include "serve/selection_service.hpp"

namespace aks {
namespace {

struct RunResult {
  double seconds = 0.0;
  std::uint64_t selects = 0;
  serve::ServiceStats stats;
  bool consistent = true;
};

RunResult run_threads(std::size_t num_threads, std::size_t repeats,
                      const std::vector<gemm::GemmShape>& corpus,
                      const std::vector<std::size_t>& candidates) {
  const perf::TimingModel timing(perf::DeviceSpec::amd_r9_nano(), 0.03, 42);
  select::OnlineTuner tuner(
      candidates, [&](const gemm::KernelConfig& config,
                      const gemm::GemmShape& shape) {
        return timing.best_of(config, shape, 5);
      });
  serve::SelectionService service(tuner);

  // Reference answers are filled on first sight (single-flight makes the
  // first answer canonical); later disagreement flags an inconsistency.
  std::vector<std::atomic<int>> reference(corpus.size());
  for (auto& r : reference) r.store(-1);
  std::atomic<bool> consistent{true};

  std::vector<std::thread> threads;
  common::Timer timer;
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      common::Rng rng(0x5eed + t);
      std::vector<std::size_t> order(corpus.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        // Per-thread shuffle so threads collide on different shapes.
        rng.shuffle(order);
        for (const std::size_t s : order) {
          const auto config = service.select(corpus[s]);
          const int index = static_cast<int>(gemm::config_index(config));
          // Load before CAS: the warm path must not bounce the reference
          // cache line, or the bench serializes on its own checker.
          const int seen = reference[s].load(std::memory_order_relaxed);
          if (seen == -1) {
            int expected = -1;
            if (!reference[s].compare_exchange_strong(expected, index) &&
                expected != index) {
              consistent.store(false);
            }
          } else if (seen != index) {
            consistent.store(false);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  RunResult result;
  result.seconds = timer.elapsed_seconds();
  result.selects = num_threads * repeats * corpus.size();
  result.stats = service.stats();
  result.consistent = consistent.load();
  return result;
}

int run() {
  bench::print_banner(
      "Serving layer: SelectionService throughput scaling",
      "the deployment scenario of Section IV");

  const auto dataset = bench::paper_dataset();
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);
  select::DecisionTreePruner pruner;
  const auto candidates = pruner.prune(split.train, 8);

  std::vector<gemm::GemmShape> corpus;
  for (const auto& lowered : data::extract_all_shapes()) {
    corpus.push_back(lowered.shape);
  }
  // The corpus keeps cross-network duplicates (the paper's 170-row count);
  // the cache holds one entry per *distinct* shape.
  const std::set<gemm::GemmShape> distinct(corpus.begin(), corpus.end());

  const std::size_t repeats = 400;
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << " (speedup > 1 requires more than one core)\n";
  bench::print_row({"threads", "selects", "sec", "selects/s", "speedup",
                    "hit%", "coalesced", "dup_sweeps"},
                   12);
  double base_rate = 0.0;
  bool ok = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto r = run_threads(threads, repeats, corpus, candidates);
    const double rate = static_cast<double>(r.selects) / r.seconds;
    if (threads == 1) base_rate = rate;
    const auto& s = r.stats;
    const double hit_rate =
        static_cast<double>(s.hits) /
        static_cast<double>(std::max<std::uint64_t>(1, s.hits + s.misses +
                                                       s.coalesced_waits));
    bench::print_row(
        {std::to_string(threads), std::to_string(r.selects),
         common::format_fixed(r.seconds, 3),
         common::format_fixed(rate, 0),
         common::format_fixed(rate / base_rate, 2),
         bench::pct(hit_rate), std::to_string(s.coalesced_waits),
         std::to_string(s.duplicate_sweeps)},
        12);
    ok = ok && r.consistent && s.duplicate_sweeps == 0 &&
         s.cached_shapes == distinct.size() && s.misses == distinct.size();
  }
  std::cout << "\n(warm-up runs once per distinct shape regardless of thread"
               " count —\nsingle-flight coalesces concurrent first-sight"
               " requests; dup_sweeps must be 0)\n";
  if (!ok) {
    std::cerr << "FAILED: duplicate sweep or inconsistent answer observed\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
