// Shared plumbing for the figure/table reproduction binaries.
//
// Every binary regenerates its figure or table from scratch with fixed
// seeds, prints the series/rows the paper reports to stdout, and (where
// useful) drops a CSV next to the binary under bench_out/.
#pragma once

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "dataset/benchmark_runner.hpp"

namespace aks::bench {

/// Seeds shared by every reproduction binary so their numbers agree.
inline constexpr std::uint64_t kSplitSeed = 1;
inline constexpr std::uint64_t kModelSeed = 0;
inline constexpr double kTrainFraction = 0.8;

/// The dataset of the paper's Section II.A, built with default options
/// (AMD R9 Nano model, 172 shapes, 640 configurations, seeded noise).
inline data::PerfDataset paper_dataset() {
  return data::build_paper_dataset();
}

/// Prints a header line for a reproduction binary.
inline void print_banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==================================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << " of Lawson 2020, arXiv:2003.06795)\n"
            << "==================================================================\n";
}

/// Prints one row of a fixed-width table.
inline void print_row(const std::vector<std::string>& cells,
                      std::size_t width = 14) {
  for (const auto& cell : cells) {
    std::cout << common::pad_left(cell, width);
  }
  std::cout << "\n";
}

inline std::string pct(double fraction, int decimals = 2) {
  return common::format_fixed(100.0 * fraction, decimals);
}

}  // namespace aks::bench
