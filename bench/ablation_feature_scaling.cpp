// Ablation A: what the paper's Table I would have looked like with feature
// standardisation.
//
// The paper's RadialSVM sits at ~55% for every budget — the classic symptom
// of an RBF kernel fed raw matrix dimensions (M up to ~200k): the "scale"
// gamma degenerates and the machine predicts the majority class. This
// ablation re-runs the SVM and kNN rows with a StandardScaler inside the
// selector to quantify how much of the deficit is preprocessing rather than
// model capacity.
#include "bench_common.hpp"

#include "core/pipeline.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation A: feature scaling for the selectors",
                      "Table I (RadialSVM pathology)");
  const auto dataset = bench::paper_dataset();

  const select::SelectorMethod methods[] = {
      select::SelectorMethod::kDecisionTree,
      select::SelectorMethod::k1Nn,
      select::SelectorMethod::k3Nn,
      select::SelectorMethod::kLinearSvm,
      select::SelectorMethod::kRadialSvm,
  };

  bench::print_row({"classifier", "raw@6", "scaled@6", "raw@15", "scaled@15"},
                   18);
  for (const auto method : methods) {
    std::vector<std::string> row = {select::to_string(method)};
    for (const std::size_t n : {std::size_t{6}, std::size_t{15}}) {
      for (const bool scaled : {false, true}) {
        select::PipelineOptions options;
        options.num_configs = n;
        options.selector_method = method;
        options.scale_features = scaled;
        options.split_seed = bench::kSplitSeed;
        row.push_back(bench::pct(select::run_pipeline(dataset, options).achieved));
      }
    }
    bench::print_row(row, 18);
  }

  std::cout << "\n(DecisionTree is scale-invariant and serves as the control"
               " row; differences there reflect only threshold midpoints.)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
