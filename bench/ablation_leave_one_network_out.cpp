// Ablation H: leave-one-network-out generalisation.
//
// The paper's random split mixes shapes from all three networks in both
// train and test, so a selector may effectively memorise each network's
// shape families. The harder question for a shipping library — and the
// paper's own worry that its models "fail to generalize" — is whether a
// kernel set and selector tuned on two networks serve an *unseen* network.
// This bench holds each network out in turn.
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation H: leave-one-network-out generalisation",
                      "Section V (failure to generalise)");
  const auto dataset = bench::paper_dataset();

  bench::print_row({"held-out", "rows", "ceiling%", "tree%", "1nn%",
                    "random-split tree%"},
                   18);
  for (const auto& network : dataset.networks()) {
    const auto test_rows = dataset.rows_of_network(network);
    std::vector<std::size_t> train_rows;
    for (std::size_t r = 0; r < dataset.num_shapes(); ++r) {
      if (dataset.shapes()[r].network != network) train_rows.push_back(r);
    }
    const auto train = dataset.subset(train_rows);
    const auto test = dataset.subset(test_rows);

    select::DecisionTreePruner pruner;
    const auto allowed = pruner.prune(train, 8);
    const double ceiling = select::pruning_ceiling(test, allowed);

    select::DecisionTreeSelector tree;
    tree.fit(train, allowed);
    select::KnnSelector knn(1);
    knn.fit(train, allowed);

    // Reference: the mixed random split restricted to this network's rows.
    const auto mixed = dataset.split(bench::kTrainFraction, bench::kSplitSeed);
    select::DecisionTreePruner mixed_pruner;
    const auto mixed_allowed = mixed_pruner.prune(mixed.train, 8);
    select::DecisionTreeSelector mixed_tree;
    mixed_tree.fit(mixed.train, mixed_allowed);
    std::vector<double> mixed_scores;
    for (std::size_t r = 0; r < mixed.test.num_shapes(); ++r) {
      if (mixed.test.shapes()[r].network != network) continue;
      const std::size_t chosen =
          mixed_tree.select(mixed.test.features().row(r));
      mixed_scores.push_back(mixed.test.scores()(r, chosen));
    }
    const double mixed_score =
        mixed_scores.empty() ? 0.0 : common::geometric_mean(mixed_scores);

    bench::print_row({network, std::to_string(test_rows.size()),
                      bench::pct(ceiling),
                      bench::pct(select::selector_score(tree, test)),
                      bench::pct(select::selector_score(knn, test)),
                      bench::pct(mixed_score)},
                     18);
  }
  std::cout << "\n(ceiling = best achievable with the 8 kernels chosen"
               " without\nseeing the held-out network; the gap to the"
               " random-split column is\nthe memorisation the paper's"
               " protocol cannot detect)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
