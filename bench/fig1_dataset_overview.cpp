// Figure 1: normalised performance of every configuration across all matrix
// sizes, with configurations ordered by increasing mean performance.
//
// The paper's figure is a scatter of 172 x 640 points; this binary prints
// the per-configuration distribution (min / quartiles / mean / max) for a
// sample of the ordered configurations, the full score histogram, and the
// figure's qualitative claims, and writes the complete per-configuration
// series to bench_out/fig1_configs.csv.
#include "bench_common.hpp"

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "gemm/config.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Figure 1: performance of each configuration",
                      "Figure 1");
  const auto dataset = bench::paper_dataset();
  const auto means = dataset.mean_scores();
  const auto order = common::argsort(means);  // ascending mean, as in Fig 1

  common::Matrix table(order.size(), 6);
  std::vector<double> column(dataset.num_shapes());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t config = order[rank];
    for (std::size_t r = 0; r < dataset.num_shapes(); ++r) {
      column[r] = dataset.scores()(r, config);
    }
    table(rank, 0) = static_cast<double>(config);
    table(rank, 1) = common::min_value(column);
    table(rank, 2) = common::quantile(column, 0.25);
    table(rank, 3) = means[config];
    table(rank, 4) = common::quantile(column, 0.75);
    table(rank, 5) = common::max_value(column);
  }
  common::write_matrix_csv("bench_out/fig1_configs.csv",
                           {"config_index", "min", "p25", "mean", "p75", "max"},
                           table, 6);

  std::cout << "\nPer-configuration score distribution (sorted by mean, every"
               " 32nd of 640 configurations):\n";
  bench::print_row({"rank", "config", "min%", "p25%", "mean%", "p75%", "max%"});
  for (std::size_t rank = 0; rank < order.size(); rank += 32) {
    bench::print_row({std::to_string(rank),
                      gemm::enumerate_configs()[order[rank]].name(),
                      bench::pct(table(rank, 1)), bench::pct(table(rank, 2)),
                      bench::pct(table(rank, 3)), bench::pct(table(rank, 4)),
                      bench::pct(table(rank, 5))});
  }

  // Full score histogram (the density structure visible in the figure).
  std::cout << "\nScore histogram over all (shape, config) pairs:\n";
  std::vector<std::size_t> hist(10, 0);
  for (std::size_t r = 0; r < dataset.num_shapes(); ++r) {
    for (std::size_t c = 0; c < dataset.num_configs(); ++c) {
      const double s = dataset.scores()(r, c);
      ++hist[std::min<std::size_t>(9, static_cast<std::size_t>(s * 10.0))];
    }
  }
  for (std::size_t b = 0; b < hist.size(); ++b) {
    bench::print_row({std::to_string(b * 10) + "-" + std::to_string(b * 10 + 10) + "%",
                      std::to_string(hist[b])});
  }

  // Qualitative claims of the figure.
  std::size_t never_above_30 = 0;
  std::size_t mean_below_30 = 0;
  for (std::size_t c = 0; c < dataset.num_configs(); ++c) {
    double best = 0.0;
    for (std::size_t r = 0; r < dataset.num_shapes(); ++r) {
      best = std::max(best, dataset.scores()(r, c));
    }
    never_above_30 += best < 0.30 ? 1u : 0u;
    mean_below_30 += means[c] < 0.30 ? 1u : 0u;
  }
  const std::size_t top_config = order.back();
  double top_worst = 1.0;
  for (std::size_t r = 0; r < dataset.num_shapes(); ++r) {
    top_worst = std::min(top_worst, dataset.scores()(r, top_config));
  }
  std::cout << "\nClaims checked against the paper:\n"
            << "  configs never reaching 30% of optimal anywhere: "
            << never_above_30 << "; configs with mean below 30%: "
            << mean_below_30
            << "\n  (paper: a block of always-bad configs at the far left;"
               " in this\n  dataset launch-bound small shapes give every"
               " kernel one decent\n  case, so the always-bad block shows up"
               " in the means instead)\n"
            << "  best-mean config ("
            << gemm::enumerate_configs()[top_config].name()
            << ") mean=" << bench::pct(means[top_config])
            << "%, but worst-case only " << bench::pct(top_worst)
            << "% (paper: best-on-average configs still perform poorly on"
               " some sizes)\n"
            << "\nFull series written to bench_out/fig1_configs.csv\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
