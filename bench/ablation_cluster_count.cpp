// Ablation K: choosing the kernel budget — PCA variance (the paper's way)
// vs silhouette analysis (the standard clustering alternative).
//
// Figure 3 picks the 4-15 budget range from PCA explained variance. This
// bench runs k-means at each k and reports silhouette and Davies-Bouldin
// scores next to the realised pruning ceiling, showing whether cluster-
// quality metrics would have suggested the same budgets.
#include "bench_common.hpp"

#include "core/evaluation.hpp"
#include "core/pruning.hpp"
#include "ml/cluster_metrics.hpp"
#include "ml/kmeans.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation K: picking k — PCA variance vs silhouette",
                      "Figure 3 (budget choice)");
  const auto dataset = bench::paper_dataset();
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);

  bench::print_row({"k", "silhouette", "davies-bouldin", "ceiling%"}, 16);
  for (const int k : {2, 4, 6, 8, 10, 12, 15, 20}) {
    ml::KMeansOptions options;
    options.n_clusters = k;
    options.seed = bench::kModelSeed;
    ml::KMeans km(options);
    km.fit(split.train.scores());

    select::KMeansPruner pruner(bench::kModelSeed);
    const auto configs =
        pruner.prune(split.train, static_cast<std::size_t>(k));

    bench::print_row(
        {std::to_string(k),
         common::format_fixed(
             ml::silhouette_score(split.train.scores(), km.labels()), 3),
         common::format_fixed(
             ml::davies_bouldin_index(split.train.scores(), km.labels()), 3),
         bench::pct(select::pruning_ceiling(split.test, configs))},
        16);
  }
  std::cout << "\n(silhouette peaks / Davies-Bouldin dips where the"
               " performance-vector\nstructure is naturally clustered;"
               " compare against the 4-15 range the\npaper derives from"
               " Figure 3's PCA curve)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
