// Figure 4: performance of each configuration-pruning technique as a
// percentage of the optimal obtainable performance, for kernel budgets 4-15.
//
// The metric is the geometric mean over the *test* shapes of the best score
// achievable when the library only ships the selected configurations. Paper
// observations: the clustering methods beat the naive top-N count ranking
// when the budget is very limited; the decision tree and PCA+k-means reach
// ~95% by 6 configurations; everything converges near 95% at 15.
#include "bench_common.hpp"

#include "common/csv.hpp"
#include "core/evaluation.hpp"
#include "core/pruning.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Figure 4: pruning-technique comparison", "Figure 4");
  const auto dataset = bench::paper_dataset();
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);
  std::cout << "train/test split: " << split.train.num_shapes() << "/"
            << split.test.num_shapes() << " shapes (paper: 136/34)\n\n";

  const auto pruners = select::all_pruners(bench::kModelSeed);
  std::vector<std::string> header = {"N"};
  for (const auto& pruner : pruners) header.push_back(pruner->name());
  bench::print_row(header);

  common::Matrix csv(12, pruners.size() + 1);
  for (std::size_t n = 4; n <= 15; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    csv(n - 4, 0) = static_cast<double>(n);
    for (std::size_t p = 0; p < pruners.size(); ++p) {
      const auto configs = pruners[p]->prune(split.train, n);
      const double ceiling = select::pruning_ceiling(split.test, configs);
      row.push_back(bench::pct(ceiling));
      csv(n - 4, p + 1) = ceiling;
    }
    bench::print_row(row);
  }
  common::write_matrix_csv(
      "bench_out/fig4_pruning_methods.csv",
      {"n", "topn", "kmeans", "hdbscan", "pca_kmeans", "dtree"}, csv, 6);

  std::cout << "\n(values are geomean % of the absolute optimum on the test"
               " set; 100% = the best of all 640 kernels for every shape)\n"
            << "Full sweep written to bench_out/fig4_pruning_methods.csv\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
