// Ablation B: PCA dimensionality fed to the PCA+k-means pruner.
//
// The paper motivates PCA as a fix for k-means' difficulty with
// high-dimensional data but does not report how the projection
// dimensionality affects the pruning quality; this sweep fills that gap.
#include "bench_common.hpp"

#include "core/evaluation.hpp"
#include "core/pruning.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation B: PCA dimensionality for PCA+k-means",
                      "Section III (PCA + k-means pruner)");
  const auto dataset = bench::paper_dataset();
  const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);

  bench::print_row({"pca_dims", "N=6", "N=8", "N=12"});
  for (const int dims : {2, 4, 8, 16, 32, 64}) {
    std::vector<std::string> row = {std::to_string(dims)};
    for (const std::size_t n : {std::size_t{6}, std::size_t{8}, std::size_t{12}}) {
      select::PcaKMeansPruner pruner(dims, bench::kModelSeed);
      const auto configs = pruner.prune(split.train, n);
      row.push_back(bench::pct(select::pruning_ceiling(split.test, configs)));
    }
    bench::print_row(row);
  }
  // Reference: plain k-means on the full 640-dim vectors.
  {
    std::vector<std::string> row = {"full(640)"};
    for (const std::size_t n : {std::size_t{6}, std::size_t{8}, std::size_t{12}}) {
      select::KMeansPruner pruner(bench::kModelSeed);
      const auto configs = pruner.prune(split.train, n);
      row.push_back(bench::pct(select::pruning_ceiling(split.test, configs)));
    }
    bench::print_row(row);
  }
  std::cout << "\n(values are geomean % of optimal on the test set)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
