// Persistent-store warm-start gate — the tentpole acceptance criteria of
// the selection store, end to end (non-zero exit on violation):
//
//   1. a COLD run over the full extracted shape corpus tunes every shape
//      once and flushes the decisions to a store;
//   2. a WARM-STARTED service over the same corpus performs ZERO warm-up
//      sweeps (service misses, duplicate sweeps and tuner trials all zero)
//      and serves configs identical to the cold run;
//   3. a service on a DIFFERENT device warm-started from the same store
//      serves every shape sweep-free as a cross-device transfer prior,
//      then refresh_provisional() replaces every prior with a locally
//      tuned decision;
//   4. an injected torn write during flush leaves the store loadable with
//      only the torn record dropped, and the retried flush persists the
//      rest.
//
// CI runs this in the store-durability job; it is also the local smoke
// test after touching src/store or the serving warm-start path.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "core/online.hpp"
#include "faults/injector.hpp"
#include "perfmodel/cost_model.hpp"
#include "serve/selection_service.hpp"
#include "store/selection_store.hpp"

namespace aks {
namespace {

int failures = 0;

void gate(bool ok, const std::string& what) {
  std::cout << (ok ? "  PASS  " : "  FAIL  ") << what << "\n";
  if (!ok) ++failures;
}

std::vector<std::size_t> candidate_set() {
  std::vector<std::size_t> candidates;
  for (std::size_t c = 0; c < gemm::enumerate_configs().size(); c += 40) {
    candidates.push_back(c);
  }
  return candidates;
}

struct Run {
  std::vector<std::size_t> chosen;
  serve::ServiceStats stats;
  std::size_t trials = 0;
  std::size_t refreshed = 0;
};

Run run_corpus(const std::vector<gemm::GemmShape>& corpus,
               store::SelectionStore& store, const perf::DeviceSpec& device,
               bool refresh) {
  const perf::TimingModel timing(device, 0.0, 7);
  Run run;
  select::OnlineTuner tuner(
      candidate_set(),
      [&](const gemm::KernelConfig& config, const gemm::GemmShape& shape) {
        ++run.trials;
        return timing.best_of(config, shape, 3);
      });
  serve::SelectionService service(tuner);
  service.warm_start(store, device);
  for (const auto& shape : corpus) {
    run.chosen.push_back(gemm::config_index(service.select(shape)));
  }
  if (refresh) run.refreshed = service.refresh_provisional();
  run.stats = service.stats();
  return run;
}

}  // namespace
}  // namespace aks

int main() {
  using namespace aks;
  bench::print_banner("Persistent store warm-start gate",
                      "the deployment story around Section V");
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};

  const auto path = std::filesystem::temp_directory_path() /
                    "aks_bench_store_warm_start.aks";
  std::filesystem::remove(path);
  const auto nano = perf::DeviceSpec::amd_r9_nano();
  const auto igpu = perf::DeviceSpec::integrated_gpu();

  // Unique shapes, first-seen order: the corpus lowers 172 GEMMs but some
  // shapes repeat across networks, and the store keys by shape.
  std::vector<gemm::GemmShape> corpus;
  {
    std::set<gemm::GemmShape> seen;
    for (const auto& lowered : data::extract_all_shapes()) {
      if (seen.insert(lowered.shape).second) corpus.push_back(lowered.shape);
    }
  }
  std::cout << "corpus: " << corpus.size() << " unique shapes, "
            << candidate_set().size() << " candidates, store " << path
            << "\n\ncold run (" << nano.name << "):\n";

  Run cold;
  {
    store::SelectionStore store(path);
    cold = run_corpus(corpus, store, nano, /*refresh=*/false);
    gate(cold.stats.misses == corpus.size(), "every shape tuned once");
    gate(cold.trials > 0, "trial sweeps actually ran");
    gate(store.flush() == corpus.size() + 1,
         "flush persists corpus + device profile");
  }

  std::cout << "\nwarm-started run (" << nano.name << "):\n";
  {
    store::SelectionStore store(path);
    const Run warm = run_corpus(corpus, store, nano, /*refresh=*/false);
    gate(warm.stats.preloaded == corpus.size(),
         "warm start pre-seeded the full corpus");
    gate(warm.stats.misses == 0, "zero service misses");
    gate(warm.stats.duplicate_sweeps == 0, "zero duplicate sweeps");
    gate(warm.trials == 0, "zero tuner trials (tuner pre-seeded too)");
    gate(warm.chosen == cold.chosen, "configs identical to the cold run");
    gate(store.flush() == 0, "nothing new to persist");
  }

  std::cout << "\ncross-device run (" << igpu.name << "):\n";
  {
    store::SelectionStore store(path);
    const Run transfer = run_corpus(corpus, store, igpu, /*refresh=*/true);
    gate(transfer.stats.transfer_priors == corpus.size(),
         "every shape served as a transfer prior");
    gate(transfer.stats.misses == 0, "zero sweeps on the client path");
    gate(transfer.chosen == cold.chosen,
         "priors equal the source device's decisions");
    gate(transfer.refreshed == corpus.size(),
         "every prior re-tuned by refresh_provisional");
    gate(transfer.trials > 0, "local re-tune sweeps ran in the background");
    try {
      store.flush();
      gate(true, "flush persists the transferred device");
    } catch (const common::Error&) {
      gate(false, "flush persists the transferred device");
    }
  }
  {
    const store::SelectionStore store(path);
    gate(store.stats().devices == 2, "both device profiles stored");
    gate(store.stats().selections == 2 * corpus.size(),
         "both devices' corpora stored");
  }

  std::cout << "\ncrash injection (torn write during flush):\n";
  {
    store::SelectionStore store(path);
    store::SelectionRecord extra;
    extra.device_fingerprint = nano.fingerprint();
    extra.shape = {4096, 4096, 4096};
    extra.config_index = 0;
    extra.sweeps = 1;
    store.put(extra);
    bool threw = false;
    {
      faults::ScopedFaultPlan torn{faults::FaultPlan::parse("store-torn=1")};
      try {
        store.flush();
      } catch (const common::Error&) {
        threw = true;
      }
    }
    gate(threw, "torn write surfaced as common::Error");
    gate(store.stats().dirty == 1, "record stays dirty for retry");

    const auto mid = store::read_journal(path);
    gate(mid.stats.corrupt_tail_records == 1,
         "store loadable with only the torn record dropped");
    gate(mid.records.size() == 2 * corpus.size() + 2,
         "every pre-crash record survived");

    gate(store.flush() == 1, "retried flush persists the record");
  }
  {
    const store::SelectionStore store(path);
    gate(store.stats().corrupt_tail_records == 0,
         "retry healed the torn tail");
    gate(store.stats().selections == 2 * corpus.size() + 1,
         "post-crash store complete");
  }

  std::filesystem::remove(path);
  std::cout << "\n" << (failures == 0 ? "ALL GATES PASS" : "GATES FAILED")
            << "\n";
  return failures == 0 ? 0 : 1;
}
