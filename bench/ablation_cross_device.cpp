// Ablation D: cross-device transfer of pruned kernel sets.
//
// The paper motivates the whole approach with libraries that "target a
// range of heterogeneous devices from desktop GPUs to embedded
// accelerators". This experiment quantifies the cost of shipping one
// device's pruned kernel set to another: for every (tuning device,
// deployment device) pair, the decision-tree pruner selects 8 kernels on
// the tuning device's dataset and the ceiling is evaluated on the
// deployment device's dataset.
#include "bench_common.hpp"

#include "core/evaluation.hpp"
#include "core/pruning.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation D: cross-device kernel-set transfer",
                      "Section I motivation (heterogeneous targets)");
  const auto shapes = data::extract_all_shapes();
  const perf::DeviceSpec devices[] = {
      perf::DeviceSpec::amd_r9_nano(),
      perf::DeviceSpec::integrated_gpu(),
      perf::DeviceSpec::embedded_accelerator(),
  };
  const char* labels[] = {"R9Nano", "iGPU", "Embedded"};

  // Build one dataset per device over the same shapes.
  std::vector<data::PerfDataset> datasets;
  for (const auto& device : devices) {
    datasets.push_back(data::run_model_benchmarks(shapes, device, {}));
  }

  std::cout << "\nCeiling (geomean % of that device's optimum) of an 8-kernel"
               " set\nselected on the row device, deployed on the column"
               " device:\n\n";
  bench::print_row({"tuned \\ run on", labels[0], labels[1], labels[2]});
  select::DecisionTreePruner pruner;
  for (std::size_t tune = 0; tune < 3; ++tune) {
    const auto split =
        datasets[tune].split(bench::kTrainFraction, bench::kSplitSeed);
    const auto configs = pruner.prune(split.train, 8);
    std::vector<std::string> row = {labels[tune]};
    for (std::size_t deploy = 0; deploy < 3; ++deploy) {
      const auto deploy_split =
          datasets[deploy].split(bench::kTrainFraction, bench::kSplitSeed);
      row.push_back(bench::pct(
          select::pruning_ceiling(deploy_split.test, configs)));
    }
    bench::print_row(row);
  }
  std::cout << "\n(diagonal = tuned-for-target; off-diagonal loss is the"
               " price of\nshipping one kernel set across devices — the"
               " motivation for\nper-device automated selection)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
