// Ablation C: sensitivity of the headline results to measurement noise.
//
// The simulated timing harness injects lognormal run-to-run jitter (the
// stand-in for real GPU measurement noise, see DESIGN.md). This sweep shows
// how the Figure 2 winner statistics and the Figure 4 pruning curves react
// as that noise grows — i.e. how much of the "long tail" of winning
// configurations is physical versus measurement artefact.
#include "bench_common.hpp"

#include "core/evaluation.hpp"
#include "core/pruning.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Ablation C: measurement-noise sensitivity",
                      "Figures 2 and 4");
  const auto shapes = data::extract_all_shapes();

  bench::print_row({"sigma", "winners", "top_wins", "TopN@6", "DTree@6",
                    "TopN@15", "DTree@15"});
  for (const double sigma : {0.0, 0.01, 0.03, 0.05, 0.10}) {
    data::RunnerOptions options;
    options.noise_sigma = sigma;
    const auto dataset = data::run_model_benchmarks(
        shapes, perf::DeviceSpec::amd_r9_nano(), options);

    const auto counts = dataset.optimal_counts();
    std::size_t winners = 0;
    std::size_t top = 0;
    for (const auto c : counts) {
      winners += c > 0 ? 1u : 0u;
      top = std::max(top, c);
    }

    const auto split = dataset.split(bench::kTrainFraction, bench::kSplitSeed);
    select::TopNPruner topn;
    select::DecisionTreePruner dtree;
    std::vector<std::string> row = {
        common::format_fixed(sigma, 2), std::to_string(winners),
        std::to_string(top)};
    for (const std::size_t n : {std::size_t{6}, std::size_t{15}}) {
      row.push_back(bench::pct(
          select::pruning_ceiling(split.test, topn.prune(split.train, n))));
      row.push_back(bench::pct(
          select::pruning_ceiling(split.test, dtree.prune(split.train, n))));
    }
    // Reorder: TopN@6, DTree@6, TopN@15, DTree@15 are already appended in
    // that order by the loop above.
    bench::print_row(row);
  }
  std::cout << "\n(winners = configs optimal for at least one shape;"
               " noise widens the tail and erodes count-based ranking)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
