// Model-vs-host rank check: does the analytic GPU model order kernels the
// way REAL execution on this machine's CPU does?
//
// The expected answer is "only weakly" — and that is the point. DESIGN.md
// argues the dataset must come from a GPU-mechanism model rather than host
// timings precisely because a CPU's cache hierarchy ranks the 640
// configurations differently from a GPU's occupancy/coalescing trade-offs.
// This binary measures that divergence: Spearman rank correlation between
// host wall-clock times and model predictions over a config sample, next to
// the host-vs-host control (two independent timing runs).
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "perfmodel/cost_model.hpp"

namespace aks {
namespace {

int run() {
  bench::print_banner("Model vs host-CPU kernel ranking",
                      "DESIGN.md substitution rationale");
  const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());

  // A spread of 32 configurations (every 20th of the 640).
  std::vector<gemm::KernelConfig> sample;
  for (std::size_t c = 0; c < 640; c += 20) {
    sample.push_back(gemm::enumerate_configs()[c]);
  }

  const gemm::GemmShape shapes[] = {{96, 96, 96}, {256, 48, 64}};
  bench::print_row({"shape", "host-vs-host", "model-vs-host"}, 16);
  for (const auto& shape : shapes) {
    std::vector<double> host_a;
    std::vector<double> host_b;
    std::vector<double> modelled;
    for (const auto& config : sample) {
      // Best-of-3 to tame scheduler noise on the 1-core builder.
      double ta = 1e300;
      double tb = 1e300;
      for (int i = 0; i < 3; ++i) {
        ta = std::min(ta, data::time_host_run(config, shape));
        tb = std::min(tb, data::time_host_run(config, shape));
      }
      host_a.push_back(ta);
      host_b.push_back(tb);
      modelled.push_back(model.predict_seconds(config, shape));
    }
    bench::print_row(
        {shape.to_string(),
         common::format_fixed(common::spearman_correlation(host_a, host_b), 3),
         common::format_fixed(common::spearman_correlation(modelled, host_a),
                              3)},
        16);
  }
  std::cout << "\n(host-vs-host is the repeatability ceiling; the gap to"
               " model-vs-host\nis the CPU/GPU divergence that rules out host"
               " timings as a stand-in\nfor the paper's GPU dataset — see"
               " DESIGN.md)\n";
  return 0;
}

}  // namespace
}  // namespace aks

int main() { return aks::run(); }
