// Property sweep: the cost model must be well-behaved over the ENTIRE
// 640-point configuration space for a spread of realistic shapes — no
// NaNs, no non-positive times, internally consistent breakdowns, and
// deterministic. This is the surface every pruner/selector consumes.
#include <gtest/gtest.h>

#include <cmath>

#include "gemm/config.hpp"
#include "perfmodel/cost_model.hpp"

namespace aks::perf {
namespace {

class CostModelSweep : public ::testing::TestWithParam<gemm::GemmShape> {};

TEST_P(CostModelSweep, EveryConfigurationIsWellBehaved) {
  const gemm::GemmShape shape = GetParam();
  for (const auto& device :
       {DeviceSpec::amd_r9_nano(), DeviceSpec::embedded_accelerator()}) {
    const CostModel model(device);
    for (const auto& config : gemm::enumerate_configs()) {
      const auto b = model.evaluate(config, shape);
      ASSERT_TRUE(std::isfinite(b.total_s)) << config.name();
      ASSERT_GT(b.total_s, 0.0) << config.name();
      ASSERT_GE(b.total_s,
                std::max(b.compute_s, b.memory_s) + b.launch_s - 1e-15)
          << config.name();
      ASSERT_GT(b.lane_utilization, 0.0) << config.name();
      ASSERT_LE(b.lane_utilization, 1.0) << config.name();
      ASSERT_GE(b.occupancy_waves, 0.9) << config.name();
      ASSERT_LE(b.occupancy_waves,
                static_cast<double>(device.max_waves_per_cu) + 1e-9)
          << config.name();
      ASSERT_GE(b.dram_bytes, shape.min_bytes() * 0.3) << config.name();
      ASSERT_GT(b.flops_fraction, 0.0) << config.name();
      ASSERT_LE(b.flops_fraction, 1.0) << config.name();
    }
  }
}

TEST_P(CostModelSweep, DeterministicAcrossCalls) {
  const gemm::GemmShape shape = GetParam();
  const CostModel model(DeviceSpec::amd_r9_nano());
  // Spot check a diverse subset.
  for (std::size_t c = 0; c < 640; c += 37) {
    const auto& config = gemm::enumerate_configs()[c];
    ASSERT_DOUBLE_EQ(model.predict_seconds(config, shape),
                     model.predict_seconds(config, shape));
  }
}

TEST_P(CostModelSweep, SomeConfigurationSpreadsExist) {
  // The dataset's whole premise: configurations must differ meaningfully.
  const gemm::GemmShape shape = GetParam();
  const CostModel model(DeviceSpec::amd_r9_nano());
  double best = 1e300;
  double worst = 0.0;
  for (const auto& config : gemm::enumerate_configs()) {
    const double t = model.predict_seconds(config, shape);
    best = std::min(best, t);
    worst = std::max(worst, t);
  }
  EXPECT_GT(worst / best, 1.5) << "no performance spread for "
                               << shape.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeShapes, CostModelSweep,
    ::testing::Values(gemm::GemmShape{1, 4096, 1000},      // FC batch-1
                      gemm::GemmShape{16, 25088, 4096},    // FC large
                      gemm::GemmShape{49, 512, 512},       // small conv
                      gemm::GemmShape{784, 1152, 128},     // mid conv
                      gemm::GemmShape{12544, 576, 64},     // large conv
                      gemm::GemmShape{200704, 27, 64},     // stem, tiny K
                      gemm::GemmShape{3136, 256, 256},     // winograd-ish
                      gemm::GemmShape{17, 33, 65}),        // nothing aligned
    [](const auto& param_info) {
      return "s" + std::to_string(param_info.param.m) + "x" +
             std::to_string(param_info.param.k) + "x" +
             std::to_string(param_info.param.n);
    });

}  // namespace
}  // namespace aks::perf
