// Negative test: reads an AKS_GUARDED_BY member without holding its mutex.
// This file MUST FAIL to compile under
// `clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety`
// (-Wthread-safety-analysis: reading variable requires holding mutex). The
// harness control (thread_safety_control.cpp) proves a clean file passes,
// so a pass here means the analysis silently stopped firing.
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    aks::MutexLock lock(mutex_);
    ++value_;
  }

  // BAD: no lock held, no AKS_REQUIRES — the analysis must reject this.
  [[nodiscard]] int value() const { return value_; }

 private:
  mutable aks::Mutex mutex_{"compile_fail.counter"};
  int value_ AKS_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return counter.value();
}
