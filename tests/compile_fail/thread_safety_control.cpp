// Control for the thread-safety compile-fail harness: correct use of every
// annotated primitive. This file MUST compile clean under
// `clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety`; if it does
// not, the harness is broken and the negative tests prove nothing.
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  void push(int v) {
    aks::MutexLock lock(mutex_);
    values_.push_back(v);
    cv_.notify_one();
  }

  int wait_and_pop() {
    aks::MutexLock lock(mutex_);
    while (values_.empty()) {
      cv_.wait(lock);
    }
    const int v = values_.back();
    values_.pop_back();
    return v;
  }

  void append_locked(int v) AKS_REQUIRES(mutex_) { values_.push_back(v); }

  void append(int v) AKS_EXCLUDES(mutex_) {
    aks::MutexLock lock(mutex_);
    append_locked(v);
  }

 private:
  aks::Mutex mutex_{"compile_fail.control"};
  aks::CondVar cv_;
  std::vector<int> values_ AKS_GUARDED_BY(mutex_);
};

class SharedGuarded {
 public:
  [[nodiscard]] int read() const {
    aks::ReaderMutexLock lock(mutex_);
    return value_;
  }

  void write(int v) {
    aks::WriterMutexLock lock(mutex_);
    value_ = v;
  }

 private:
  mutable aks::SharedMutex mutex_{"compile_fail.shared"};
  int value_ AKS_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded guarded;
  guarded.push(1);
  guarded.append(2);
  SharedGuarded shared;
  shared.write(3);
  return guarded.wait_and_pop() + shared.read();
}
