// Negative test: calls an AKS_REQUIRES(mutex) function without holding the
// mutex. This file MUST FAIL to compile under
// `clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety`
// (-Wthread-safety-analysis: calling function requires holding mutex).
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace {

aks::Mutex g_mutex{"compile_fail.state"};
int g_state AKS_GUARDED_BY(g_mutex) = 0;

void mutate_locked() AKS_REQUIRES(g_mutex) { ++g_state; }

}  // namespace

int main() {
  mutate_locked();  // BAD: caller does not hold g_mutex
  return g_state == 1 ? 0 : 1;
}
