// SelectionStore: load/put/flush/compact round-trips, certificate gating,
// merge, cross-device transfer ranking — and the serving-layer warm-start
// contract: a warm-started service serves every stored shape with zero
// warm-up sweeps and identical configs, and transfer priors are published
// immediately then replaced by refresh_provisional().
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/online.hpp"
#include "faults/injector.hpp"
#include "gemm/config.hpp"
#include "perfmodel/device_spec.hpp"
#include "serve/selection_service.hpp"
#include "store/selection_store.hpp"

namespace aks::store {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  const auto path =
      std::filesystem::temp_directory_path() / ("aks_selstore_" + name);
  std::filesystem::remove(path);
  return path;
}

SelectionRecord make_record(std::uint64_t fingerprint, gemm::GemmShape shape,
                            std::uint32_t config_index,
                            Source source = Source::kOnlineTuner) {
  SelectionRecord record;
  record.device_fingerprint = fingerprint;
  record.shape = shape;
  record.config_index = config_index;
  record.warmup_seconds = 0.5;
  record.sweeps = 1;
  record.source = source;
  return record;
}

// Deterministic trial timer: the winner for a shape is a pure function of
// (shape, config), so cold and warm runs must agree exactly.
double fake_time(const gemm::KernelConfig& config,
                 const gemm::GemmShape& shape) {
  const std::size_t index = gemm::config_index(config);
  return 1.0 + 0.001 * static_cast<double>((index * 31 + shape.m * 7 +
                                            shape.k * 3 + shape.n) %
                                           97);
}

std::vector<gemm::GemmShape> test_shapes(std::size_t n) {
  std::vector<gemm::GemmShape> shapes;
  for (std::size_t i = 0; i < n; ++i) {
    shapes.push_back({16 + 16 * i, 32 + 8 * ((i * 3) % 11), 64 + 4 * i});
  }
  return shapes;
}

const std::vector<std::size_t> kCandidates{0, 17, 120, 354, 500, 639};

TEST(SelectionStore, PutLookupFlushReopen) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("roundtrip.aks");
  const auto device = perf::DeviceSpec::amd_r9_nano();
  const gemm::GemmShape shape{128, 256, 512};

  {
    SelectionStore store(path);
    store.put_device(device);
    EXPECT_TRUE(store.put(make_record(device.fingerprint(), shape, 354)));
    EXPECT_FALSE(store.lookup(0xdead, shape).has_value());
    const auto hit = store.lookup(device.fingerprint(), shape);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->config_index, 354u);
    EXPECT_EQ(store.stats().dirty, 2u);
    EXPECT_EQ(store.flush(), 2u);
    EXPECT_EQ(store.stats().dirty, 0u);
    EXPECT_EQ(store.flush(), 0u);  // nothing newly dirty
  }
  {
    const SelectionStore store(path);
    EXPECT_EQ(store.stats().records_loaded, 2u);
    EXPECT_EQ(store.stats().selections, 1u);
    EXPECT_EQ(store.stats().devices, 1u);
    const auto hit = store.lookup(device.fingerprint(), shape);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->config_index, 354u);
    EXPECT_EQ(hit->source, Source::kOnlineTuner);
  }
  std::filesystem::remove(path);
}

TEST(SelectionStore, LastRecordWinsAndCompactFoldsHistory) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("upsert.aks");
  const gemm::GemmShape shape{64, 64, 64};

  {
    SelectionStore store(path);
    EXPECT_TRUE(store.put(make_record(1, shape, 10)));
    store.flush();
    EXPECT_TRUE(store.put(make_record(1, shape, 20)));
    store.flush();
  }
  const auto journal_size = std::filesystem::file_size(path);
  {
    SelectionStore store(path);
    EXPECT_EQ(store.stats().records_loaded, 2u);  // both appends replayed
    EXPECT_EQ(store.stats().selections, 1u);      // newest wins
    EXPECT_EQ(store.lookup(1, shape)->config_index, 20u);
    store.compact();
  }
  EXPECT_LT(std::filesystem::file_size(path), journal_size);
  {
    const SelectionStore store(path);
    EXPECT_EQ(store.stats().records_loaded, 1u);
    EXPECT_EQ(store.lookup(1, shape)->config_index, 20u);
  }
  std::filesystem::remove(path);
}

TEST(SelectionStore, RejectsOutOfRangeConfigIndex) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("range.aks");
  SelectionStore store(path);
  EXPECT_FALSE(store.put(make_record(1, {8, 8, 8}, 60000)));
  EXPECT_EQ(store.stats().rejected_malformed, 1u);
  EXPECT_EQ(store.stats().selections, 0u);
  std::filesystem::remove(path);
}

TEST(SelectionStore, CertificateMaskRejectsUncertifiedAtPutAndLoad) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("certmask.aks");
  const gemm::GemmShape shape{32, 32, 32};

  // An unguarded writer persists configs 10 and 20.
  {
    SelectionStore store(path);
    EXPECT_TRUE(store.put(make_record(1, shape, 10)));
    EXPECT_TRUE(store.put(make_record(1, {48, 48, 48}, 20)));
    store.flush();
  }

  StoreOptions gate;
  gate.certified_mask.assign(gemm::enumerate_configs().size(), false);
  gate.certified_mask[10] = true;  // 20 stays uncertified

  // Load-time gate: the uncertified record is rejected, counted, never
  // served.
  {
    const SelectionStore store(path, gate);
    EXPECT_EQ(store.stats().rejected_uncertified, 1u);
    EXPECT_EQ(store.stats().selections, 1u);
    EXPECT_TRUE(store.lookup(1, shape).has_value());
    EXPECT_FALSE(store.lookup(1, {48, 48, 48}).has_value());
  }
  // Put-time gate.
  {
    SelectionStore store(path, gate);
    EXPECT_FALSE(store.put(make_record(1, {96, 96, 96}, 20)));
    EXPECT_TRUE(store.put(make_record(1, {96, 96, 96}, 10)));
  }
  // Strict mode escalates instead of dropping.
  gate.strict = true;
  EXPECT_THROW(SelectionStore(path, gate), common::Error);
  std::filesystem::remove(path);
}

TEST(SelectionStore, CertificateDigestMismatchRejectsStaleRecords) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("certdigest.aks");
  const gemm::GemmShape shape{32, 32, 32};

  StoreOptions old_regime;
  old_regime.cert_digests.assign(gemm::enumerate_configs().size(), 0);
  old_regime.cert_digests[10] = 0x1111;
  {
    SelectionStore store(path, old_regime);
    // put() stamps the expected digest onto the record.
    EXPECT_TRUE(store.put(make_record(1, shape, 10)));
    EXPECT_EQ(store.lookup(1, shape)->cert_digest, 0x1111u);
    store.flush();
  }

  // Same regime: accepted.
  {
    const SelectionStore store(path, old_regime);
    EXPECT_EQ(store.stats().rejected_digest, 0u);
    EXPECT_EQ(store.stats().selections, 1u);
  }
  // Certificates regenerated differently: the stored record is stale.
  StoreOptions new_regime = old_regime;
  new_regime.cert_digests[10] = 0x2222;
  {
    const SelectionStore store(path, new_regime);
    EXPECT_EQ(store.stats().rejected_digest, 1u);
    EXPECT_EQ(store.stats().selections, 0u);
  }
  std::filesystem::remove(path);
}

TEST(SelectionStore, MergeIsLeftBiasedUnion) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto dst_path = temp_path("merge_dst.aks");
  const auto src_path = temp_path("merge_src.aks");
  const gemm::GemmShape common_shape{8, 8, 8};

  SelectionStore dst(dst_path);
  SelectionStore src(src_path);
  EXPECT_TRUE(dst.put(make_record(1, common_shape, 10)));
  EXPECT_TRUE(src.put(make_record(1, common_shape, 20)));  // conflict
  EXPECT_TRUE(src.put(make_record(2, {9, 9, 9}, 30)));     // new
  src.put_device(perf::DeviceSpec::embedded_accelerator());

  EXPECT_EQ(dst.merge_from(src), 2u);  // profile + one selection
  EXPECT_EQ(dst.lookup(1, common_shape)->config_index, 10u);  // ours wins
  EXPECT_EQ(dst.lookup(2, {9, 9, 9})->config_index, 30u);
  EXPECT_EQ(dst.stats().devices, 1u);
  std::filesystem::remove(dst_path);
  std::filesystem::remove(src_path);
}

TEST(SelectionStore, TransferRanksStoredDevicesBySimilarity) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("transfer_rank.aks");
  const auto nano = perf::DeviceSpec::amd_r9_nano();
  const auto igpu = perf::DeviceSpec::integrated_gpu();
  const auto embedded = perf::DeviceSpec::embedded_accelerator();
  const gemm::GemmShape shape{100, 100, 100};

  SelectionStore store(path);
  store.put_device(nano);
  store.put_device(embedded);
  EXPECT_TRUE(store.put(make_record(nano.fingerprint(), shape, 10)));
  EXPECT_TRUE(store.put(make_record(embedded.fingerprint(), shape, 20)));

  const auto nano_profile = DeviceProfileRecord::from_spec(nano);
  const auto embedded_profile = DeviceProfileRecord::from_spec(embedded);
  const auto igpu_features = igpu.similarity_features();
  const double to_nano =
      feature_similarity(igpu_features, nano_profile.features);
  const double to_embedded =
      feature_similarity(igpu_features, embedded_profile.features);
  ASSERT_NE(to_nano, to_embedded);  // the corpus devices are distinct

  const auto prior = store.lookup_transfer(igpu, shape);
  ASSERT_TRUE(prior.has_value());
  const bool nano_nearer = to_nano > to_embedded;
  EXPECT_EQ(prior->record.config_index, nano_nearer ? 10u : 20u);
  EXPECT_EQ(prior->source_device, nano_nearer ? nano.name : embedded.name);
  EXPECT_DOUBLE_EQ(prior->similarity, std::max(to_nano, to_embedded));

  // Falls through to the next-nearest device when the nearest lacks the
  // shape, and misses cleanly when nobody has it.
  const gemm::GemmShape only_far{7, 7, 7};
  EXPECT_TRUE(store.put(make_record(
      nano_nearer ? embedded.fingerprint() : nano.fingerprint(), only_far,
      30)));
  EXPECT_EQ(store.lookup_transfer(igpu, only_far)->record.config_index, 30u);
  EXPECT_FALSE(store.lookup_transfer(igpu, {5, 5, 5}).has_value());
  // Own-fingerprint records never transfer to themselves.
  EXPECT_TRUE(store.put(make_record(igpu.fingerprint(), {6, 6, 6}, 40)));
  EXPECT_FALSE(store.lookup_transfer(igpu, {6, 6, 6}).has_value());

  const auto stats = store.stats();
  EXPECT_EQ(stats.transfer_lookups, 4u);
  EXPECT_EQ(stats.transfer_hits, 2u);
  std::filesystem::remove(path);
}

// The tentpole gate in miniature: a warm-started service over a shape
// corpus performs zero warm-up sweeps and serves configs identical to the
// cold run.
TEST(StoreWarmStart, WarmRunServesIdenticalConfigsWithZeroSweeps) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("warm.aks");
  const auto device = perf::DeviceSpec::amd_r9_nano();
  const auto shapes = test_shapes(24);

  std::vector<std::size_t> cold_configs;
  {
    SelectionStore store(path);
    select::OnlineTuner tuner(kCandidates, fake_time);
    serve::SelectionService service(tuner);
    EXPECT_EQ(service.warm_start(store, device), 0u);  // store starts empty
    for (const auto& shape : shapes) {
      cold_configs.push_back(gemm::config_index(service.select(shape)));
    }
    EXPECT_EQ(service.stats().misses, shapes.size());
    // Write-behind: every decision is dirty until the explicit flush.
    EXPECT_EQ(store.stats().dirty, shapes.size() + 1);  // + device profile
    EXPECT_EQ(store.flush(), shapes.size() + 1);
  }

  {
    SelectionStore store(path);
    std::size_t timer_calls = 0;
    select::OnlineTuner tuner(
        kCandidates, [&timer_calls](const gemm::KernelConfig& config,
                                    const gemm::GemmShape& shape) {
          ++timer_calls;
          return fake_time(config, shape);
        });
    serve::SelectionService service(tuner);
    EXPECT_EQ(service.warm_start(store, device), shapes.size());

    for (std::size_t i = 0; i < shapes.size(); ++i) {
      EXPECT_EQ(gemm::config_index(service.select(shapes[i])),
                cold_configs[i]);
    }
    const auto stats = service.stats();
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.duplicate_sweeps, 0u);
    EXPECT_EQ(stats.preloaded, shapes.size());
    EXPECT_EQ(stats.hits, shapes.size());
    EXPECT_EQ(timer_calls, 0u);           // no trial ran at all
    EXPECT_EQ(tuner.cache_misses(), 0u);  // tuner pre-seeded too
    EXPECT_EQ(store.flush(), 0u);         // nothing new to persist
  }
  std::filesystem::remove(path);
}

TEST(StoreWarmStart, NewShapesAreWrittenBehindAndPersistOnFlush) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("writebehind.aks");
  const auto device = perf::DeviceSpec::amd_r9_nano();
  const gemm::GemmShape known{16, 32, 64}, fresh{512, 512, 512};

  {
    SelectionStore store(path);
    select::OnlineTuner tuner(kCandidates, fake_time);
    serve::SelectionService service(tuner);
    service.warm_start(store, device);
    (void)service.select(known);
    store.flush();
  }
  std::size_t fresh_config = 0;
  {
    SelectionStore store(path);
    select::OnlineTuner tuner(kCandidates, fake_time);
    serve::SelectionService service(tuner);
    EXPECT_EQ(service.warm_start(store, device), 1u);
    fresh_config = gemm::config_index(service.select(fresh));
    const auto record = store.lookup(device.fingerprint(), fresh);
    ASSERT_TRUE(record.has_value());  // in memory before any flush
    EXPECT_EQ(record->config_index, fresh_config);
    EXPECT_EQ(record->source, Source::kOnlineTuner);
    EXPECT_GT(record->warmup_seconds, 0.0);
    EXPECT_EQ(store.flush(), 1u);
  }
  {
    const SelectionStore store(path);
    EXPECT_EQ(store.stats().selections, 2u);
    EXPECT_EQ(store.lookup(device.fingerprint(), fresh)->config_index,
              fresh_config);
  }
  std::filesystem::remove(path);
}

TEST(StoreTransfer, PriorIsServedImmediatelyThenRefreshedLocally) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("transfer_serve.aks");
  const auto nano = perf::DeviceSpec::amd_r9_nano();
  const auto igpu = perf::DeviceSpec::integrated_gpu();
  const gemm::GemmShape shape{200, 300, 400};

  // Device A tunes and persists.
  std::size_t nano_config = 0;
  {
    SelectionStore store(path);
    select::OnlineTuner tuner(kCandidates, fake_time);
    serve::SelectionService service(tuner);
    service.warm_start(store, nano);
    nano_config = gemm::config_index(service.select(shape));
    store.flush();
  }

  // Device B warm-starts from the same store: no exact entries, but the
  // shape is served sweep-free from A's decision, marked provisional.
  SelectionStore store(path);
  std::size_t timer_calls = 0;
  select::OnlineTuner tuner(
      kCandidates, [&timer_calls](const gemm::KernelConfig& config,
                                  const gemm::GemmShape& s) {
        ++timer_calls;
        return fake_time(config, s);
      });
  serve::SelectionService service(tuner);
  EXPECT_EQ(service.warm_start(store, igpu), 0u);

  EXPECT_EQ(gemm::config_index(service.select(shape)), nano_config);
  EXPECT_EQ(timer_calls, 0u);
  {
    const auto stats = service.stats();
    EXPECT_EQ(stats.transfer_priors, 1u);
    EXPECT_EQ(stats.misses, 0u);
  }
  ASSERT_EQ(service.provisional_shapes(),
            std::vector<gemm::GemmShape>{shape});
  // The adoption is persisted under B's fingerprint, tagged as transfer.
  {
    const auto adopted = store.lookup(igpu.fingerprint(), shape);
    ASSERT_TRUE(adopted.has_value());
    EXPECT_EQ(adopted->source, Source::kTransfer);
  }

  // Background re-tune: the prior is swapped for a locally measured
  // decision; serving continues from the cache.
  EXPECT_EQ(service.refresh_provisional(), 1u);
  EXPECT_GT(timer_calls, 0u);
  EXPECT_TRUE(service.provisional_shapes().empty());
  EXPECT_EQ(service.stats().provisional_refreshes, 1u);
  const std::size_t local_config = gemm::config_index(service.select(shape));
  {
    const auto retuned = store.lookup(igpu.fingerprint(), shape);
    ASSERT_TRUE(retuned.has_value());
    EXPECT_EQ(retuned->source, Source::kOnlineTuner);
    EXPECT_EQ(retuned->config_index, local_config);
  }
  EXPECT_GE(store.flush(), 2u);  // B's profile + the re-tuned record

  // A later warm start on B pre-seeds the re-tuned record as settled.
  {
    SelectionStore reopened(path);
    select::OnlineTuner tuner2(kCandidates, fake_time);
    serve::SelectionService service2(tuner2);
    EXPECT_EQ(service2.warm_start(reopened, igpu), 1u);
    EXPECT_TRUE(service2.provisional_shapes().empty());
    EXPECT_EQ(gemm::config_index(service2.select(shape)), local_config);
    EXPECT_EQ(service2.stats().misses, 0u);
  }
  std::filesystem::remove(path);
}

TEST(StoreTransfer, StoredTransferRecordsWarmStartAsProvisional) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto path = temp_path("transfer_persist.aks");
  const auto igpu = perf::DeviceSpec::integrated_gpu();
  const gemm::GemmShape shape{40, 40, 40};

  {
    SelectionStore store(path);
    EXPECT_TRUE(store.put(
        make_record(igpu.fingerprint(), shape, 17, Source::kTransfer)));
    store.flush();
  }
  SelectionStore store(path);
  select::OnlineTuner tuner(kCandidates, fake_time);
  serve::SelectionService service(tuner);
  EXPECT_EQ(service.warm_start(store, igpu), 1u);
  // Served sweep-free, but still flagged for a local re-tune.
  EXPECT_EQ(gemm::config_index(service.select(shape)), 17u);
  EXPECT_EQ(service.stats().misses, 0u);
  EXPECT_EQ(service.provisional_shapes(),
            std::vector<gemm::GemmShape>{shape});
  EXPECT_EQ(service.refresh_provisional(), 1u);
  EXPECT_EQ(store.lookup(igpu.fingerprint(), shape)->source,
            Source::kOnlineTuner);
  std::filesystem::remove(path);
}

TEST(StoreWarmStart, FlushFailureKeepsRecordsDirtyForRetry) {
  const auto path = temp_path("flushfail.aks");
  SelectionStore store(path);
  EXPECT_TRUE(store.put(make_record(1, {8, 8, 8}, 10)));
  EXPECT_TRUE(store.put(make_record(1, {9, 9, 9}, 20)));
  {
    faults::ScopedFaultPlan plan{faults::FaultPlan::parse("store-write=1")};
    EXPECT_THROW(store.flush(), common::Error);
    EXPECT_EQ(store.stats().write_failures, 1u);
    EXPECT_EQ(store.stats().dirty, 2u);  // nothing lost, nothing lied about
  }
  {
    faults::ScopedFaultPlan none{faults::FaultPlan::none()};
    EXPECT_EQ(store.flush(), 2u);  // retry drains the dirty set
  }
  const SelectionStore reopened(path);
  EXPECT_EQ(reopened.stats().selections, 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace aks::store
