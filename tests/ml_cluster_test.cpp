#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/hdbscan.hpp"
#include "ml/kmeans.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {
namespace {

/// Three well-separated Gaussian blobs in 2-D.
Matrix three_blobs(std::size_t per_blob, std::uint64_t seed,
                   double spread = 0.3) {
  common::Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix x(3 * per_blob, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      x(b * per_blob + i, 0) = centers[b][0] + rng.normal(0, spread);
      x(b * per_blob + i, 1) = centers[b][1] + rng.normal(0, spread);
    }
  }
  return x;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  const Matrix x = three_blobs(20, 1);
  KMeansOptions options;
  options.n_clusters = 3;
  options.seed = 7;
  KMeans km(options);
  km.fit(x);
  // Each blob must be pure: all 20 points share a label.
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t label = km.labels()[b * 20];
    for (std::size_t i = 1; i < 20; ++i) {
      EXPECT_EQ(km.labels()[b * 20 + i], label) << "blob " << b;
    }
  }
  // And the three blobs get three distinct labels.
  std::set<std::size_t> labels(km.labels().begin(), km.labels().end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeans, CentroidsNearBlobCenters) {
  const Matrix x = three_blobs(30, 2);
  KMeansOptions options;
  options.n_clusters = 3;
  KMeans km(options);
  km.fit(x);
  // Every true center must have a centroid within 0.5.
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (const auto& center : centers) {
    double best = 1e9;
    for (std::size_t c = 0; c < 3; ++c) {
      best = std::min(best, distance(km.centroids().row(c),
                                     std::span<const double>(center, 2)));
    }
    EXPECT_LT(best, 0.5);
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  const Matrix x = three_blobs(20, 3, 1.0);
  double prev = 1e300;
  for (int k = 1; k <= 6; ++k) {
    KMeansOptions options;
    options.n_clusters = k;
    options.seed = 5;
    KMeans km(options);
    km.fit(x);
    EXPECT_LE(km.inertia(), prev + 1e-9) << "k=" << k;
    prev = km.inertia();
  }
}

TEST(KMeans, DeterministicForSeed) {
  const Matrix x = three_blobs(15, 4, 1.5);
  KMeansOptions options;
  options.n_clusters = 4;
  options.seed = 99;
  KMeans a(options);
  a.fit(x);
  KMeans b(options);
  b.fit(x);
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_DOUBLE_EQ(a.inertia(), b.inertia());
}

TEST(KMeans, PredictAssignsNearestCentroid) {
  const Matrix x = three_blobs(20, 5);
  KMeansOptions options;
  options.n_clusters = 3;
  KMeans km(options);
  km.fit(x);
  const Matrix probes{{0.1, 0.1}, {9.8, 0.1}, {0.1, 9.9}};
  const auto labels = km.predict(probes);
  std::set<std::size_t> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(KMeans, MedoidRowsBelongToTheirClusters) {
  const Matrix x = three_blobs(20, 6);
  KMeansOptions options;
  options.n_clusters = 3;
  KMeans km(options);
  km.fit(x);
  const auto medoids = km.medoid_rows(x);
  ASSERT_EQ(medoids.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(km.labels()[medoids[c]], c);
  }
}

TEST(KMeans, MoreClustersThanPointsThrows) {
  KMeansOptions options;
  options.n_clusters = 10;
  KMeans km(options);
  EXPECT_THROW(km.fit(Matrix(3, 2)), common::Error);
}

TEST(KMeans, IdenticalPointsAreHandled) {
  Matrix x(10, 2, 1.0);  // all points identical
  KMeansOptions options;
  options.n_clusters = 2;
  KMeans km(options);
  km.fit(x);
  EXPECT_NEAR(km.inertia(), 0.0, 1e-18);
}

TEST(KMeans, RejectsBadOptions) {
  KMeansOptions options;
  options.n_clusters = 0;
  EXPECT_THROW(KMeans{options}, common::Error);
}

TEST(Hdbscan, FindsBlobsAndRejectsNoise) {
  Matrix blobs = three_blobs(20, 7);
  // Add a few far-away isolated points that should become noise.
  common::Rng rng(13);
  Matrix x(blobs.rows() + 3, 2);
  for (std::size_t r = 0; r < blobs.rows(); ++r) {
    x(r, 0) = blobs(r, 0);
    x(r, 1) = blobs(r, 1);
  }
  x(60, 0) = 50;  x(60, 1) = 50;
  x(61, 0) = -40; x(61, 1) = 55;
  x(62, 0) = 70;  x(62, 1) = -45;

  HdbscanOptions options;
  options.min_cluster_size = 5;
  Hdbscan h(options);
  h.fit(x);
  EXPECT_EQ(h.num_clusters(), 3u);
  // Isolated points are labelled noise.
  EXPECT_EQ(h.labels()[60], -1);
  EXPECT_EQ(h.labels()[61], -1);
  EXPECT_EQ(h.labels()[62], -1);
  // Blobs are pure.
  for (std::size_t b = 0; b < 3; ++b) {
    const int label = h.labels()[b * 20];
    EXPECT_GE(label, 0);
    for (std::size_t i = 1; i < 20; ++i) {
      EXPECT_EQ(h.labels()[b * 20 + i], label);
    }
  }
}

TEST(Hdbscan, StabilitiesMatchClusterCount) {
  const Matrix x = three_blobs(15, 21);
  Hdbscan h(HdbscanOptions{4, 0, false});
  h.fit(x);
  EXPECT_EQ(h.cluster_stabilities().size(), h.num_clusters());
  for (const double s : h.cluster_stabilities()) EXPECT_GT(s, 0.0);
}

TEST(Hdbscan, ProbabilitiesInUnitIntervalAndZeroForNoise) {
  Matrix x = three_blobs(15, 22);
  Hdbscan h(HdbscanOptions{5, 0, false});
  h.fit(x);
  ASSERT_EQ(h.probabilities().size(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_GE(h.probabilities()[i], 0.0);
    EXPECT_LE(h.probabilities()[i], 1.0);
    if (h.labels()[i] < 0) EXPECT_DOUBLE_EQ(h.probabilities()[i], 0.0);
  }
}

TEST(Hdbscan, UniformDataYieldsFewOrNoClusters) {
  common::Rng rng(5);
  Matrix x(60, 2);
  for (auto& v : x.data()) v = rng.uniform(0, 1);
  Hdbscan h(HdbscanOptions{15, 0, false});
  h.fit(x);
  // Uniform data has no density structure at this cluster size; at most a
  // couple of weak clusters should appear.
  EXPECT_LE(h.num_clusters(), 2u);
}

TEST(Hdbscan, AllowSingleClusterRecoversOneBlob) {
  common::Rng rng(6);
  Matrix x(40, 2);
  for (auto& v : x.data()) v = rng.normal(0, 0.2);
  Hdbscan strict(HdbscanOptions{5, 0, false});
  strict.fit(x);
  Hdbscan relaxed(HdbscanOptions{5, 0, true});
  relaxed.fit(x);
  // With one blob only the root is a cluster; allow_single_cluster exposes
  // it while the default hides it.
  EXPECT_GE(relaxed.num_clusters(), strict.num_clusters());
}

TEST(Hdbscan, MedoidsAreClusterMembers) {
  const Matrix x = three_blobs(20, 30);
  Hdbscan h(HdbscanOptions{5, 0, false});
  h.fit(x);
  const auto medoids = h.medoid_rows(x);
  ASSERT_EQ(medoids.size(), h.num_clusters());
  for (std::size_t c = 0; c < medoids.size(); ++c) {
    EXPECT_EQ(h.labels()[medoids[c]], static_cast<int>(c));
  }
}

TEST(Hdbscan, DeterministicAcrossRuns) {
  const Matrix x = three_blobs(12, 41, 0.8);
  Hdbscan a(HdbscanOptions{4, 0, false});
  a.fit(x);
  Hdbscan b(HdbscanOptions{4, 0, false});
  b.fit(x);
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(Hdbscan, MinSamplesOverrideChangesDensityEstimate) {
  const Matrix x = three_blobs(10, 50, 1.2);
  Hdbscan loose(HdbscanOptions{5, 2, false});
  loose.fit(x);
  Hdbscan tight(HdbscanOptions{5, 9, false});
  tight.fit(x);
  // Both must run; larger min_samples smooths density and cannot invent
  // more clusters than the loose setting finds.
  EXPECT_LE(tight.num_clusters(), loose.num_clusters() + 1);
}

TEST(Hdbscan, RejectsBadOptions) {
  EXPECT_THROW(Hdbscan(HdbscanOptions{1, 0, false}), common::Error);
  Hdbscan h(HdbscanOptions{3, 10, false});
  EXPECT_THROW(h.fit(Matrix(5, 2)), common::Error);  // min_samples >= n
  Hdbscan ok(HdbscanOptions{3, 0, false});
  EXPECT_THROW(ok.fit(Matrix(1, 2)), common::Error);
}

}  // namespace
}  // namespace aks::ml
