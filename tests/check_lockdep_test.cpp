// Lockdep validator correctness: a planted lock-order inversion is
// reported as a named cycle, blocking on a condition variable while
// holding another tracked mutex is flagged, the serving-stack drill
// produces a deterministic, cycle-free graph across multi-threaded runs
// (edges are a function of code paths, not schedules), and the DOT/JSON
// exports are well-formed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "check/lock_drill.hpp"
#include "check/lockdep.hpp"
#include "common/sync.hpp"

namespace aks::check::lockdep {
namespace {

// ---------------------------------------------------------------------------
// Minimal validating JSON reader — enough to prove write_json() emits
// strict JSON (object/array/string/number/bool/null, no trailing commas).
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::vector<std::string> edge_names(const Report& report) {
  std::vector<std::string> names;
  names.reserve(report.edges.size());
  for (const auto& edge : report.edges) {
    names.push_back(edge.from_name + " -> " + edge.to_name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

TEST(Lockdep, PlantedInversionReportsNamedCycle) {
  reset();
  // The inversion is planted through the instrumentation hooks — exactly
  // what the aks::Mutex wrappers call — rather than by nesting real
  // mutexes, so TSan's own lock-order detector doesn't (correctly) abort
  // the deliberate inversion when this suite runs under the tsan job.
  const std::uint32_t alpha = register_class("test.lockdep.alpha");
  const std::uint32_t beta = register_class("test.lockdep.beta");
  on_acquire(alpha);
  on_acquire(beta);  // alpha -> beta
  on_release(beta);
  on_release(alpha);
  on_acquire(beta);
  on_acquire(alpha);  // beta -> alpha: inversion
  on_release(alpha);
  on_release(beta);
  const Report report = capture();
  ASSERT_EQ(report.cycles.size(), 1u);
  const auto& names = report.cycles[0].names;
  EXPECT_NE(std::find(names.begin(), names.end(), "test.lockdep.alpha"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test.lockdep.beta"),
            names.end());
  EXPECT_FALSE(report.clean());
  reset();
}

TEST(Lockdep, SingleOrderStaysClean) {
  reset();
  aks::Mutex alpha{"test.lockdep.alpha"};
  aks::Mutex beta{"test.lockdep.beta"};
  for (int i = 0; i < 3; ++i) {
    aks::MutexLock a(alpha);
    aks::MutexLock b(beta);
  }
  const Report report = capture();
  EXPECT_TRUE(report.clean()) << "consistent ordering must not report";
  reset();
}

TEST(Lockdep, HeldWhileBlockingDetected) {
  reset();
  aks::Mutex alpha{"test.lockdep.alpha"};
  aks::Mutex beta{"test.lockdep.beta"};
  aks::CondVar cv;
  {
    aks::MutexLock outer(alpha);
    aks::MutexLock inner(beta);
    (void)cv.wait_for(inner, std::chrono::milliseconds(1));
  }
  const Report report = capture();
  ASSERT_EQ(report.held_while_blocking.size(), 1u);
  const auto& violation = report.held_while_blocking[0];
  EXPECT_EQ(violation.blocked_on, "test.lockdep.beta");
  ASSERT_EQ(violation.held.size(), 1u);
  EXPECT_EQ(violation.held[0], "test.lockdep.alpha");
  EXPECT_FALSE(report.clean());
  reset();
}

TEST(Lockdep, WaitWithOnlyTheWaitMutexHeldIsClean) {
  reset();
  aks::Mutex alpha{"test.lockdep.alpha"};
  aks::CondVar cv;
  {
    aks::MutexLock lock(alpha);
    (void)cv.wait_for(lock, std::chrono::milliseconds(1));
  }
  const Report report = capture();
  EXPECT_TRUE(report.held_while_blocking.empty());
  reset();
}

// The serving-stack drill: 8 threads mixing select / select_batch /
// select_async over a persistent store with flush and compaction. The
// graph must be acyclic with no held-while-blocking, and identical across
// runs — lock nesting is program structure, so the same code paths must
// yield the same edges regardless of thread interleaving.
TEST(Lockdep, DrillGraphCleanAndDeterministicAcrossRuns) {
  LockDrillOptions options;
  options.threads = 8;
  options.requests_per_thread = 48;
  options.trace = false;  // thread-ring attach order is schedule-dependent
  const Report first = run_lock_drill(options);
  EXPECT_TRUE(first.clean())
      << first.cycles.size() << " cycle(s), "
      << first.held_while_blocking.size() << " blocking violation(s)";
  EXPECT_FALSE(first.edges.empty());

  const Report second = run_lock_drill(options);
  EXPECT_TRUE(second.clean());
  EXPECT_EQ(edge_names(first), edge_names(second));
  reset();
}

TEST(Lockdep, DrillWithTracingStaysClean) {
  LockDrillOptions options;
  options.threads = 4;
  options.requests_per_thread = 32;
  options.trace = true;
  const Report report = run_lock_drill(options);
  EXPECT_TRUE(report.clean());
  // The trace layer participates: session lock ordered before the impl
  // lock somewhere in the graph.
  const auto names = edge_names(report);
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "trace.session -> trace.impl"),
            names.end());
  reset();
}

TEST(Lockdep, JsonExportParsesAndNamesSurvive) {
  reset();
  // Hook-driven inversion for the same reason as in
  // PlantedInversionReportsNamedCycle: keep TSan's deadlock detector out
  // of the deliberately cyclic graph.
  const std::uint32_t alpha = register_class("test.lockdep.alpha");
  const std::uint32_t beta = register_class("test.lockdep.beta");
  on_acquire(alpha);
  on_acquire(beta);
  on_release(beta);
  on_release(alpha);
  on_acquire(beta);
  on_acquire(alpha);
  on_release(alpha);
  on_release(beta);
  const Report report = capture();
  std::ostringstream json;
  write_json(report, json);
  const std::string text = json.str();
  JsonReader reader(text);
  EXPECT_TRUE(reader.parse()) << text;
  EXPECT_NE(text.find("\"classes\""), std::string::npos);
  EXPECT_NE(text.find("\"edges\""), std::string::npos);
  EXPECT_NE(text.find("\"cycles\""), std::string::npos);
  EXPECT_NE(text.find("\"held_while_blocking\""), std::string::npos);
  EXPECT_NE(text.find("test.lockdep.alpha"), std::string::npos);
  reset();
}

TEST(Lockdep, DotExportListsNodesAndEdges) {
  reset();
  aks::Mutex alpha{"test.lockdep.alpha"};
  aks::Mutex beta{"test.lockdep.beta"};
  {
    aks::MutexLock a(alpha);
    aks::MutexLock b(beta);
  }
  const Report report = capture();
  std::ostringstream dot;
  write_dot(report, dot);
  const std::string text = dot.str();
  EXPECT_EQ(text.rfind("digraph lockdep {", 0), 0u);
  EXPECT_NE(text.find("\"test.lockdep.alpha\" -> \"test.lockdep.beta\""),
            std::string::npos);
  EXPECT_EQ(text[text.size() - 2], '}');
  reset();
}

TEST(Lockdep, ResetClearsEdgesButKeepsRegistrations) {
  reset();
  aks::Mutex alpha{"test.lockdep.alpha"};
  aks::Mutex beta{"test.lockdep.beta"};
  {
    aks::MutexLock a(alpha);
    aks::MutexLock b(beta);
  }
  reset();
  const Report report = capture();
  EXPECT_TRUE(report.edges.empty());
  // The class ids survive so live mutexes keep reporting under their name.
  {
    aks::MutexLock a(alpha);
    aks::MutexLock b(beta);
  }
  const Report after = capture();
  ASSERT_EQ(after.edges.size(), 1u);
  EXPECT_EQ(after.edges[0].from_name, "test.lockdep.alpha");
  EXPECT_EQ(after.edges[0].to_name, "test.lockdep.beta");
  reset();
}

}  // namespace
}  // namespace aks::check::lockdep
