#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace aks::common {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, SizedConstructionInitialises) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 5.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(Matrix, ElementWriteThroughParens) {
  Matrix m(2, 2);
  m(1, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), Error);
  EXPECT_THROW((void)m.at(0, 2), Error);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(Matrix, RowOutOfRangeThrows) {
  Matrix m(2, 3);
  EXPECT_THROW((void)m.row(2), Error);
}

TEST(Matrix, ColExtraction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const auto col = m.col(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[1], 4.0);
  EXPECT_THROW((void)m.col(2), Error);
}

TEST(Matrix, FillOverwritesAll) {
  Matrix m(3, 3, 1.0);
  m.fill(0.0);
  for (const double v : m.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Matrix, ResizeDiscardsContents) {
  Matrix m(2, 2, 5.0);
  m.resize(3, 1, 2.0);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_DOUBLE_EQ(m(2, 0), 2.0);
}

TEST(Matrix, AppendRowGrowsMatrix) {
  Matrix m;
  const double row1[] = {1.0, 2.0};
  const double row2[] = {3.0, 4.0};
  m.append_row(row1);
  m.append_row(row2);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, AppendRowMismatchThrows) {
  Matrix m(1, 3);
  const double bad[] = {1.0, 2.0};
  EXPECT_THROW(m.append_row(bad), Error);
}

TEST(Matrix, SelectRowsReorders) {
  Matrix m{{1.0}, {2.0}, {3.0}};
  const std::size_t idx[] = {2, 0, 2};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(s(2, 0), 3.0);
}

TEST(Matrix, SelectRowsOutOfRangeThrows) {
  Matrix m(2, 1);
  const std::size_t idx[] = {5};
  EXPECT_THROW((void)m.select_rows(idx), Error);
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      EXPECT_DOUBLE_EQ(t(c, r), m(r, c));
}

TEST(Matrix, EqualityComparesShapeAndData) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0, 2.0}};
  Matrix c{{1.0}, {2.0}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(FMatrix, FloatSpecialisationWorks) {
  FMatrix m(2, 2, 0.5f);
  m(0, 1) = 2.0f;
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 0.5f);
}

}  // namespace
}  // namespace aks::common
