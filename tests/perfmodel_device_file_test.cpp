#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "perfmodel/device_spec.hpp"

namespace aks::perf {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("aks_device_" + name);
}

TEST(DeviceFile, SaveLoadRoundTripsEveryField) {
  DeviceSpec original = DeviceSpec::embedded_accelerator();
  original.name = "Custom accelerator";
  original.llc_bytes = 123456;
  original.clock_ghz = 1.375;
  const auto path = temp_path("roundtrip.txt");
  original.save(path);
  const DeviceSpec loaded = DeviceSpec::from_file(path);
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.num_cus, original.num_cus);
  EXPECT_EQ(loaded.simd_width, original.simd_width);
  EXPECT_NEAR(loaded.clock_ghz, original.clock_ghz, 1e-6);
  EXPECT_NEAR(loaded.dram_bw_gbps, original.dram_bw_gbps, 1e-6);
  EXPECT_EQ(loaded.registers_per_lane, original.registers_per_lane);
  EXPECT_EQ(loaded.max_waves_per_cu, original.max_waves_per_cu);
  EXPECT_EQ(loaded.max_groups_per_cu, original.max_groups_per_cu);
  EXPECT_EQ(loaded.llc_bytes, original.llc_bytes);
  EXPECT_EQ(loaded.cacheline_bytes, original.cacheline_bytes);
  EXPECT_NEAR(loaded.launch_overhead_s, original.launch_overhead_s, 1e-12);
  EXPECT_NEAR(loaded.loop_overhead_cycles, original.loop_overhead_cycles,
              1e-9);
  std::filesystem::remove(path);
}

TEST(DeviceFile, PartialFileKeepsDefaults) {
  const auto path = temp_path("partial.txt");
  std::ofstream(path) << "# only override two things\n"
                      << "name = Half Nano\n"
                      << "num_cus = 32\n";
  const DeviceSpec loaded = DeviceSpec::from_file(path);
  EXPECT_EQ(loaded.name, "Half Nano");
  EXPECT_EQ(loaded.num_cus, 32);
  // Everything else stays at the R9 Nano defaults.
  EXPECT_EQ(loaded.simd_width, DeviceSpec::amd_r9_nano().simd_width);
  EXPECT_EQ(loaded.dram_bw_gbps, DeviceSpec::amd_r9_nano().dram_bw_gbps);
  std::filesystem::remove(path);
}

TEST(DeviceFile, CommentsAndWhitespaceTolerated) {
  const auto path = temp_path("comments.txt");
  std::ofstream(path) << "\n"
                      << "   # full-line comment\n"
                      << "  clock_ghz =  2.5   # trailing comment\n";
  EXPECT_NEAR(DeviceSpec::from_file(path).clock_ghz, 2.5, 1e-9);
  std::filesystem::remove(path);
}

TEST(DeviceFile, UnknownKeyRejected) {
  const auto path = temp_path("unknown.txt");
  std::ofstream(path) << "warp_size = 32\n";  // typo'd key
  EXPECT_THROW((void)DeviceSpec::from_file(path), common::Error);
  std::filesystem::remove(path);
}

TEST(DeviceFile, MalformedValueRejected) {
  const auto path = temp_path("bad_value.txt");
  std::ofstream(path) << "num_cus = many\n";
  EXPECT_THROW((void)DeviceSpec::from_file(path), common::Error);
  std::filesystem::remove(path);
}

TEST(DeviceFile, MissingEqualsRejected) {
  const auto path = temp_path("no_eq.txt");
  std::ofstream(path) << "num_cus 64\n";
  EXPECT_THROW((void)DeviceSpec::from_file(path), common::Error);
  std::filesystem::remove(path);
}

TEST(DeviceFile, DegenerateDeviceRejected) {
  const auto path = temp_path("degenerate.txt");
  std::ofstream(path) << "num_cus = 0\n";
  EXPECT_THROW((void)DeviceSpec::from_file(path), common::Error);
  std::filesystem::remove(path);
}

TEST(DeviceFile, MissingFileRejected) {
  EXPECT_THROW((void)DeviceSpec::from_file("/nonexistent/device.txt"),
               common::Error);
}

}  // namespace
}  // namespace aks::perf
