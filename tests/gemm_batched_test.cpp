#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gemm/reference.hpp"
#include "gemm/registry.hpp"
#include "perfmodel/cost_model.hpp"
#include "syclrt/queue.hpp"

namespace aks::gemm {
namespace {

struct BatchedData {
  std::vector<float> a;
  std::vector<float> b;
  std::vector<float> expected;
};

BatchedData make_batched(const GemmShape& shape, std::size_t batch,
                         std::uint64_t seed) {
  common::Rng rng(seed);
  BatchedData data;
  data.a.resize(batch * shape.m * shape.k);
  data.b.resize(batch * shape.k * shape.n);
  data.expected.resize(batch * shape.m * shape.n);
  for (auto& v : data.a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : data.b) v = static_cast<float>(rng.uniform(-1, 1));
  for (std::size_t bi = 0; bi < batch; ++bi) {
    reference_gemm(
        std::span<const float>(data.a).subspan(bi * shape.m * shape.k,
                                               shape.m * shape.k),
        std::span<const float>(data.b).subspan(bi * shape.k * shape.n,
                                               shape.k * shape.n),
        std::span<float>(data.expected)
            .subspan(bi * shape.m * shape.n, shape.m * shape.n),
        shape);
  }
  return data;
}

class BatchedCorrectness : public ::testing::TestWithParam<KernelConfig> {};

TEST_P(BatchedCorrectness, MatchesPerEntryReference) {
  const KernelConfig config = GetParam();
  const GemmShape shape{9, 5, 7};  // awkward: edge tiles in every direction
  const std::size_t batch = 16;    // the Winograd batch count
  const auto data = make_batched(shape, batch, 3);

  syclrt::Queue queue;
  std::vector<float> c(batch * shape.m * shape.n, -1.0f);
  const auto event =
      launch_batched_gemm(queue, config, data.a, data.b, c, shape, batch);
  EXPECT_GT(event.item_count, 0u);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], data.expected[i], 1e-3f)
        << config.name() << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BatchedCorrectness,
    ::testing::Values(KernelConfig{1, 1, 1, 8, 8}, KernelConfig{2, 4, 8, 8, 16},
                      KernelConfig{4, 4, 4, 16, 8}, KernelConfig{8, 8, 8, 8, 8},
                      KernelConfig{1, 8, 2, 1, 64},
                      KernelConfig{8, 1, 4, 64, 1}),
    [](const auto& param_info) { return param_info.param.name(); });

TEST(BatchedGemm, SingleBatchMatchesPlainLaunch) {
  const GemmShape shape{16, 12, 8};
  const auto data = make_batched(shape, 1, 7);
  syclrt::Queue queue;
  std::vector<float> batched(shape.m * shape.n);
  std::vector<float> plain(shape.m * shape.n);
  const KernelConfig config{2, 2, 2, 8, 8};
  launch_batched_gemm(queue, config, data.a, data.b, batched, shape, 1);
  launch_gemm(queue, config, data.a, data.b, plain, shape);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_FLOAT_EQ(batched[i], plain[i]);
  }
}

TEST(BatchedGemm, ValidatesOperands) {
  syclrt::Queue queue;
  std::vector<float> a(10), b(10), c(10);
  const KernelConfig config{2, 2, 2, 8, 8};
  EXPECT_THROW(
      launch_batched_gemm(queue, config, a, b, c, GemmShape{2, 2, 2}, 0),
      common::Error);
  EXPECT_THROW(
      launch_batched_gemm(queue, config, a, b, c, GemmShape{2, 2, 2}, 3),
      common::Error);
}

TEST(BatchedCostModel, OneLaunchCheaperThanSixteen) {
  const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());
  // A small Winograd-style multiply where launch overhead and device fill
  // dominate: batching must beat sixteen separate launches.
  const KernelConfig config{2, 2, 2, 8, 16};
  const GemmShape shape{196, 64, 64};
  const double separate = 16.0 * model.predict_seconds(config, shape);
  const double batched = model.predict_batched_seconds(config, shape, 16);
  EXPECT_LT(batched, separate);
}

TEST(BatchedCostModel, BatchOfOneMatchesPlainPrediction) {
  const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());
  const KernelConfig config{4, 4, 4, 8, 8};
  const GemmShape shape{128, 64, 128};
  EXPECT_DOUBLE_EQ(model.predict_batched_seconds(config, shape, 1),
                   model.predict_seconds(config, shape));
}

TEST(BatchedCostModel, MonotoneInBatch) {
  const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());
  const KernelConfig config{4, 4, 4, 8, 8};
  const GemmShape shape{256, 128, 256};
  double prev = 0.0;
  for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u}) {
    const double t = model.predict_batched_seconds(config, shape, batch);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace aks::gemm
