// Regression tests for ThreadPool reentrancy: nested parallel_for used to
// deadlock because every blocked caller slept on a condition variable while
// occupying the worker that should have drained the queue. The fixed pool
// lets the caller claim chunks itself and help-drain while waiting, so the
// nesting patterns exercised here (including a real kernel launch from
// inside a pooled loop, the benchmark runner's shape) must all complete.
//
// Every nesting test runs under a watchdog that kills the binary if the
// pool deadlocks again — a hang would otherwise stall the whole CI job
// instead of reporting a failure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "dataset/benchmark_runner.hpp"
#include "gemm/config.hpp"

namespace aks {
namespace {

// Runs `body` on a scratch thread; if it fails to finish before the
// deadline the process exits non-zero (ctest reports the failure) instead
// of hanging forever on a deadlocked pool.
void with_watchdog(const std::function<void()>& body,
                   std::chrono::seconds deadline = std::chrono::seconds(120)) {
  auto task = std::async(std::launch::async, body);
  if (task.wait_for(deadline) == std::future_status::timeout) {
    std::cerr << "watchdog: thread-pool test deadlocked\n";
    std::_Exit(3);
  }
  task.get();
}

TEST(ThreadPool, EveryIndexExecutedExactlyOnce) {
  common::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(1000, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, MainThreadIsNotAWorker) {
  common::ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  EXPECT_FALSE(common::ThreadPool::global().on_worker_thread());
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  with_watchdog([] {
    common::ThreadPool pool(2);
    std::atomic<int> sum{0};
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) {
        sum.fetch_add(1, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(sum.load(), 16);
  });
}

TEST(ThreadPool, TriplyNestedParallelFor) {
  with_watchdog([] {
    common::ThreadPool pool(2);
    std::atomic<int> sum{0};
    pool.parallel_for(3, [&](std::size_t) {
      pool.parallel_for(3, [&](std::size_t) {
        pool.parallel_for(3, [&](std::size_t) {
          sum.fetch_add(1, std::memory_order_relaxed);
        });
      });
    });
    EXPECT_EQ(sum.load(), 27);
  });
}

TEST(ThreadPool, NestedIndicesEachRunExactlyOnce) {
  with_watchdog([] {
    common::ThreadPool pool(3);
    constexpr std::size_t kOuter = 8;
    constexpr std::size_t kInner = 64;
    std::vector<std::atomic<int>> counts(kOuter * kInner);
    pool.parallel_for(kOuter, [&](std::size_t o) {
      pool.parallel_for(kInner, [&](std::size_t i) {
        counts[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
      });
    });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  });
}

TEST(ThreadPool, NestedExceptionPropagates) {
  with_watchdog([] {
    common::ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallel_for(4,
                          [&](std::size_t) {
                            pool.parallel_for(4, [&](std::size_t j) {
                              if (j == 3) throw std::runtime_error("boom");
                            });
                          }),
        std::runtime_error);
  });
}

// Regression (found by the thread-safety annotation pass): the final read
// of a job's stored exception happened outside the error mutex, racing the
// chunk that stores it. Repeated throwing loops under contention must
// always rethrow the stored exception with its message intact.
TEST(ThreadPool, ThrownErrorMessageAlwaysIntact) {
  with_watchdog([] {
    common::ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
      try {
        pool.parallel_for(64, [&](std::size_t i) {
          if (i % 16 == 0) throw std::runtime_error("intact-error-text");
        });
        FAIL() << "parallel_for must rethrow the chunk's exception";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "intact-error-text");
      }
    }
  });
}

// The exact shape of the historical deadlock: time_host_run constructs a
// syclrt::Queue and launches a kernel, which dispatches work-groups on the
// *global* pool — from inside a loop already running on the global pool
// (what run_model_benchmarks in host mode does).
TEST(ThreadPool, HostTimedKernelLaunchInsidePooledLoop) {
  with_watchdog([] {
    const gemm::KernelConfig config{};  // 1x1x1 tile on an 8x8 work-group
    const gemm::GemmShape shape{16, 16, 16};
    std::atomic<int> runs{0};
    common::ThreadPool::global().parallel_for(4, [&](std::size_t) {
      const double seconds = data::time_host_run(config, shape);
      EXPECT_GT(seconds, 0.0);
      runs.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(runs.load(), 4);
  });
}

// Concurrent top-level parallel_for calls from independent client threads
// (the serving layer's situation) must not interfere.
TEST(ThreadPool, ConcurrentCallersShareThePool) {
  with_watchdog([] {
    common::ThreadPool pool(2);
    constexpr std::size_t kClients = 4;
    std::vector<std::atomic<int>> sums(kClients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        pool.parallel_for(100, [&](std::size_t) {
          sums[c].fetch_add(1, std::memory_order_relaxed);
        });
      });
    }
    for (auto& t : clients) t.join();
    for (const auto& s : sums) EXPECT_EQ(s.load(), 100);
  });
}

}  // namespace
}  // namespace aks
