#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/knn.hpp"
#include "ml/linalg.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "ml/svm.hpp"

namespace aks::ml {
namespace {

/// Linearly separable binary problem: sign of x0 + x1 - 10.
void separable_problem(std::size_t n, std::uint64_t seed, double margin,
                       Matrix& x, std::vector<int>& y) {
  common::Rng rng(seed);
  x.resize(n, 2);
  y.resize(n);
  std::size_t i = 0;
  while (i < n) {
    const double a = rng.uniform(0, 10);
    const double b = rng.uniform(0, 10);
    const double score = a + b - 10.0;
    if (std::abs(score) < margin) continue;  // enforce a margin
    x(i, 0) = a;
    x(i, 1) = b;
    y[i] = score > 0 ? 1 : -1;
    ++i;
  }
}

/// Concentric rings: not linearly separable, easy for RBF.
void rings_problem(std::size_t n, std::uint64_t seed, Matrix& x,
                   std::vector<int>& y) {
  common::Rng rng(seed);
  x.resize(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double radius = (i % 2 == 0) ? 1.0 : 4.0;
    const double angle = rng.uniform(0, 2 * M_PI);
    x(i, 0) = radius * std::cos(angle) + rng.normal(0, 0.1);
    x(i, 1) = radius * std::sin(angle) + rng.normal(0, 0.1);
    y[i] = (i % 2 == 0) ? 1 : -1;
  }
}

TEST(BinarySvm, LinearSeparatesWithMargin) {
  Matrix x;
  std::vector<int> y;
  separable_problem(120, 1, 1.0, x, y);
  SvmOptions options;
  options.kernel = SvmKernel::kLinear;
  BinarySvm svm(options);
  svm.fit(x, y);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(svm.predict_row(x.row(i)), y[i]) << "row " << i;
  }
}

TEST(BinarySvm, LinearExposesWeights) {
  Matrix x;
  std::vector<int> y;
  separable_problem(100, 2, 1.0, x, y);
  SvmOptions options;
  options.kernel = SvmKernel::kLinear;
  BinarySvm svm(options);
  svm.fit(x, y);
  // Separator is x0 + x1 = 10: weights roughly equal and positive.
  const auto& w = svm.weights();
  ASSERT_EQ(w.size(), 3u);  // two features + bias
  EXPECT_GT(w[0], 0.0);
  EXPECT_GT(w[1], 0.0);
  EXPECT_NEAR(w[0] / w[1], 1.0, 0.5);
  EXPECT_LT(w[2], 0.0);  // bias pushes the boundary away from the origin
}

TEST(BinarySvm, RbfSolvesRings) {
  Matrix x;
  std::vector<int> y;
  rings_problem(120, 3, x, y);
  SvmOptions options;
  options.kernel = SvmKernel::kRbf;
  options.gamma = 0.5;
  BinarySvm svm(options);
  svm.fit(x, y);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    correct += svm.predict_row(x.row(i)) == y[i] ? 1u : 0u;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(x.rows()), 0.95);
  EXPECT_GT(svm.num_support_vectors(), 0u);
}

TEST(BinarySvm, LinearCannotSolveRings) {
  Matrix x;
  std::vector<int> y;
  rings_problem(120, 4, x, y);
  SvmOptions options;
  options.kernel = SvmKernel::kLinear;
  BinarySvm svm(options);
  svm.fit(x, y);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    correct += svm.predict_row(x.row(i)) == y[i] ? 1u : 0u;
  }
  // Rings are not linearly separable: a linear cut must stay far from the
  // near-perfect accuracy the RBF kernel reaches on the same data.
  EXPECT_LT(static_cast<double>(correct) / static_cast<double>(x.rows()), 0.85);
}

TEST(BinarySvm, ScaleGammaDegeneratesOnRawMagnitudes) {
  // The paper's RadialSVM pathology in miniature: features in the
  // thousands make the scale gamma so small that all kernel values are
  // ~1 and the decision collapses towards a constant.
  common::Rng rng(5);
  Matrix x(60, 3);
  std::vector<int> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.uniform(1, 200000);
    x(i, 1) = rng.uniform(1, 25000);
    x(i, 2) = rng.uniform(1, 4096);
    y[i] = i % 3 == 0 ? 1 : -1;  // imbalanced 1:2
  }
  SvmOptions options;
  options.kernel = SvmKernel::kRbf;
  BinarySvm svm(options);
  svm.fit(x, y);
  EXPECT_LT(svm.effective_gamma(), 1e-6);
  // Majority class dominates predictions.
  std::size_t majority = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    majority += svm.predict_row(x.row(i)) == -1 ? 1u : 0u;
  }
  EXPECT_GE(majority, 45u);  // well above the true 40/60 class share
}

TEST(BinarySvm, RejectsBadInput) {
  BinarySvm svm;
  EXPECT_THROW(svm.fit(Matrix(2, 2), {0, 1}), common::Error);  // labels not +-1
  EXPECT_THROW(svm.fit(Matrix(1, 2), {1}), common::Error);
  SvmOptions bad;
  bad.c = 0.0;
  EXPECT_THROW(BinarySvm{bad}, common::Error);
  EXPECT_THROW((void)svm.decision(std::vector<double>{1.0, 2.0}),
               common::Error);  // not fitted
}

TEST(SvmClassifier, OneVsRestMulticlass) {
  // Three clusters, one per class.
  common::Rng rng(6);
  Matrix x(90, 2);
  std::vector<int> y(90);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (std::size_t i = 0; i < 90; ++i) {
    const std::size_t cls = i % 3;
    x(i, 0) = centers[cls][0] + rng.normal(0, 0.5);
    x(i, 1) = centers[cls][1] + rng.normal(0, 0.5);
    y[i] = static_cast<int>(cls);
  }
  SvmOptions options;
  options.kernel = SvmKernel::kLinear;
  SvmClassifier svm(options);
  svm.fit(x, y);
  EXPECT_EQ(svm.num_classes(), 3);
  EXPECT_GT(accuracy(y, svm.predict(x)), 0.95);
  const auto decisions = svm.decision_row(x.row(0));
  EXPECT_EQ(decisions.size(), 3u);
}

TEST(SvmClassifier, HandlesAbsentClasses) {
  // num_classes = 4 but only classes 0 and 2 appear.
  Matrix x{{0, 0}, {0, 1}, {10, 10}, {10, 11}};
  std::vector<int> y{0, 0, 2, 2};
  SvmClassifier svm;
  svm.fit(x, y, 4);
  const int predicted = svm.predict_row(x.row(0));
  EXPECT_TRUE(predicted == 0 || predicted == 2);
}

TEST(Knn, OneNeighborMemorisesTrainingSet) {
  common::Rng rng(7);
  Matrix x(50, 2);
  std::vector<int> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.uniform(0, 1);
    x(i, 1) = rng.uniform(0, 1);
    y[i] = static_cast<int>(rng.uniform_index(4));
  }
  KnnClassifier knn(1);
  knn.fit(x, y);
  EXPECT_DOUBLE_EQ(accuracy(y, knn.predict(x)), 1.0);
}

TEST(Knn, ThreeNeighborsSmoothsNoise) {
  // Two clusters with one mislabelled point inside each; 3-NN fixes the
  // mislabelled point's neighbourhood prediction.
  Matrix x{{0, 0}, {0.1, 0}, {0, 0.1}, {5, 5}, {5.1, 5}, {5, 5.1}};
  std::vector<int> y{0, 0, 1, 1, 1, 0};  // one bad label per cluster
  KnnClassifier knn(3);
  knn.fit(x, y);
  const double probe_a[] = {0.05, 0.05};
  const double probe_b[] = {5.05, 5.05};
  EXPECT_EQ(knn.predict_row(probe_a), 0);
  EXPECT_EQ(knn.predict_row(probe_b), 1);
}

TEST(Knn, DeterministicTieBreakByIndex) {
  Matrix x{{0, 0}, {2, 0}};
  std::vector<int> y{0, 1};
  KnnClassifier knn(1);
  knn.fit(x, y);
  // Probe equidistant from both points: the lower index wins.
  const double probe[] = {1.0, 0.0};
  EXPECT_EQ(knn.predict_row(probe), 0);
}

TEST(Knn, RejectsBadInput) {
  EXPECT_THROW(KnnClassifier{0}, common::Error);
  KnnClassifier knn(5);
  EXPECT_THROW(knn.fit(Matrix(3, 2), {0, 1, 0}), common::Error);  // n < k
  KnnClassifier ok(1);
  ok.fit(Matrix(2, 2), {0, 1});
  EXPECT_THROW((void)ok.predict_row(std::vector<double>{1.0}), common::Error);
}

TEST(Metrics, AccuracyAndConfusion) {
  const std::vector<int> truth{0, 1, 2, 1};
  const std::vector<int> pred{0, 2, 2, 1};
  EXPECT_DOUBLE_EQ(accuracy(truth, pred), 0.75);
  const auto cm = confusion_matrix(truth, pred, 3);
  EXPECT_DOUBLE_EQ(cm(0, 0), 1);
  EXPECT_DOUBLE_EQ(cm(1, 2), 1);
  EXPECT_DOUBLE_EQ(cm(1, 1), 1);
  EXPECT_DOUBLE_EQ(cm(2, 2), 1);
  EXPECT_THROW((void)accuracy({0}, {0, 1}), common::Error);
  EXPECT_THROW((void)confusion_matrix(truth, pred, 2), common::Error);
}

TEST(Metrics, MajorityClass) {
  EXPECT_EQ(majority_class({3, 1, 3, 2, 3}), 3);
  EXPECT_THROW((void)majority_class({}), common::Error);
}

}  // namespace
}  // namespace aks::ml
