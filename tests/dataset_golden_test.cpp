// Dataset determinism, pinned two ways:
//
//  * byte-identity — building and saving the dataset twice with the same
//    seed yields byte-identical CSVs, with and without an installed fault
//    plan (fault decisions are pure in (plan seed, site, key), never in
//    thread interleaving, so the thread-pooled sweep is reproducible);
//
//  * a committed golden slice — a hexfloat dump of selected cells checked
//    against tests/data/fig1_golden_slice.csv, so a silent change to the
//    timing model, the noise stream, or the measurement path fails loudly
//    instead of drifting every downstream figure.
//
// Regenerate the golden after an *intentional* model change with:
//   AKS_REGEN_GOLDEN=1 ./dataset_golden_test
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dataset/benchmark_runner.hpp"
#include "faults/injector.hpp"

namespace aks::data {
namespace {

#ifndef AKS_TEST_DATA_DIR
#define AKS_TEST_DATA_DIR "tests/data"
#endif

std::vector<LoweredGemm> small_corpus() {
  auto shapes = extract_all_shapes();
  shapes.resize(8);
  return shapes;
}

std::string read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::filesystem::path temp_csv(const char* tag) {
  return std::filesystem::temp_directory_path() /
         (std::string("aks_golden_") + tag + ".csv");
}

PerfDataset build_small(const RunnerOptions& options) {
  return run_model_benchmarks(small_corpus(), perf::DeviceSpec::amd_r9_nano(),
                              options);
}

TEST(DatasetGolden, SameSeedSavesByteIdenticalCsv) {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  RunnerOptions options;
  const auto a = temp_csv("a");
  const auto b = temp_csv("b");
  build_small(options).save(a);
  build_small(options).save(b);
  EXPECT_EQ(read_bytes(a), read_bytes(b));
  std::filesystem::remove(a);
  std::filesystem::remove(b);
}

TEST(DatasetGolden, ByteIdenticalUnderReinstalledFaultPlan) {
  RunnerOptions options;
  const auto a = temp_csv("fault_a");
  const auto b = temp_csv("fault_b");
  {
    faults::ScopedFaultPlan plan{faults::FaultPlan::mixed(0.3, 42)};
    build_small(options).save(a);
  }
  {
    faults::ScopedFaultPlan plan{faults::FaultPlan::mixed(0.3, 42)};
    build_small(options).save(b);
  }
  EXPECT_EQ(read_bytes(a), read_bytes(b));
  // And the degraded dataset still differs from the clean one somewhere —
  // the plan actually fired (rate 0.3 over 8x640 cells).
  const auto clean = temp_csv("fault_clean");
  {
    faults::ScopedFaultPlan none{faults::FaultPlan::none()};
    build_small(options).save(clean);
  }
  EXPECT_NE(read_bytes(a), read_bytes(clean));
  std::filesystem::remove(a);
  std::filesystem::remove(b);
  std::filesystem::remove(clean);
}

// Hexfloat dump of a fixed (shape, config) slice: bit-exact, portable
// formatting independent of locale and printf rounding.
std::string golden_slice() {
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const auto dataset = build_small({});
  const std::vector<std::size_t> rows = {0, 3, 7};
  const std::vector<std::size_t> cols = {0, 100, 250, 400, 639};
  std::ostringstream out;
  out << "m,k,n,config,time_hex\n";
  for (const std::size_t r : rows) {
    const auto& shape = dataset.shapes()[r].shape;
    for (const std::size_t c : cols) {
      char hex[64];
      std::snprintf(hex, sizeof hex, "%a", dataset.times()(r, c));
      out << shape.m << "," << shape.k << "," << shape.n << "," << c << ","
          << hex << "\n";
    }
  }
  return out.str();
}

TEST(DatasetGolden, SliceMatchesCommittedGolden) {
  const std::filesystem::path golden_path =
      std::filesystem::path(AKS_TEST_DATA_DIR) / "fig1_golden_slice.csv";
  const std::string actual = golden_slice();
  if (std::getenv("AKS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  ASSERT_TRUE(std::filesystem::exists(golden_path))
      << golden_path << " missing; run with AKS_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(actual, read_bytes(golden_path))
      << "dataset slice drifted from the committed golden; if the timing "
         "model changed intentionally, regenerate with AKS_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace aks::data
