#include <gtest/gtest.h>

#include "core/network_estimator.hpp"
#include "core/pipeline.hpp"
#include "dataset/benchmark_runner.hpp"

namespace aks::select {
namespace {

class NetworkEstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto dataset = data::build_paper_dataset();
    PipelineOptions options;
    options.num_configs = 8;
    auto result = run_pipeline(dataset, options);
    model_ = new perf::CostModel(perf::DeviceSpec::amd_r9_nano());
    engine_ = new ConvEngine(
        std::shared_ptr<const KernelSelector>(std::move(result.selector)),
        *model_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete model_;
    engine_ = nullptr;
    model_ = nullptr;
  }
  static const ConvEngine& engine() { return *engine_; }
  static const perf::CostModel& model() { return *model_; }

 private:
  static ConvEngine* engine_;
  static perf::CostModel* model_;
};

ConvEngine* NetworkEstimatorTest::engine_ = nullptr;
perf::CostModel* NetworkEstimatorTest::model_ = nullptr;

gemm::KernelConfig fixed_config() { return {4, 2, 8, 8, 32}; }

TEST_F(NetworkEstimatorTest, LayerInventoryMatchesNetwork) {
  const auto estimate = estimate_network(engine(), model(),
                                         data::mobilenet_v2(), 1,
                                         fixed_config());
  // MobileNetV2: 53 convs of which 17 are depthwise (skipped), plus 1 FC.
  EXPECT_EQ(estimate.layers.size(),
            data::mobilenet_v2().convs.size() - 17 + 1);
  EXPECT_EQ(estimate.network, "MobileNetV2");
}

TEST_F(NetworkEstimatorTest, OptimalLowerBoundsEverything) {
  for (const auto& network : data::paper_networks()) {
    const auto estimate =
        estimate_network(engine(), model(), network, 4, fixed_config());
    EXPECT_GT(estimate.optimal_seconds, 0.0);
    for (const auto& layer : estimate.layers) {
      EXPECT_GE(layer.engine_seconds, layer.optimal_seconds - 1e-12)
          << network.name << ":" << layer.layer;
      EXPECT_GE(layer.fixed_seconds, layer.optimal_seconds - 1e-12)
          << network.name << ":" << layer.layer;
    }
    EXPECT_GE(estimate.engine_seconds, estimate.optimal_seconds - 1e-12);
    EXPECT_GE(estimate.fixed_seconds, estimate.optimal_seconds - 1e-12);
  }
}

TEST_F(NetworkEstimatorTest, SelectionBeatsOrMatchesFixedKernel) {
  // The whole point of the pipeline: per-layer selection from 8 kernels
  // should not lose to a single fixed kernel at the network level (small
  // slack for selector errors).
  for (const auto& network : data::paper_networks()) {
    const auto estimate =
        estimate_network(engine(), model(), network, 4, fixed_config());
    EXPECT_LE(estimate.engine_seconds, estimate.fixed_seconds * 1.1)
        << network.name;
  }
}

TEST_F(NetworkEstimatorTest, EfficiencyMetricsAreSane) {
  const auto estimate = estimate_network(engine(), model(), data::resnet50(),
                                         4, fixed_config());
  EXPECT_GT(estimate.engine_efficiency(), 0.5);
  EXPECT_LE(estimate.engine_efficiency(), 1.0 + 1e-9);
  EXPECT_GT(estimate.speedup_vs_fixed(), 0.5);
}

TEST_F(NetworkEstimatorTest, BatchScalesTotals) {
  const auto b1 = estimate_network(engine(), model(), data::vgg16(), 1,
                                   fixed_config());
  const auto b8 = estimate_network(engine(), model(), data::vgg16(), 8,
                                   fixed_config());
  // Sub-linear in batch: bigger launches fill the device better (and the
  // F(4x4) lowering gets relatively cheaper), but 8x work must still cost
  // clearly more than 2x.
  EXPECT_GT(b8.optimal_seconds, 2.0 * b1.optimal_seconds);
}

TEST_F(NetworkEstimatorTest, RejectsBadBatch) {
  EXPECT_THROW((void)estimate_network(engine(), model(), data::vgg16(), 0,
                                      fixed_config()),
               common::Error);
}

}  // namespace
}  // namespace aks::select
