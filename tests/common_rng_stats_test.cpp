#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace aks::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW((void)rng.uniform_index(0), Error);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalShiftedAndScaled) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMedianApproximatelyMedian) {
  Rng rng(9);
  std::vector<double> xs(10001);
  for (auto& x : xs) x = rng.lognormal_median(4.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 5000, xs.end());
  EXPECT_NEAR(xs[5000], 4.0, 0.15);
  EXPECT_THROW((void)rng.lognormal_median(-1.0, 0.5), Error);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(3);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ForkSeedProducesIndependentStreams) {
  Rng parent(42);
  Rng child1(parent.fork_seed());
  Rng child2(parent.fork_seed());
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(Stats, MeanAndVariance) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, EmptyRangesThrow) {
  const std::span<const double> empty;
  EXPECT_THROW((void)mean(empty), Error);
  EXPECT_THROW((void)geometric_mean(empty), Error);
  EXPECT_THROW((void)median(empty), Error);
  EXPECT_THROW((void)argmax(empty), Error);
}

TEST(Stats, GeometricMeanMatchesClosedForm) {
  const double xs[] = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const double xs[] = {1.0, 0.0};
  EXPECT_THROW((void)geometric_mean(xs), Error);
}

TEST(Stats, GeometricMeanLessThanArithmeticOnSpread) {
  const double xs[] = {0.1, 0.9, 0.5, 0.99};
  EXPECT_LT(geometric_mean(xs), mean(xs));
}

TEST(Stats, HarmonicMeanOrdering) {
  const double xs[] = {2.0, 8.0};
  EXPECT_NEAR(harmonic_mean(xs), 3.2, 1e-12);
  EXPECT_LT(harmonic_mean(xs), geometric_mean(xs));
}

TEST(Stats, MedianEvenAndOdd) {
  const double odd[] = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const double even[] = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileEndpointsAndMid) {
  const double xs[] = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 20.0);
  EXPECT_THROW((void)quantile(xs, 1.5), Error);
}

TEST(Stats, ArgmaxArgminFirstOccurrence) {
  const double xs[] = {1.0, 3.0, 3.0, 0.5, 0.5};
  EXPECT_EQ(argmax(xs), 1u);
  EXPECT_EQ(argmin(xs), 3u);
}

TEST(Stats, ArgsortAscendingAndDescending) {
  const double xs[] = {3.0, 1.0, 2.0};
  const auto asc = argsort(xs);
  EXPECT_EQ(asc, (std::vector<std::size_t>{1, 2, 0}));
  const auto desc = argsort_descending(xs);
  EXPECT_EQ(desc, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(Stats, ArgsortStableOnTies) {
  const double xs[] = {1.0, 1.0, 1.0};
  EXPECT_EQ(argsort(xs), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(argsort_descending(xs), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Stats, RanksHandleTiesWithAverages) {
  const double xs[] = {10.0, 30.0, 20.0, 30.0};
  const auto r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 3.5);  // tied for ranks 3 and 4
  EXPECT_DOUBLE_EQ(r[3], 3.5);
}

TEST(Stats, PearsonKnownValues) {
  const double xs[] = {1, 2, 3, 4};
  const double ys[] = {2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  const double neg[] = {8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, neg), -1.0, 1e-12);
  const double constant[] = {5, 5, 5, 5};
  EXPECT_THROW((void)pearson_correlation(xs, constant), Error);
  EXPECT_THROW((void)pearson_correlation(xs, std::vector<double>{1.0}), Error);
}

TEST(Stats, SpearmanIsRankInvariant) {
  // A monotone nonlinear map preserves ranks exactly.
  const double xs[] = {1, 2, 3, 4, 5};
  const double ys[] = {1, 8, 27, 64, 125};  // x^3
  EXPECT_NEAR(spearman_correlation(xs, ys), 1.0, 1e-12);
  const double zs[] = {5, 1, 4, 2, 3};
  const double s = spearman_correlation(xs, zs);
  EXPECT_GT(s, -1.0);
  EXPECT_LT(s, 1.0);
}

TEST(Stats, MinMaxValues) {
  const double xs[] = {4.0, -2.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -2.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

}  // namespace
}  // namespace aks::common
