// Planted-defect coverage for the symbolic access verifier: each test breaks
// one property of a kernel access summary (edge clamp, K-tail clamp, write
// slicing, read slicing, shape guard, batch slicing, device capacity) and
// asserts the verifier reports UNSAFE with the right rule, diagnostic class
// and a concrete counterexample shape. The property tests then *replay* a toy
// kernel with the matching defect at that counterexample shape through the
// dynamic checked-replay layer and assert it really fails with the same
// diagnostic kind — symbolic counterexamples are executable, not theoretical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "check/checked_buffer.hpp"
#include "check/checked_gemm.hpp"
#include "check/config_lint.hpp"
#include "check/diagnostics.hpp"
#include "check/symbolic/access_summary.hpp"
#include "check/symbolic/verifier.hpp"
#include "gemm/access_metadata.hpp"
#include "gemm/config.hpp"
#include "perfmodel/device_spec.hpp"
#include "syclrt/queue.hpp"

namespace {

using namespace aks;
namespace sym = aks::check::symbolic;
using check::AccessMonitor;
using check::CheckedBuffer;
using check::DiagnosticKind;

bool has_kind(const AccessMonitor& monitor, DiagnosticKind kind) {
  return std::any_of(
      monitor.findings().begin(), monitor.findings().end(),
      [kind](const check::Diagnostic& d) { return d.kind == kind; });
}

syclrt::Queue replay_queue() {
  syclrt::Queue queue;
  queue.set_deterministic_replay(true);
  return queue;
}

/// First finding with the given rule; fails the test when absent.
const sym::SymbolicFinding* find_rule(const sym::VerifyResult& result,
                                      std::string_view rule) {
  for (const auto& finding : result.findings) {
    if (finding.rule == rule) return &finding;
  }
  return nullptr;
}

gemm::KernelAccessPattern base_pattern() {
  return gemm::tiled_access_pattern(gemm::KernelConfig::parse("t4x4_a1_wg8x8"));
}

// --- out-of-bounds: missing edge clamp --------------------------------------

TEST(SymbolicNegative, UnclampedEdgePathIsUnsafeOutOfBounds) {
  auto pattern = base_pattern();
  pattern.edge_clamped = false;  // planted defect: no min(tile_end, shape)
  const auto result =
      sym::verify_access_summary(sym::summarize_tiled_gemm(pattern));
  EXPECT_EQ(result.verdict, sym::Verdict::unsafe);
  const auto* finding = find_rule(result, sym::kRuleOob);
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->kind, DiagnosticKind::out_of_bounds);
  EXPECT_EQ(finding->verdict, sym::Verdict::unsafe);

  // Property: the counterexample shape is executable. A toy kernel with the
  // same missing clamp, replayed at exactly that shape, goes out of bounds.
  const auto w = finding->witness;
  const auto m = static_cast<std::size_t>(w.m);
  const auto k = static_cast<std::size_t>(w.k);
  const auto n = static_cast<std::size_t>(w.n);
  AccessMonitor monitor("toy_unclamped_edge");
  CheckedBuffer<float> a("A", m * k, monitor, 1.0f);
  CheckedBuffer<float> b("B", k * n, monitor, 1.0f);
  CheckedBuffer<float> c("C", m * n, monitor);
  auto queue = replay_queue();
  auto aacc = a.read();
  auto bacc = b.read();
  auto cacc = c.write();
  const std::size_t tiles_r = (m + 3) / 4;
  const std::size_t tiles_c = (n + 3) / 4;
  queue.parallel_for(
      syclrt::NdRange<2>(syclrt::Range<2>(tiles_r, tiles_c),
                         syclrt::Range<2>(1, 1)),
      [aacc, bacc, cacc, m, k, n](const syclrt::NdItem<2>& item) {
        const std::size_t row0 = item.get_global_id(0) * 4;
        const std::size_t col0 = item.get_global_id(1) * 4;
        if (row0 >= m || col0 >= n) return;
        for (std::size_t r = 0; r < 4; ++r) {    // no edge clamp
          for (std::size_t cc = 0; cc < 4; ++cc) {
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) {
              acc += aacc[(row0 + r) * k + kk] * bacc[kk * n + col0 + cc];
            }
            cacc[(row0 + r) * n + col0 + cc] = acc;
          }
        }
      });
  EXPECT_TRUE(has_kind(monitor, DiagnosticKind::out_of_bounds));
}

// --- out-of-bounds: unclamped accumulator tail ------------------------------

TEST(SymbolicNegative, UnclampedAccumulatorTailIsUnsafeOutOfBounds) {
  auto pattern = gemm::tiled_access_pattern(
      gemm::KernelConfig::parse("t1x1_a4_wg8x8"));
  pattern.k_tail_clamped = false;  // full AccSize step past K
  const auto result =
      sym::verify_access_summary(sym::summarize_tiled_gemm(pattern));
  EXPECT_EQ(result.verdict, sym::Verdict::unsafe);
  const auto* finding = find_rule(result, sym::kRuleOob);
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->kind, DiagnosticKind::out_of_bounds);
  // The counterexample must be a K that a whole accumulator step overruns.
  EXPECT_NE(finding->witness.k % 4, 0);

  const auto w = finding->witness;
  const auto m = static_cast<std::size_t>(w.m);
  const auto k = static_cast<std::size_t>(w.k);
  const auto n = static_cast<std::size_t>(w.n);
  AccessMonitor monitor("toy_unclamped_ktail");
  CheckedBuffer<float> a("A", m * k, monitor, 1.0f);
  CheckedBuffer<float> c("C", m * n, monitor);
  auto queue = replay_queue();
  auto aacc = a.read();
  auto cacc = c.write();
  queue.parallel_for(
      syclrt::NdRange<2>(syclrt::Range<2>(m, n), syclrt::Range<2>(1, 1)),
      [aacc, cacc, m, k, n](const syclrt::NdItem<2>& item) {
        const std::size_t row = item.get_global_id(0);
        const std::size_t col = item.get_global_id(1);
        if (row >= m || col >= n) return;
        float acc = 0.0f;
        for (std::size_t k0 = 0; k0 < k; k0 += 4) {
          for (std::size_t s = 0; s < 4; ++s) {  // no k_end clamp
            acc += aacc[row * k + k0 + s];
          }
        }
        cacc[row * n + col] = acc;
      });
  EXPECT_TRUE(has_kind(monitor, DiagnosticKind::out_of_bounds));
}

// --- write/write race: write not sliced to the tile -------------------------

TEST(SymbolicNegative, UnslicedWriteIsUnsafeWriteWriteRace) {
  auto pattern = base_pattern();
  // One-item work-groups so every tile is its own group: any cross-item
  // overlap the symbolic layer reports is a cross-group conflict on replay.
  pattern.wg_rows = pattern.wg_cols = 1;
  auto summary = sym::summarize_tiled_gemm(pattern);
  // Planted defect: the C store spans the whole row instead of the tile.
  summary.regions[2].cols =
      sym::Extent::range(sym::AffineExpr::constant(0), sym::sym_n());
  const auto result = sym::verify_access_summary(summary);
  EXPECT_EQ(result.verdict, sym::Verdict::unsafe);
  const auto* finding = find_rule(result, sym::kRuleOverlapWw);
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->kind, DiagnosticKind::write_write_race);
  EXPECT_EQ(finding->buffer, "C");

  const auto w = finding->witness;
  const auto m = static_cast<std::size_t>(w.m);
  const auto n = static_cast<std::size_t>(w.n);
  // The counterexample needs at least two column tiles to collide.
  ASSERT_GT(n, 4u);
  AccessMonitor monitor("toy_unsliced_write");
  CheckedBuffer<float> c("C", m * n, monitor);
  auto queue = replay_queue();
  auto cacc = c.write();
  const std::size_t tiles_r = (m + 3) / 4;
  const std::size_t tiles_c = (n + 3) / 4;
  queue.parallel_for(
      syclrt::NdRange<2>(syclrt::Range<2>(tiles_r, tiles_c),
                         syclrt::Range<2>(1, 1)),
      [cacc, m, n](const syclrt::NdItem<2>& item) {
        const std::size_t row0 = item.get_global_id(0) * 4;
        if (row0 >= m) return;
        const std::size_t row_end = std::min(row0 + 4, m);
        for (std::size_t r = row0; r < row_end; ++r) {
          for (std::size_t j = 0; j < n; ++j) {  // whole row, not the tile
            cacc[r * n + j] = 1.0f;
          }
        }
      });
  EXPECT_TRUE(has_kind(monitor, DiagnosticKind::write_write_race));
}

// --- read/write race: read not sliced to the tile ---------------------------

TEST(SymbolicNegative, UnslicedReadOfWrittenBufferIsUnsafeReadWriteRace) {
  auto pattern = base_pattern();
  pattern.wg_rows = pattern.wg_cols = 1;
  auto summary = sym::summarize_tiled_gemm(pattern);
  // Planted defect: C is read back across all rows, not just the item's own
  // tile — another item's in-flight store is observable.
  sym::AccessRegion read = summary.regions[2];
  read.is_write = false;
  read.rows = sym::Extent::range(sym::AffineExpr::constant(0), sym::sym_m());
  summary.regions.push_back(read);
  const auto result = sym::verify_access_summary(summary);
  EXPECT_EQ(result.verdict, sym::Verdict::unsafe);
  const auto* finding = find_rule(result, sym::kRuleOverlapRw);
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->kind, DiagnosticKind::read_write_race);
  EXPECT_EQ(finding->buffer, "C");

  // Property: a toy kernel that writes its own slot and reads another
  // group's slot races at the counterexample shape.
  const auto w = finding->witness;
  const std::size_t size = static_cast<std::size_t>(w.m * w.n);
  ASSERT_GT(size, 1u);
  AccessMonitor monitor("toy_unsliced_read");
  CheckedBuffer<float> c("C", size, monitor);
  auto queue = replay_queue();
  auto cacc = c.write();
  auto racc = c.read();
  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(size), syclrt::Range<1>(1)),
      [cacc, racc, size](const syclrt::NdItem<1>& item) {
        const std::size_t i = item.get_global_id(0);
        cacc[i] = static_cast<float>(i);
        (void)racc[(i + 1) % size];
      });
  EXPECT_TRUE(has_kind(monitor, DiagnosticKind::read_write_race));
}

// --- unguarded tail ---------------------------------------------------------

TEST(SymbolicNegative, UnguardedScheduleIsUnsafeTail) {
  auto pattern = base_pattern();
  pattern.shape_guarded = false;  // planted defect: no early-return guard
  const auto result =
      sym::verify_access_summary(sym::summarize_tiled_gemm(pattern));
  EXPECT_EQ(result.verdict, sym::Verdict::unsafe);
  const auto* finding = find_rule(result, sym::kRuleTail);
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->kind, DiagnosticKind::tail_unguarded);

  // Property: at the witness shape the padded launch contains out-of-range
  // items; the clamped-but-unguarded toy kernel still stages B from them.
  const auto w = finding->witness;
  const auto m = static_cast<std::size_t>(w.m);
  const auto k = static_cast<std::size_t>(w.k);
  const auto n = static_cast<std::size_t>(w.n);
  AccessMonitor monitor("toy_unguarded_tail");
  CheckedBuffer<float> b("B", k * n, monitor, 1.0f);
  CheckedBuffer<float> c("C", m * n, monitor);
  auto queue = replay_queue();
  auto bacc = b.read();
  auto cacc = c.write();
  const std::size_t tiles_r = (m + 3) / 4;
  const std::size_t tiles_c = (n + 3) / 4;
  queue.parallel_for(
      syclrt::NdRange<2>(syclrt::Range<2>(tiles_r, tiles_c),
                         syclrt::Range<2>(8, 8)),
      [bacc, cacc, m, k, n](const syclrt::NdItem<2>& item) {
        // Defect: neither in_range() nor the shape guard is consulted. The
        // accesses stay clamped, so padded items touch in-bounds memory —
        // the tail_unguarded class, not out_of_bounds.
        const std::size_t row0 = item.get_global_id(0) * 4;
        const std::size_t col0 = item.get_global_id(1) * 4;
        const std::size_t col_end = std::min(col0 + 4, n);
        float acc = 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) {
          for (std::size_t cc = col0; cc < col_end; ++cc) {
            acc += bacc[kk * n + cc];
          }
        }
        const std::size_t row_end = std::min(row0 + 4, m);
        for (std::size_t r = row0; r < row_end; ++r) {
          for (std::size_t cc = col0; cc < col_end; ++cc) {
            cacc[r * n + cc] = acc;
          }
        }
      });
  EXPECT_TRUE(has_kind(monitor, DiagnosticKind::tail_unguarded));
  EXPECT_FALSE(has_kind(monitor, DiagnosticKind::out_of_bounds));
}

// --- batched launch without per-entry slicing -------------------------------

TEST(SymbolicNegative, BatchedWriteWithoutSlicingIsUnsafe) {
  auto summary = sym::summarize_batched_tiled_gemm(base_pattern());
  summary.buffers[2].batch_sliced = false;  // C shared across entries
  const auto result = sym::verify_access_summary(summary);
  EXPECT_EQ(result.verdict, sym::Verdict::unsafe);
  const auto* finding = find_rule(result, sym::kRuleOverlapWw);
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->kind, DiagnosticKind::write_write_race);
  // Two batch entries suffice to collide.
  EXPECT_EQ(finding->witness.batch, 2);
}

// --- capacity rules ---------------------------------------------------------

TEST(SymbolicNegative, WorkGroupCapacityViolationIsReported) {
  auto summary = sym::summarize_tiled_gemm(base_pattern());
  summary.work_group_size = 1024;  // over every shipped device's 256 limit
  for (const auto& device : perf::DeviceSpec::shipped()) {
    const auto findings = sym::check_capacity(summary, device);
    ASSERT_FALSE(findings.empty()) << device.name;
    EXPECT_EQ(findings[0].rule, sym::kRuleCapacityWg);
    EXPECT_EQ(findings[0].kind, DiagnosticKind::invalid_config);
    EXPECT_EQ(findings[0].verdict, sym::Verdict::unsafe);
  }
}

TEST(SymbolicNegative, LocalMemoryCapacityViolationIsReported) {
  auto summary = sym::summarize_tiled_gemm(base_pattern());
  summary.local_memory_bytes = 1u << 20;  // 1 MiB: over every shipped device
  for (const auto& device : perf::DeviceSpec::shipped()) {
    const auto findings = sym::check_capacity(summary, device);
    ASSERT_FALSE(findings.empty()) << device.name;
    EXPECT_EQ(findings[0].rule, sym::kRuleCapacityLocalMem);
  }
  // A scratchpad-poor device variant rejects a real shipped config, and the
  // lint layer agrees on the same (config, device) pair.
  const auto config = gemm::KernelConfig::parse("t8x8_a8_wg16x16");
  perf::DeviceSpec tiny = perf::DeviceSpec::embedded_accelerator();
  tiny.local_memory_bytes = 1024;
  tiny.max_work_group_size = 4096;  // isolate the local-memory rule
  const auto symbolic = sym::check_capacity(
      sym::summarize_tiled_gemm(gemm::tiled_access_pattern(config)), tiny);
  ASSERT_FALSE(symbolic.empty());
  EXPECT_EQ(symbolic[0].rule, sym::kRuleCapacityLocalMem);
  const auto lint = check::lint_config(config, 0, tiny);
  ASSERT_FALSE(lint.empty());
  EXPECT_EQ(lint[0].rule, check::LintRule::local_memory);
}

TEST(SymbolicNegative, VectorWidthCapacityAgreesWithLint) {
  // A column tile of 6 leaves a 2-wide tail against the 4-wide native
  // vector. Both static layers must reject it — they share vector_tail_ok.
  gemm::KernelConfig config;
  config.col_tile = 6;
  const auto device = perf::DeviceSpec::integrated_gpu();
  EXPECT_FALSE(check::vector_tail_ok(6, device.vector_width));

  const auto symbolic = sym::check_capacity(
      sym::summarize_tiled_gemm(gemm::tiled_access_pattern(config)), device);
  ASSERT_FALSE(symbolic.empty());
  EXPECT_EQ(symbolic[0].rule, sym::kRuleCapacityVector);
  EXPECT_EQ(symbolic[0].kind, DiagnosticKind::invalid_config);

  const auto lint = check::lint_config(config, 0, device);
  ASSERT_FALSE(lint.empty());
  EXPECT_EQ(lint[0].rule, check::LintRule::vector_width);
}

// --- UNKNOWN: unproved, no counterexample — escalates to replay -------------

TEST(SymbolicNegative, UnprovableGuardedRegionIsUnknownAndEscalates) {
  auto summary = sym::summarize_tiled_gemm(base_pattern());
  // A read of C across all rows, but only "active" when the tile origins
  // sum past 10^6 — far outside the witness family. The slicing obligation
  // fails to prove (the prover cannot absorb a two-origin precondition) and
  // no small shape exhibits it: the honest verdict is UNKNOWN.
  sym::AccessRegion read = summary.regions[2];
  read.is_write = false;
  read.rows = sym::Extent::range(sym::AffineExpr::constant(0), sym::sym_m());
  read.preconditions = {sym::sym_row0() + sym::sym_col0() - 1000000};
  summary.regions.push_back(read);

  const auto result = sym::verify_access_summary(summary);
  EXPECT_EQ(result.verdict, sym::Verdict::unknown);
  const auto* finding = find_rule(result, sym::kRuleOverlapRw);
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->verdict, sym::Verdict::unknown);
  ASSERT_FALSE(result.replay_candidates.empty());

  // The escalation path: replay candidates run through the dynamic checker.
  // The real kernel is clean there, which is what certify_space records.
  const auto& shape = result.replay_candidates.front();
  const auto replay = check::check_gemm(
      gemm::KernelConfig::parse("t4x4_a1_wg8x8"),
      gemm::GemmShape{static_cast<std::size_t>(shape.m),
                      static_cast<std::size_t>(shape.k),
                      static_cast<std::size_t>(shape.n)});
  EXPECT_TRUE(replay.clean());
}

// --- diagnostics bridge -----------------------------------------------------

TEST(SymbolicNegative, FindingsBridgeToSubsystemDiagnostics) {
  auto pattern = base_pattern();
  pattern.edge_clamped = false;
  const auto result =
      sym::verify_access_summary(sym::summarize_tiled_gemm(pattern));
  const auto* finding = find_rule(result, sym::kRuleOob);
  ASSERT_NE(finding, nullptr);
  const auto diagnostic = finding->to_diagnostic("TiledGemmKernel");
  EXPECT_EQ(diagnostic.kind, DiagnosticKind::out_of_bounds);
  EXPECT_EQ(diagnostic.kernel, "TiledGemmKernel");
  EXPECT_NE(diagnostic.message.find("[symbolic-oob]"), std::string::npos);
  EXPECT_NE(diagnostic.message.find("counterexample"), std::string::npos);
}

}  // namespace
