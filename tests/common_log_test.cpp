#include <gtest/gtest.h>

#include "common/log.hpp"

namespace aks::common {
namespace {

/// The logger writes to stderr; these tests exercise the level filter
/// machinery (the observable contract available without capturing stderr).
class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsInfo) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST(Log, SetLevelRoundTrips) {
  LogLevelGuard guard;
  for (const auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, MacrosCompileAndRespectLevels) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // These must not throw and must skip message construction below the
  // threshold; the side-effect counter proves the laziness.
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  AKS_DEBUG("debug " << expensive());
  AKS_INFO("info " << expensive());
  AKS_WARN("warn " << expensive());
  EXPECT_EQ(evaluations, 0);
  AKS_ERROR("error " << expensive());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace aks::common
