// Positive-path coverage of the symbolic access verifier: the affine layer
// and the interval+congruence prover behave as specified, every shipped
// configuration's access summary proves SAFE for all shapes (zero UNKNOWN),
// capacity checks pass on every shipped device, certificates round-trip
// through CSV, and the JSON export renders both report kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "check/report_json.hpp"
#include "check/symbolic/access_summary.hpp"
#include "check/symbolic/certificate.hpp"
#include "check/symbolic/domain.hpp"
#include "check/symbolic/verifier.hpp"
#include "conv/winograd.hpp"
#include "gemm/access_metadata.hpp"
#include "gemm/config.hpp"
#include "perfmodel/device_spec.hpp"

namespace {

using namespace aks;
using namespace aks::check::symbolic;

// --- affine expressions -----------------------------------------------------

TEST(Affine, ArithmeticAndEval) {
  const AffineExpr e = sym_m() * 2 - sym_row0() + 3;
  EXPECT_EQ(e.coeff(Sym::m), 2);
  EXPECT_EQ(e.coeff(Sym::row0), -1);
  EXPECT_EQ(e.constant_term(), 3);
  Point p{};
  p[sym_index(Sym::m)] = 10;
  p[sym_index(Sym::row0)] = 4;
  EXPECT_EQ(e.eval(p), 19);
  EXPECT_FALSE(e.is_constant());
  EXPECT_TRUE((e - e).is_constant());
}

TEST(Affine, SubstituteReplacesSymbol) {
  // M - Row0 with Row0 := M - 8  ==>  8.
  const AffineExpr e = sym_m() - sym_row0();
  const AffineExpr sub = e.substitute(Sym::row0, sym_m() - 8);
  EXPECT_TRUE(sub.is_constant());
  EXPECT_EQ(sub.constant_term(), 8);
}

TEST(Affine, RendersReadably) {
  EXPECT_EQ((sym_m() - sym_row0() - 8).to_string(), "-Row0 + M - 8");
  EXPECT_EQ(AffineExpr::constant(0).to_string(), "0");
  EXPECT_EQ((sym_k() * 3).to_string(), "3*K");
}

// --- domain and prover ------------------------------------------------------

TEST(ShapeDomain, ProvesSimpleBounds) {
  ShapeDomain d;
  d.add_symbol(Sym::m, 1);
  d.add_symbol(Sym::row0, 0, sym_m() - 1);
  // Row0 >= 0 and M - Row0 - 1 >= 0 hold; Row0 - 1 >= 0 does not.
  EXPECT_TRUE(prove_nonneg(AffineExpr::sym(Sym::row0), d));
  EXPECT_TRUE(prove_nonneg(sym_m() - sym_row0() - 1, d));
  EXPECT_FALSE(prove_nonneg(sym_row0() - 1, d));
  // Unbounded above: -M + 100 >= 0 must not be provable.
  EXPECT_FALSE(prove_nonneg(AffineExpr::constant(100) - sym_m(), d));
  // Inactive symbol: expressions over Col0 are never proved.
  EXPECT_FALSE(prove_nonneg(AffineExpr::sym(Sym::col0), d));
}

TEST(ShapeDomain, CongruenceTightensConstantBounds) {
  // Row0 in [0, 10] with Row0 ≡ 0 (mod 4): the true maximum is 8.
  ShapeDomain d;
  d.add_symbol(Sym::row0, 0, AffineExpr::constant(10));
  d.add_congruence(Sym::row0, 4, 0);
  EXPECT_TRUE(prove_nonneg(AffineExpr::constant(8) - sym_row0(), d));
  EXPECT_FALSE(prove_nonneg(AffineExpr::constant(7) - sym_row0(), d));
}

TEST(ShapeDomain, AbsorbsTileOriginConstraints) {
  ShapeDomain d;
  d.add_symbol(Sym::m, 1);
  d.add_symbol(Sym::row0, 0);
  // Absorb M - Row0 - 8 >= 0 as an upper bound on Row0.
  EXPECT_TRUE(d.absorb_constraint(sym_m() - sym_row0() - 8));
  EXPECT_TRUE(prove_nonneg(sym_m() - sym_row0() - 8, d));
  EXPECT_FALSE(prove_nonneg(sym_m() - sym_row0() - 9, d));
  // A constraint coupling both tile origins has no single-symbol form.
  EXPECT_FALSE(d.absorb_constraint(sym_row0() + sym_col0()));
}

TEST(ShapeDomain, ContainsChecksBoundsAndCongruence) {
  ShapeDomain d;
  d.add_symbol(Sym::m, 1);
  d.add_symbol(Sym::row0, 0, sym_m() - 1);
  d.add_congruence(Sym::row0, 4, 0);
  Point p{};
  p[sym_index(Sym::m)] = 10;
  p[sym_index(Sym::row0)] = 8;
  EXPECT_TRUE(d.contains(p));
  p[sym_index(Sym::row0)] = 6;  // breaks the congruence
  EXPECT_FALSE(d.contains(p));
  p[sym_index(Sym::row0)] = 12;  // breaks the upper bound
  EXPECT_FALSE(d.contains(p));
}

// --- the shipped space is SAFE, for all shapes ------------------------------

TEST(SymbolicVerifier, EveryShippedConfigProvesSafeWithZeroUnknown) {
  std::size_t safe = 0;
  for (const auto& config : gemm::enumerate_configs()) {
    const auto pattern = gemm::tiled_access_pattern(config);
    for (const auto& summary :
         {summarize_tiled_gemm(pattern), summarize_batched_tiled_gemm(pattern)}) {
      const VerifyResult result = verify_access_summary(summary);
      EXPECT_EQ(result.verdict, Verdict::safe)
          << config.name() << " (" << summary.kernel << "): "
          << (result.findings.empty() ? "?" : result.findings[0].message);
      EXPECT_TRUE(result.findings.empty());
      ++safe;
    }
  }
  EXPECT_EQ(safe, 2u * 640u);
}

TEST(SymbolicVerifier, SafeVerdictCarriesShapePrecondition) {
  const auto pattern =
      gemm::tiled_access_pattern(gemm::KernelConfig::parse("t4x2_a8_wg16x8"));
  const auto tiled = verify_access_summary(summarize_tiled_gemm(pattern));
  EXPECT_EQ(tiled.precondition, "M >= 1 && K >= 1 && N >= 1");
  const auto batched =
      verify_access_summary(summarize_batched_tiled_gemm(pattern));
  EXPECT_EQ(batched.precondition, "M >= 1 && K >= 1 && N >= 1 && Batch >= 1");
}

TEST(SymbolicVerifier, HierarchicalKernelProvesSafe) {
  const auto result = verify_access_summary(summarize_hierarchical_gemm(8));
  EXPECT_EQ(result.verdict, Verdict::safe);
  for (const auto& device : perf::DeviceSpec::shipped()) {
    EXPECT_TRUE(check_capacity(summarize_hierarchical_gemm(8), device).empty())
        << device.name;
  }
}

TEST(SymbolicVerifier, CapacityIsCleanOnAllShippedDevices) {
  const auto devices = perf::DeviceSpec::shipped();
  ASSERT_EQ(devices.size(), 3u);
  for (const auto& config : gemm::enumerate_configs()) {
    const auto summary =
        summarize_tiled_gemm(gemm::tiled_access_pattern(config));
    for (const auto& device : devices) {
      const auto findings = check_capacity(summary, device);
      EXPECT_TRUE(findings.empty())
          << config.name() << " on " << device.name << ": "
          << (findings.empty() ? "" : findings[0].message);
    }
  }
}

TEST(SymbolicVerifier, WitnessCandidatesCoverTileBoundaries) {
  const auto pattern =
      gemm::tiled_access_pattern(gemm::KernelConfig::parse("t4x4_a2_wg8x8"));
  const auto shapes = witness_candidates(summarize_tiled_gemm(pattern));
  // The off-by-one shape M = pitch + 1 must be in the family — it is the
  // canonical edge-tile counterexample.
  const bool has_edge = std::any_of(
      shapes.begin(), shapes.end(),
      [](const WitnessShape& s) { return s.m == 5; });
  EXPECT_TRUE(has_edge);
  for (const auto& shape : shapes) {
    EXPECT_GE(shape.m, 1);
    EXPECT_GE(shape.k, 1);
    EXPECT_GE(shape.n, 1);
  }
}

TEST(SymbolicVerifier, WinogradBatchCountsAreInsideTheBatchedDomain) {
  // The conv lowerings run their multiplies as ONE batched launch of 16
  // (F(2x2,3x3)) or 36 (F(4x4,3x3)) entries. The batched-launch summaries
  // quantify over every batch count, so those concrete launches are points
  // of the verified domain — the certificates cover the conv layer too.
  const auto pattern =
      gemm::tiled_access_pattern(gemm::KernelConfig::parse("t4x2_a8_wg16x8"));
  const auto domain = domain_of(summarize_batched_tiled_gemm(pattern));
  for (const std::size_t batch :
       {conv::kWinogradF2Multiplies, conv::kWinogradF4Multiplies}) {
    Point p{};
    p[sym_index(Sym::m)] = 8;
    p[sym_index(Sym::k)] = 8;
    p[sym_index(Sym::n)] = 8;
    p[sym_index(Sym::batch)] = static_cast<std::int64_t>(batch);
    p[sym_index(Sym::batch_idx)] = static_cast<std::int64_t>(batch) - 1;
    EXPECT_TRUE(domain.contains(p)) << "batch " << batch;
  }
}

// --- certificates -----------------------------------------------------------

TEST(Certify, FullSpaceIsAllSafe) {
  const auto report = certify_space(gemm::enumerate_configs(),
                                    perf::DeviceSpec::shipped());
  EXPECT_EQ(report.configs_checked, 640u);
  EXPECT_EQ(report.devices_checked, 3u);
  EXPECT_EQ(report.certificates.size(), 640u * 3u);
  EXPECT_EQ(report.count(Verdict::unknown), 0u);
  EXPECT_EQ(report.count(Verdict::unsafe), 0u);
  EXPECT_TRUE(report.all_safe());
  const auto mask = report.safe_mask(640);
  EXPECT_EQ(mask.size(), 640u);
  for (const bool safe : mask) EXPECT_TRUE(safe);
}

TEST(Certify, ReportRoundTripsThroughCsv) {
  CertifyOptions options;
  options.max_configs = 5;
  const auto report = certify_space(gemm::enumerate_configs(),
                                    perf::DeviceSpec::shipped(), options);
  const auto path = std::filesystem::temp_directory_path() /
                    "akscheck_certify_roundtrip_test.csv";
  report.save_csv(path);
  const auto loaded = check::symbolic::CertifyReport::load_csv(path);
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.configs_checked, report.configs_checked);
  EXPECT_EQ(loaded.devices_checked, report.devices_checked);
  ASSERT_EQ(loaded.certificates.size(), report.certificates.size());
  for (std::size_t i = 0; i < report.certificates.size(); ++i) {
    EXPECT_EQ(loaded.certificates[i].config_index,
              report.certificates[i].config_index);
    EXPECT_EQ(loaded.certificates[i].config, report.certificates[i].config);
    EXPECT_EQ(loaded.certificates[i].device, report.certificates[i].device);
    EXPECT_EQ(loaded.certificates[i].verdict, report.certificates[i].verdict);
    EXPECT_EQ(loaded.certificates[i].precondition,
              report.certificates[i].precondition);
    EXPECT_EQ(loaded.certificates[i].witness, report.certificates[i].witness);
  }
}

TEST(Certify, SafeMaskFlagsNonSafeConfigs) {
  CertifyReport report;
  Certificate bad;
  bad.config_index = 1;
  bad.config = "x";
  bad.device = "d1";
  bad.verdict = Verdict::unsafe;
  report.certificates.push_back(bad);
  Certificate unknown;
  unknown.config_index = 2;
  unknown.config = "y";
  unknown.device = "d2";
  unknown.verdict = Verdict::unknown;
  report.certificates.push_back(unknown);
  const auto mask = report.safe_mask(4);
  EXPECT_TRUE(mask[0]);
  EXPECT_FALSE(mask[1]);  // unsafe
  EXPECT_FALSE(mask[2]);  // unknown is not safe
  EXPECT_TRUE(mask[3]);
  // Restricted to d1, only config 1 is masked.
  const auto d1 = report.safe_mask(4, "d1");
  EXPECT_FALSE(d1[1]);
  EXPECT_TRUE(d1[2]);
}

TEST(Certify, DifferentialAgreesOnSampledConfigs) {
  // A sampled slice of the full differential CI job: symbolic verdicts
  // versus dynamic replay must agree exactly.
  CertifyOptions options;
  options.max_configs = 8;
  const auto& configs = gemm::enumerate_configs();
  const auto devices = perf::DeviceSpec::shipped();
  const auto report = certify_space(configs, devices, options);
  const auto diff = differential_check(report, configs, devices, 4);
  EXPECT_GE(diff.configs_sampled, 4u);
  EXPECT_GT(diff.replays, 0u);
  for (const auto& mismatch : diff.mismatches) {
    ADD_FAILURE() << mismatch.config << " on " << mismatch.device << ": "
                  << mismatch.detail;
  }
  EXPECT_TRUE(diff.clean());
}

TEST(Verdict, NamesRoundTrip) {
  for (const Verdict v : {Verdict::safe, Verdict::unsafe, Verdict::unknown}) {
    EXPECT_EQ(parse_verdict(to_string(v)), v);
  }
}

// --- JSON export ------------------------------------------------------------

TEST(ReportJson, EscapesControlCharacters) {
  EXPECT_EQ(check::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ReportJson, RendersCertifyReport) {
  CertifyOptions options;
  options.max_configs = 2;
  const auto report = certify_space(gemm::enumerate_configs(),
                                    perf::DeviceSpec::shipped(), options);
  const std::string json = check::to_json(report);
  EXPECT_NE(json.find("\"tool\": \"akscheck-certify\""), std::string::npos);
  EXPECT_NE(json.find("\"ruleId\": \"certified-safe\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"SAFE\""), std::string::npos);
  EXPECT_NE(json.find("\"shapePrecondition\": \"M >= 1"), std::string::npos);
  EXPECT_NE(json.find("\"safe\": 6"), std::string::npos);
}

TEST(ReportJson, RendersLintReport) {
  gemm::KernelConfig bad;
  bad.wg_rows = 48;
  bad.wg_cols = 48;
  const std::vector<gemm::KernelConfig> configs = {bad};
  const auto devices = perf::DeviceSpec::shipped();
  const auto report = check::lint_configs(configs, devices);
  const std::string json = check::to_json(report);
  EXPECT_NE(json.find("\"tool\": \"akscheck-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"ruleId\": \"work_group_size\""), std::string::npos);
  EXPECT_NE(json.find("\"level\": \"error\""), std::string::npos);
}

}  // namespace
