// Integration tests: the full dataset -> prune -> select -> evaluate
// pipeline, including reproduction-level sanity on the paper's headline
// claims (loose bounds only; the exact figures live in the bench binaries
// and EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "check/symbolic/certificate.hpp"
#include "common/error.hpp"
#include "core/codegen.hpp"
#include "core/pipeline.hpp"
#include "dataset/benchmark_runner.hpp"
#include "gemm/reference.hpp"
#include "gemm/registry.hpp"
#include "ml/pca.hpp"
#include "syclrt/queue.hpp"

namespace aks::select {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::PerfDataset(data::build_paper_dataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const data::PerfDataset& dataset() { return *dataset_; }

 private:
  static data::PerfDataset* dataset_;
};

data::PerfDataset* PipelineTest::dataset_ = nullptr;

TEST_F(PipelineTest, PaperDatasetDimensions) {
  EXPECT_EQ(dataset().num_shapes(), 172u);  // the paper: 170
  EXPECT_EQ(dataset().num_configs(), 640u);
}

TEST_F(PipelineTest, Figure2LongTailReproduced) {
  const auto counts = dataset().optimal_counts();
  std::size_t winners = 0;
  std::size_t top = 0;
  for (const auto c : counts) {
    winners += c > 0 ? 1u : 0u;
    top = std::max(top, c);
  }
  // The paper: 58 distinct winners, top config wins 32. Shape check: a
  // long tail of tens of winners with one configuration clearly ahead.
  EXPECT_GE(winners, 40u);
  EXPECT_LE(winners, 100u);
  EXPECT_GE(top, 8u);
}

TEST_F(PipelineTest, Figure3VarianceConcentrationReproduced) {
  const auto split = dataset().split(0.8, 1);
  ml::Pca pca;
  pca.fit(split.train.scores());
  // The paper: 4 components -> >=80%, 8 -> ~90%, 15 -> ~95%.
  double cum4 = 0, cum8 = 0, cum15 = 0;
  const auto& ratios = pca.explained_variance_ratio();
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    if (i < 4) cum4 += ratios[i];
    if (i < 8) cum8 += ratios[i];
    if (i < 15) cum15 += ratios[i];
  }
  EXPECT_GT(cum4, 0.75);
  EXPECT_GT(cum8, 0.85);
  EXPECT_GT(cum15, 0.92);
}

TEST_F(PipelineTest, Figure4PruningCeilingsReproduced) {
  const auto split = dataset().split(0.8, 1);
  // At 15 configs every technique reaches ~95% of optimal.
  for (const auto& pruner : all_pruners(0)) {
    const auto configs = pruner->prune(split.train, 15);
    EXPECT_GT(pruning_ceiling(split.test, configs), 0.90) << pruner->name();
  }
}

TEST_F(PipelineTest, EndToEndPipelineProducesDeployableSelector) {
  PipelineOptions options;
  options.num_configs = 8;
  auto result = run_pipeline(dataset(), options);
  EXPECT_EQ(result.configs.size(), 8u);
  EXPECT_GT(result.ceiling, 0.8);
  EXPECT_GT(result.achieved, 0.5);
  EXPECT_LE(result.achieved, result.ceiling + 1e-12);
  EXPECT_LE(result.compiled_kernels, 8u);
  EXPECT_GE(result.compiled_kernels, 1u);
  ASSERT_NE(result.selector, nullptr);

  // The deployed selector must pick a runnable kernel for an unseen shape.
  const gemm::GemmShape shape{100, 80, 60};
  const auto config = result.selector->select_config(shape);
  std::vector<float> a(shape.m * shape.k, 1.0f);
  std::vector<float> b(shape.k * shape.n, 1.0f);
  std::vector<float> c(shape.m * shape.n);
  syclrt::Queue queue;
  gemm::launch_gemm(queue, config, a, b, c, shape);
  for (const float v : c) ASSERT_FLOAT_EQ(v, 80.0f);
}

TEST_F(PipelineTest, TableOneOrderingReproduced) {
  // The headline of Table I: the decision tree matches or beats the other
  // classifiers, and the radial SVM is far behind.
  PipelineOptions options;
  options.num_configs = 8;
  options.selector_method = SelectorMethod::kDecisionTree;
  const double tree = run_pipeline(dataset(), options).achieved;
  options.selector_method = SelectorMethod::k3Nn;
  const double knn3 = run_pipeline(dataset(), options).achieved;
  options.selector_method = SelectorMethod::kRadialSvm;
  const double radial = run_pipeline(dataset(), options).achieved;
  EXPECT_GT(tree, knn3 - 0.02);
  EXPECT_GT(tree, radial + 0.1);
}

TEST_F(PipelineTest, EveryMethodCombinationRuns) {
  data::ExtractionOptions extraction;
  extraction.vgg_batches = {1};
  extraction.resnet_batches = {1};
  extraction.mobilenet_batches = {1};
  const auto small = data::build_paper_dataset({}, extraction);
  for (const auto prune :
       {PruneMethod::kTopN, PruneMethod::kKMeans, PruneMethod::kHdbscan,
        PruneMethod::kPcaKMeans, PruneMethod::kDecisionTree}) {
    PipelineOptions options;
    options.num_configs = 5;
    options.prune_method = prune;
    const auto result = run_pipeline(small, options);
    EXPECT_EQ(result.configs.size(), 5u) << to_string(prune);
    EXPECT_GT(result.achieved, 0.0) << to_string(prune);
  }
}

TEST_F(PipelineTest, ScaleFeaturesFlagPropagates) {
  PipelineOptions options;
  options.num_configs = 5;
  options.selector_method = SelectorMethod::kRadialSvm;
  options.scale_features = true;
  const auto result = run_pipeline(dataset(), options);
  EXPECT_TRUE(result.selector->scales_features());
}

TEST_F(PipelineTest, CertifiedMaskGatesShippedConfigs) {
  PipelineOptions options;
  options.num_configs = 6;
  const auto baseline = run_pipeline(dataset(), options);
  // Revoke the certificate of every config the ungated run shipped: none of
  // them may appear again, and the budget is still met from certified ones.
  std::vector<bool> mask(dataset().num_configs(), true);
  for (const auto c : baseline.configs) mask[c] = false;
  options.certified_mask = mask;
  const auto gated = run_pipeline(dataset(), options);
  EXPECT_EQ(gated.configs.size(), 6u);
  for (const auto c : gated.configs) {
    EXPECT_TRUE(mask[c]) << "uncertified config " << c << " shipped";
  }
}

TEST_F(PipelineTest, SymbolicCertificatesAdmitTheFullSpaceEndToEnd) {
  // The real certificate chain: certify_space -> safe_mask -> pipeline.
  // Every shipped configuration proves SAFE, so gating on the certificates
  // must reproduce the ungated selection exactly.
  const auto report = check::symbolic::certify_space(
      gemm::enumerate_configs(), perf::DeviceSpec::shipped());
  ASSERT_TRUE(report.all_safe());
  PipelineOptions options;
  options.num_configs = 8;
  const auto baseline = run_pipeline(dataset(), options);
  options.certified_mask = report.safe_mask(dataset().num_configs());
  const auto gated = run_pipeline(dataset(), options);
  EXPECT_EQ(gated.configs, baseline.configs);
}

TEST_F(PipelineTest, RejectsDegenerateBudget) {
  PipelineOptions options;
  options.num_configs = 1;
  EXPECT_THROW((void)run_pipeline(dataset(), options), common::Error);
}

TEST_F(PipelineTest, MethodNamesRoundTrip) {
  EXPECT_EQ(to_string(PruneMethod::kPcaKMeans), "PCA+KMeans");
  EXPECT_EQ(to_string(SelectorMethod::kLinearSvm), "LinearSVM");
  EXPECT_EQ(make_pruner(PruneMethod::kHdbscan)->name(), "HDBScan");
  EXPECT_EQ(make_selector(SelectorMethod::k1Nn)->name(), "1NearestNeighbor");
}

TEST_F(PipelineTest, PipelineIsFullyDeterministic) {
  PipelineOptions options;
  options.num_configs = 6;
  const auto a = run_pipeline(dataset(), options);
  const auto b = run_pipeline(dataset(), options);
  EXPECT_EQ(a.configs, b.configs);
  EXPECT_DOUBLE_EQ(a.ceiling, b.ceiling);
  EXPECT_DOUBLE_EQ(a.achieved, b.achieved);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST_F(PipelineTest, DifferentSplitSeedsChangeTheNumbers) {
  PipelineOptions options;
  options.num_configs = 6;
  options.split_seed = 1;
  const auto a = run_pipeline(dataset(), options);
  options.split_seed = 2;
  const auto b = run_pipeline(dataset(), options);
  EXPECT_NE(a.achieved, b.achieved);
}

TEST_F(PipelineTest, ConfigsOfValidatesIndices) {
  EXPECT_EQ(configs_of({0, 639}).size(), 2u);
  EXPECT_THROW((void)configs_of({640}), common::Error);
}

TEST_F(PipelineTest, CodegenDeploymentEndToEnd) {
  // Full deployment path: pipeline -> tree selector -> generated C++.
  PipelineOptions options;
  options.num_configs = 6;
  auto result = run_pipeline(dataset(), options);
  const auto* tree_selector =
      dynamic_cast<const DecisionTreeSelector*>(result.selector.get());
  ASSERT_NE(tree_selector, nullptr);
  const std::string code = generate_selector_code(*tree_selector);
  EXPECT_GT(code.size(), 200u);
}

}  // namespace
}  // namespace aks::select
