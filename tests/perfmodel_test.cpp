#include <gtest/gtest.h>

#include "common/error.hpp"
#include "perfmodel/cost_model.hpp"

namespace aks::perf {
namespace {

gemm::KernelConfig balanced_config() { return {4, 4, 4, 8, 8}; }

TEST(DeviceSpec, R9NanoPeakFlops) {
  // 64 CUs x 64 lanes x 2 flops x 1.0 GHz = 8.192 TFLOP/s.
  EXPECT_NEAR(DeviceSpec::amd_r9_nano().peak_flops(), 8.192e12, 1e9);
}

TEST(DeviceSpec, DevicesAreOrderedByCapability) {
  const auto nano = DeviceSpec::amd_r9_nano();
  const auto igpu = DeviceSpec::integrated_gpu();
  const auto embedded = DeviceSpec::embedded_accelerator();
  EXPECT_GT(nano.peak_flops(), igpu.peak_flops());
  EXPECT_GT(igpu.peak_flops(), embedded.peak_flops());
  EXPECT_GT(nano.dram_bw_gbps, igpu.dram_bw_gbps);
}

TEST(CostModel, RejectsDegenerateInput) {
  const CostModel model(DeviceSpec::amd_r9_nano());
  EXPECT_THROW((void)model.predict_seconds(balanced_config(), {0, 4, 4}),
               common::Error);
  DeviceSpec bad = DeviceSpec::amd_r9_nano();
  bad.num_cus = 0;
  EXPECT_THROW(CostModel{bad}, common::Error);
}

TEST(CostModel, BreakdownIsConsistent) {
  const CostModel model(DeviceSpec::amd_r9_nano());
  const auto b = model.evaluate(balanced_config(), {512, 512, 512});
  EXPECT_GT(b.compute_s, 0.0);
  EXPECT_GT(b.memory_s, 0.0);
  EXPECT_GT(b.launch_s, 0.0);
  EXPECT_GE(b.total_s, std::max(b.compute_s, b.memory_s));
  EXPECT_GT(b.lane_utilization, 0.0);
  EXPECT_LE(b.lane_utilization, 1.0);
  EXPECT_GT(b.occupancy_waves, 0.0);
  EXPECT_LE(b.occupancy_waves, DeviceSpec::amd_r9_nano().max_waves_per_cu);
  EXPECT_GT(b.flops_fraction, 0.0);
  EXPECT_LT(b.flops_fraction, 1.0);
}

TEST(CostModel, MoreWorkTakesLonger) {
  const CostModel model(DeviceSpec::amd_r9_nano());
  const auto config = balanced_config();
  EXPECT_LT(model.predict_seconds(config, {256, 256, 256}),
            model.predict_seconds(config, {1024, 1024, 1024}));
  EXPECT_LT(model.predict_seconds(config, {1024, 256, 1024}),
            model.predict_seconds(config, {1024, 1024, 1024}));
}

TEST(CostModel, SlowerDeviceIsSlower) {
  const auto config = balanced_config();
  const gemm::GemmShape shape{1024, 512, 1024};
  const CostModel nano(DeviceSpec::amd_r9_nano());
  const CostModel embedded(DeviceSpec::embedded_accelerator());
  EXPECT_LT(nano.predict_seconds(config, shape),
            embedded.predict_seconds(config, shape));
}

TEST(CostModel, TailWastePenalisesBigTilesOnTinyShapes) {
  // A 1-row GEMM wastes almost every lane of an 8x8-tile kernel.
  const CostModel model(DeviceSpec::amd_r9_nano());
  const gemm::GemmShape tiny{1, 4096, 1000};
  const double small_tile =
      model.predict_seconds({1, 1, 4, 1, 128}, tiny);
  const double big_tile = model.predict_seconds({8, 8, 4, 8, 8}, tiny);
  EXPECT_LT(small_tile, big_tile);
}

TEST(CostModel, LaneUtilizationReflectsPadding) {
  const CostModel model(DeviceSpec::amd_r9_nano());
  // Perfectly aligned launch vs heavily padded launch.
  const auto aligned = model.evaluate({4, 4, 4, 8, 8}, {512, 64, 512});
  const auto padded = model.evaluate({8, 8, 4, 16, 16}, {9, 64, 9});
  EXPECT_GT(aligned.lane_utilization, padded.lane_utilization);
}

TEST(CostModel, RegisterPressureLowersOccupancy) {
  const CostModel model(DeviceSpec::amd_r9_nano());
  const gemm::GemmShape shape{2048, 512, 2048};
  const auto light = model.evaluate({1, 1, 1, 8, 8}, shape);
  const auto heavy = model.evaluate({8, 8, 8, 8, 8}, shape);
  EXPECT_GT(light.occupancy_waves, heavy.occupancy_waves);
}

TEST(CostModel, CacheFitReducesTraffic) {
  const CostModel model(DeviceSpec::amd_r9_nano());
  // A fits in LLC for the small-K case; per-element traffic should be
  // lower than the LLC-busting case.
  const auto fits = model.evaluate(balanced_config(), {512, 256, 4096});
  const auto busts = model.evaluate(balanced_config(), {8192, 2048, 4096});
  const double fit_ratio = fits.dram_bytes / gemm::GemmShape{512, 256, 4096}.min_bytes();
  const double bust_ratio =
      busts.dram_bytes / gemm::GemmShape{8192, 2048, 4096}.min_bytes();
  EXPECT_LT(fit_ratio, bust_ratio);
}

TEST(CostModel, LargerAccumulatorAmortisesLoopOverhead) {
  const CostModel model(DeviceSpec::amd_r9_nano());
  // Compute-bound shape; identical tiles, different accumulator step.
  const gemm::GemmShape shape{2048, 2048, 2048};
  const double acc1 = model.predict_seconds({4, 4, 1, 8, 8}, shape);
  const double acc4 = model.predict_seconds({4, 4, 4, 8, 8}, shape);
  EXPECT_LT(acc4, acc1);
}

TEST(CostModel, WiderAccessesFixStridedCoalescing) {
  const CostModel model(DeviceSpec::amd_r9_nano());
  // A-traffic-dominated shape with a column-major (128,1) work-group:
  // lanes span tile rows, so A reads are strided and their efficiency is
  // set by the per-lane contiguous width (acc_size floats). Wider accesses
  // must reduce memory time; on a row-major work-group the same change
  // must not matter (reads are already coalesced).
  const gemm::GemmShape shape{4096, 2048, 64};
  const double strided_narrow =
      model.evaluate({2, 2, 1, 128, 1}, shape).memory_s;
  const double strided_wide =
      model.evaluate({2, 2, 8, 128, 1}, shape).memory_s;
  EXPECT_GT(strided_narrow, 1.5 * strided_wide);

  // The same acc change on a row-major work-group still shifts memory time
  // a little (register pressure changes occupancy), but the strided case
  // must benefit far more — that extra factor is the coalescing effect.
  const double coalesced_narrow =
      model.evaluate({2, 2, 1, 8, 32}, shape).memory_s;
  const double coalesced_wide =
      model.evaluate({2, 2, 8, 8, 32}, shape).memory_s;
  EXPECT_GT(strided_narrow / strided_wide,
            2.0 * coalesced_narrow / coalesced_wide);
}

TEST(TimingModel, NoiseIsDeterministic) {
  const TimingModel timing(DeviceSpec::amd_r9_nano(), 0.05, 7);
  const auto config = balanced_config();
  const gemm::GemmShape shape{128, 128, 128};
  EXPECT_DOUBLE_EQ(timing.time_run(config, shape, 3),
                   timing.time_run(config, shape, 3));
  EXPECT_NE(timing.time_run(config, shape, 3),
            timing.time_run(config, shape, 4));
}

TEST(TimingModel, SeedChangesNoise) {
  const TimingModel a(DeviceSpec::amd_r9_nano(), 0.05, 1);
  const TimingModel b(DeviceSpec::amd_r9_nano(), 0.05, 2);
  EXPECT_NE(a.time_run(balanced_config(), {128, 128, 128}),
            b.time_run(balanced_config(), {128, 128, 128}));
}

TEST(TimingModel, ZeroSigmaMatchesModelExactly) {
  const TimingModel timing(DeviceSpec::amd_r9_nano(), 0.0, 7);
  const auto config = balanced_config();
  const gemm::GemmShape shape{128, 128, 128};
  EXPECT_DOUBLE_EQ(timing.time_run(config, shape),
                   timing.model().predict_seconds(config, shape));
}

TEST(TimingModel, BestOfNeverExceedsSingleRun) {
  const TimingModel timing(DeviceSpec::amd_r9_nano(), 0.1, 7);
  const auto config = balanced_config();
  const gemm::GemmShape shape{256, 64, 256};
  EXPECT_LE(timing.best_of(config, shape, 10),
            timing.time_run(config, shape, 0));
  EXPECT_THROW((void)timing.best_of(config, shape, 0), common::Error);
}

TEST(TimingModel, NoiseStaysNearModel) {
  const TimingModel timing(DeviceSpec::amd_r9_nano(), 0.03, 7);
  const auto config = balanced_config();
  const gemm::GemmShape shape{512, 128, 512};
  const double base = timing.model().predict_seconds(config, shape);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const double t = timing.time_run(config, shape, i);
    EXPECT_GT(t, base * 0.8);
    EXPECT_LT(t, base * 1.25);
  }
}

TEST(TimingModel, RejectsNegativeSigma) {
  EXPECT_THROW(TimingModel(DeviceSpec::amd_r9_nano(), -0.1), common::Error);
}

}  // namespace
}  // namespace aks::perf
