#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {
namespace {

TEST(Linalg, MatmulKnownProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Linalg, MatmulShapeMismatchThrows) {
  EXPECT_THROW((void)matmul(Matrix(2, 3), Matrix(2, 3)), common::Error);
}

TEST(Linalg, MatvecMatchesMatmul) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const double x[] = {1, 0, -1};
  const auto y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], -2);
  EXPECT_DOUBLE_EQ(y[1], -2);
  EXPECT_THROW((void)matvec(a, std::vector<double>{1.0}), common::Error);
}

TEST(Linalg, DotNormDistance) {
  const double a[] = {3, 4};
  const double b[] = {0, 0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25);
  EXPECT_DOUBLE_EQ(norm(a), 5);
  EXPECT_DOUBLE_EQ(distance(a, b), 5);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25);
  EXPECT_THROW((void)dot(a, std::vector<double>{1.0}), common::Error);
}

TEST(Linalg, ColumnMeansAndCentering) {
  const Matrix x{{1, 10}, {3, 20}};
  const auto means = column_means(x);
  EXPECT_DOUBLE_EQ(means[0], 2);
  EXPECT_DOUBLE_EQ(means[1], 15);
  const Matrix centered = center_columns(x, means);
  EXPECT_DOUBLE_EQ(centered(0, 0), -1);
  EXPECT_DOUBLE_EQ(centered(1, 1), 5);
  const auto new_means = column_means(centered);
  EXPECT_NEAR(new_means[0], 0, 1e-15);
  EXPECT_NEAR(new_means[1], 0, 1e-15);
}

TEST(Linalg, CovarianceDiagonalIsVariance) {
  const Matrix x{{1, 0}, {2, 0}, {3, 0}};
  const Matrix cov = covariance(x);
  EXPECT_DOUBLE_EQ(cov(0, 0), 1.0);  // var{1,2,3} = 1 (n-1 denom)
  EXPECT_DOUBLE_EQ(cov(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 0.0);
}

TEST(Linalg, CovarianceIsSymmetric) {
  common::Rng rng(1);
  Matrix x(20, 5);
  for (auto& v : x.data()) v = rng.normal();
  const Matrix cov = covariance(x);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(cov(i, j), cov(j, i));
}

TEST(Eigen, DiagonalMatrixEigenvaluesSorted) {
  const Matrix a{{2, 0, 0}, {0, 5, 0}, {0, 0, 1}};
  const auto result = symmetric_eigen(a);
  ASSERT_EQ(result.eigenvalues.size(), 3u);
  EXPECT_NEAR(result.eigenvalues[0], 5, 1e-10);
  EXPECT_NEAR(result.eigenvalues[1], 2, 1e-10);
  EXPECT_NEAR(result.eigenvalues[2], 1, 1e-10);
}

TEST(Eigen, Known2x2) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a{{2, 1}, {1, 2}};
  const auto result = symmetric_eigen(a);
  EXPECT_NEAR(result.eigenvalues[0], 3, 1e-10);
  EXPECT_NEAR(result.eigenvalues[1], 1, 1e-10);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(result.eigenvectors(0, 0)), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::abs(result.eigenvectors(0, 1)), inv_sqrt2, 1e-10);
}

TEST(Eigen, ReconstructsRandomSymmetricMatrix) {
  common::Rng rng(7);
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  const auto result = symmetric_eigen(a);
  // A v_i = lambda_i v_i for every eigenpair.
  for (std::size_t comp = 0; comp < n; ++comp) {
    const auto av = matvec(a, result.eigenvectors.row(comp));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], result.eigenvalues[comp] * result.eigenvectors(comp, i),
                  1e-8);
    }
  }
}

TEST(Eigen, EigenvectorsAreOrthonormal) {
  common::Rng rng(9);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      a(j, i) = a(i, j);
    }
  const auto result = symmetric_eigen(a);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double expected = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(dot(result.eigenvectors.row(i), result.eigenvectors.row(j)),
                  expected, 1e-9);
    }
  }
}

TEST(Eigen, TraceEqualsEigenvalueSum) {
  common::Rng rng(3);
  const std::size_t n = 10;
  Matrix a(n, n);
  double trace = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
    trace += a(i, i);
  }
  const auto result = symmetric_eigen(a);
  double sum = 0;
  for (const double v : result.eigenvalues) sum += v;
  EXPECT_NEAR(sum, trace, 1e-9);
}

TEST(Eigen, NonSquareThrows) {
  EXPECT_THROW((void)symmetric_eigen(Matrix(2, 3)), common::Error);
}

TEST(Linalg, PairwiseDistancesProperties) {
  const Matrix x{{0, 0}, {3, 4}, {6, 8}};
  const Matrix d = pairwise_distances(x);
  EXPECT_DOUBLE_EQ(d(0, 0), 0);
  EXPECT_DOUBLE_EQ(d(0, 1), 5);
  EXPECT_DOUBLE_EQ(d(1, 0), 5);
  EXPECT_DOUBLE_EQ(d(0, 2), 10);
  // Triangle inequality on this collinear set is tight.
  EXPECT_NEAR(d(0, 2), d(0, 1) + d(1, 2), 1e-12);
}

}  // namespace
}  // namespace aks::ml
