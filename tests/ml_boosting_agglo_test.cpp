#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/agglomerative.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/linalg.hpp"
#include "ml/metrics.hpp"
#include "ml/model_selection.hpp"

namespace aks::ml {
namespace {

void threshold_problem(std::size_t n, std::uint64_t seed, Matrix& x,
                       std::vector<int>& y) {
  common::Rng rng(seed);
  x.resize(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0, 100);
    x(i, 1) = rng.uniform(0, 100);
    y[i] = x(i, 0) <= 50 ? (x(i, 1) <= 30 ? 0 : 1) : 2;
  }
}

TEST(Gbm, LearnsThresholdProblem) {
  Matrix x, x_test;
  std::vector<int> y, y_test;
  threshold_problem(300, 1, x, y);
  threshold_problem(100, 2, x_test, y_test);
  GradientBoostedClassifier gbm;
  gbm.fit(x, y);
  EXPECT_GT(accuracy(y, gbm.predict(x)), 0.98);
  EXPECT_GT(accuracy(y_test, gbm.predict(x_test)), 0.93);
  EXPECT_EQ(gbm.num_classes(), 3);
  EXPECT_EQ(gbm.num_rounds(), 50u);
}

TEST(Gbm, MoreRoundsImproveTrainingFit) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(200, 3, x, y);
  GbmOptions few;
  few.n_rounds = 2;
  GradientBoostedClassifier small(few);
  small.fit(x, y);
  GbmOptions many;
  many.n_rounds = 40;
  GradientBoostedClassifier large(many);
  large.fit(x, y);
  EXPECT_GE(accuracy(y, large.predict(x)), accuracy(y, small.predict(x)));
}

TEST(Gbm, DecisionScoresOrderedForConfidentPoints) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(200, 4, x, y);
  GradientBoostedClassifier gbm;
  gbm.fit(x, y);
  // Deep inside class-2 territory the class-2 score must dominate.
  const double probe[] = {90.0, 50.0};
  const auto scores = gbm.decision_row(probe);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[2], scores[0]);
  EXPECT_GT(scores[2], scores[1]);
}

TEST(Gbm, BinaryProblemWorks) {
  common::Rng rng(5);
  Matrix x(80, 1);
  std::vector<int> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    y[i] = x(i, 0) > 5.0 ? 1 : 0;
  }
  GradientBoostedClassifier gbm;
  gbm.fit(x, y);
  EXPECT_GT(accuracy(y, gbm.predict(x)), 0.97);
}

TEST(Gbm, RejectsBadOptions) {
  GbmOptions zero;
  zero.n_rounds = 0;
  EXPECT_THROW(GradientBoostedClassifier{zero}, common::Error);
  GbmOptions lr;
  lr.learning_rate = 0.0;
  EXPECT_THROW(GradientBoostedClassifier{lr}, common::Error);
  GradientBoostedClassifier gbm;
  EXPECT_THROW(gbm.fit(Matrix(3, 1), {0, 1}), common::Error);
  EXPECT_THROW((void)gbm.predict_row(std::vector<double>{1.0}), common::Error);
}

Matrix blobs(std::size_t per_blob, std::uint64_t seed) {
  common::Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix x(3 * per_blob, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      x(b * per_blob + i, 0) = centers[b][0] + rng.normal(0, 0.4);
      x(b * per_blob + i, 1) = centers[b][1] + rng.normal(0, 0.4);
    }
  }
  return x;
}

TEST(Agglomerative, RecoversBlobsAtExactBudget) {
  const Matrix x = blobs(15, 1);
  Agglomerative agg(AgglomerativeOptions{3, Linkage::kAverage});
  agg.fit(x);
  EXPECT_EQ(agg.num_clusters(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t label = agg.labels()[b * 15];
    for (std::size_t i = 1; i < 15; ++i) {
      EXPECT_EQ(agg.labels()[b * 15 + i], label) << "blob " << b;
    }
  }
}

TEST(Agglomerative, AllLinkagesSolveSeparatedBlobs) {
  const Matrix x = blobs(12, 2);
  for (const auto linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    Agglomerative agg(AgglomerativeOptions{3, linkage});
    agg.fit(x);
    std::set<std::size_t> labels(agg.labels().begin(), agg.labels().end());
    EXPECT_EQ(labels.size(), 3u);
  }
}

TEST(Agglomerative, MergeDistancesAreRecorded) {
  const Matrix x = blobs(10, 3);
  Agglomerative agg(AgglomerativeOptions{2, Linkage::kAverage});
  agg.fit(x);
  // n - n_clusters merges.
  EXPECT_EQ(agg.merge_distances().size(), 28u);
  // The final merges (joining blobs) must be far larger than the first
  // (joining neighbours inside a blob).
  EXPECT_GT(agg.merge_distances().back(), 5.0 * agg.merge_distances().front());
}

TEST(Agglomerative, MedoidsBelongToTheirClusters) {
  const Matrix x = blobs(10, 4);
  Agglomerative agg(AgglomerativeOptions{3, Linkage::kAverage});
  agg.fit(x);
  const auto medoids = agg.medoid_rows(x);
  ASSERT_EQ(medoids.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(agg.labels()[medoids[c]], c);
  }
}

TEST(Agglomerative, DeterministicAcrossRuns) {
  const Matrix x = blobs(8, 5);
  Agglomerative a(AgglomerativeOptions{4, Linkage::kAverage});
  a.fit(x);
  Agglomerative b(AgglomerativeOptions{4, Linkage::kAverage});
  b.fit(x);
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(Agglomerative, SingleClusterGroupsEverything) {
  const Matrix x = blobs(5, 6);
  Agglomerative agg(AgglomerativeOptions{1, Linkage::kComplete});
  agg.fit(x);
  EXPECT_EQ(agg.num_clusters(), 1u);
  for (const auto label : agg.labels()) EXPECT_EQ(label, 0u);
}

TEST(Agglomerative, RejectsBadInput) {
  EXPECT_THROW(Agglomerative(AgglomerativeOptions{0, Linkage::kAverage}),
               common::Error);
  Agglomerative agg(AgglomerativeOptions{5, Linkage::kAverage});
  EXPECT_THROW(agg.fit(Matrix(3, 2)), common::Error);
}

TEST(ModelSelection, KFoldPartitionsAreDisjointAndComplete) {
  const auto folds = k_fold(23, 4, 7);
  ASSERT_EQ(folds.size(), 4u);
  std::set<std::size_t> all_validation;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.validation.size(), 23u);
    for (const std::size_t v : fold.validation) {
      EXPECT_TRUE(all_validation.insert(v).second) << "row in two folds";
    }
    // Train and validation are disjoint.
    std::set<std::size_t> train(fold.train.begin(), fold.train.end());
    for (const std::size_t v : fold.validation) EXPECT_EQ(train.count(v), 0u);
  }
  EXPECT_EQ(all_validation.size(), 23u);
}

TEST(ModelSelection, FoldSizesBalanced) {
  const auto folds = k_fold(10, 3, 1);
  for (const auto& fold : folds) {
    EXPECT_GE(fold.validation.size(), 3u);
    EXPECT_LE(fold.validation.size(), 4u);
  }
}

TEST(ModelSelection, CrossValScoresLearnableProblemHighly) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(150, 8, x, y);
  const double score = cross_val_accuracy(
      [](const Matrix& x_train, const std::vector<int>& y_train,
         const Matrix& x_val) {
        DecisionTreeClassifier tree;
        tree.fit(x_train, y_train);
        return tree.predict(x_val);
      },
      x, y, 5, 3);
  EXPECT_GT(score, 0.9);
}

TEST(ModelSelection, CrossValRejectsBadInput) {
  EXPECT_THROW((void)k_fold(3, 5, 1), common::Error);
  EXPECT_THROW((void)k_fold(10, 1, 1), common::Error);
  Matrix x(4, 1);
  EXPECT_THROW(
      (void)cross_val_accuracy(nullptr, x, {0, 1, 0, 1}, 2, 1),
      common::Error);
}

}  // namespace
}  // namespace aks::ml
