#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/cluster_metrics.hpp"
#include "ml/kmeans.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {
namespace {

Matrix blobs(std::size_t per_blob, double spread, std::uint64_t seed) {
  common::Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix x(3 * per_blob, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      x(b * per_blob + i, 0) = centers[b][0] + rng.normal(0, spread);
      x(b * per_blob + i, 1) = centers[b][1] + rng.normal(0, spread);
    }
  }
  return x;
}

std::vector<std::size_t> true_labels(std::size_t per_blob) {
  std::vector<std::size_t> labels(3 * per_blob);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i / per_blob;
  return labels;
}

TEST(Silhouette, HighForWellSeparatedBlobs) {
  const Matrix x = blobs(15, 0.3, 1);
  const double s = silhouette_score(x, true_labels(15));
  EXPECT_GT(s, 0.8);
  EXPECT_LE(s, 1.0);
}

TEST(Silhouette, DropsWhenBlobsOverlap) {
  const double tight = silhouette_score(blobs(15, 0.3, 2), true_labels(15));
  const double loose = silhouette_score(blobs(15, 3.5, 2), true_labels(15));
  EXPECT_GT(tight, loose);
}

TEST(Silhouette, BadLabellingScoresLow) {
  const Matrix x = blobs(12, 0.3, 3);
  // Labels orthogonal to the true structure.
  std::vector<std::size_t> shuffled(x.rows());
  for (std::size_t i = 0; i < shuffled.size(); ++i) shuffled[i] = i % 3;
  const double good = silhouette_score(x, true_labels(12));
  const double bad = silhouette_score(x, shuffled);
  EXPECT_GT(good, bad + 0.5);
}

TEST(Silhouette, TrueKScoresBestOnKMeansLabels) {
  const Matrix x = blobs(20, 0.4, 4);
  double best_score = -2.0;
  int best_k = 0;
  for (const int k : {2, 3, 4, 5, 6}) {
    KMeansOptions options;
    options.n_clusters = k;
    options.seed = 7;
    KMeans km(options);
    km.fit(x);
    const double s = silhouette_score(x, km.labels());
    if (s > best_score) {
      best_score = s;
      best_k = k;
    }
  }
  EXPECT_EQ(best_k, 3);
}

TEST(DaviesBouldin, LowerForTighterClusters) {
  const double tight = davies_bouldin_index(blobs(15, 0.3, 5), true_labels(15));
  const double loose = davies_bouldin_index(blobs(15, 2.0, 5), true_labels(15));
  EXPECT_LT(tight, loose);
  EXPECT_GT(tight, 0.0);
}

TEST(ClusterMetrics, RejectBadInput) {
  const Matrix x = blobs(5, 0.3, 6);
  std::vector<std::size_t> one_cluster(x.rows(), 0);
  EXPECT_THROW((void)silhouette_score(x, one_cluster), common::Error);
  EXPECT_THROW((void)davies_bouldin_index(x, one_cluster), common::Error);
  std::vector<std::size_t> short_labels(3, 0);
  EXPECT_THROW((void)silhouette_score(x, short_labels), common::Error);
}

TEST(Silhouette, SingletonClustersContributeZero) {
  // Two points in one cluster, one isolated singleton.
  Matrix x{{0, 0}, {0.1, 0}, {10, 10}};
  std::vector<std::size_t> labels{0, 0, 1};
  const double s = silhouette_score(x, labels);
  // The pair scores near 1; the singleton contributes 0; mean ~ 2/3.
  EXPECT_GT(s, 0.6);
  EXPECT_LT(s, 0.7);
}

}  // namespace
}  // namespace aks::ml
