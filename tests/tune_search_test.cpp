#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "perfmodel/cost_model.hpp"
#include "tune/search.hpp"

namespace aks::tune {
namespace {

/// A smooth synthetic objective with a unique known optimum at
/// (rt=4, ct=4, acc=8, wg=(16,16)); distance-based so hill climbing works.
double synthetic_objective(const gemm::KernelConfig& config) {
  auto level = [](int v) { return std::log2(static_cast<double>(v)); };
  const double d_rt = level(config.row_tile) - 2.0;
  const double d_ct = level(config.col_tile) - 2.0;
  const double d_acc = level(config.acc_size) - 3.0;
  const double d_wg = level(config.wg_rows * config.wg_cols) - 8.0;
  const double d_sq = level(config.wg_rows) - level(config.wg_cols);
  return 1.0 + d_rt * d_rt + d_ct * d_ct + d_acc * d_acc + 0.5 * d_wg * d_wg +
         0.25 * d_sq * d_sq;
}

/// Modelled-runtime objective on the R9 Nano for one realistic shape.
Objective model_objective(const gemm::GemmShape& shape) {
  static const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());
  return [shape](const gemm::KernelConfig& config) {
    return model.predict_seconds(config, shape);
  };
}

TEST(ExhaustiveSearch, FindsSyntheticOptimum) {
  const auto result = exhaustive_search(synthetic_objective);
  EXPECT_EQ(result.evaluations, 640u);
  EXPECT_DOUBLE_EQ(result.best_value, 1.0);
  EXPECT_EQ(result.best.row_tile, 4);
  EXPECT_EQ(result.best.col_tile, 4);
  EXPECT_EQ(result.best.acc_size, 8);
  EXPECT_EQ(result.best.wg_rows, 16);
  EXPECT_EQ(result.best.wg_cols, 16);
}

TEST(ExhaustiveSearch, TrajectoryIsMonotoneNonIncreasing) {
  const auto result = exhaustive_search(synthetic_objective);
  ASSERT_EQ(result.trajectory.size(), 640u);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i], result.trajectory[i - 1]);
  }
  EXPECT_DOUBLE_EQ(result.trajectory.back(), result.best_value);
}

TEST(RandomSearch, RespectsBudgetAndIsDeterministic) {
  const auto a = random_search(synthetic_objective, 50, 7);
  const auto b = random_search(synthetic_objective, 50, 7);
  EXPECT_LE(a.evaluations, 50u);
  EXPECT_GT(a.evaluations, 25u);  // sampling without replacement mostly works
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best, b.best);
}

TEST(RandomSearch, FullBudgetMatchesExhaustive) {
  const auto exhaustive = exhaustive_search(synthetic_objective);
  const auto random = random_search(synthetic_objective, 640, 3);
  // With budget == space size, random search (deduplicated) converges to
  // the optimum if it manages to touch every point; allow a small slack
  // because the attempt cap may stop it early.
  EXPECT_LE(random.best_value, exhaustive.best_value * 1.2);
}

TEST(RandomSearch, MoreBudgetNeverHurts) {
  const auto small = random_search(synthetic_objective, 10, 11);
  const auto large = random_search(synthetic_objective, 200, 11);
  EXPECT_LE(large.best_value, small.best_value);
}

TEST(SimulatedAnnealing, CompetitiveWithRandomAtEqualBudget) {
  // In this tiny 4-D space random sampling is a strong baseline, so only
  // competitiveness is asserted; averaged over seeds to avoid flakiness.
  double annealing_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    AnnealingOptions options;
    options.budget = 60;
    options.seed = seed;
    annealing_total += simulated_annealing(synthetic_objective, options).best_value;
    random_total += random_search(synthetic_objective, 60, seed).best_value;
  }
  EXPECT_LE(annealing_total, random_total * 1.25);
}

TEST(SimulatedAnnealing, RespectsBudget) {
  AnnealingOptions options;
  options.budget = 30;
  const auto result = simulated_annealing(synthetic_objective, options);
  EXPECT_LE(result.evaluations, 30u);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(SimulatedAnnealing, RejectsBadOptions) {
  AnnealingOptions zero;
  zero.budget = 0;
  EXPECT_THROW((void)simulated_annealing(synthetic_objective, zero),
               common::Error);
  AnnealingOptions cooling;
  cooling.cooling = 1.5;
  EXPECT_THROW((void)simulated_annealing(synthetic_objective, cooling),
               common::Error);
}

TEST(EvolutionarySearch, ConvergesNearOptimumOnSmoothObjective) {
  EvolutionOptions options;
  options.budget = 150;
  options.seed = 5;
  const auto result = evolutionary_search(synthetic_objective, options);
  EXPECT_LE(result.evaluations, 150u);
  // Optimum is 1.0; within 30% is a strong basin hit on 640 points.
  EXPECT_LT(result.best_value, 1.3);
}

TEST(EvolutionarySearch, DeterministicForSeed) {
  EvolutionOptions options;
  options.budget = 80;
  options.seed = 9;
  const auto a = evolutionary_search(synthetic_objective, options);
  const auto b = evolutionary_search(synthetic_objective, options);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
}

TEST(EvolutionarySearch, RejectsBadOptions) {
  EvolutionOptions pop;
  pop.population = 1;
  EXPECT_THROW((void)evolutionary_search(synthetic_objective, pop),
               common::Error);
}

TEST(SearchOnCostModel, AllMethodsFindGoodConfigsForRealShape) {
  // On the actual device model, each budgeted method should land within
  // 25% of the exhaustive optimum for a large conv shape.
  const auto objective = model_objective({3136, 576, 128});
  const auto truth = exhaustive_search(objective);
  ASSERT_GT(truth.best_value, 0.0);

  const auto random = random_search(objective, 80, 1);
  AnnealingOptions aopts;
  aopts.budget = 80;
  aopts.seed = 1;
  const auto annealing = simulated_annealing(objective, aopts);
  EvolutionOptions eopts;
  eopts.budget = 80;
  eopts.seed = 1;
  const auto evolution = evolutionary_search(objective, eopts);

  EXPECT_LT(random.best_value, truth.best_value * 1.25);
  EXPECT_LT(annealing.best_value, truth.best_value * 1.25);
  EXPECT_LT(evolution.best_value, truth.best_value * 1.25);
}

TEST(SearchOnCostModel, NonFiniteObjectiveIsRejected) {
  const Objective bad = [](const gemm::KernelConfig&) {
    return std::numeric_limits<double>::quiet_NaN();
  };
  EXPECT_THROW((void)random_search(bad, 5, 1), common::Error);
}

}  // namespace
}  // namespace aks::tune
