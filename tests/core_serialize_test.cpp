#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/pruning.hpp"
#include "core/serialize.hpp"
#include "dataset/benchmark_runner.hpp"

namespace aks::select {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("aks_serialize_" + name);
}

class SerializeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::ExtractionOptions extraction;
    extraction.vgg_batches = {1};
    extraction.resnet_batches = {1};
    extraction.mobilenet_batches = {1};
    const auto dataset = data::build_paper_dataset({}, extraction);
    split_ = new data::DatasetSplit(dataset.split(0.8, 5));
    DecisionTreePruner pruner;
    selector_ = new DecisionTreeSelector();
    selector_->fit(split_->train, pruner.prune(split_->train, 8));
  }
  static void TearDownTestSuite() {
    delete split_;
    delete selector_;
    split_ = nullptr;
    selector_ = nullptr;
  }
  static const data::DatasetSplit& split() { return *split_; }
  static const DecisionTreeSelector& selector() { return *selector_; }

 private:
  static data::DatasetSplit* split_;
  static DecisionTreeSelector* selector_;
};

data::DatasetSplit* SerializeTest::split_ = nullptr;
DecisionTreeSelector* SerializeTest::selector_ = nullptr;

TEST_F(SerializeTest, RoundTripPreservesEveryDecision) {
  const auto path = temp_path("roundtrip.txt");
  save_selector(selector(), path);
  const auto loaded = load_selector(path);

  EXPECT_EQ(loaded.allowed(), selector().allowed());
  // Decisions must be identical on the dataset and on random probes
  // (thresholds are stored as hex doubles, so exactly).
  for (std::size_t r = 0; r < split().test.num_shapes(); ++r) {
    const auto row = split().test.features().row(r);
    EXPECT_EQ(loaded.select(row), selector().select(row));
  }
  common::Rng rng(5);
  for (int probe = 0; probe < 500; ++probe) {
    const double features[3] = {rng.uniform(1, 300000), rng.uniform(1, 30000),
                                rng.uniform(1, 5000)};
    EXPECT_EQ(loaded.select(features), selector().select(features));
  }
  std::filesystem::remove(path);
}

TEST_F(SerializeTest, LoadedSelectorSupportsCodegen) {
  const auto path = temp_path("codegen.txt");
  save_selector(selector(), path);
  const auto loaded = load_selector(path);
  // The loaded selector can feed the code generator (deployment path).
  EXPECT_NO_THROW({
    const auto config = loaded.select_config({128, 128, 128});
    (void)config;
  });
  std::filesystem::remove(path);
}

TEST_F(SerializeTest, UnfittedSelectorRejected) {
  DecisionTreeSelector unfitted;
  EXPECT_THROW(save_selector(unfitted, temp_path("unfitted.txt")),
               common::Error);
}

TEST_F(SerializeTest, NonRawSelectorsRejected) {
  DecisionTreeSelector scaled(ml::TreeOptions{}, /*scale_features=*/true);
  scaled.fit(split().train, selector().allowed());
  EXPECT_THROW(save_selector(scaled, temp_path("scaled.txt")), common::Error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW((void)load_selector("/nonexistent/selector.txt"),
               common::Error);
}

TEST_F(SerializeTest, BadMagicRejected) {
  const auto path = temp_path("bad_magic.txt");
  std::ofstream(path) << "not a selector\n";
  EXPECT_THROW((void)load_selector(path), common::Error);
  std::filesystem::remove(path);
}

TEST_F(SerializeTest, TruncatedFileRejected) {
  const auto path = temp_path("truncated.txt");
  save_selector(selector(), path);
  // Chop the file in half.
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path) << content.substr(0, content.size() / 2);
  EXPECT_THROW((void)load_selector(path), common::Error);
  std::filesystem::remove(path);
}

TEST_F(SerializeTest, CorruptChildIndexRejected) {
  const auto path = temp_path("corrupt.txt");
  save_selector(selector(), path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Point a child index far out of range: the first split node's left
  // child. Line 5 is the first node line.
  std::istringstream stream(content);
  std::ostringstream rewritten;
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line_no == 5 && line.find(' ') != std::string::npos) {
      // node lines: feature threshold left right ...
      std::istringstream fields(line);
      std::string feature, threshold, left, rest;
      fields >> feature >> threshold >> left;
      std::getline(fields, rest);  // " right n_samples values..."
      if (feature != "-1") {
        line = feature + " " + threshold + " 99999" + rest;
      }
    }
    rewritten << line << "\n";
  }
  std::ofstream(path) << rewritten.str();
  EXPECT_THROW((void)load_selector(path), common::Error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace aks::select
