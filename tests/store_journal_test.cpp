// Store durability layer: record codec round-trips, journal torn-tail
// recovery, corruption fuzz (truncation at every byte, random bit flips —
// must load-or-throw common::Error, never UB; the sanitize CI job runs
// this under ASan/UBSan), and deterministic crash injection at
// faults::Site::kStoreWrite.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "store/journal.hpp"
#include "store/record.hpp"

namespace aks::store {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("aks_store_" + name);
}

SelectionRecord sample_selection(std::size_t i) {
  SelectionRecord record;
  record.device_fingerprint = 0x1234567890abcdefULL + i;
  record.shape = {64 + 32 * i, 128, 256 + i};
  record.config_index = static_cast<std::uint32_t>((i * 37) % 640);
  record.warmup_seconds = 0.25 * static_cast<double>(i + 1);
  record.sweeps = static_cast<std::uint32_t>(1 + i);
  record.quarantined_candidates = static_cast<std::uint32_t>(i % 3);
  record.source = static_cast<Source>(i % 4);
  record.cert_digest = i % 2 ? 0xfeedfacecafebeefULL : 0;
  return record;
}

DeviceProfileRecord sample_profile() {
  DeviceProfileRecord profile;
  profile.fingerprint = 0xa5a5a5a55a5a5a5aULL;
  profile.name = "Test Device (model)";
  for (std::size_t f = 0; f < profile.features.size(); ++f) {
    profile.features[f] = 1.5 * static_cast<double>(f) - 3.0;
  }
  return profile;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void write_file(const std::filesystem::path& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// A journal with a device profile and `n` selections, returned as bytes.
std::vector<std::uint8_t> build_journal(const std::filesystem::path& path,
                                        std::size_t n) {
  std::filesystem::remove(path);
  JournalWriter writer(path);
  std::vector<std::uint8_t> payload;
  encode(sample_profile(), payload);
  writer.append(RecordKind::kDeviceProfile, payload);
  for (std::size_t i = 0; i < n; ++i) {
    payload.clear();
    encode(sample_selection(i), payload);
    writer.append(RecordKind::kSelection, payload);
  }
  return read_file(path);
}

TEST(StoreRecord, SelectionRoundTrip) {
  for (std::size_t i = 0; i < 8; ++i) {
    const SelectionRecord record = sample_selection(i);
    std::vector<std::uint8_t> payload;
    encode(record, payload);
    EXPECT_EQ(decode_selection(payload), record);
  }
}

TEST(StoreRecord, DeviceProfileRoundTrip) {
  const DeviceProfileRecord profile = sample_profile();
  std::vector<std::uint8_t> payload;
  encode(profile, payload);
  EXPECT_EQ(decode_device_profile(payload), profile);
}

TEST(StoreRecord, DecodeRejectsTruncationAndTrailingBytes) {
  std::vector<std::uint8_t> payload;
  encode(sample_selection(0), payload);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(
        (void)decode_selection({payload.data(), len}), common::Error)
        << "truncated to " << len << " bytes";
  }
  payload.push_back(0);
  EXPECT_THROW((void)decode_selection(payload), common::Error);
}

TEST(StoreRecord, DecodeRejectsUnknownSource) {
  std::vector<std::uint8_t> payload;
  encode(sample_selection(0), payload);
  // The source enum is the 8 + 24 + 4 + 8 + 4 + 4 = 52nd byte (see
  // record.cpp field order); force an out-of-range value.
  payload[52] = 0x7f;
  EXPECT_THROW((void)decode_selection(payload), common::Error);
}

TEST(StoreRecord, FeatureSimilarityIsSymmetricAndMaxedAtIdentity) {
  const auto profile = sample_profile();
  EXPECT_DOUBLE_EQ(
      feature_similarity(profile.features, profile.features), 1.0);
  DeviceProfileRecord other = profile;
  other.features[0] += 2.0;
  const double ab = feature_similarity(profile.features, other.features);
  EXPECT_DOUBLE_EQ(ab, feature_similarity(other.features, profile.features));
  EXPECT_LT(ab, 1.0);
  EXPECT_GT(ab, 0.0);
}

TEST(StoreJournal, RoundTripAndMissingFileIsEmpty) {
  const auto path = temp_path("roundtrip.aks");
  build_journal(path, 5);
  const auto contents = read_journal(path);
  EXPECT_EQ(contents.records.size(), 6u);
  EXPECT_EQ(contents.stats.corrupt_tail_records, 0u);
  EXPECT_EQ(contents.stats.bytes_dropped, 0u);
  EXPECT_EQ(contents.records[0].kind, RecordKind::kDeviceProfile);
  EXPECT_EQ(decode_selection(contents.records[3].payload),
            sample_selection(2));
  std::filesystem::remove(path);

  const auto empty = read_journal(temp_path("does_not_exist.aks"));
  EXPECT_TRUE(empty.records.empty());
}

TEST(StoreJournal, BadHeaderAlwaysThrows) {
  const auto path = temp_path("header.aks");
  auto bytes = build_journal(path, 1);
  // Magic.
  auto corrupt = bytes;
  corrupt[0] ^= 0xff;
  write_file(path, corrupt);
  EXPECT_THROW((void)read_journal(path), common::Error);
  // Version.
  corrupt = bytes;
  corrupt[8] = 0x7f;
  write_file(path, corrupt);
  EXPECT_THROW((void)read_journal(path), common::Error);
  // Endianness marker.
  corrupt = bytes;
  corrupt[12] ^= 0xff;
  write_file(path, corrupt);
  EXPECT_THROW((void)read_journal(path), common::Error);
  // Shorter than a header.
  corrupt.assign(bytes.begin(), bytes.begin() + 7);
  write_file(path, corrupt);
  EXPECT_THROW((void)read_journal(path), common::Error);
  std::filesystem::remove(path);
}

// The crash model: a torn append leaves a strict prefix. Truncating the
// file at EVERY byte offset must yield the longest valid record prefix,
// with the tail dropped and counted — and strict mode must escalate
// exactly the offsets that drop bytes.
TEST(StoreJournal, TruncationAtEveryByteRecoversPrefix) {
  const auto path = temp_path("trunc.aks");
  const auto bytes = build_journal(path, 3);

  // Record boundaries: offsets at which the journal is exactly valid.
  std::vector<std::size_t> boundaries;
  {
    const auto full = read_journal(path);
    std::size_t offset = 16;  // header
    boundaries.push_back(offset);
    for (const auto& record : full.records) {
      offset += 1 + 4 + record.payload.size() + 4;
      boundaries.push_back(offset);
    }
    ASSERT_EQ(offset, bytes.size());
  }

  for (std::size_t len = 16; len <= bytes.size(); ++len) {
    write_file(path,
               {bytes.begin(),
                bytes.begin() + static_cast<std::ptrdiff_t>(len)});
    const auto contents = read_journal(path);

    std::size_t expect_records = 0;
    std::size_t expect_valid = 16;
    for (std::size_t b = 0; b < boundaries.size(); ++b) {
      if (boundaries[b] <= len) {
        expect_records = b;
        expect_valid = boundaries[b];
      }
    }
    EXPECT_EQ(contents.records.size(), expect_records) << "len=" << len;
    EXPECT_EQ(contents.stats.valid_bytes, expect_valid) << "len=" << len;
    EXPECT_EQ(contents.stats.bytes_dropped, len - expect_valid)
        << "len=" << len;
    const bool torn = len != expect_valid;
    EXPECT_EQ(contents.stats.corrupt_tail_records, torn ? 1u : 0u)
        << "len=" << len;
    if (torn) {
      EXPECT_THROW((void)read_journal(path, /*strict=*/true), common::Error)
          << "len=" << len;
    } else {
      EXPECT_NO_THROW((void)read_journal(path, /*strict=*/true))
          << "len=" << len;
    }
  }
  std::filesystem::remove(path);
}

// Bit-flip fuzz: a flipped bit anywhere past the header must either be
// survivable (a shorter, CRC-clean prefix) or raise common::Error — and a
// flip inside a record body must never be served as a valid record with
// the original count intact unless a CRC collision occurred (impossible
// for a single bit flip).
TEST(StoreJournal, BitFlipFuzzNeverYieldsSilentCorruption) {
  const auto path = temp_path("fuzz.aks");
  const auto bytes = build_journal(path, 4);
  const auto clean = read_journal(path);

  common::Rng rng(2026);
  for (int trial = 0; trial < 400; ++trial) {
    auto corrupt = bytes;
    // Flip one random bit past the header (header flips always throw —
    // covered by BadHeaderAlwaysThrows).
    const std::size_t byte = 16 + rng.uniform_index(bytes.size() - 16);
    corrupt[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    write_file(path, corrupt);
    try {
      const auto contents = read_journal(path);
      // Loadable: the flip cost the tail, never a silently altered record.
      EXPECT_LT(contents.records.size(), clean.records.size());
      EXPECT_EQ(contents.stats.corrupt_tail_records, 1u);
      EXPECT_GT(contents.stats.bytes_dropped, 0u);
      for (std::size_t r = 0; r < contents.records.size(); ++r) {
        EXPECT_EQ(contents.records[r].payload, clean.records[r].payload);
      }
    } catch (const common::Error&) {
      // Also acceptable: structural damage detected and reported.
    }
  }
  std::filesystem::remove(path);
}

// Regression (found by the thread-safety annotation pass): appended() read
// the counter bare while concurrent append() calls incremented it under
// the writer mutex. Concurrent appenders plus a polling reader must agree
// on the final count, and every record must land intact.
TEST(StoreJournal, ConcurrentAppendsKeepExactAppendedCount) {
  const auto path = temp_path("concurrent_count.aks");
  std::filesystem::remove(path);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 32;
  {
    JournalWriter writer(path);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&writer, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          std::vector<std::uint8_t> payload;
          encode(sample_selection(t * kPerThread + i), payload);
          writer.append(RecordKind::kSelection, payload);
          (void)writer.appended();  // polled concurrently with appends
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(writer.appended(), kThreads * kPerThread);
  }
  const auto contents = read_journal(path, /*strict=*/true);
  EXPECT_EQ(contents.records.size(), kThreads * kPerThread);
  std::filesystem::remove(path);
}

TEST(StoreJournal, WriterTruncatesTornTailOnOpen) {
  const auto path = temp_path("selfheal.aks");
  const auto bytes = build_journal(path, 2);
  // Simulate a crash 3 bytes into the last record's tail.
  write_file(path, {bytes.begin(), bytes.end() - 3});

  {
    JournalWriter writer(path);
    std::vector<std::uint8_t> payload;
    encode(sample_selection(9), payload);
    writer.append(RecordKind::kSelection, payload);
  }
  const auto contents = read_journal(path);
  // Profile + selections 0 (intact), 1 (torn, truncated away), 9 (new).
  ASSERT_EQ(contents.records.size(), 3u);
  EXPECT_EQ(contents.stats.corrupt_tail_records, 0u);
  EXPECT_EQ(decode_selection(contents.records.back().payload),
            sample_selection(9));
  std::filesystem::remove(path);
}

TEST(StoreJournal, CompactReplacesAtomically) {
  const auto path = temp_path("compact.aks");
  build_journal(path, 3);
  const auto before = read_journal(path);
  // Keep only the first two records.
  const std::vector<RawRecord> keep(before.records.begin(),
                                    before.records.begin() + 2);
  compact_journal(path, keep);
  const auto after = read_journal(path);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[0].payload, before.records[0].payload);
  EXPECT_EQ(after.records[1].payload, before.records[1].payload);
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::filesystem::remove(path);
}

TEST(StoreCrashRecovery, InjectedWriteFailureLeavesFileUntouched) {
  const auto path = temp_path("writefail.aks");
  const auto bytes = build_journal(path, 2);

  faults::ScopedFaultPlan plan{faults::FaultPlan::parse("store-write=1")};
  JournalWriter writer(path);
  std::vector<std::uint8_t> payload;
  encode(sample_selection(7), payload);
  EXPECT_THROW(writer.append(RecordKind::kSelection, payload), common::Error);
  EXPECT_EQ(writer.appended(), 0u);
  EXPECT_EQ(read_file(path), bytes);  // nothing landed
}

TEST(StoreCrashRecovery, InjectedTornWritePoisonsWriterAndRecovers) {
  const auto path = temp_path("torn.aks");
  std::filesystem::remove(path);
  std::vector<std::uint8_t> payload;
  encode(sample_selection(3), payload);

  {
    // Healthy appends first, then arm the torn-write plan.
    JournalWriter writer(path);
    writer.append(RecordKind::kSelection, payload);

    faults::ScopedFaultPlan plan{faults::FaultPlan::parse("store-torn=1")};
    EXPECT_THROW(writer.append(RecordKind::kSelection, payload),
                 common::Error);
    // Poisoned like the dead process it models: later appends refuse even
    // after the plan is gone.
    faults::ScopedFaultPlan none{faults::FaultPlan::none()};
    EXPECT_THROW(writer.append(RecordKind::kSelection, payload),
                 common::Error);
  }

  // Crash recovery: the torn tail is detected, dropped, and healed by the
  // next writer; the intact record survives throughout.
  const auto contents = read_journal(path);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(decode_selection(contents.records[0].payload),
            sample_selection(3));
  {
    faults::ScopedFaultPlan none{faults::FaultPlan::none()};
    JournalWriter writer(path);
    writer.append(RecordKind::kSelection, payload);
  }
  const auto healed = read_journal(path);
  EXPECT_EQ(healed.records.size(), 2u);
  EXPECT_EQ(healed.stats.corrupt_tail_records, 0u);
  std::filesystem::remove(path);
}

TEST(StoreCrashRecovery, TornWriteMagnitudeControlsLandedPrefix) {
  // The injected fault reports how much of the record landed; verify the
  // file grew by exactly that prefix, so the fault model matches the
  // layout the reader recovers from.
  const auto path = temp_path("tornsize.aks");
  const auto before = build_journal(path, 1);

  faults::ScopedFaultPlan plan{faults::FaultPlan::parse("store-torn=1")};
  JournalWriter writer(path);
  std::vector<std::uint8_t> payload;
  encode(sample_selection(5), payload);
  EXPECT_THROW(writer.append(RecordKind::kSelection, payload), common::Error);

  const auto after = read_file(path);
  ASSERT_GE(after.size(), before.size());
  const std::size_t landed = after.size() - before.size();
  EXPECT_LT(landed, 1 + 4 + payload.size() + 4);  // strictly torn
  EXPECT_EQ(std::vector<std::uint8_t>(after.begin(),
                                      after.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              before.size())),
            before);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace aks::store
