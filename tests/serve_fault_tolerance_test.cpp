// Serving-stack fault tolerance under concurrency: N threads hammer
// SelectionService::select() while ~30% of warm-up trials fail by injected
// fault. The degradation contract under test: select() never throws, warm-up
// sweeps stay exactly-once per shape (single-flight), every answer is a
// member of the candidate set, and quarantined configurations never win.
//
// Suite names reuse SelectionService / OnlineTunerConcurrency so the CI
// tsan job's filter picks these up (data races here are exactly what TSan
// is pointed at).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "core/pruning.hpp"
#include "faults/injector.hpp"
#include "perfmodel/cost_model.hpp"
#include "serve/selection_service.hpp"
#include "store/selection_store.hpp"

namespace aks::serve {
namespace {

select::OnlineTuner::TimerFn model_timer() {
  return [timing = perf::TimingModel(perf::DeviceSpec::amd_r9_nano(), 0.0)](
             const gemm::KernelConfig& config, const gemm::GemmShape& shape) {
    return timing.best_of(config, shape, 3);
  };
}

std::vector<gemm::GemmShape> test_shapes(std::size_t n) {
  std::vector<gemm::GemmShape> shapes;
  for (std::size_t i = 0; i < n; ++i) {
    shapes.push_back(
        {48 + 32 * i, 96 + 16 * ((i * 5) % 13), 48 + 64 * ((i * 3) % 7)});
  }
  return shapes;
}

// 30% of warm-up trials fail (launch-failure at the warm-up site only, so
// the failure mode is a thrown exception inside the tuner's trial loop).
faults::FaultPlan warmup_failure_plan(double rate = 0.3) {
  faults::FaultPlan plan;
  plan.seed = 77;
  plan.at(faults::Site::kWarmUpTrial).launch_failure = rate;
  return plan;
}

TEST(SelectionService, NeverThrowsUnderInjectedWarmUpFailures) {
  faults::ScopedFaultPlan install(warmup_failure_plan(0.3));
  const std::vector<std::size_t> candidates = {0, 100, 250, 400, 639};
  select::OnlineTuner tuner(candidates, model_timer());
  ServiceOptions options;
  options.fallback = tuner.fallback_config();
  SelectionService service(tuner, options);

  const auto shapes = test_shapes(24);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRepeats = 6;
  std::atomic<std::size_t> throws{0};
  // winners[t][s]: what thread t observed for shape s on its last repeat.
  std::vector<std::vector<std::size_t>> winners(
      kThreads, std::vector<std::size_t>(shapes.size(), 0));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t rep = 0; rep < kRepeats; ++rep) {
        for (std::size_t s = 0; s < shapes.size(); ++s) {
          try {
            winners[t][s] = gemm::config_index(service.select(shapes[s]));
          } catch (...) {
            throws.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(throws.load(), 0u) << "select() must never throw under faults";

  const auto stats = service.stats();
  EXPECT_EQ(stats.duplicate_sweeps, 0u) << "single-flight broke under faults";
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced_waits,
            kThreads * kRepeats * shapes.size())
      << "every request accounted as hit, miss or coalesced wait";

  // Every answer is a real member of the candidate set, and no quarantined
  // candidate ever won a shape.
  const std::set<std::size_t> allowed(candidates.begin(), candidates.end());
  const auto quarantined_list = tuner.quarantined();
  const std::set<std::size_t> quarantined(quarantined_list.begin(),
                                          quarantined_list.end());
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      EXPECT_TRUE(allowed.count(winners[t][s]) != 0)
          << "shape " << s << " resolved outside the candidate set";
      if (winners[t][s] != candidates.front()) {
        EXPECT_TRUE(quarantined.count(winners[t][s]) == 0)
            << "quarantined config " << winners[t][s] << " won shape " << s;
      }
    }
  }
  // The fallback candidate is immune to quarantine by construction.
  EXPECT_FALSE(tuner.is_quarantined(candidates.front()));
}

TEST(SelectionService, FallbackServedToLeaderAndWaitersOnTotalFailure) {
  // Every warm-up throws (a warm-up procedure with no internal recovery,
  // failed by an injected fault at rate 1): with ServiceOptions::fallback
  // set, the leader and every coalesced waiter get the fallback config, not
  // the exception — and the shape is retried (not cached) afterwards.
  faults::ScopedFaultPlan install(warmup_failure_plan(1.0));
  const auto fallback = gemm::enumerate_configs()[42];
  ServiceOptions options;
  options.fallback = fallback;
  SelectionService service(
      [](const gemm::GemmShape& shape) -> gemm::KernelConfig {
        faults::FaultScope scope(
            faults::site_bit(faults::Site::kWarmUpTrial),
            faults::mix_key(shape.m, shape.k, shape.n));
        if (faults::probe(faults::Site::kWarmUpTrial)) {
          throw faults::LaunchFailure("injected warm-up failure");
        }
        return gemm::enumerate_configs()[0];
      },
      options);

  const auto shapes = test_shapes(6);
  std::atomic<std::size_t> throws{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (const auto& shape : shapes) {
        try {
          const auto config = service.select(shape);
          EXPECT_EQ(gemm::config_index(config), gemm::config_index(fallback));
        } catch (...) {
          throws.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(throws.load(), 0u);
  const auto stats = service.stats();
  EXPECT_GT(stats.warmup_failures, 0u);
  EXPECT_GT(stats.fallbacks_served, 0u);
  // Failed warm-ups are never cached: the map holds no poisoned entries.
  EXPECT_EQ(stats.cached_shapes, 0u);
}

TEST(SelectionService, NoFallbackConfiguredStillPropagatesErrors) {
  // The pre-existing contract (FailedWarmUpPropagatesAndRetries) must
  // survive the fallback feature: without ServiceOptions::fallback the
  // error reaches the caller.
  SelectionService service(
      [](const gemm::GemmShape&) -> gemm::KernelConfig {
        throw common::Error("warm-up exploded");
      });
  EXPECT_THROW((void)service.select({32, 32, 32}), common::Error);
}

TEST(SelectionService, BatchWaveFaultDegradesOnlyFailingShape) {
  // One shape inside a cold select_batch() wave fails its warm-up: only
  // that shape is served the fallback, every other wave member gets its
  // tuned answer, and the degraded shape is neither cached nor persisted —
  // the store's write-behind wave holds records for the healthy shapes
  // only.
  faults::ScopedFaultPlan install(warmup_failure_plan(1.0));
  const auto shapes = test_shapes(8);
  const auto& bad = shapes[3];
  const auto fallback = gemm::enumerate_configs()[42];

  ServiceOptions options;
  options.fallback = fallback;
  SelectionService service(
      [&bad](const gemm::GemmShape& shape) -> gemm::KernelConfig {
        if (shape == bad) {
          faults::FaultScope scope(
              faults::site_bit(faults::Site::kWarmUpTrial),
              faults::mix_key(shape.m, shape.k, shape.n));
          if (faults::probe(faults::Site::kWarmUpTrial)) {
            throw faults::LaunchFailure("injected warm-up failure");
          }
        }
        const auto& configs = gemm::enumerate_configs();
        return configs[(shape.m * 31 + shape.k * 7 + shape.n) %
                       configs.size()];
      },
      options);

  const auto store_path = std::filesystem::temp_directory_path() /
                          "aks_batch_wave_fault.journal";
  std::filesystem::remove(store_path);
  store::SelectionStore store(store_path);
  (void)service.warm_start(store, perf::DeviceSpec::amd_r9_nano());

  const auto out = service.select_batch(shapes);
  ASSERT_EQ(out.size(), shapes.size());
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const auto& configs = gemm::enumerate_configs();
    const auto expected =
        s == 3 ? fallback
               : configs[(shapes[s].m * 31 + shapes[s].k * 7 + shapes[s].n) %
                         configs.size()];
    EXPECT_EQ(gemm::config_index(out[s]), gemm::config_index(expected))
        << "shape " << s << " got the wrong answer";
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.warmup_failures, 1u);
  EXPECT_EQ(stats.fallbacks_served, 1u);
  EXPECT_EQ(stats.batch_wave_shapes, shapes.size());
  // The degraded shape is not cached: a later request retries its warm-up.
  EXPECT_EQ(stats.cached_shapes, shapes.size() - 1);

  // Nothing degraded is persisted: the wave's one write-behind enqueue
  // carries the seven healthy records and no record for the failed shape.
  const auto records = store.selections();
  EXPECT_EQ(records.size(), shapes.size() - 1);
  for (const auto& record : records) {
    EXPECT_FALSE(record.shape == bad)
        << "fallback decision leaked into the store";
  }
  std::filesystem::remove(store_path);
}

TEST(OnlineTunerConcurrency, QuarantineEngagesAfterConsecutiveFailures) {
  // Candidate trials all fail (rate 1 at the warm-up site): after
  // `quarantine_threshold` sweeps every non-fallback candidate is
  // quarantined, select() serves the fallback without throwing, and the
  // quarantine list excludes the fallback.
  faults::ScopedFaultPlan install(warmup_failure_plan(1.0));
  const std::vector<std::size_t> candidates = {5, 200, 450};
  select::TunerOptions options;
  options.quarantine_threshold = 2;
  select::OnlineTuner tuner(candidates, model_timer(), options);

  const auto shapes = test_shapes(5);
  for (const auto& shape : shapes) {
    gemm::KernelConfig config{};
    EXPECT_NO_THROW(config = tuner.select(shape));
    EXPECT_EQ(gemm::config_index(config), candidates.front());
  }
  EXPECT_EQ(tuner.degraded_selects(), shapes.size());
  EXPECT_GT(tuner.trial_failures(), 0u);
  const auto quarantined = tuner.quarantined();
  EXPECT_EQ(quarantined, (std::vector<std::size_t>{200, 450}));
  EXPECT_FALSE(tuner.is_quarantined(candidates.front()));
}

TEST(OnlineTunerConcurrency, QuarantineRecoversWhenFaultsStop) {
  const std::vector<std::size_t> candidates = {5, 200, 450};
  select::TunerOptions options;
  options.quarantine_threshold = 100;  // high: no quarantine in this test
  select::OnlineTuner tuner(candidates, model_timer(), options);
  {
    faults::ScopedFaultPlan install(warmup_failure_plan(1.0));
    (void)tuner.select({64, 64, 64});
  }
  // Plan gone: the next cold shape sweeps cleanly and failure streaks reset.
  const auto config = tuner.select({96, 96, 96});
  EXPECT_LT(gemm::config_index(config), gemm::enumerate_configs().size());
  EXPECT_TRUE(tuner.quarantined().empty());
}

TEST(OnlineTunerConcurrency, DropQuarantinedPreservesOrderAndNeverEmpties) {
  const std::vector<std::size_t> candidates = {3, 7, 11, 15};
  EXPECT_EQ(select::drop_quarantined(candidates, {7, 15}),
            (std::vector<std::size_t>{3, 11}));
  EXPECT_EQ(select::drop_quarantined(candidates, {}), candidates);
  // Dropping everything keeps the first original as guaranteed fallback.
  EXPECT_EQ(select::drop_quarantined(candidates, {3, 7, 11, 15}),
            (std::vector<std::size_t>{3}));
}

}  // namespace
}  // namespace aks::serve
