// Compile check: the umbrella header is self-contained and exposes the
// full workflow with a single include.
#include "aks.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, ExposesWholeWorkflow) {
  // Touch one symbol from each layer; compilation is the real assertion.
  EXPECT_EQ(aks::gemm::enumerate_configs().size(), 640u);
  EXPECT_EQ(aks::tune::enumerate_extended_configs().size(), 1920u);
  EXPECT_EQ(aks::select::to_string(aks::select::PruneMethod::kTopN), "TopN");
  EXPECT_GT(aks::perf::DeviceSpec::amd_r9_nano().peak_flops(), 0.0);
  aks::syclrt::Queue queue;
  EXPECT_EQ(queue.profile().submissions, 0u);
}
