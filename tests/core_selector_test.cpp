#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/evaluation.hpp"
#include "core/pruning.hpp"
#include "core/selector.hpp"
#include "dataset/benchmark_runner.hpp"

namespace aks::select {
namespace {

class SelectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::ExtractionOptions extraction;
    extraction.vgg_batches = {1};
    extraction.resnet_batches = {1};
    extraction.mobilenet_batches = {1};
    const auto dataset = data::build_paper_dataset({}, extraction);
    split_ = new data::DatasetSplit(dataset.split(0.8, 5));
    DecisionTreePruner pruner;
    allowed_ = new std::vector<std::size_t>(pruner.prune(split_->train, 8));
  }
  static void TearDownTestSuite() {
    delete split_;
    delete allowed_;
    split_ = nullptr;
    allowed_ = nullptr;
  }
  static const data::DatasetSplit& split() { return *split_; }
  static const std::vector<std::size_t>& allowed() { return *allowed_; }

 private:
  static data::DatasetSplit* split_;
  static std::vector<std::size_t>* allowed_;
};

data::DatasetSplit* SelectorTest::split_ = nullptr;
std::vector<std::size_t>* SelectorTest::allowed_ = nullptr;

/// Contract every selector must honour after fit().
class SelectorContract : public ::testing::TestWithParam<int> {};

TEST_P(SelectorContract, SelectsOnlyAllowedConfigs) {
  data::ExtractionOptions extraction;
  extraction.vgg_batches = {1};
  extraction.resnet_batches = {1};
  extraction.mobilenet_batches = {1};
  const auto dataset = data::build_paper_dataset({}, extraction);
  const auto split = dataset.split(0.8, 5);
  DecisionTreePruner pruner;
  const auto allowed = pruner.prune(split.train, 6);

  auto selectors = all_selectors(7);
  auto& selector = selectors[static_cast<std::size_t>(GetParam())];
  selector->fit(split.train, allowed);
  EXPECT_EQ(selector->allowed(), allowed);

  const std::set<std::size_t> allowed_set(allowed.begin(), allowed.end());
  for (std::size_t r = 0; r < split.test.num_shapes(); ++r) {
    const std::size_t chosen = selector->select(split.test.features().row(r));
    EXPECT_EQ(allowed_set.count(chosen), 1u)
        << selector->name() << " picked disallowed config " << chosen;
  }
  // Score is a valid relative performance.
  const double score = selector_score(*selector, split.test);
  EXPECT_GT(score, 0.0);
  EXPECT_LE(score, 1.0);
  const double acc = selector_accuracy(*selector, split.test);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

std::string selector_case_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"DTree",     "Forest",    "Knn1",
                                "Knn3",      "LinearSvm", "RadialSvm"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllSelectors, SelectorContract,
                         ::testing::Range(0, 6), selector_case_name);

TEST_F(SelectorTest, SelectorNamesMatchTableOne) {
  const auto selectors = all_selectors();
  ASSERT_EQ(selectors.size(), 6u);
  EXPECT_EQ(selectors[0]->name(), "DecisionTree");
  EXPECT_EQ(selectors[1]->name(), "RandomForest");
  EXPECT_EQ(selectors[2]->name(), "1NearestNeighbor");
  EXPECT_EQ(selectors[3]->name(), "3NearestNeighbors");
  EXPECT_EQ(selectors[4]->name(), "LinearSVM");
  EXPECT_EQ(selectors[5]->name(), "RadialSVM");
}

TEST_F(SelectorTest, TreeSelectorScoreBeatsSelectionCeilingFloor) {
  DecisionTreeSelector selector;
  selector.fit(split().train, allowed());
  const double ceiling = pruning_ceiling(split().test, allowed());
  const double achieved = selector_score(selector, split().test);
  EXPECT_LE(achieved, ceiling + 1e-12);
  // A trained tree must comfortably beat picking the worst allowed config.
  double worst = 1.0;
  for (std::size_t r = 0; r < split().test.num_shapes(); ++r) {
    double row_worst = 1.0;
    for (const std::size_t c : allowed()) {
      row_worst = std::min(row_worst, split().test.scores()(r, c));
    }
    worst = std::min(worst, row_worst);
  }
  EXPECT_GT(achieved, worst);
}

TEST_F(SelectorTest, SelectConfigMapsShapeToFullConfig) {
  DecisionTreeSelector selector;
  selector.fit(split().train, allowed());
  const auto config = selector.select_config({512, 256, 512});
  // Must be one of the allowed configurations.
  bool found = false;
  for (const std::size_t c : allowed()) {
    found = found || gemm::enumerate_configs()[c] == config;
  }
  EXPECT_TRUE(found);
}

TEST_F(SelectorTest, ScaledSelectorsApplyScaler) {
  KnnSelector raw(1, false);
  KnnSelector scaled(1, true);
  raw.fit(split().train, allowed());
  scaled.fit(split().train, allowed());
  EXPECT_FALSE(raw.scales_features());
  EXPECT_TRUE(scaled.scales_features());
  // Both remain valid selectors.
  EXPECT_GT(selector_score(raw, split().test), 0.0);
  EXPECT_GT(selector_score(scaled, split().test), 0.0);
}

TEST_F(SelectorTest, FitWithEmptyConfigSetThrows) {
  DecisionTreeSelector selector;
  EXPECT_THROW(selector.fit(split().train, {}), common::Error);
}

TEST_F(SelectorTest, SelectorsAreDeterministicForSeed) {
  for (int trial = 0; trial < 2; ++trial) {
    auto a = all_selectors(11);
    auto b = all_selectors(11);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i]->fit(split().train, allowed());
      b[i]->fit(split().train, allowed());
      for (std::size_t r = 0; r < split().test.num_shapes(); ++r) {
        ASSERT_EQ(a[i]->select(split().test.features().row(r)),
                  b[i]->select(split().test.features().row(r)))
            << a[i]->name();
      }
    }
  }
}

TEST_F(SelectorTest, SingleAllowedConfigAlwaysSelected) {
  const std::vector<std::size_t> one = {allowed()[0]};
  DecisionTreeSelector selector;
  selector.fit(split().train, one);
  for (std::size_t r = 0; r < split().test.num_shapes(); ++r) {
    EXPECT_EQ(selector.select(split().test.features().row(r)), one[0]);
  }
}

TEST_F(SelectorTest, EvaluationRejectsEmptyTestSet) {
  DecisionTreeSelector selector;
  selector.fit(split().train, allowed());
  EXPECT_THROW((void)pruning_ceiling(split().test, {}), common::Error);
}

}  // namespace
}  // namespace aks::select
