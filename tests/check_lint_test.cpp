// Positive-path coverage of the akscheck passes: the shipped configuration
// space lints clean on every shipped device, reports round-trip through
// CSV, the validity mask feeds the pruning decorator, and the checked
// execution mode replays real kernels without findings.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "check/checked_conv.hpp"
#include "check/checked_gemm.hpp"
#include "check/config_lint.hpp"
#include "gemm/config.hpp"
#include "perfmodel/device_spec.hpp"

namespace {

using namespace aks;

std::vector<perf::DeviceSpec> shipped_devices() {
  return {perf::DeviceSpec::amd_r9_nano(),
          perf::DeviceSpec::embedded_accelerator(),
          perf::DeviceSpec::integrated_gpu()};
}

TEST(ConfigLint, ShippedRegistryIsCleanOnAllShippedDevices) {
  const auto& configs = gemm::enumerate_configs();
  const auto devices = shipped_devices();
  const auto report = check::lint_configs(configs, devices);
  EXPECT_EQ(report.configs_checked, 640u);
  EXPECT_EQ(report.devices_checked, 3u);
  for (const auto& finding : report.findings) {
    ADD_FAILURE() << finding.to_diagnostic().format();
  }
  EXPECT_TRUE(report.clean());
}

TEST(ConfigLint, FootprintGrowsWithTileAndGroup) {
  gemm::KernelConfig small;  // t1x1_a1_wg8x8
  gemm::KernelConfig large;
  large.row_tile = 8;
  large.col_tile = 8;
  large.acc_size = 8;
  large.wg_rows = 16;
  large.wg_cols = 16;
  EXPECT_LT(check::local_memory_footprint_bytes(small),
            check::local_memory_footprint_bytes(large));
  // Exact value for the small config: (8*1*1 + 1*8*1) floats.
  EXPECT_EQ(check::local_memory_footprint_bytes(small), 16u * sizeof(float));
}

TEST(ConfigLint, ReportRoundTripsThroughCsv) {
  gemm::KernelConfig bad;
  bad.wg_rows = 48;
  bad.wg_cols = 48;
  bad.acc_size = 6;
  const std::vector<gemm::KernelConfig> configs = {bad};
  const auto devices = shipped_devices();
  const auto report = check::lint_configs(configs, devices);
  ASSERT_FALSE(report.clean());

  const auto path = std::filesystem::temp_directory_path() /
                    "akscheck_lint_roundtrip_test.csv";
  report.save_csv(path);
  const auto loaded = check::LintReport::load_csv(path);
  std::filesystem::remove(path);

  ASSERT_EQ(loaded.findings.size(), report.findings.size());
  EXPECT_EQ(loaded.configs_checked, report.configs_checked);
  EXPECT_EQ(loaded.devices_checked, report.devices_checked);
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    EXPECT_EQ(loaded.findings[i].config_index, report.findings[i].config_index);
    EXPECT_EQ(loaded.findings[i].config, report.findings[i].config);
    EXPECT_EQ(loaded.findings[i].device, report.findings[i].device);
    EXPECT_EQ(loaded.findings[i].rule, report.findings[i].rule);
  }
}

TEST(ConfigLint, ValidMaskFlagsOnlyOffendingConfigs) {
  gemm::KernelConfig good;  // defaults lint clean everywhere
  gemm::KernelConfig bad;
  bad.wg_rows = 48;
  bad.wg_cols = 48;
  const std::vector<gemm::KernelConfig> configs = {good, bad, good};
  const auto devices = shipped_devices();
  const auto report = check::lint_configs(configs, devices);

  const auto mask = report.valid_mask(configs.size());
  ASSERT_EQ(mask.size(), 3u);
  EXPECT_TRUE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[2]);

  // Per-device restriction: the oversized group is invalid on every device,
  // so the mask is the same when restricted to one.
  const auto nano_mask =
      report.valid_mask(configs.size(), perf::DeviceSpec::amd_r9_nano().name);
  EXPECT_FALSE(nano_mask[1]);
}

TEST(LintRule, NamesRoundTrip) {
  for (const auto rule :
       {check::LintRule::work_group_size, check::LintRule::local_memory,
        check::LintRule::vector_width}) {
    EXPECT_EQ(check::parse_lint_rule(check::to_string(rule)), rule);
  }
}

// --- checked execution over real kernels ------------------------------------

TEST(CheckedExecution, RepresentativeConfigsReplayClean) {
  // One config per work-group shape family, on a ragged shape: exercises
  // interior tiles, edge guards and K remainders through the real kernels.
  for (const auto& config_name :
       {"t4x4_a2_wg8x8", "t1x1_a1_wg1x128", "t8x2_a4_wg16x8"}) {
    const auto config = gemm::KernelConfig::parse(config_name);
    const auto result = check::check_gemm(config, {17, 13, 9});
    EXPECT_TRUE(result.clean()) << config_name << ": "
                                << (result.findings.empty()
                                        ? "numeric divergence"
                                        : result.findings[0].format());
    EXPECT_LE(result.max_abs_error, 1e-3);
  }
}

TEST(CheckedExecution, BatchedAndHierarchicalReplayClean) {
  const auto config = gemm::KernelConfig::parse("t2x2_a2_wg8x8");
  EXPECT_TRUE(check::check_batched_gemm(config, {9, 5, 7}, 3).clean());
  EXPECT_TRUE(check::check_hierarchical_gemm({33, 20, 27}).clean());
}

TEST(CheckedExecution, ConvLoweringsReplayClean) {
  const auto config = gemm::KernelConfig::parse("t2x2_a2_wg8x8");
  const conv::ConvShape shape = {.batch = 1,
                                 .in_height = 9,
                                 .in_width = 7,
                                 .in_channels = 5,
                                 .out_channels = 6,
                                 .kernel = 3,
                                 .stride = 1,
                                 .padding = 1};
  EXPECT_TRUE(check::check_im2col_conv(config, shape).clean());
  EXPECT_TRUE(check::check_winograd_conv(config, shape).clean());
  EXPECT_TRUE(check::check_winograd4_conv(config, shape).clean());
}

TEST(CheckedExecution, RegistrySubsetSweepIsClean) {
  // The full 640-config sweep runs in CI via the akscheck binary; keep the
  // unit test to a slice so the suite stays fast.
  check::RegistryCheckOptions options;
  options.max_configs = 12;
  options.shapes = {{17, 13, 9}};
  const auto summary = check::check_registry(options);
  EXPECT_EQ(summary.configs_checked, 12u);
  for (const auto& finding : summary.findings) {
    ADD_FAILURE() << finding.format();
  }
  EXPECT_TRUE(summary.clean());
}

}  // namespace
