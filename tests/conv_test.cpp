#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "conv/direct.hpp"
#include "conv/im2col.hpp"
#include "conv/winograd.hpp"
#include "dataset/lowering.hpp"
#include "syclrt/queue.hpp"

namespace aks::conv {
namespace {

struct ConvData {
  std::vector<float> input;
  std::vector<float> filter;
  std::vector<float> expected;
};

ConvData make_data(const ConvShape& shape, std::uint64_t seed) {
  common::Rng rng(seed);
  ConvData data;
  data.input.resize(shape.input_size());
  data.filter.resize(shape.filter_size());
  data.expected.resize(shape.output_size());
  for (auto& v : data.input) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : data.filter) v = static_cast<float>(rng.uniform(-1, 1));
  direct_conv2d(data.input, data.filter, data.expected, shape);
  return data;
}

void expect_near(std::span<const float> actual, std::span<const float> expected,
                 float tolerance) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ASSERT_NEAR(actual[i], expected[i], tolerance) << "element " << i;
  }
}

TEST(ConvShapeInfo, OutputGeometry) {
  ConvShape s;
  s.in_height = s.in_width = 56;
  s.in_channels = 64;
  s.out_channels = 128;
  s.kernel = 3;
  s.stride = 1;
  s.padding = 1;
  EXPECT_EQ(s.out_height(), 56);
  EXPECT_EQ(s.out_width(), 56);
  s.stride = 2;
  EXPECT_EQ(s.out_height(), 28);
}

TEST(DirectConv, IdentityKernelPassesThrough) {
  // 1x1 kernel with identity channel matrix: output == input.
  ConvShape s;
  s.in_height = s.in_width = 4;
  s.in_channels = s.out_channels = 3;
  s.kernel = 1;
  std::vector<float> input(s.input_size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i) * 0.25f;
  }
  std::vector<float> filter(s.filter_size(), 0.0f);
  for (int c = 0; c < 3; ++c) filter[static_cast<std::size_t>(c) * 3 + static_cast<std::size_t>(c)] = 1.0f;
  std::vector<float> output(s.output_size());
  direct_conv2d(input, filter, output, s);
  expect_near(output, input, 1e-6f);
}

TEST(DirectConv, AveragingKernelOnConstantInput) {
  // All-ones 3x3 kernel on constant input: interior outputs are 9 * value.
  ConvShape s;
  s.in_height = s.in_width = 5;
  s.in_channels = s.out_channels = 1;
  s.kernel = 3;
  s.padding = 1;
  std::vector<float> input(s.input_size(), 2.0f);
  std::vector<float> filter(s.filter_size(), 1.0f);
  std::vector<float> output(s.output_size());
  direct_conv2d(input, filter, output, s);
  // Interior pixel (2,2): full 3x3 support.
  EXPECT_FLOAT_EQ(output[2 * 5 + 2], 18.0f);
  // Corner pixel (0,0): only 2x2 of the kernel lands inside.
  EXPECT_FLOAT_EQ(output[0], 8.0f);
}

TEST(DirectConv, SizeValidation) {
  ConvShape s;
  s.in_height = s.in_width = 4;
  s.in_channels = s.out_channels = 1;
  s.kernel = 3;
  std::vector<float> input(s.input_size());
  std::vector<float> filter(s.filter_size());
  std::vector<float> bad(1);
  EXPECT_THROW(direct_conv2d(input, filter, bad, s), common::Error);
}

TEST(Im2col, ShapeMatchesDatasetLowering) {
  ConvShape s;
  s.batch = 4;
  s.in_height = s.in_width = 28;
  s.in_channels = 32;
  s.out_channels = 64;
  s.kernel = 3;
  s.padding = 1;

  data::ConvLayer layer;
  layer.in_channels = s.in_channels;
  layer.out_channels = s.out_channels;
  layer.kernel = s.kernel;
  layer.stride = s.stride;
  layer.padding = s.padding;
  layer.in_height = s.in_height;
  layer.in_width = s.in_width;
  const auto expected = data::im2col_shape(layer, s.batch);
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(im2col_gemm_shape(s), *expected);
}

TEST(Im2col, PatchMatrixHasReceptiveFields) {
  // 3x3 input, 2x2 kernel, no padding: 4 patches of 4 values each.
  ConvShape s;
  s.in_height = s.in_width = 3;
  s.in_channels = 1;
  s.out_channels = 1;
  s.kernel = 2;
  std::vector<float> input = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto patches = im2col_transform(input, s);
  ASSERT_EQ(patches.size(), 16u);
  const float expected[4][4] = {
      {1, 2, 4, 5}, {2, 3, 5, 6}, {4, 5, 7, 8}, {5, 6, 8, 9}};
  for (int p = 0; p < 4; ++p)
    for (int v = 0; v < 4; ++v)
      EXPECT_FLOAT_EQ(patches[static_cast<std::size_t>(p) * 4 +
                              static_cast<std::size_t>(v)],
                      expected[p][v]);
}

/// im2col+GEMM must equal direct convolution for a spread of geometries and
/// kernel configurations.
struct Im2colCase {
  ConvShape shape;
  gemm::KernelConfig config;
};

class Im2colMatchesDirect : public ::testing::TestWithParam<Im2colCase> {};

TEST_P(Im2colMatchesDirect, Equivalence) {
  const auto& [shape, config] = GetParam();
  const auto data = make_data(shape, 11);
  std::vector<float> output(shape.output_size());
  syclrt::Queue queue;
  im2col_conv2d(queue, config, data.input, data.filter, output, shape);
  expect_near(output, data.expected, 1e-3f);
}

ConvShape conv_case(int batch, int spatial, int in_c, int out_c, int kernel,
                    int stride, int padding) {
  ConvShape s;
  s.batch = batch;
  s.in_height = s.in_width = spatial;
  s.in_channels = in_c;
  s.out_channels = out_c;
  s.kernel = kernel;
  s.stride = stride;
  s.padding = padding;
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colMatchesDirect,
    ::testing::Values(
        Im2colCase{conv_case(1, 8, 3, 8, 3, 1, 1), {2, 2, 2, 8, 8}},
        Im2colCase{conv_case(2, 7, 4, 6, 3, 2, 1), {1, 4, 8, 8, 16}},
        Im2colCase{conv_case(1, 12, 8, 16, 1, 1, 0), {4, 4, 4, 8, 8}},
        Im2colCase{conv_case(1, 9, 2, 5, 5, 1, 2), {8, 1, 2, 16, 8}},
        Im2colCase{conv_case(3, 6, 5, 7, 3, 1, 0), {2, 8, 4, 1, 64}}),
    [](const auto& param_info) {
      return "case" + std::to_string(param_info.index);
    });

TEST(Winograd, ApplicabilityRules) {
  EXPECT_TRUE(winograd_applicable(conv_case(1, 8, 4, 4, 3, 1, 1)));
  EXPECT_FALSE(winograd_applicable(conv_case(1, 8, 4, 4, 3, 2, 1)));
  EXPECT_FALSE(winograd_applicable(conv_case(1, 8, 4, 4, 1, 1, 0)));
  EXPECT_FALSE(winograd_applicable(conv_case(1, 8, 4, 4, 5, 1, 2)));
}

TEST(Winograd, ShapeMatchesDatasetLowering) {
  const auto s = conv_case(2, 14, 256, 512, 3, 1, 1);
  data::ConvLayer layer;
  layer.in_channels = s.in_channels;
  layer.out_channels = s.out_channels;
  layer.kernel = 3;
  layer.stride = 1;
  layer.padding = 1;
  layer.in_height = layer.in_width = s.in_height;
  const auto expected = data::winograd_shape(layer, s.batch);
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(winograd_gemm_shape(s), *expected);
}

class WinogradMatchesDirect : public ::testing::TestWithParam<Im2colCase> {};

TEST_P(WinogradMatchesDirect, Equivalence) {
  const auto& [shape, config] = GetParam();
  const auto data = make_data(shape, 13);
  std::vector<float> output(shape.output_size());
  syclrt::Queue queue;
  winograd_conv2d(queue, config, data.input, data.filter, output, shape);
  // Winograd accumulates more rounding; loosen slightly.
  expect_near(output, data.expected, 5e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WinogradMatchesDirect,
    ::testing::Values(
        Im2colCase{conv_case(1, 8, 3, 8, 3, 1, 1), {2, 2, 2, 8, 8}},
        Im2colCase{conv_case(1, 7, 4, 6, 3, 1, 1), {1, 4, 8, 8, 16}},  // odd
        Im2colCase{conv_case(2, 10, 6, 5, 3, 1, 0), {4, 4, 4, 8, 8}},  // no pad
        Im2colCase{conv_case(1, 13, 2, 9, 3, 1, 1), {8, 1, 2, 16, 8}},
        Im2colCase{conv_case(2, 6, 8, 8, 3, 1, 1), {2, 8, 4, 1, 64}}),
    [](const auto& param_info) {
      return "case" + std::to_string(param_info.index);
    });

TEST(Winograd, RejectsInapplicableShape) {
  const auto shape = conv_case(1, 8, 4, 4, 3, 2, 1);
  std::vector<float> input(shape.input_size());
  std::vector<float> filter(shape.filter_size());
  std::vector<float> output(shape.output_size());
  syclrt::Queue queue;
  EXPECT_THROW(winograd_conv2d(queue, {2, 2, 2, 8, 8}, input, filter, output,
                               shape),
               common::Error);
}

class Winograd4MatchesDirect : public ::testing::TestWithParam<Im2colCase> {};

TEST_P(Winograd4MatchesDirect, Equivalence) {
  const auto& [shape, config] = GetParam();
  const auto data = make_data(shape, 17);
  std::vector<float> output(shape.output_size());
  syclrt::Queue queue;
  winograd4_conv2d(queue, config, data.input, data.filter, output, shape);
  // F(4x4, 3x3) has larger transform constants; tolerance reflects that.
  expect_near(output, data.expected, 2e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Winograd4MatchesDirect,
    ::testing::Values(
        Im2colCase{conv_case(1, 12, 3, 8, 3, 1, 1), {2, 2, 2, 8, 8}},
        Im2colCase{conv_case(1, 9, 4, 6, 3, 1, 1), {1, 4, 8, 8, 16}},   // odd
        Im2colCase{conv_case(2, 14, 6, 5, 3, 1, 0), {4, 4, 4, 8, 8}},   // no pad
        Im2colCase{conv_case(1, 7, 2, 9, 3, 1, 1), {8, 1, 2, 16, 8}},   // tail
        Im2colCase{conv_case(2, 8, 8, 8, 3, 1, 1), {2, 8, 4, 1, 64}}),
    [](const auto& param_info) {
      return "case" + std::to_string(param_info.index);
    });

TEST(Winograd4, ShapeFormulaAndFlopReduction) {
  const auto s = conv_case(1, 56, 64, 64, 3, 1, 1);
  const auto shape = winograd4_gemm_shape(s);
  EXPECT_EQ(shape.m, 14u * 14u);  // 4x4 output tiles over 56x56
  EXPECT_EQ(shape.k, 64u);
  EXPECT_EQ(shape.n, 64u);
  // Multiply reduction vs im2col: 9 / (36/16) = 4x.
  const double direct_flops = im2col_gemm_shape(s).flops();
  const double wino4_flops = 36.0 * shape.flops();
  EXPECT_NEAR(direct_flops / wino4_flops, 4.0, 0.1);
}

TEST(Winograd4, RejectsInapplicableShape) {
  const auto shape = conv_case(1, 8, 4, 4, 3, 2, 1);
  std::vector<float> input(shape.input_size());
  std::vector<float> filter(shape.filter_size());
  std::vector<float> output(shape.output_size());
  syclrt::Queue queue;
  EXPECT_THROW(winograd4_conv2d(queue, {2, 2, 2, 8, 8}, input, filter, output,
                                shape),
               common::Error);
}

TEST(Winograd, FlopReductionVsIm2col) {
  // The point of Winograd: the multiply count drops by up to 2.25x for
  // F(2x2, 3x3). Verify at the shape level.
  const auto shape = conv_case(1, 56, 64, 64, 3, 1, 1);
  const auto direct = im2col_gemm_shape(shape);
  const auto wino = winograd_gemm_shape(shape);
  const double direct_flops = direct.flops();
  const double wino_flops = 16.0 * wino.flops();
  EXPECT_LT(wino_flops, direct_flops);
  EXPECT_NEAR(direct_flops / wino_flops, 2.25, 0.05);
}

}  // namespace
}  // namespace aks::conv
