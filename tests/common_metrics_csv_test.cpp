// MetricsRegistry CSV export: the fault-matrix tooling and `aks_tune serve
// --metrics-out` parse this format back, so it must round-trip through the
// repo's own CSV reader — including the degenerate empty-histogram rows.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <string>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"

namespace aks::common {
namespace {

class MetricsCsvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }

  std::filesystem::path write_registry(const MetricsRegistry& registry) {
    path_ = std::filesystem::temp_directory_path() /
            ("aks_metrics_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             ".csv");
    std::ofstream out(path_);
    registry.write_csv(out);
    return path_;
  }

  std::filesystem::path path_;
};

// (name, kind, field) -> value, as parsed back by the repo's CSV reader.
std::map<std::string, std::string> index_rows(const CsvTable& table) {
  std::map<std::string, std::string> out;
  const auto name = table.column_index("name");
  const auto kind = table.column_index("kind");
  const auto field = table.column_index("field");
  const auto value = table.column_index("value");
  for (const auto& row : table.rows) {
    out[row[name] + "|" + row[kind] + "|" + row[field]] = row[value];
  }
  return out;
}

TEST_F(MetricsCsvTest, CountersAndAccumulatorsRoundTrip) {
  MetricsRegistry registry;
  registry.counter("runner.launch_failures").add(7);
  registry.counter("runner.retries");  // registered but never incremented
  registry.accumulator("runner.backoff_seconds").add(0.25);
  registry.accumulator("runner.backoff_seconds").add(0.5);

  const auto table = read_csv(write_registry(registry));
  ASSERT_EQ(table.header,
            (std::vector<std::string>{"name", "kind", "field", "value"}));
  const auto rows = index_rows(table);
  EXPECT_EQ(rows.at("runner.launch_failures|counter|value"), "7");
  EXPECT_EQ(rows.at("runner.retries|counter|value"), "0");
  EXPECT_DOUBLE_EQ(
      std::stod(rows.at("runner.backoff_seconds|accumulator|value")), 0.75);
}

TEST_F(MetricsCsvTest, EmptyHistogramExportsZeroRowsNotNan) {
  MetricsRegistry registry;
  registry.histogram("serve.select_latency");  // zero samples

  const auto table = read_csv(write_registry(registry));
  const auto rows = index_rows(table);
  EXPECT_EQ(rows.at("serve.select_latency|histogram|count"), "0");
  // mean of an empty histogram must export as 0, never nan/inf.
  EXPECT_DOUBLE_EQ(
      std::stod(rows.at("serve.select_latency|histogram|mean_seconds")), 0.0);
  EXPECT_DOUBLE_EQ(
      std::stod(rows.at("serve.select_latency|histogram|p99_seconds")), 0.0);
}

TEST_F(MetricsCsvTest, PopulatedHistogramRoundTrips) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("serve.warmup_latency");
  histogram.record_seconds(1e-6);
  histogram.record_seconds(2e-6);
  histogram.record_seconds(1e-3);

  const auto table = read_csv(write_registry(registry));
  const auto rows = index_rows(table);
  EXPECT_EQ(rows.at("serve.warmup_latency|histogram|count"), "3");
  EXPECT_NEAR(
      std::stod(rows.at("serve.warmup_latency|histogram|total_seconds")),
      1e-6 + 2e-6 + 1e-3, 1e-9);
  const double p50 =
      std::stod(rows.at("serve.warmup_latency|histogram|p50_seconds"));
  const double p99 =
      std::stod(rows.at("serve.warmup_latency|histogram|p99_seconds"));
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
}

// Regression: durations >= 2^63 ns (including +inf) used to hit UB via
// `static_cast<uint64_t>` on an unrepresentable double; they must clamp to
// the last (overflow) bucket instead.
TEST(LatencyHistogramEdges, HugeAndInfiniteDurationsClampToLastBucket) {
  LatencyHistogram histogram;
  histogram.record_seconds(1e12);  // ~31,700 years in ns: >= 2^63
  histogram.record_seconds(std::numeric_limits<double>::infinity());
  histogram.record_seconds(std::numeric_limits<double>::max());

  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.bucket_count(LatencyHistogram::kBuckets - 1), 3u);
  // All samples are above the top bucket edge, so every quantile returns
  // the last bucket's upper edge.
  EXPECT_DOUBLE_EQ(
      histogram.quantile_seconds(0.5),
      LatencyHistogram::bucket_upper_seconds(LatencyHistogram::kBuckets - 1));
}

TEST(LatencyHistogramEdges, NanAndNegativeDurationsLandInFirstBucket) {
  LatencyHistogram histogram;
  histogram.record_seconds(std::nan(""));
  histogram.record_seconds(-1.0);
  histogram.record_seconds(-std::numeric_limits<double>::infinity());

  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.bucket_count(0), 3u);
  // The underflow bucket's upper edge is finite, so quantiles stay finite
  // even when the recorded durations were nan/-inf.
  EXPECT_TRUE(std::isfinite(histogram.quantile_seconds(0.99)));
}

// Regression: quantile_seconds(0.0) computed rank 0 and returned the first
// bucket's edge even when all samples sat in a higher bucket. q=0 must
// return the first *non-empty* bucket (the minimum sample's bucket).
TEST(LatencyHistogramEdges, QuantileZeroReturnsFirstNonEmptyBucket) {
  LatencyHistogram histogram;
  histogram.record_seconds(1e-3);  // ~2^20 ns: far above bucket 0
  histogram.record_seconds(2e-3);

  const double q0 = histogram.quantile_seconds(0.0);
  EXPECT_GE(q0, 1e-3);
  EXPECT_DOUBLE_EQ(q0, histogram.quantile_seconds(0.01));
}

TEST(LatencyHistogramEdges, QuantileOneReturnsMaxSampleBucket) {
  LatencyHistogram histogram;
  histogram.record_seconds(1e-6);
  histogram.record_seconds(1e-3);

  EXPECT_GE(histogram.quantile_seconds(1.0), 1e-3);
  EXPECT_LT(histogram.quantile_seconds(0.5), 1e-3);
}

// Regression: metric names containing CSV metadata characters used to be
// written verbatim, silently corrupting the `name,kind,field,value` schema.
// They must be rejected at registration instead.
TEST(MetricsNameValidation, RejectsCsvMetadataCharacters) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("bad,name"), Error);
  EXPECT_THROW(registry.counter("bad\"name"), Error);
  EXPECT_THROW(registry.accumulator("bad\nname"), Error);
  EXPECT_THROW(registry.histogram("bad\rname"), Error);
  EXPECT_THROW(registry.counter(""), Error);
  // Legal names (dots, dashes, underscores, spaces) still register.
  EXPECT_NO_THROW(registry.counter("serve.select_total-ok name"));
}

TEST_F(MetricsCsvTest, RejectedNameLeavesRegistryExportable) {
  MetricsRegistry registry;
  registry.counter("good.counter").add(3);
  EXPECT_THROW(registry.counter("bad,name"), Error);

  const auto table = read_csv(write_registry(registry));
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(index_rows(table).at("good.counter|counter|value"), "3");
}

TEST_F(MetricsCsvTest, MixedRegistryParsesWithExactRowCount) {
  MetricsRegistry registry;
  registry.counter("a.counter").add(1);
  registry.accumulator("b.accumulator").add(2.0);
  registry.histogram("c.histogram").record_seconds(1e-6);

  const auto table = read_csv(write_registry(registry));
  // 1 counter row + 1 accumulator row + 6 histogram rows.
  EXPECT_EQ(table.num_rows(), 8u);
}

}  // namespace
}  // namespace aks::common
