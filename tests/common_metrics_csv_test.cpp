// MetricsRegistry CSV export: the fault-matrix tooling and `aks_tune serve
// --metrics-out` parse this format back, so it must round-trip through the
// repo's own CSV reader — including the degenerate empty-histogram rows.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "common/csv.hpp"
#include "common/metrics.hpp"

namespace aks::common {
namespace {

class MetricsCsvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }

  std::filesystem::path write_registry(const MetricsRegistry& registry) {
    path_ = std::filesystem::temp_directory_path() /
            ("aks_metrics_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             ".csv");
    std::ofstream out(path_);
    registry.write_csv(out);
    return path_;
  }

  std::filesystem::path path_;
};

// (name, kind, field) -> value, as parsed back by the repo's CSV reader.
std::map<std::string, std::string> index_rows(const CsvTable& table) {
  std::map<std::string, std::string> out;
  const auto name = table.column_index("name");
  const auto kind = table.column_index("kind");
  const auto field = table.column_index("field");
  const auto value = table.column_index("value");
  for (const auto& row : table.rows) {
    out[row[name] + "|" + row[kind] + "|" + row[field]] = row[value];
  }
  return out;
}

TEST_F(MetricsCsvTest, CountersAndAccumulatorsRoundTrip) {
  MetricsRegistry registry;
  registry.counter("runner.launch_failures").add(7);
  registry.counter("runner.retries");  // registered but never incremented
  registry.accumulator("runner.backoff_seconds").add(0.25);
  registry.accumulator("runner.backoff_seconds").add(0.5);

  const auto table = read_csv(write_registry(registry));
  ASSERT_EQ(table.header,
            (std::vector<std::string>{"name", "kind", "field", "value"}));
  const auto rows = index_rows(table);
  EXPECT_EQ(rows.at("runner.launch_failures|counter|value"), "7");
  EXPECT_EQ(rows.at("runner.retries|counter|value"), "0");
  EXPECT_DOUBLE_EQ(
      std::stod(rows.at("runner.backoff_seconds|accumulator|value")), 0.75);
}

TEST_F(MetricsCsvTest, EmptyHistogramExportsZeroRowsNotNan) {
  MetricsRegistry registry;
  registry.histogram("serve.select_latency");  // zero samples

  const auto table = read_csv(write_registry(registry));
  const auto rows = index_rows(table);
  EXPECT_EQ(rows.at("serve.select_latency|histogram|count"), "0");
  // mean of an empty histogram must export as 0, never nan/inf.
  EXPECT_DOUBLE_EQ(
      std::stod(rows.at("serve.select_latency|histogram|mean_seconds")), 0.0);
  EXPECT_DOUBLE_EQ(
      std::stod(rows.at("serve.select_latency|histogram|p99_seconds")), 0.0);
}

TEST_F(MetricsCsvTest, PopulatedHistogramRoundTrips) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("serve.warmup_latency");
  histogram.record_seconds(1e-6);
  histogram.record_seconds(2e-6);
  histogram.record_seconds(1e-3);

  const auto table = read_csv(write_registry(registry));
  const auto rows = index_rows(table);
  EXPECT_EQ(rows.at("serve.warmup_latency|histogram|count"), "3");
  EXPECT_NEAR(
      std::stod(rows.at("serve.warmup_latency|histogram|total_seconds")),
      1e-6 + 2e-6 + 1e-3, 1e-9);
  const double p50 =
      std::stod(rows.at("serve.warmup_latency|histogram|p50_seconds"));
  const double p99 =
      std::stod(rows.at("serve.warmup_latency|histogram|p99_seconds"));
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
}

TEST_F(MetricsCsvTest, MixedRegistryParsesWithExactRowCount) {
  MetricsRegistry registry;
  registry.counter("a.counter").add(1);
  registry.accumulator("b.accumulator").add(2.0);
  registry.histogram("c.histogram").record_seconds(1e-6);

  const auto table = read_csv(write_registry(registry));
  // 1 counter row + 1 accumulator row + 6 histogram rows.
  EXPECT_EQ(table.num_rows(), 8u);
}

}  // namespace
}  // namespace aks::common
