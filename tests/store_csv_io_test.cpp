// store::csv_io: export/import round-trip plus the checked-parser contract
// — malformed CSV (bad hex fingerprint, missing fields, integer/double
// overflow, junk suffixes, unknown record types) raises common::Error with
// row/column context instead of leaking std::invalid_argument /
// std::out_of_range from std::stoull, and a bad row never partially
// applies.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "gemm/config.hpp"
#include "perfmodel/device_spec.hpp"
#include "store/csv_io.hpp"
#include "store/selection_store.hpp"

namespace aks::store {
namespace {

std::filesystem::path temp_store(const std::string& name) {
  const auto path =
      std::filesystem::temp_directory_path() / ("aks_csvio_" + name);
  std::filesystem::remove(path);
  return path;
}

SelectionRecord make_record(std::uint64_t fingerprint, gemm::GemmShape shape,
                            std::uint32_t config_index) {
  SelectionRecord record;
  record.device_fingerprint = fingerprint;
  record.shape = shape;
  record.config_index = config_index;
  record.warmup_seconds = 0.25;
  record.sweeps = 3;
  record.quarantined_candidates = 1;
  record.source = Source::kOnlineTuner;
  record.cert_digest = 0xfeedface12345678ull;
  return record;
}

/// A valid 12-field selection row to mutate per test case.
std::string valid_selection_row() {
  return "selection,00000000000000aa,64,32,128,5," +
         gemm::enumerate_configs()[5].name() +
         ",0.25,3,1,online-tuner,0000000000000000";
}

TEST(StoreCsv, ExportImportRoundTrips) {
  const auto device = perf::DeviceSpec::amd_r9_nano();
  const auto src_path = temp_store("roundtrip_src");
  const auto dst_path = temp_store("roundtrip_dst");

  SelectionStore src(src_path);
  src.put_device(device);
  ASSERT_TRUE(src.put(make_record(device.fingerprint(), {64, 32, 128}, 5)));
  ASSERT_TRUE(src.put(make_record(device.fingerprint(), {256, 64, 64}, 9)));

  std::ostringstream csv;
  export_store_csv(src, csv);

  SelectionStore dst(dst_path);
  std::istringstream in(csv.str());
  EXPECT_EQ(import_store_csv(in, dst), 3u);  // 1 device + 2 selections
  EXPECT_EQ(dst.selections(), src.selections());
  EXPECT_EQ(dst.devices(), src.devices());

  std::filesystem::remove(src_path);
  std::filesystem::remove(dst_path);
}

TEST(StoreCsv, CommentsAndBlankLinesSkipped) {
  const auto path = temp_store("comments");
  SelectionStore store(path);
  std::istringstream in("# header comment\n\n" + valid_selection_row() +
                        "\n");
  EXPECT_EQ(import_store_csv(in, store), 1u);
  std::filesystem::remove(path);
}

TEST(StoreCsv, BadHexFingerprintRaisesWithContext) {
  const auto path = temp_store("badhex");
  SelectionStore store(path);
  auto row = valid_selection_row();
  row.replace(row.find("00000000000000aa"), 16, "zz00000000000000");
  std::istringstream in(row);
  try {
    import_store_csv(in, store);
    FAIL() << "expected common::Error";
  } catch (const common::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("fingerprint"), std::string::npos) << what;
  }
  EXPECT_TRUE(store.selections().empty());
  std::filesystem::remove(path);
}

TEST(StoreCsv, TrailingGarbageInNumberRejected) {
  const auto path = temp_store("garbage");
  SelectionStore store(path);
  auto row = valid_selection_row();
  row.replace(row.find(",64,"), 4, ",64abc,");
  std::istringstream in(row);
  EXPECT_THROW(import_store_csv(in, store), common::Error);
  std::filesystem::remove(path);
}

TEST(StoreCsv, MissingFieldRaises) {
  const auto path = temp_store("missing");
  SelectionStore store(path);
  auto row = valid_selection_row();
  row.erase(row.rfind(','));  // drop the final cert-digest field
  std::istringstream in(row);
  try {
    import_store_csv(in, store);
    FAIL() << "expected common::Error";
  } catch (const common::Error& e) {
    EXPECT_NE(std::string(e.what()).find("12 fields"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(StoreCsv, Uint64OverflowRaisesNotStdOutOfRange) {
  const auto path = temp_store("overflow64");
  SelectionStore store(path);
  auto row = valid_selection_row();
  row.replace(row.find(",64,"), 4, ",99999999999999999999999999,");
  std::istringstream in(row);
  try {
    import_store_csv(in, store);
    FAIL() << "expected common::Error";
  } catch (const common::Error& e) {
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(StoreCsv, Uint32OverflowInSweepsRaises) {
  const auto path = temp_store("overflow32");
  SelectionStore store(path);
  auto row = valid_selection_row();
  row.replace(row.find(",0.25,3,"), 8, ",0.25,4294967296,");
  std::istringstream in(row);
  EXPECT_THROW(import_store_csv(in, store), common::Error);
  std::filesystem::remove(path);
}

TEST(StoreCsv, DoubleOverflowRaises) {
  const auto path = temp_store("overflowd");
  SelectionStore store(path);
  auto row = valid_selection_row();
  row.replace(row.find(",0.25,"), 6, ",1e400000,");
  std::istringstream in(row);
  EXPECT_THROW(import_store_csv(in, store), common::Error);
  std::filesystem::remove(path);
}

TEST(StoreCsv, OutOfRangeConfigIndexRaises) {
  const auto path = temp_store("badconfig");
  SelectionStore store(path);
  auto row = valid_selection_row();
  row.replace(row.find(",5,"), 3, ",100000,");
  std::istringstream in(row);
  try {
    import_store_csv(in, store);
    FAIL() << "expected common::Error";
  } catch (const common::Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(StoreCsv, UnknownRecordTypeNamesTheLine) {
  const auto path = temp_store("unknown");
  SelectionStore store(path);
  std::istringstream in(valid_selection_row() + "\nwidget,1,2,3\n");
  try {
    import_store_csv(in, store);
    FAIL() << "expected common::Error";
  } catch (const common::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("widget"), std::string::npos) << what;
  }
  std::filesystem::remove(path);
}

TEST(StoreCsv, DeviceRowFieldCountChecked) {
  const auto path = temp_store("devrow");
  SelectionStore store(path);
  std::istringstream in("device,00000000000000aa,short\n");
  EXPECT_THROW(import_store_csv(in, store), common::Error);
  std::filesystem::remove(path);
}

TEST(StoreCsv, FingerprintHexZeroPads) {
  EXPECT_EQ(fingerprint_hex(0xaaull), "00000000000000aa");
  EXPECT_EQ(fingerprint_hex(0), "0000000000000000");
  EXPECT_EQ(fingerprint_hex(~0ull), "ffffffffffffffff");
}

TEST(StoreCsv, SourceNamesRoundTrip) {
  for (const Source source :
       {Source::kOnlineTuner, Source::kLearnedSelector, Source::kTransfer,
        Source::kImported}) {
    EXPECT_EQ(source_from_string(to_string(source)), source);
  }
  EXPECT_EQ(source_from_string("hand-written"), Source::kImported);
}

}  // namespace
}  // namespace aks::store
