#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/error.hpp"
#include "core/evaluation.hpp"
#include "core/pruning.hpp"
#include "dataset/benchmark_runner.hpp"

namespace aks::select {
namespace {

/// Shared fixture: one modest dataset reused by every pruning test.
class PruningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::ExtractionOptions extraction;
    // Keep it small: single batch per network.
    extraction.vgg_batches = {1};
    extraction.resnet_batches = {1};
    extraction.mobilenet_batches = {1};
    dataset_ = new data::PerfDataset(data::build_paper_dataset({}, extraction));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const data::PerfDataset& dataset() { return *dataset_; }

 private:
  static data::PerfDataset* dataset_;
};

data::PerfDataset* PruningTest::dataset_ = nullptr;

TEST_F(PruningTest, RankByOptimalCountIsCompleteRanking) {
  const auto ranking = rank_by_optimal_count(dataset());
  EXPECT_EQ(ranking.size(), 640u);
  std::set<std::size_t> seen(ranking.begin(), ranking.end());
  EXPECT_EQ(seen.size(), 640u);
  // The first entry must win at least as often as the second.
  const auto counts = dataset().optimal_counts();
  EXPECT_GE(counts[ranking[0]], counts[ranking[1]]);
}

/// Contract shared by every pruner: exact budget, distinct, sorted, valid.
class PrunerContract
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(PrunerContract, ReturnsExactDistinctSortedBudget) {
  const auto [pruner_idx, budget] = GetParam();
  data::ExtractionOptions extraction;
  extraction.vgg_batches = {1};
  extraction.resnet_batches = {1};
  extraction.mobilenet_batches = {1};
  const auto dataset = data::build_paper_dataset({}, extraction);

  auto pruners = all_pruners(3);
  const auto& pruner = pruners[static_cast<std::size_t>(pruner_idx)];
  const auto configs = pruner->prune(dataset, budget);
  EXPECT_EQ(configs.size(), budget) << pruner->name();
  std::set<std::size_t> seen(configs.begin(), configs.end());
  EXPECT_EQ(seen.size(), budget) << pruner->name();
  EXPECT_TRUE(std::is_sorted(configs.begin(), configs.end()));
  for (const std::size_t c : configs) EXPECT_LT(c, 640u);
}

std::string pruner_case_name(
    const ::testing::TestParamInfo<std::tuple<int, std::size_t>>& info) {
  static const char* names[] = {"TopN", "KMeans", "HDBScan", "PcaKMeans",
                                "DTree"};
  return std::string(names[std::get<0>(info.param)]) + "_N" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllPrunersAllBudgets, PrunerContract,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(std::size_t{4}, std::size_t{8},
                                         std::size_t{15})),
    pruner_case_name);

TEST_F(PruningTest, TopNPicksMostFrequentWinners) {
  TopNPruner pruner;
  const auto configs = pruner.prune(dataset(), 5);
  const auto ranking = rank_by_optimal_count(dataset());
  const std::set<std::size_t> expected(ranking.begin(), ranking.begin() + 5);
  const std::set<std::size_t> actual(configs.begin(), configs.end());
  EXPECT_EQ(actual, expected);
}

TEST_F(PruningTest, PrunersAreDeterministic) {
  for (const auto& pruner : all_pruners(17)) {
    const auto a = pruner->prune(dataset(), 8);
    const auto b = pruner->prune(dataset(), 8);
    EXPECT_EQ(a, b) << pruner->name();
  }
  // And a second instance with the same seed agrees.
  KMeansPruner km1(5);
  KMeansPruner km2(5);
  EXPECT_EQ(km1.prune(dataset(), 8), km2.prune(dataset(), 8));
}

TEST_F(PruningTest, BudgetLargerThanConfigSpaceIsClamped) {
  TopNPruner pruner;
  const auto configs = pruner.prune(dataset(), 10000);
  EXPECT_EQ(configs.size(), 640u);
}

TEST_F(PruningTest, ZeroBudgetThrows) {
  TopNPruner pruner;
  EXPECT_THROW((void)pruner.prune(dataset(), 0), common::Error);
}

TEST_F(PruningTest, CeilingIncreasesWithBudget) {
  DecisionTreePruner pruner;
  double prev = 0.0;
  for (const std::size_t budget : {2u, 4u, 8u, 16u, 64u}) {
    const auto configs = pruner.prune(dataset(), budget);
    const double ceiling = pruning_ceiling(dataset(), configs);
    EXPECT_GE(ceiling, prev - 0.02) << "budget " << budget;
    prev = std::max(prev, ceiling);
  }
}

TEST_F(PruningTest, FullBudgetCeilingIsPerfect) {
  TopNPruner pruner;
  const auto all = pruner.prune(dataset(), 640);
  EXPECT_DOUBLE_EQ(pruning_ceiling(dataset(), all), 1.0);
}

TEST_F(PruningTest, ClusteringCoversBetterThanWorstCase) {
  // Every pruner at budget 8 should keep at least 70% of optimal on its own
  // training data — they are designed to cover the behaviour families.
  for (const auto& pruner : all_pruners(1)) {
    const auto configs = pruner->prune(dataset(), 8);
    EXPECT_GT(pruning_ceiling(dataset(), configs), 0.7) << pruner->name();
  }
}

TEST_F(PruningTest, AllPrunersHaveDistinctNames) {
  std::set<std::string> names;
  for (const auto& pruner : all_pruners()) names.insert(pruner->name());
  EXPECT_EQ(names.size(), 5u);
}

TEST_F(PruningTest, ValidityFilterRemovesLintedConfigs) {
  // Mark the unfiltered selection's first pick invalid (as the akscheck
  // config lint would) and check it is replaced, not just dropped.
  TopNPruner base;
  const auto unfiltered = base.prune(dataset(), 8);
  std::vector<bool> valid(dataset().num_configs(), true);
  valid[unfiltered[0]] = false;

  ValidityFilteredPruner filtered(std::make_unique<TopNPruner>(), valid);
  EXPECT_EQ(filtered.name(), "TopN+Lint");
  const auto configs = filtered.prune(dataset(), 8);
  EXPECT_EQ(configs.size(), 8u);
  EXPECT_TRUE(std::is_sorted(configs.begin(), configs.end()));
  for (const auto c : configs) {
    EXPECT_TRUE(valid[c]) << "config " << c << " is lint-invalid";
  }
}

TEST_F(PruningTest, ValidityFilterClampsBudgetToSurvivors) {
  // Only three configurations survive the lint: the budget caps there.
  std::vector<bool> valid(dataset().num_configs(), false);
  valid[3] = valid[100] = valid[500] = true;
  ValidityFilteredPruner filtered(std::make_unique<TopNPruner>(), valid);
  const auto configs = filtered.prune(dataset(), 8);
  EXPECT_EQ(configs.size(), 3u);
  for (const auto c : configs) EXPECT_TRUE(valid[c]);
}

TEST_F(PruningTest, ValidityFilterRejectsDegenerateInputs) {
  EXPECT_THROW(ValidityFilteredPruner(nullptr, {true}), common::Error);
  EXPECT_THROW(ValidityFilteredPruner(std::make_unique<TopNPruner>(),
                                      std::vector<bool>(640, false)),
               common::Error);
  // Mask size must match the dataset.
  ValidityFilteredPruner short_mask(std::make_unique<TopNPruner>(),
                                    std::vector<bool>(10, true));
  EXPECT_THROW((void)short_mask.prune(dataset(), 4), common::Error);
}

TEST_F(PruningTest, CertifiedPrunerDropsUncertifiedConfigs) {
  TopNPruner top_n;
  const auto unfiltered = top_n.prune(dataset(), 8);
  std::vector<bool> safe(dataset().num_configs(), true);
  safe[unfiltered[0]] = false;  // revoke the favourite's certificate

  CertifiedPruner certified(std::make_unique<TopNPruner>(), safe);
  EXPECT_EQ(certified.name(), "TopN+Certified");
  const auto configs = certified.prune(dataset(), 8);
  EXPECT_EQ(configs.size(), 8u);
  EXPECT_TRUE(std::is_sorted(configs.begin(), configs.end()));
  for (const auto c : configs) {
    EXPECT_TRUE(safe[c]) << "config " << c << " has no SAFE certificate";
  }
}

TEST_F(PruningTest, CertifiedPrunerClampsBudgetToCertifiedConfigs) {
  std::vector<bool> safe(dataset().num_configs(), false);
  safe[7] = safe[200] = safe[639] = true;
  CertifiedPruner certified(std::make_unique<TopNPruner>(), safe);
  const auto configs = certified.prune(dataset(), 8);
  EXPECT_EQ(configs.size(), 3u);
  for (const auto c : configs) EXPECT_TRUE(safe[c]);
}

TEST_F(PruningTest, CertifiedPrunerRejectsDegenerateInputs) {
  EXPECT_THROW(CertifiedPruner(nullptr, {true}), common::Error);
  EXPECT_THROW(CertifiedPruner(std::make_unique<TopNPruner>(),
                               std::vector<bool>(640, false)),
               common::Error);
  CertifiedPruner short_mask(std::make_unique<TopNPruner>(),
                             std::vector<bool>(10, true));
  EXPECT_THROW((void)short_mask.prune(dataset(), 4), common::Error);
}

TEST_F(PruningTest, CertifiedAndLintFiltersCompose) {
  // The two mask decorators stack: lint validity inside, certificates
  // outside — exactly how run_pipeline and akscheck deploy them.
  std::vector<bool> valid(dataset().num_configs(), true);
  std::vector<bool> safe(dataset().num_configs(), true);
  valid[10] = false;
  safe[20] = false;
  CertifiedPruner pruner(
      std::make_unique<ValidityFilteredPruner>(std::make_unique<TopNPruner>(),
                                               valid),
      safe);
  EXPECT_EQ(pruner.name(), "TopN+Lint+Certified");
  const auto configs = pruner.prune(dataset(), 12);
  EXPECT_EQ(configs.size(), 12u);
  for (const auto c : configs) {
    EXPECT_TRUE(valid[c]);
    EXPECT_TRUE(safe[c]);
  }
}

}  // namespace
}  // namespace aks::select
