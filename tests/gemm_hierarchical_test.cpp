#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gemm/hierarchical_kernel.hpp"
#include "gemm/reference.hpp"
#include "syclrt/queue.hpp"

namespace aks::gemm {
namespace {

void check_against_reference(const GemmShape& shape, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> a(shape.m * shape.k);
  std::vector<float> b(shape.k * shape.n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> expected(shape.m * shape.n);
  reference_gemm(a, b, expected, shape);

  syclrt::Queue queue;
  std::vector<float> c(shape.m * shape.n, -7.0f);
  hierarchical_gemm<8>(queue, a, b, c, shape);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], expected[i], 1e-3f)
        << shape.to_string() << " element " << i;
  }
}

TEST(HierarchicalGemm, AlignedShape) { check_against_reference({32, 24, 16}, 1); }

TEST(HierarchicalGemm, EdgeTilesInEveryDimension) {
  check_against_reference({13, 11, 9}, 2);
}

TEST(HierarchicalGemm, KSmallerThanTile) { check_against_reference({16, 3, 16}, 3); }

TEST(HierarchicalGemm, SingleRowAndColumn) {
  check_against_reference({1, 40, 1}, 4);
  check_against_reference({1, 8, 64}, 5);
}

TEST(HierarchicalGemm, DifferentTileSizes) {
  const GemmShape shape{20, 20, 20};
  common::Rng rng(6);
  std::vector<float> a(shape.m * shape.k);
  std::vector<float> b(shape.k * shape.n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> expected(shape.m * shape.n);
  reference_gemm(a, b, expected, shape);

  syclrt::Queue queue;
  std::vector<float> c4(shape.m * shape.n);
  hierarchical_gemm<4>(queue, a, b, c4, shape);
  std::vector<float> c16(shape.m * shape.n);
  hierarchical_gemm<16>(queue, a, b, c16, shape);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(c4[i], expected[i], 1e-3f);
    ASSERT_NEAR(c16[i], expected[i], 1e-3f);
  }
}

TEST(HierarchicalGemm, ValidatesOperands) {
  syclrt::Queue queue;
  std::vector<float> a(4), b(4), c(3);
  EXPECT_THROW(hierarchical_gemm<8>(queue, a, b, c, GemmShape{2, 2, 2}),
               common::Error);
}

}  // namespace
}  // namespace aks::gemm
