#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace aks::common {
namespace {

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("aks_test_" + name);
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("wg8x8", "wg"));
  EXPECT_FALSE(starts_with("8x8", "wg"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, FormatFixedDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
}

TEST(Csv, RoundTripTable) {
  CsvTable table;
  table.header = {"name", "value"};
  table.rows = {{"a", "1"}, {"b", "2"}};
  const auto path = temp_file("roundtrip.csv");
  write_csv(path, table);
  const auto loaded = read_csv(path);
  EXPECT_EQ(loaded.header, table.header);
  EXPECT_EQ(loaded.rows, table.rows);
  std::filesystem::remove(path);
}

TEST(Csv, ColumnIndexLookup) {
  CsvTable table;
  table.header = {"m", "k", "n"};
  EXPECT_EQ(table.column_index("k"), 1u);
  EXPECT_THROW(table.column_index("missing"), Error);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/path/file.csv"), Error);
}

TEST(Csv, RaggedRowThrowsOnRead) {
  const auto path = temp_file("ragged.csv");
  std::ofstream(path) << "a,b\n1,2\n3\n";
  EXPECT_THROW(read_csv(path), Error);
  std::filesystem::remove(path);
}

TEST(Csv, RaggedRowThrowsOnWrite) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1"}};
  EXPECT_THROW(write_csv(temp_file("bad.csv"), table), Error);
}

TEST(Csv, NumericMatrixRoundTrip) {
  Matrix m{{1.5, -2.0}, {0.25, 1e6}};
  const auto path = temp_file("numeric.csv");
  write_matrix_csv(path, {"x", "y"}, m, 6);
  const auto loaded = parse_numeric(read_csv(path));
  ASSERT_EQ(loaded.rows(), 2u);
  ASSERT_EQ(loaded.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_NEAR(loaded(r, c), m(r, c), 1e-6);
  std::filesystem::remove(path);
}

TEST(Csv, ParseNumericRejectsText) {
  CsvTable table;
  table.header = {"x"};
  table.rows = {{"not_a_number"}};
  EXPECT_THROW(parse_numeric(table), Error);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  // Busy loop long enough to register.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(timer.elapsed_seconds(), 0.0);
  EXPECT_GT(timer.elapsed_nanoseconds(), 0);
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), 1.0);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t) { throw Error("first"); });
  } catch (const Error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, GlobalPoolIsShared) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().num_threads(), 1u);
}

TEST(ErrorMacros, CheckCarriesMessageAndLocation) {
  try {
    AKS_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("common_util_test.cpp"), std::string::npos);
  }
}

TEST(ErrorMacros, FailAlwaysThrows) {
  EXPECT_THROW(AKS_FAIL("unconditional"), Error);
}

}  // namespace
}  // namespace aks::common
