// OnlineTuner thread-safety: the tuner's cache and statistics used to be
// plain fields mutated without synchronization, so concurrent select()
// calls were a data race. These tests pin down the repaired contract:
// single-threaded accounting is unchanged, concurrent callers always agree
// on a shape's winner, and the hit/miss counters stay coherent. They run
// under ThreadSanitizer in CI (the tsan job) to keep the race fixed.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "faults/injector.hpp"
#include "gemm/config.hpp"
#include "perfmodel/cost_model.hpp"

namespace aks::select {
namespace {

OnlineTuner::TimerFn model_timer() {
  return [timing = perf::TimingModel(perf::DeviceSpec::amd_r9_nano(), 0.0)](
             const gemm::KernelConfig& config, const gemm::GemmShape& shape) {
    return timing.best_of(config, shape, 3);
  };
}

std::vector<gemm::GemmShape> test_shapes(std::size_t n) {
  std::vector<gemm::GemmShape> shapes;
  for (std::size_t i = 0; i < n; ++i) {
    shapes.push_back(
        {64 + 32 * i, 128 + 16 * ((i * 7) % 11), 64 + 48 * ((i * 3) % 5)});
  }
  return shapes;
}

TEST(OnlineTunerConcurrency, SingleThreadedStatsContractUnchanged) {
  // Pin fault-free behaviour: this test asserts the exact legacy timer-call
  // accounting, which an AKS_FAULT_PLAN environment plan would perturb.
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  const std::vector<std::size_t> candidates = {0, 100, 250, 400, 639};
  std::atomic<int> timer_calls{0};
  OnlineTuner tuner(candidates,
                    [&, timer = model_timer()](const gemm::KernelConfig& c,
                                               const gemm::GemmShape& s) {
                      timer_calls.fetch_add(1);
                      return timer(c, s);
                    });
  const gemm::GemmShape shape{256, 256, 256};
  const auto first = tuner.select(shape);
  const auto second = tuner.select(shape);
  EXPECT_EQ(gemm::config_index(first), gemm::config_index(second));
  EXPECT_EQ(tuner.cache_misses(), 1u);
  EXPECT_EQ(tuner.cache_hits(), 1u);
  EXPECT_EQ(tuner.cached_shapes(), 1u);
  EXPECT_EQ(timer_calls.load(), static_cast<int>(candidates.size()));
  EXPECT_GT(tuner.trial_seconds(), 0.0);
}

TEST(OnlineTunerConcurrency, ConcurrentSelectsAgreeOnEveryShape) {
  const std::vector<std::size_t> candidates = {0, 100, 250, 400, 639};
  OnlineTuner tuner(candidates, model_timer());
  const auto shapes = test_shapes(16);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRepeats = 5;

  // winners[t][s]: config index thread t observed for shape s (last repeat;
  // all repeats must agree because the cache is write-once per shape).
  std::vector<std::vector<std::size_t>> winners(
      kThreads, std::vector<std::size_t>(shapes.size()));
  std::atomic<bool> stable{true};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t rep = 0; rep < kRepeats; ++rep) {
        for (std::size_t s = 0; s < shapes.size(); ++s) {
          const auto index = gemm::config_index(tuner.select(shapes[s]));
          if (rep > 0 && winners[t][s] != index) stable.store(false);
          winners[t][s] = index;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_TRUE(stable.load());
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    for (std::size_t t = 1; t < kThreads; ++t) {
      EXPECT_EQ(winners[t][s], winners[0][s])
          << "threads disagree on shape " << shapes[s].to_string();
    }
  }

  // Every select() is counted exactly once, as a hit or a miss.
  const std::size_t total = kThreads * kRepeats * shapes.size();
  EXPECT_EQ(tuner.cache_hits() + tuner.cache_misses(), total);
  // At least one sweep per shape; duplicates only from first-sight races.
  EXPECT_GE(tuner.cache_misses(), shapes.size());
  EXPECT_LE(tuner.cache_misses(), kThreads * shapes.size());
  EXPECT_EQ(tuner.cached_shapes(), shapes.size());
  EXPECT_GT(tuner.trial_seconds(), 0.0);
}

}  // namespace
}  // namespace aks::select
