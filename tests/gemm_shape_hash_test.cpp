// std::hash<GemmShape> shard-distribution quality: the serving layer maps
// shapes to mutex-striped shards via `hash & (shards - 1)`, so the hash's
// *low* bits must spread the real benchmark corpus evenly — a biased hash
// silently serializes the cache. Chi-squared goodness-of-fit against the
// uniform distribution, thresholds at the p = 0.001 critical values, so
// the test only fails on gross mixing regressions, not noise.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "dataset/extract.hpp"
#include "gemm/shape.hpp"

namespace aks::gemm {
namespace {

std::vector<GemmShape> corpus() {
  std::set<GemmShape> unique;
  for (const auto& lowered : data::extract_all_shapes()) {
    unique.insert(lowered.shape);
  }
  return {unique.begin(), unique.end()};
}

double chi_squared(const std::vector<GemmShape>& shapes,
                   std::size_t buckets) {
  std::vector<std::size_t> counts(buckets, 0);
  for (const auto& shape : shapes) {
    // Exactly the serving layer's shard selection: low bits only.
    ++counts[std::hash<GemmShape>{}(shape) & (buckets - 1)];
  }
  const double expected =
      static_cast<double>(shapes.size()) / static_cast<double>(buckets);
  double chi2 = 0.0;
  for (const std::size_t count : counts) {
    const double d = static_cast<double>(count) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

TEST(GemmShapeHash, CorpusHashesAreCollisionFree) {
  const auto shapes = corpus();
  ASSERT_GT(shapes.size(), 100u);  // the paper's multi-model corpus
  std::set<std::size_t> hashes;
  for (const auto& shape : shapes) {
    hashes.insert(std::hash<GemmShape>{}(shape));
  }
  EXPECT_EQ(hashes.size(), shapes.size());
}

TEST(GemmShapeHash, CorpusSpreadsUniformlyOver16Shards) {
  // Critical value for chi-squared, df = 15, p = 0.001.
  EXPECT_LT(chi_squared(corpus(), 16), 37.70);
}

TEST(GemmShapeHash, CorpusSpreadsUniformlyOver64Shards) {
  // Critical value for chi-squared, df = 63, p = 0.001.
  EXPECT_LT(chi_squared(corpus(), 64), 103.44);
}

TEST(GemmShapeHash, StructuredShapeGridSpreadsUniformly) {
  // Nearby layer shapes differ in one dimension by small factors (powers
  // of two, batch-size steps); exactly the pattern a weak mixer turns into
  // shard collisions. 24 x 16 x 16 grid of such shapes.
  std::vector<GemmShape> grid;
  for (std::size_t m = 1; m <= 24; ++m) {
    for (std::size_t k = 1; k <= 16; ++k) {
      for (std::size_t n = 1; n <= 16; ++n) {
        grid.push_back({m * 8, k * 64, n * 128});
      }
    }
  }
  EXPECT_LT(chi_squared(grid, 64), 103.44);
  EXPECT_LT(chi_squared(grid, 256), 330.5);  // df = 255, p = 0.001
}

TEST(GemmShapeHash, PermutedDimensionsHashDifferently) {
  // M, K, N are mixed sequentially, not summed: transposing a shape must
  // move it (with overwhelming probability) to a different shard.
  const GemmShape a{128, 256, 512};
  const GemmShape b{256, 128, 512};
  const GemmShape c{512, 256, 128};
  const std::hash<GemmShape> h;
  EXPECT_NE(h(a), h(b));
  EXPECT_NE(h(a), h(c));
  EXPECT_NE(h(b), h(c));
}

}  // namespace
}  // namespace aks::gemm
