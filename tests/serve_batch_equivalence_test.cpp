// Batched selection equivalence: select_batch() must be observationally
// identical to calling select() once per element, in input order, on a
// fresh twin service — bit-identical configs, matching hit/miss/fallback
// accounting, and zero duplicate sweeps — across randomized shape vectors
// mixing duplicates, permutations, cold/warm state and injected faults.
// The acceptance bar for the batch API is >= 1000 randomized vectors
// across this suite (the per-test counts below sum past it).
//
// Suite name SelectionServiceBatch is matched by the CI sanitize/tsan
// filters (SelectionService[A-Za-z]*).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "core/online.hpp"
#include "faults/injector.hpp"
#include "gemm/config.hpp"
#include "perfmodel/cost_model.hpp"
#include "serve/selection_service.hpp"

namespace aks::serve {
namespace {

std::vector<gemm::GemmShape> shape_pool() {
  std::vector<gemm::GemmShape> shapes;
  for (std::size_t i = 0; i < 24; ++i) {
    shapes.push_back(
        {32 + 16 * i, 64 + 8 * ((i * 5) % 13), 32 + 32 * ((i * 3) % 7)});
  }
  return shapes;
}

/// Deterministic cheap warm-up: the winner is a pure function of the shape,
/// so twin services must agree bit-for-bit however their calls interleave.
gemm::KernelConfig pure_config(const gemm::GemmShape& shape) {
  const auto& configs = gemm::enumerate_configs();
  return configs[(shape.m * 31 + shape.k * 7 + shape.n) % configs.size()];
}

/// A random vector over a window of the pool: narrow windows force heavy
/// duplication, wide ones mostly-unique batches. Sizes 0..32 include the
/// empty batch.
std::vector<gemm::GemmShape> random_vector(
    common::Rng& rng, const std::vector<gemm::GemmShape>& pool) {
  const std::size_t size = rng.uniform_index(33);
  const std::size_t window = 1 + rng.uniform_index(pool.size());
  std::vector<gemm::GemmShape> v;
  v.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    v.push_back(pool[rng.uniform_index(window)]);
  }
  return v;
}

/// Runs `rounds` random vectors against a (batched, sequential) twin pair,
/// asserting per-element bit-identity and accounting parity. Counts the
/// vectors exercised into `vectors` (out-param: ASSERT_* needs void return).
void run_twin_rounds(SelectionService& batched, SelectionService& sequential,
                     common::Rng& rng,
                     const std::vector<gemm::GemmShape>& pool,
                     std::size_t rounds, std::size_t& vectors) {
  for (std::size_t round = 0; round < rounds; ++round) {
    // Cold/warm mix: sometimes pre-warm a random subset through the plain
    // path on both twins before the batch sees it.
    if (rng.uniform() < 0.4) {
      const std::size_t warm = rng.uniform_index(pool.size() + 1);
      for (std::size_t i = 0; i < warm; ++i) {
        const auto& shape = pool[rng.uniform_index(pool.size())];
        (void)batched.select(shape);
        (void)sequential.select(shape);
      }
    }
    const auto v = random_vector(rng, pool);
    const auto got = batched.select_batch(v);
    ASSERT_EQ(got.size(), v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      const auto expected = sequential.select(v[i]);
      ASSERT_EQ(gemm::config_index(got[i]), gemm::config_index(expected))
          << "position " << i << " of a " << v.size() << "-shape batch "
          << "diverged from sequential select";
    }
    ++vectors;
  }
  const auto b = batched.stats();
  const auto s = sequential.stats();
  EXPECT_EQ(b.duplicate_sweeps, 0u);
  EXPECT_EQ(s.duplicate_sweeps, 0u);
  EXPECT_EQ(b.misses, s.misses) << "batch warmed a different shape set";
  EXPECT_EQ(b.hits, s.hits) << "batch hit accounting diverged";
  EXPECT_EQ(b.fallbacks_served, s.fallbacks_served);
  EXPECT_EQ(b.cached_shapes, s.cached_shapes);
}

TEST(SelectionServiceBatch, MatchesSequentialSelectOverRandomVectors) {
  const auto pool = shape_pool();
  common::Rng rng(0xba7c4);
  std::size_t vectors = 0;
  for (std::size_t trial = 0; trial < 140; ++trial) {
    SelectionService batched(pure_config);
    SelectionService sequential(pure_config);
    run_twin_rounds(batched, sequential, rng, pool, 5, vectors);
  }
  EXPECT_GE(vectors, 700u);
}

TEST(SelectionServiceBatch, PermutedBatchesPreserveInputOrderMapping) {
  // Against a single service: a permutation of a just-resolved batch must
  // map every position to the config its shape received the first time —
  // out[i] always belongs to shapes[i], whatever order the wave ran in.
  const auto pool = shape_pool();
  common::Rng rng(0x9e37);
  std::size_t vectors = 0;
  for (std::size_t trial = 0; trial < 100; ++trial) {
    SelectionService service(pure_config);
    auto v = random_vector(rng, pool);
    const auto first = service.select_batch(v);
    std::map<gemm::GemmShape, std::size_t> by_shape;
    for (std::size_t i = 0; i < v.size(); ++i) {
      by_shape[v[i]] = gemm::config_index(first[i]);
    }
    rng.shuffle(v);
    const auto second = service.select_batch(v);
    ASSERT_EQ(second.size(), v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_EQ(gemm::config_index(second[i]), by_shape.at(v[i]))
          << "permuted position " << i << " lost its shape's answer";
    }
    EXPECT_EQ(service.stats().duplicate_sweeps, 0u);
    vectors += 2;
  }
  EXPECT_GE(vectors, 200u);
}

TEST(SelectionServiceBatch, MatchesSequentialUnderTunerFaultPlan) {
  // Twin OnlineTuners under a canned fault plan: trial faults are keyed on
  // (shape, candidate, attempt), so twins degrade identically as long as
  // the batch warms shapes in the same order a sequential caller would.
  faults::FaultPlan plan;
  plan.seed = 77;
  plan.at(faults::Site::kWarmUpTrial).launch_failure = 0.3;
  faults::ScopedFaultPlan install(plan);

  const auto pool = shape_pool();
  const std::vector<std::size_t> candidates = {0, 100, 250, 400, 639};
  const auto timer =
      [timing = perf::TimingModel(perf::DeviceSpec::amd_r9_nano(), 0.0)](
          const gemm::KernelConfig& config, const gemm::GemmShape& shape) {
        return timing.best_of(config, shape, 3);
      };
  common::Rng rng(0xfa17);
  std::size_t vectors = 0;
  for (std::size_t trial = 0; trial < 30; ++trial) {
    select::OnlineTuner tuner_b(candidates, timer);
    select::OnlineTuner tuner_s(candidates, timer);
    ServiceOptions options_b;
    options_b.fallback = tuner_b.fallback_config();
    ServiceOptions options_s;
    options_s.fallback = tuner_s.fallback_config();
    SelectionService batched(tuner_b, options_b);
    SelectionService sequential(tuner_s, options_s);
    run_twin_rounds(batched, sequential, rng, pool, 5, vectors);
  }
  EXPECT_GE(vectors, 150u);
}

TEST(SelectionServiceBatch, MatchesSequentialUnderThrowingWarmUps) {
  // A warm-up that *throws* on injected faults, keyed per (shape, attempt)
  // through a per-service attempt ledger: a shape can fail its first
  // warm-up and succeed a retry, exercising the degraded-duplicate path
  // (later occurrences of a failed shape must re-select, exactly like a
  // sequential caller whose failed entry was dropped).
  faults::FaultPlan plan;
  plan.seed = 191;
  plan.at(faults::Site::kWarmUpTrial).launch_failure = 0.4;
  faults::ScopedFaultPlan install(plan);

  struct AttemptLedger {
    std::mutex m;
    std::map<gemm::GemmShape, std::uint64_t> attempts;
  };
  const auto make_warm_up = [](const std::shared_ptr<AttemptLedger>& ledger) {
    return [ledger](const gemm::GemmShape& shape) -> gemm::KernelConfig {
      std::uint64_t attempt = 0;
      {
        std::lock_guard lock(ledger->m);
        attempt = ledger->attempts[shape]++;
      }
      faults::FaultScope scope(
          faults::site_bit(faults::Site::kWarmUpTrial),
          faults::mix_key(shape.m, shape.k, shape.n, attempt));
      if (faults::probe(faults::Site::kWarmUpTrial)) {
        throw faults::LaunchFailure("injected warm-up failure");
      }
      return pure_config(shape);
    };
  };

  const auto pool = shape_pool();
  const auto fallback = gemm::enumerate_configs()[42];
  common::Rng rng(0x5eed);
  std::size_t vectors = 0;
  for (std::size_t trial = 0; trial < 30; ++trial) {
    ServiceOptions options;
    options.fallback = fallback;
    SelectionService batched(make_warm_up(std::make_shared<AttemptLedger>()),
                             options);
    SelectionService sequential(
        make_warm_up(std::make_shared<AttemptLedger>()), options);
    run_twin_rounds(batched, sequential, rng, pool, 5, vectors);
  }
  EXPECT_GE(vectors, 150u);
}

TEST(SelectionServiceBatch, AsyncVariantsAgreeWithSynchronous) {
  const auto pool = shape_pool();
  SelectionService service(pure_config);
  std::vector<std::future<gemm::KernelConfig>> futures;
  futures.reserve(pool.size());
  for (const auto& shape : pool) futures.push_back(service.select_async(shape));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(gemm::config_index(futures[i].get()),
              gemm::config_index(pure_config(pool[i])));
  }

  std::vector<gemm::GemmShape> batch(pool.begin(), pool.begin() + 12);
  batch.insert(batch.end(), pool.begin(), pool.begin() + 12);  // duplicates
  auto future = service.select_batch_async(batch);
  const auto got = future.get();
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(gemm::config_index(got[i]),
              gemm::config_index(pure_config(batch[i])));
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.duplicate_sweeps, 0u);
  EXPECT_EQ(stats.batch_requests, 1u);
  EXPECT_EQ(stats.batch_shapes, batch.size());
  EXPECT_EQ(stats.batch_dedup, 12u);
}

TEST(SelectionServiceBatch, BatchStatsAccounting) {
  const auto pool = shape_pool();
  SelectionService service(pure_config);
  // 8 uniques, each three times: 16 deduplicated, 8 wave-warmed.
  std::vector<gemm::GemmShape> batch;
  for (std::size_t rep = 0; rep < 3; ++rep) {
    for (std::size_t i = 0; i < 8; ++i) batch.push_back(pool[i]);
  }
  const auto out = service.select_batch(batch);
  ASSERT_EQ(out.size(), batch.size());
  auto stats = service.stats();
  EXPECT_EQ(stats.batch_requests, 1u);
  EXPECT_EQ(stats.batch_shapes, 24u);
  EXPECT_EQ(stats.batch_dedup, 16u);
  EXPECT_EQ(stats.batch_wave_shapes, 8u);
  EXPECT_EQ(stats.misses, 8u);
  EXPECT_EQ(stats.hits, 16u);

  // A second, fully warm batch adds no wave and all-hit accounting; the
  // empty batch counts a request and nothing else.
  (void)service.select_batch(batch);
  (void)service.select_batch(std::vector<gemm::GemmShape>{});
  stats = service.stats();
  EXPECT_EQ(stats.batch_requests, 3u);
  EXPECT_EQ(stats.batch_shapes, 48u);
  EXPECT_EQ(stats.batch_wave_shapes, 8u);
  EXPECT_EQ(stats.misses, 8u);
  EXPECT_EQ(stats.hits, 40u);
  EXPECT_EQ(stats.duplicate_sweeps, 0u);
}

}  // namespace
}  // namespace aks::serve
