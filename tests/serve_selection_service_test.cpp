// SelectionService: sharded cache, single-flight warm-up, metrics. The
// stress tests drive mixed hot/cold traffic from many threads and assert
// the serving contract — exactly one warm-up per shape, every thread sees
// the same winner, counters monotonic and coherent. Runs under
// ThreadSanitizer in CI (the tsan job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/online.hpp"
#include "gemm/config.hpp"
#include "perfmodel/cost_model.hpp"
#include "serve/selection_service.hpp"
#include "store/selection_store.hpp"

namespace aks::serve {
namespace {

std::vector<gemm::GemmShape> test_shapes(std::size_t n) {
  std::vector<gemm::GemmShape> shapes;
  for (std::size_t i = 0; i < n; ++i) {
    shapes.push_back(
        {32 + 16 * i, 64 + 8 * ((i * 5) % 13), 32 + 24 * ((i * 11) % 7)});
  }
  return shapes;
}

// Warm-up function that records per-shape invocation counts (guarded by a
// mutex so the test itself is race-free) and returns a deterministic
// config for each shape.
class CountingWarmUp {
 public:
  explicit CountingWarmUp(std::chrono::microseconds delay = {})
      : delay_(delay) {}

  gemm::KernelConfig operator()(const gemm::GemmShape& shape) {
    {
      std::lock_guard lock(m_);
      ++calls_[shape];
    }
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    const std::size_t index =
        (shape.m * 31 + shape.k * 7 + shape.n) % gemm::enumerate_configs().size();
    return gemm::enumerate_configs()[index];
  }

  [[nodiscard]] std::map<gemm::GemmShape, int> calls() const {
    std::lock_guard lock(m_);
    return calls_;
  }

 private:
  std::chrono::microseconds delay_;
  mutable std::mutex m_;
  std::map<gemm::GemmShape, int> calls_;
};

TEST(SelectionService, CachesAndCountsSingleThreaded) {
  auto warm = std::make_shared<CountingWarmUp>();
  SelectionService service(
      [warm](const gemm::GemmShape& s) { return (*warm)(s); });
  const gemm::GemmShape shape{128, 128, 128};

  const auto first = service.select(shape);
  const auto second = service.select(shape);
  EXPECT_EQ(gemm::config_index(first), gemm::config_index(second));
  EXPECT_EQ(warm->calls().at(shape), 1);

  const auto stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.coalesced_waits, 0u);
  EXPECT_EQ(stats.duplicate_sweeps, 0u);
  EXPECT_EQ(stats.cached_shapes, 1u);
  EXPECT_GE(stats.warmup_seconds, 0.0);
}

TEST(SelectionService, RoundsShardCountToPowerOfTwo) {
  auto warm = std::make_shared<CountingWarmUp>();
  ServiceOptions options;
  options.num_shards = 5;
  SelectionService service(
      [warm](const gemm::GemmShape& s) { return (*warm)(s); }, options);
  EXPECT_EQ(service.num_shards(), 8u);
  for (const auto& shape : test_shapes(64)) (void)service.select(shape);
  EXPECT_EQ(service.stats().cached_shapes, 64u);
}

TEST(SelectionService, ConcurrentFirstSightWarmsUpExactlyOnce) {
  auto warm =
      std::make_shared<CountingWarmUp>(std::chrono::microseconds(2000));
  SelectionService service(
      [warm](const gemm::GemmShape& s) { return (*warm)(s); });
  const gemm::GemmShape shape{256, 64, 512};

  constexpr std::size_t kThreads = 8;
  std::vector<std::size_t> chosen(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { chosen[t] = gemm::config_index(service.select(shape)); });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(warm->calls().at(shape), 1) << "duplicate warm-up sweep";
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(chosen[t], chosen[0]);

  const auto stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.duplicate_sweeps, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced_waits, kThreads);
}

TEST(SelectionService, StressMixedHotColdTraffic) {
  auto warm = std::make_shared<CountingWarmUp>(std::chrono::microseconds(200));
  SelectionService service(
      [warm](const gemm::GemmShape& s) { return (*warm)(s); });
  const auto shapes = test_shapes(32);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kSelects = 400;

  // Each thread interleaves a hot subset (early shapes, high repeat rate)
  // with progressively colder shapes, so warm-ups race with cache hits.
  std::vector<std::vector<std::size_t>> winners(
      kThreads, std::vector<std::size_t>(shapes.size(), 0));
  std::atomic<bool> monotonic{true};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ServiceStats last;
      for (std::size_t i = 0; i < kSelects; ++i) {
        const std::size_t s =
            (i % 3 == 0) ? (i * (t + 3)) % shapes.size() : i % 4;
        // +1 so 0 keeps meaning "never touched" (config 0 is a real index).
        winners[t][s] = gemm::config_index(service.select(shapes[s])) + 1;
        if (i % 64 == 0) {
          // Counters must never go backwards, from any observer.
          const auto now = service.stats();
          if (now.hits < last.hits || now.misses < last.misses ||
              now.coalesced_waits < last.coalesced_waits ||
              now.warmup_seconds < last.warmup_seconds) {
            monotonic.store(false);
          }
          last = now;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_TRUE(monotonic.load());
  // Exactly-once warm-up per touched shape.
  for (const auto& [shape, calls] : warm->calls()) {
    EXPECT_EQ(calls, 1) << "shape " << shape.to_string()
                        << " warmed up " << calls << " times";
  }
  // Cache consistency: all threads that touched a shape agree.
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    std::set<std::size_t> distinct;
    for (std::size_t t = 0; t < kThreads; ++t) {
      if (winners[t][s] != 0) distinct.insert(winners[t][s]);
    }
    EXPECT_LE(distinct.size(), 1u)
        << "threads disagree on shape " << shapes[s].to_string();
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.duplicate_sweeps, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced_waits,
            kThreads * kSelects);
  EXPECT_EQ(stats.misses, warm->calls().size());
  EXPECT_EQ(stats.cached_shapes, warm->calls().size());
}

TEST(SelectionService, FailedWarmUpPropagatesAndRetries) {
  std::atomic<int> attempts{0};
  SelectionService service([&](const gemm::GemmShape& shape) {
    if (attempts.fetch_add(1) == 0) throw std::runtime_error("trial failed");
    const std::size_t index = shape.m % gemm::enumerate_configs().size();
    return gemm::enumerate_configs()[index];
  });
  const gemm::GemmShape shape{64, 64, 64};
  EXPECT_THROW((void)service.select(shape), std::runtime_error);
  // The failed entry was dropped: the next request retries and succeeds.
  const auto config = service.select(shape);
  EXPECT_EQ(gemm::config_index(config), 64 % gemm::enumerate_configs().size());
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(service.stats().cached_shapes, 1u);
}

TEST(SelectionService, ServesOnlineTunerWithExactWarmUpAccounting) {
  const std::vector<std::size_t> candidates = {0, 100, 250, 400, 639};
  const perf::TimingModel timing(perf::DeviceSpec::amd_r9_nano(), 0.0);
  select::OnlineTuner tuner(
      candidates, [&](const gemm::KernelConfig& config,
                      const gemm::GemmShape& shape) {
        return timing.best_of(config, shape, 3);
      });
  SelectionService service(tuner);
  const auto shapes = test_shapes(8);

  constexpr std::size_t kThreads = 6;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t rep = 0; rep < 4; ++rep) {
        for (const auto& shape : shapes) (void)service.select(shape);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Single-flight means the tuner saw each shape exactly once: its own
  // warm-up accounting stays exact under concurrency.
  EXPECT_EQ(tuner.cache_misses(), shapes.size());
  EXPECT_EQ(tuner.cache_hits(), 0u);
  EXPECT_EQ(tuner.cached_shapes(), shapes.size());
  EXPECT_EQ(service.stats().duplicate_sweeps, 0u);
}

// Regression test for the hit-count reconciliation: stats() folds the
// per-shard hit stripes into serve.hits under a sync mutex, tracking the
// already-folded total separately, so concurrent observers each see a
// monotonic, never-double-counted value that lands exactly on the true
// total once traffic stops.
TEST(SelectionService, StatsConsistentUnderConcurrentReaders) {
  auto warm = std::make_shared<CountingWarmUp>();
  SelectionService service(
      [warm](const gemm::GemmShape& s) { return (*warm)(s); });
  const auto shapes = test_shapes(16);
  for (const auto& shape : shapes) (void)service.select(shape);  // warm all

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kReaders = 3;
  constexpr std::size_t kReps = 200;
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t prev = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto stats = service.stats();
        EXPECT_GE(stats.hits, prev);  // monotonic: no lost or doubled delta
        EXPECT_LE(stats.hits, kClients * kReps * 16);
        prev = stats.hits;
      }
    });
  }
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        for (const auto& shape : shapes) (void)service.select(shape);
      }
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  const auto stats = service.stats();
  EXPECT_EQ(stats.hits, kClients * kReps * 16);
  EXPECT_EQ(stats.misses, 16u);
}

TEST(SelectionService, MetricsExportToCsv) {
  auto warm = std::make_shared<CountingWarmUp>();
  SelectionService service(
      [warm](const gemm::GemmShape& s) { return (*warm)(s); });
  for (const auto& shape : test_shapes(4)) {
    (void)service.select(shape);
    (void)service.select(shape);
  }
  const std::string csv = service.metrics().to_csv();
  EXPECT_NE(csv.find("serve.hits,counter,value,4"), std::string::npos);
  EXPECT_NE(csv.find("serve.misses,counter,value,4"), std::string::npos);
  // Select latency is sampled 1-in-32 per thread, so only the row's
  // presence is stable, not its count.
  EXPECT_NE(csv.find("serve.select_latency,histogram,count,"),
            std::string::npos);
  EXPECT_NE(csv.find("serve.warmup_latency,histogram,count,4"),
            std::string::npos);
  EXPECT_NE(csv.find("serve.warmup_seconds,accumulator"), std::string::npos);
}

TEST(SelectionService, ColdPathLedgerCoversPublishAndStoreEnqueue) {
  // Regression for a miss-path metrics bug: warm-up latency used to be
  // sampled right after the warm-up function returned, *before* the result
  // publish and the store write-behind enqueue — undercounting the cold
  // cost a miss actually adds over a hit. With an instant warm-up function
  // and an attached store, the honestly-sampled cold mean must be at least
  // the measured warm mean: the cold path does a strict superset of the
  // warm path's work (entry allocation, publish, record validation and
  // store insert). Pre-fix, the cold sample was just the trivial function
  // call and sat well below a warm cache hit.
  const auto store_path = std::filesystem::temp_directory_path() /
                          "aks_warm_le_cold.journal";
  std::filesystem::remove(store_path);
  store::SelectionStore store(store_path);

  SelectionService service([](const gemm::GemmShape&) {
    return gemm::enumerate_configs()[0];
  });
  (void)service.warm_start(store, perf::DeviceSpec::amd_r9_nano());

  const auto shapes = test_shapes(512);
  for (const auto& shape : shapes) (void)service.select(shape);  // all cold

  // Prime, then time one full warm pass.
  for (const auto& shape : shapes) (void)service.select(shape);
  common::Timer timer;
  for (const auto& shape : shapes) (void)service.select(shape);
  const double warm_mean =
      timer.elapsed_seconds() / static_cast<double>(shapes.size());

  const auto stats = service.stats();
  ASSERT_GE(stats.misses, shapes.size());
  const double cold_mean =
      stats.warmup_seconds / static_cast<double>(stats.misses);
  EXPECT_LE(warm_mean, cold_mean)
      << "cold-path ledger (" << cold_mean * 1e9
      << " ns/miss) undercounts: a warm hit measured " << warm_mean * 1e9
      << " ns — the miss sample must cover publish + store enqueue";
  std::filesystem::remove(store_path);
}

}  // namespace
}  // namespace aks::serve
