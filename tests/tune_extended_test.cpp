#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "tune/extended_space.hpp"
#include "tune/search.hpp"

namespace aks::tune {
namespace {

const perf::CostModel& model() {
  static const perf::CostModel m(perf::DeviceSpec::amd_r9_nano());
  return m;
}

TEST(ExtendedSpace, Has1920DistinctPoints) {
  const auto& configs = enumerate_extended_configs();
  EXPECT_EQ(configs.size(), 1920u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(extended_config_index(configs[i]), i);
  }
}

TEST(ExtendedSpace, NamesCarryVectorWidth) {
  const ExtendedConfig config{{4, 2, 8, 8, 32}, 2};
  EXPECT_EQ(config.name(), "t4x2_a8_wg8x32_v2");
}

TEST(ExtendedSpace, RejectsUnknownWidth) {
  const ExtendedConfig bad{{4, 2, 8, 8, 32}, 3};
  EXPECT_THROW((void)extended_config_index(bad), common::Error);
  EXPECT_THROW((void)predict_extended_seconds(model(), bad, {64, 64, 64}),
               common::Error);
}

TEST(ExtendedSpace, PredictionsAreFiniteAndPositiveEverywhere) {
  const gemm::GemmShape shape{784, 256, 128};
  for (const auto& config : enumerate_extended_configs()) {
    const double t = predict_extended_seconds(model(), config, shape);
    ASSERT_GT(t, 0.0) << config.name();
    ASSERT_TRUE(std::isfinite(t)) << config.name();
  }
}

TEST(ExtendedSpace, WiderVectorsHelpUpToTheTileGeometry) {
  // For a config whose accumulator and column tile support width 4, the
  // wider load should never be slower on a compute-heavy shape.
  const gemm::GemmShape shape{2048, 2048, 512};
  const gemm::KernelConfig base{4, 4, 8, 8, 32};
  const double v1 = predict_extended_seconds(model(), {base, 1}, shape);
  const double v4 = predict_extended_seconds(model(), {base, 4}, shape);
  EXPECT_LT(v4, v1);

  // For a 1-wide tile, width 4 overshoots the contiguous run: it must not
  // beat width 1 on a memory-bound shape.
  const gemm::KernelConfig narrow{4, 1, 1, 8, 32};
  const gemm::GemmShape mem_bound{8192, 2048, 64};
  const double n1 = predict_extended_seconds(model(), {narrow, 1}, mem_bound);
  const double n4 = predict_extended_seconds(model(), {narrow, 4}, mem_bound);
  EXPECT_GE(n4, n1);
}

TEST(ExtendedSpace, ExhaustiveSearchCoversEverything) {
  const auto result = exhaustive_extended_search(model(), {784, 128, 512});
  EXPECT_EQ(result.evaluations, 1920u);
  EXPECT_GT(result.best_value, 0.0);
  // The optimum must be at least as good as every width of its own base.
  for (const int width : vector_widths()) {
    EXPECT_LE(result.best_value,
              predict_extended_seconds(model(), {result.best.base, width},
                                       {784, 128, 512}) +
                  1e-15);
  }
}

TEST(ExtendedSpace, NestedSearchFindsNearOptimum) {
  const gemm::GemmShape shape{3136, 576, 128};
  const auto truth = exhaustive_extended_search(model(), shape);
  const Objective nested = [&](const gemm::KernelConfig& base) {
    double best = 1e300;
    for (const int width : vector_widths()) {
      best = std::min(best,
                      predict_extended_seconds(model(), {base, width}, shape));
    }
    return best;
  };
  EvolutionOptions options;
  options.budget = 120;
  options.seed = 1;
  const auto found = evolutionary_search(nested, options);
  EXPECT_LT(found.best_value, truth.best_value * 1.15);
}

}  // namespace
}  // namespace aks::tune
