#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gemm/config.hpp"
#include "gemm/reference.hpp"
#include "gemm/registry.hpp"
#include "syclrt/queue.hpp"

namespace aks::gemm {
namespace {

TEST(Config, EnumerationHas640Entries) {
  const auto& configs = enumerate_configs();
  EXPECT_EQ(configs.size(), 640u);
  // All distinct.
  std::set<std::string> names;
  for (const auto& c : configs) names.insert(c.name());
  EXPECT_EQ(names.size(), 640u);
}

TEST(Config, IndexRoundTripsForAll) {
  const auto& configs = enumerate_configs();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(config_index(configs[i]), i);
  }
}

TEST(Config, NameParseRoundTrip) {
  for (const auto& config : enumerate_configs()) {
    EXPECT_EQ(KernelConfig::parse(config.name()), config);
  }
}

TEST(Config, ParseRejectsMalformedNames) {
  EXPECT_THROW(KernelConfig::parse(""), common::Error);
  EXPECT_THROW(KernelConfig::parse("t4x4"), common::Error);
  EXPECT_THROW(KernelConfig::parse("t4x4_a2_wg9x9"), common::Error);
  EXPECT_THROW(KernelConfig::parse("t3x4_a2_wg8x8"), common::Error);
  EXPECT_THROW(KernelConfig::parse("txx4_a2_wg8x8"), common::Error);
}

TEST(Config, WorkGroupShapesMatchPaper) {
  const auto& shapes = work_group_shapes();
  EXPECT_EQ(shapes.size(), 10u);
  EXPECT_EQ(shapes.front(), std::make_pair(1, 64));
  EXPECT_EQ(shapes.back(), std::make_pair(128, 1));
  for (const auto& [r, c] : shapes) EXPECT_GE(r * c, 64);
}

TEST(Config, RegistersGrowWithTiles) {
  KernelConfig small{1, 1, 1, 8, 8};
  KernelConfig large{8, 8, 8, 8, 8};
  EXPECT_LT(small.registers_per_item(), large.registers_per_item());
}

TEST(Config, CompiledKernelCountIgnoresWorkGroups) {
  std::vector<KernelConfig> configs = {
      {4, 4, 2, 8, 8}, {4, 4, 2, 16, 16}, {4, 4, 4, 8, 8}};
  EXPECT_EQ(count_compiled_kernels(configs), 2u);
  EXPECT_EQ(count_compiled_kernels(enumerate_configs()), 64u);
}

TEST(Registry, HasAll64Instantiations) {
  EXPECT_EQ(registry_size(), 64u);
  for (int rt : tile_sizes())
    for (int ct : tile_sizes())
      for (int acc : tile_sizes()) EXPECT_NO_THROW((void)find_kernel(rt, ct, acc));
}

TEST(Registry, UnknownInstantiationThrows) {
  EXPECT_THROW((void)find_kernel(3, 4, 4), common::Error);
  EXPECT_THROW((void)find_kernel(4, 4, 16), common::Error);
}

TEST(Shape, FlopsAndBytes) {
  GemmShape shape{4, 5, 6};
  EXPECT_DOUBLE_EQ(shape.flops(), 240.0);
  EXPECT_DOUBLE_EQ(shape.min_bytes(), 4.0 * (20 + 30 + 24));
  EXPECT_EQ(shape.to_string(), "4x5x6");
}

TEST(Reference, KnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4];
  reference_gemm(a, b, c, GemmShape{2, 2, 2});
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Reference, SizeMismatchThrows) {
  const float a[4] = {};
  const float b[4] = {};
  float c[4];
  EXPECT_THROW(reference_gemm(a, b, c, GemmShape{3, 2, 2}), common::Error);
}

TEST(Launch, OperandValidation) {
  syclrt::Queue queue;
  std::vector<float> a(6), b(8), c(12);
  const KernelConfig config{2, 2, 2, 8, 8};
  EXPECT_THROW(launch_gemm(queue, config, a, b, c, GemmShape{0, 2, 4}),
               common::Error);
  EXPECT_THROW(launch_gemm(queue, config, a, b, c, GemmShape{3, 3, 4}),
               common::Error);
}

/// Correctness of every compiled kernel against the reference, on a shape
/// chosen to exercise edge tiles (prime-ish dimensions), across several
/// work-group shapes.
class TiledKernelCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TiledKernelCorrectness, MatchesReferenceOnAwkwardShape) {
  const auto [rt, ct, acc] = GetParam();
  const GemmShape shape{13, 7, 11};
  common::Rng rng(config_index(KernelConfig{rt, ct, acc, 8, 8}));
  std::vector<float> a(shape.m * shape.k);
  std::vector<float> b(shape.k * shape.n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  std::vector<float> expected(shape.m * shape.n);
  reference_gemm(a, b, expected, shape);

  syclrt::Queue queue;
  for (const auto& [wg_r, wg_c] : work_group_shapes()) {
    std::vector<float> c(shape.m * shape.n, -1.0f);
    const KernelConfig config{rt, ct, acc, wg_r, wg_c};
    launch_gemm(queue, config, a, b, c, shape);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], expected[i], 1e-3f)
          << config.name() << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllInstantiations, TiledKernelCorrectness,
    ::testing::Combine(::testing::ValuesIn(tile_sizes()),
                       ::testing::ValuesIn(tile_sizes()),
                       ::testing::ValuesIn(tile_sizes())),
    [](const auto& param_info) {
      return "t" + std::to_string(std::get<0>(param_info.param)) + "x" +
             std::to_string(std::get<1>(param_info.param)) + "_a" +
             std::to_string(std::get<2>(param_info.param));
    });

/// Shapes that stress specific paths: exact tile fit, single row/column,
/// K smaller than the accumulator step, and a larger aligned case.
class ShapeEdgeCases : public ::testing::TestWithParam<GemmShape> {};

TEST_P(ShapeEdgeCases, Tile4x4Acc4MatchesReference) {
  const GemmShape shape = GetParam();
  common::Rng rng(99);
  std::vector<float> a(shape.m * shape.k);
  std::vector<float> b(shape.k * shape.n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> expected(shape.m * shape.n);
  reference_gemm(a, b, expected, shape);

  syclrt::Queue queue;
  std::vector<float> c(shape.m * shape.n);
  launch_gemm(queue, KernelConfig{4, 4, 4, 8, 8}, a, b, c, shape);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], expected[i], 1e-3f) << shape.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(EdgeShapes, ShapeEdgeCases,
                         ::testing::Values(GemmShape{8, 8, 8},
                                           GemmShape{1, 64, 1},
                                           GemmShape{1, 1, 1},
                                           GemmShape{64, 2, 64},
                                           GemmShape{5, 3, 2},
                                           GemmShape{32, 64, 48},
                                           GemmShape{17, 23, 29}));

TEST(Launch, EventCountsMatchGeometry) {
  syclrt::Queue queue;
  const GemmShape shape{16, 8, 16};
  std::vector<float> a(shape.m * shape.k, 1.0f);
  std::vector<float> b(shape.k * shape.n, 1.0f);
  std::vector<float> c(shape.m * shape.n);
  // 2x2 tiles -> 8x8 tile grid; wg 8x8 -> exactly one group.
  const auto event = launch_gemm(queue, KernelConfig{2, 2, 2, 8, 8}, a, b, c,
                                 shape);
  EXPECT_EQ(event.group_count, 1u);
  EXPECT_EQ(event.item_count, 64u);
  // Every output should be K (sum of 1*1 K times).
  for (const float v : c) EXPECT_FLOAT_EQ(v, 8.0f);
}

}  // namespace
}  // namespace aks::gemm
