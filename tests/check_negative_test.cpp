// Planted-bug coverage for the akscheck analysis layer: each test builds a
// toy kernel with one deliberate defect and asserts the checker reports it
// with the right diagnostic class — and that the corrected twin runs clean.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/checked_buffer.hpp"
#include "check/config_lint.hpp"
#include "check/diagnostics.hpp"
#include "syclrt/queue.hpp"

namespace {

using namespace aks;
using check::AccessMonitor;
using check::CheckedAccessor;
using check::CheckedBuffer;
using check::DiagnosticKind;

bool has_kind(const AccessMonitor& monitor, DiagnosticKind kind) {
  return std::any_of(
      monitor.findings().begin(), monitor.findings().end(),
      [kind](const check::Diagnostic& d) { return d.kind == kind; });
}

std::size_t count_kind(const AccessMonitor& monitor, DiagnosticKind kind) {
  return static_cast<std::size_t>(std::count_if(
      monitor.findings().begin(), monitor.findings().end(),
      [kind](const check::Diagnostic& d) { return d.kind == kind; }));
}

syclrt::Queue replay_queue() {
  syclrt::Queue queue;
  queue.set_deterministic_replay(true);
  return queue;
}

// --- out-of-bounds ----------------------------------------------------------

TEST(CheckNegative, OffByOneWriteIsReportedAsOutOfBounds) {
  AccessMonitor monitor("toy_oob");
  CheckedBuffer<float> c("C", 8, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  // Classic off-by-one: the last item writes one element past the buffer.
  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(8), syclrt::Range<1>(4)),
      [acc](const syclrt::NdItem<1>& item) {
        const std::size_t i = item.get_global_id(0);
        acc[i + 1] = 1.0f;
      });

  EXPECT_TRUE(has_kind(monitor, DiagnosticKind::out_of_bounds));
  const auto& findings = monitor.findings();
  const auto oob = std::find_if(
      findings.begin(), findings.end(), [](const check::Diagnostic& d) {
        return d.kind == DiagnosticKind::out_of_bounds;
      });
  ASSERT_NE(oob, findings.end());
  EXPECT_EQ(oob->buffer, "C");
  EXPECT_EQ(oob->index, 8u);  // first index past the 8-element buffer
  EXPECT_EQ(oob->kernel, "toy_oob");
}

TEST(CheckNegative, InBoundsTwinRunsClean) {
  AccessMonitor monitor("toy_oob_fixed");
  CheckedBuffer<float> c("C", 8, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(8), syclrt::Range<1>(4)),
      [acc](const syclrt::NdItem<1>& item) {
        acc[item.get_global_id(0)] = 1.0f;
      });

  EXPECT_TRUE(monitor.clean());
}

TEST(CheckNegative, OutOfBoundsAccessIsRedirectedSoReplayContinues) {
  AccessMonitor monitor("toy_oob_sink");
  CheckedBuffer<float> c("C", 4, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(4), syclrt::Range<1>(4)),
      [acc](const syclrt::NdItem<1>& item) {
        acc[item.get_global_id(0) + 100] = 7.0f;  // far out of bounds
      });

  // The storage itself must be untouched — writes went to the sink.
  for (const float v : c.host()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(count_kind(monitor, DiagnosticKind::out_of_bounds), 4u);
}

// --- unguarded tail ---------------------------------------------------------

TEST(CheckNegative, MissingTailGuardIsReported) {
  // Logical range 10 padded to 16: items 10..15 are tail items. The buffer
  // is sized for the padded launch so the tail access is in bounds — the
  // defect is purely the missing in_range() guard.
  AccessMonitor monitor("toy_tail");
  CheckedBuffer<float> c("C", 16, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(10), syclrt::Range<1>(8)),
      [acc](const syclrt::NdItem<1>& item) {
        acc[item.get_global_id(0)] = 2.0f;  // no guard
      });

  EXPECT_EQ(count_kind(monitor, DiagnosticKind::tail_unguarded), 6u);
  EXPECT_FALSE(has_kind(monitor, DiagnosticKind::out_of_bounds));
}

TEST(CheckNegative, GuardedTailRunsClean) {
  AccessMonitor monitor("toy_tail_fixed");
  CheckedBuffer<float> c("C", 16, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(10), syclrt::Range<1>(8)),
      [acc](const syclrt::NdItem<1>& item) {
        if (!item.in_range()) return;
        acc[item.get_global_id(0)] = 2.0f;
      });

  EXPECT_TRUE(monitor.clean());
}

TEST(CheckNegative, TailAccessAfterConsultingGuardIsNotFlagged) {
  // A kernel that queries in_range() and then (deliberately) writes a
  // scratch slot anyway has made an informed access — SYCL-DNN kernels do
  // this to keep control flow uniform. Only *unconsulted* tails are bugs.
  AccessMonitor monitor("toy_tail_consulted");
  CheckedBuffer<float> c("C", 16, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(10), syclrt::Range<1>(8)),
      [acc](const syclrt::NdItem<1>& item) {
        const bool live = item.in_range();
        acc[item.get_global_id(0)] = live ? 2.0f : 0.0f;
      });

  EXPECT_FALSE(has_kind(monitor, DiagnosticKind::tail_unguarded));
}

// --- cross-group races ------------------------------------------------------

TEST(CheckNegative, CrossGroupWriteWriteRaceIsReported) {
  AccessMonitor monitor("toy_ww_race");
  CheckedBuffer<float> c("C", 8, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  // Every item writes element 0; with two work-groups this is a
  // cross-group write/write conflict.
  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(8), syclrt::Range<1>(4)),
      [acc](const syclrt::NdItem<1>&) { acc[0] = 3.0f; });

  EXPECT_TRUE(has_kind(monitor, DiagnosticKind::write_write_race));
  const auto& findings = monitor.findings();
  const auto race = std::find_if(
      findings.begin(), findings.end(), [](const check::Diagnostic& d) {
        return d.kind == DiagnosticKind::write_write_race;
      });
  ASSERT_NE(race, findings.end());
  EXPECT_EQ(race->index, 0u);
  EXPECT_EQ(race->group_a, 0u);
  EXPECT_EQ(race->group_b, 1u);
}

TEST(CheckNegative, IntraGroupWriteReuseIsNotARace) {
  // The same shared-element pattern inside ONE work-group is fine: items of
  // a group run sequentially (SYCL guarantees coherence within a group).
  AccessMonitor monitor("toy_ww_one_group");
  CheckedBuffer<float> c("C", 4, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(4), syclrt::Range<1>(4)),
      [acc](const syclrt::NdItem<1>&) { acc[0] = 3.0f; });

  EXPECT_TRUE(monitor.clean());
}

TEST(CheckNegative, CrossGroupReadWriteRaceIsReported) {
  AccessMonitor monitor("toy_rw_race");
  CheckedBuffer<float> c("C", 8, monitor);
  auto queue = replay_queue();
  auto acc = c.write();
  auto racc = c.read();

  // Each item writes its own slot, then reads a slot owned by the other
  // work-group — an unsynchronised cross-group dependence.
  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(8), syclrt::Range<1>(4)),
      [acc, racc](const syclrt::NdItem<1>& item) {
        const std::size_t i = item.get_global_id(0);
        acc[i] = static_cast<float>(i);
        (void)racc[(i + 4) % 8];
      });

  EXPECT_TRUE(has_kind(monitor, DiagnosticKind::read_write_race));
  EXPECT_FALSE(has_kind(monitor, DiagnosticKind::write_write_race));
}

TEST(CheckNegative, DisjointGroupsRunClean) {
  AccessMonitor monitor("toy_disjoint");
  CheckedBuffer<float> a("A", 8, monitor, 1.0f);
  CheckedBuffer<float> c("C", 8, monitor);
  auto queue = replay_queue();
  auto racc = a.read();
  auto wacc = c.write();

  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(8), syclrt::Range<1>(4)),
      [racc, wacc](const syclrt::NdItem<1>& item) {
        const std::size_t i = item.get_global_id(0);
        wacc[i] = racc[i] * 2.0f;
      });

  EXPECT_TRUE(monitor.clean());
}

// --- invalid configurations (static lint) -----------------------------------

TEST(CheckNegative, OversizedWorkGroupIsRejected) {
  gemm::KernelConfig config;
  config.wg_rows = 48;
  config.wg_cols = 48;  // 2304 items, over every device's 256 limit
  const auto findings =
      check::lint_config(config, 0, perf::DeviceSpec::amd_r9_nano());
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, check::LintRule::work_group_size);
  EXPECT_EQ(findings[0].to_diagnostic().kind,
            DiagnosticKind::invalid_config);
}

TEST(CheckNegative, NonVectorizableAccSizeIsRejected) {
  gemm::KernelConfig config;
  config.acc_size = 6;  // neither divides nor is divided by vector width 4
  const auto findings =
      check::lint_config(config, 0, perf::DeviceSpec::integrated_gpu());
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, check::LintRule::vector_width);
}

TEST(CheckNegative, LocalMemoryOverflowIsRejected) {
  gemm::KernelConfig config;
  config.row_tile = 8;
  config.col_tile = 8;
  config.acc_size = 8;
  config.wg_rows = 16;
  config.wg_cols = 16;
  perf::DeviceSpec tiny = perf::DeviceSpec::embedded_accelerator();
  tiny.local_memory_bytes = 1024;  // model a scratchpad-poor part
  tiny.max_work_group_size = 4096;  // isolate the local-memory rule
  const auto findings = check::lint_config(config, 0, tiny);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, check::LintRule::local_memory);
  EXPECT_GT(check::local_memory_footprint_bytes(config),
            tiny.local_memory_bytes);
}

TEST(CheckNegative, ShippedConfigIsAccepted) {
  gemm::KernelConfig config;  // defaults: t1x1_a1_wg8x8
  for (const auto& device :
       {perf::DeviceSpec::amd_r9_nano(), perf::DeviceSpec::embedded_accelerator(),
        perf::DeviceSpec::integrated_gpu()}) {
    EXPECT_TRUE(check::lint_config(config, 0, device).empty())
        << "on " << device.name;
  }
}

// --- monitor mechanics ------------------------------------------------------

TEST(CheckNegative, DuplicateFindingsAreDeduplicated) {
  AccessMonitor monitor("toy_dedup");
  CheckedBuffer<float> c("C", 4, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  // The same out-of-bounds element is hit by every item of one group; one
  // report describes the bug, repeats add nothing.
  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(4), syclrt::Range<1>(4)),
      [acc](const syclrt::NdItem<1>&) { acc[4] = 1.0f; });

  EXPECT_EQ(count_kind(monitor, DiagnosticKind::out_of_bounds), 1u);
}

TEST(CheckNegative, FindingCapIsEnforcedWithDroppedCounter) {
  AccessMonitor monitor("toy_cap", /*max_findings=*/2);
  CheckedBuffer<float> c("C", 4, monitor);
  auto queue = replay_queue();
  auto acc = c.write();

  queue.parallel_for(
      syclrt::NdRange<1>(syclrt::Range<1>(4), syclrt::Range<1>(4)),
      [acc](const syclrt::NdItem<1>& item) {
        acc[4 + item.get_global_id(0)] = 1.0f;  // 4 distinct OOB indices
      });

  EXPECT_EQ(monitor.findings().size(), 2u);
  EXPECT_EQ(monitor.dropped(), 2u);
  EXPECT_FALSE(monitor.clean());
}

}  // namespace
