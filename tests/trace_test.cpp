// Trace layer correctness: zero events when disabled, one session at a
// time, drop-counter accounting on ring overflow, deterministic drained
// ordering, balanced span nesting across threads (run under TSan in CI),
// Chrome-JSON well-formedness (parsed back by a minimal JSON reader), and
// the span-summary CSV including its unbalanced-span accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "serve/selection_service.hpp"
#include "trace/chrome_export.hpp"
#include "trace/ring_buffer.hpp"
#include "trace/trace.hpp"

namespace aks::trace {
namespace {

// ---------------------------------------------------------------------------
// Minimal validating JSON reader — just enough to prove the exporter's
// output is well-formed (the acceptance bar is "loads in Perfetto", whose
// first step is a strict JSON parse). Returns false instead of throwing.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Event make_event(EventType type, const char* name, std::uint64_t ts_ns,
                 std::uint32_t tid, std::uint64_t seq) {
  Event e;
  e.type = type;
  e.name = name;
  e.ts_ns = ts_ns;
  e.tid = tid;
  e.seq = seq;
  return e;
}

// ---------------------------------------------------------------------------

TEST(TraceSession, DisabledByDefaultAndEmitsAreDropped) {
  EXPECT_FALSE(enabled());
  // No session installed: these must be no-ops, not crashes.
  begin("orphan");
  end("orphan");
  instant("orphan");
  counter("orphan", 1.0);

  TraceSession session;
  EXPECT_TRUE(enabled());
  session.stop();
  EXPECT_FALSE(enabled());
  EXPECT_TRUE(session.events().empty());
  EXPECT_EQ(session.stats().recorded, 0u);
}

TEST(TraceSession, ZeroEventsAfterStop) {
  TraceSession session;
  instant("before-stop");
  session.stop();
  instant("after-stop");
  instant("after-stop");
  ASSERT_EQ(session.events().size(), 1u);
  EXPECT_STREQ(session.events()[0].name, "before-stop");
}

TEST(TraceSession, OnlyOneSessionAtATime) {
  TraceSession session;
  EXPECT_THROW(TraceSession second, common::Error);
  // The failed construction must not have disabled the live session.
  EXPECT_TRUE(enabled());
  EXPECT_EQ(TraceSession::current(), &session);
}

TEST(TraceSession, SecondSessionWorksAfterFirstDestroyed) {
  {
    TraceSession session;
    instant("first");
    ASSERT_EQ(session.events().size(), 1u);
  }
  EXPECT_EQ(TraceSession::current(), nullptr);
  TraceSession session;
  instant("second");
  ASSERT_EQ(session.events().size(), 1u);
  EXPECT_STREQ(session.events()[0].name, "second");
}

TEST(TraceSession, SpanArgsAndInternSurvive) {
  TraceSession session;
  const char* interned = session.intern(std::string("dyn") + "amic");
  EXPECT_STREQ(interned, "dynamic");
  EXPECT_EQ(session.intern("dynamic"), interned);  // deduplicated

  {
    Span span("work", {arg("m", std::size_t{64}), arg("who", interned)});
    span.annotate(arg("seconds", 0.5));
  }
  const auto& events = session.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kBegin);
  ASSERT_EQ(events[0].num_args, 2u);
  EXPECT_EQ(events[0].args[0].value.u, 64u);
  EXPECT_STREQ(events[0].args[1].value.s, "dynamic");
  EXPECT_EQ(events[1].type, EventType::kEnd);
  ASSERT_EQ(events[1].num_args, 1u);
  EXPECT_DOUBLE_EQ(events[1].args[0].value.d, 0.5);
}

TEST(TraceBuffer, DropCounterAccountsOverflowExactly) {
  TraceOptions options;
  options.buffer_bytes_per_thread = 1;  // rounds up to the 16-event minimum
  TraceSession session(options);
  constexpr std::uint64_t kEmits = 100;
  for (std::uint64_t i = 0; i < kEmits; ++i) instant("overflow");
  const auto stats = session.stats();
  EXPECT_EQ(stats.recorded, 16u);
  EXPECT_EQ(stats.dropped, kEmits - 16);
  EXPECT_EQ(stats.recorded + stats.dropped, kEmits);
  EXPECT_EQ(session.events().size(), 16u);
}

TEST(TraceBuffer, RingDrainsAndReusesSlots) {
  EventRing ring(16, 7);
  std::vector<Event> out;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE(ring.push(make_event(EventType::kInstant, "x", 1, 0, 0)));
    }
    EXPECT_FALSE(ring.push(make_event(EventType::kInstant, "x", 1, 0, 0)));
    ring.drain_into(out);
  }
  EXPECT_EQ(out.size(), 80u);
  EXPECT_EQ(ring.dropped(), 5u);
  EXPECT_EQ(out.front().tid, 7u);  // ring stamps its tid
  // seq is monotonic across drains, not per-fill.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, out[i - 1].seq + 1);
  }
}

TEST(TraceOrdering, DrainIsDeterministicallySorted) {
  TraceSession session;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) instant("tick");
    });
  }
  for (auto& thread : threads) thread.join();

  const auto& events = session.events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < events.size(); ++i) {
    const Event& a = events[i - 1];
    const Event& b = events[i];
    const bool ordered =
        a.ts_ns < b.ts_ns ||
        (a.ts_ns == b.ts_ns &&
         (a.tid < b.tid || (a.tid == b.tid && a.seq < b.seq)));
    ASSERT_TRUE(ordered) << "events " << i - 1 << " and " << i
                         << " out of order";
  }
}

TEST(TraceConcurrency, SpanNestingBalancedAcrossThreads) {
  TraceSession session;
  constexpr int kThreads = 8;
  constexpr int kIterations = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIterations; ++i) {
        Span outer("outer");
        Span middle("middle");
        { Span inner("inner"); }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(session.stats().dropped, 0u);
  // Replay per-thread event streams against a LIFO stack: every end must
  // match the innermost open begin of its own thread.
  std::map<std::uint32_t, std::vector<std::string>> stacks;
  for (const Event& e : session.events()) {
    if (e.type == EventType::kBegin) {
      stacks[e.tid].emplace_back(e.name);
    } else if (e.type == EventType::kEnd) {
      auto& stack = stacks[e.tid];
      ASSERT_FALSE(stack.empty());
      ASSERT_EQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) EXPECT_TRUE(stack.empty());
}

// Regression (found by the thread-safety annotation pass): the tid counter
// was incremented under the session mutex but the ring was registered under
// the impl mutex, so two threads racing their first event could be handed
// the same tid. All first events are released together to maximize attach
// races; every thread must drain under a distinct tid.
TEST(TraceConcurrency, ConcurrentFirstEventsGetUniqueTids) {
  TraceSession session;
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ready] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      instant("attach");
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<std::uint32_t> tids;
  for (const Event& e : session.events()) {
    if (std::string(e.name) == "attach") tids.insert(e.tid);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(TraceExport, ChromeJsonParsesBack) {
  TraceSession session;
  {
    Span span("outer \"quoted\"\nname", {arg("k", std::size_t{3})});
    instant("mark", {arg("note", "tab\there"), arg("ratio", 0.25)});
    counter("queue_depth", 7.0);
  }
  session.stop();
  std::ostringstream out;
  session.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonReader(json).parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceExport, NonFiniteArgsStayValidJson) {
  const std::vector<Event> events = {[] {
    Event e = make_event(EventType::kInstant, "weird", 10, 1, 0);
    e.num_args = 2;
    e.args[0] = arg("nan", std::nan(""));
    e.args[1] = arg("inf", std::numeric_limits<double>::infinity());
    return e;
  }()};
  std::ostringstream out;
  write_chrome_trace_json(events, out);
  EXPECT_TRUE(JsonReader(out.str()).parse()) << out.str();
}

TEST(TraceExport, SpanSummaryCountsAndUnbalanced) {
  // Two balanced "work" spans (1µs and 3µs), one balanced "other" (2µs),
  // one orphan end and one never-closed begin.
  std::vector<Event> events = {
      make_event(EventType::kBegin, "work", 1000, 1, 0),
      make_event(EventType::kEnd, "work", 2000, 1, 1),
      make_event(EventType::kBegin, "other", 1000, 2, 0),
      make_event(EventType::kEnd, "other", 3000, 2, 1),
      make_event(EventType::kBegin, "work", 5000, 1, 2),
      make_event(EventType::kEnd, "work", 8000, 1, 3),
      make_event(EventType::kEnd, "orphan", 9000, 3, 0),
      make_event(EventType::kBegin, "open", 9500, 3, 1),
  };
  std::ostringstream out;
  const std::size_t unbalanced = write_span_summary_csv(events, out);
  EXPECT_EQ(unbalanced, 2u);

  // Parse rows: name -> count.
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "name,count,total_seconds,mean_seconds,p50_seconds,p99_seconds");
  std::map<std::string, int> counts;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    counts[line.substr(0, comma)] =
        std::stoi(line.substr(comma + 1, line.find(',', comma + 1)));
  }
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at("work"), 2);
  EXPECT_EQ(counts.at("other"), 1);
}

TEST(TraceIntegration, ServePathEmitsNestedSelectAndWarmup) {
  TraceSession session;
  const auto configs = gemm::enumerate_configs();
  serve::SelectionService service(
      [&configs](const gemm::GemmShape&) { return configs.front(); });
  const gemm::GemmShape shape{64, 64, 64};
  (void)service.select(shape);  // miss: select wraps warm-up
  (void)service.select(shape);  // hit
  session.stop();

  int select_begins = 0;
  int warmup_begins = 0;
  bool warmup_nested_in_select = false;
  std::vector<std::string> open;
  for (const Event& e : session.events()) {
    if (e.type == EventType::kBegin) {
      if (std::string(e.name) == "serve.select") ++select_begins;
      if (std::string(e.name) == "serve.warmup") {
        ++warmup_begins;
        warmup_nested_in_select =
            !open.empty() && open.back() == "serve.select";
      }
      open.emplace_back(e.name);
    } else if (e.type == EventType::kEnd) {
      if (!open.empty()) open.pop_back();
    }
  }
  EXPECT_EQ(select_begins, 2);
  EXPECT_EQ(warmup_begins, 1);
  EXPECT_TRUE(warmup_nested_in_select);
}

}  // namespace
}  // namespace aks::trace
