// Tests for the extensions layered on the paper's core: the agglomerative
// pruner, the gradient-boosting selector, and feature maps.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/codegen.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "dataset/benchmark_runner.hpp"

namespace aks::select {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::ExtractionOptions extraction;
    extraction.vgg_batches = {1};
    extraction.resnet_batches = {1};
    extraction.mobilenet_batches = {1};
    dataset_ = new data::PerfDataset(
        data::build_paper_dataset({}, extraction));
    split_ = new data::DatasetSplit(dataset_->split(0.8, 5));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete split_;
    dataset_ = nullptr;
    split_ = nullptr;
  }
  static const data::PerfDataset& dataset() { return *dataset_; }
  static const data::DatasetSplit& split() { return *split_; }

 private:
  static data::PerfDataset* dataset_;
  static data::DatasetSplit* split_;
};

data::PerfDataset* ExtensionsTest::dataset_ = nullptr;
data::DatasetSplit* ExtensionsTest::split_ = nullptr;

TEST_F(ExtensionsTest, AgglomerativePrunerHonoursContract) {
  AgglomerativePruner pruner;
  for (const std::size_t budget : {4u, 8u, 15u}) {
    const auto configs = pruner.prune(split().train, budget);
    EXPECT_EQ(configs.size(), budget);
    std::set<std::size_t> distinct(configs.begin(), configs.end());
    EXPECT_EQ(distinct.size(), budget);
    EXPECT_TRUE(std::is_sorted(configs.begin(), configs.end()));
    EXPECT_GT(pruning_ceiling(split().test, configs), 0.6);
  }
}

TEST_F(ExtensionsTest, AgglomerativePrunerIsDeterministic) {
  AgglomerativePruner a;
  AgglomerativePruner b;
  EXPECT_EQ(a.prune(split().train, 8), b.prune(split().train, 8));
}

TEST_F(ExtensionsTest, GbmSelectorSelectsOnlyAllowed) {
  DecisionTreePruner pruner;
  const auto allowed = pruner.prune(split().train, 6);
  GbmSelector selector;
  selector.fit(split().train, allowed);
  EXPECT_EQ(selector.name(), "GradientBoosting");
  const std::set<std::size_t> allowed_set(allowed.begin(), allowed.end());
  for (std::size_t r = 0; r < split().test.num_shapes(); ++r) {
    EXPECT_EQ(allowed_set.count(
                  selector.select(split().test.features().row(r))),
              1u);
  }
  const double score = selector_score(selector, split().test);
  EXPECT_GT(score, 0.5);
  EXPECT_LE(score, 1.0);
}

TEST_F(ExtensionsTest, GbmCompetitiveWithSingleTree) {
  DecisionTreePruner pruner;
  const auto allowed = pruner.prune(split().train, 8);
  DecisionTreeSelector tree;
  tree.fit(split().train, allowed);
  GbmSelector gbm;
  gbm.fit(split().train, allowed);
  const double tree_score = selector_score(tree, split().test);
  const double gbm_score = selector_score(gbm, split().test);
  // Boosting should be in the same quality band as a single tree here
  // (small data); assert it is not catastrophically worse.
  EXPECT_GT(gbm_score, tree_score - 0.12);
}

TEST_F(ExtensionsTest, FeatureMapChangesModelInputs) {
  DecisionTreePruner pruner;
  const auto allowed = pruner.prune(split().train, 6);

  KnnSelector raw(1);
  raw.fit(split().train, allowed);
  KnnSelector logged(1);
  logged.set_feature_map(FeatureMap::kLog2);
  logged.fit(split().train, allowed);
  EXPECT_EQ(logged.feature_map(), FeatureMap::kLog2);

  // Both valid; with log features the kNN distance metric stops being
  // dominated by M, so predictions generally differ somewhere.
  bool any_difference = false;
  for (std::size_t r = 0; r < split().test.num_shapes(); ++r) {
    const auto row = split().test.features().row(r);
    any_difference = any_difference || raw.select(row) != logged.select(row);
  }
  EXPECT_TRUE(any_difference);
  EXPECT_GT(selector_score(logged, split().test), 0.5);
}

TEST_F(ExtensionsTest, CodegenRejectsMappedFeatures) {
  DecisionTreePruner pruner;
  const auto allowed = pruner.prune(split().train, 6);
  DecisionTreeSelector mapped;
  mapped.set_feature_map(FeatureMap::kLog2);
  mapped.fit(split().train, allowed);
  EXPECT_THROW((void)generate_selector_code(mapped), common::Error);
}

TEST_F(ExtensionsTest, PipelineSupportsExtensionMethods) {
  PipelineOptions options;
  options.num_configs = 5;
  options.prune_method = PruneMethod::kAgglomerative;
  options.selector_method = SelectorMethod::kGradientBoosting;
  options.feature_map = FeatureMap::kLog2;
  const auto result = run_pipeline(dataset(), options);
  EXPECT_EQ(result.configs.size(), 5u);
  EXPECT_GT(result.achieved, 0.0);
  EXPECT_EQ(result.selector->feature_map(), FeatureMap::kLog2);
  EXPECT_EQ(to_string(PruneMethod::kAgglomerative), "Agglomerative");
  EXPECT_EQ(to_string(SelectorMethod::kGradientBoosting), "GradientBoosting");
  EXPECT_EQ(to_string(FeatureMap::kLog2), "log2");
}

}  // namespace
}  // namespace aks::select
