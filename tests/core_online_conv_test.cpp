// Tests for the online tuner and the convolution engine (the deployment
// integrations added on top of the paper's core pipeline).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "conv/direct.hpp"
#include "core/conv_engine.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "dataset/benchmark_runner.hpp"
#include "faults/injector.hpp"
#include "perfmodel/cost_model.hpp"
#include "syclrt/queue.hpp"

namespace aks::select {
namespace {

OnlineTuner::TimerFn model_timer(double sigma = 0.0) {
  return [timing = perf::TimingModel(perf::DeviceSpec::amd_r9_nano(), sigma)](
             const gemm::KernelConfig& config, const gemm::GemmShape& shape) {
    return timing.best_of(config, shape, 3);
  };
}

TEST(OnlineTuner, PicksTrueBestCandidateWithoutNoise) {
  const std::vector<std::size_t> candidates = {0, 100, 250, 400, 639};
  OnlineTuner tuner(candidates, model_timer());
  const gemm::GemmShape shape{784, 512, 256};
  const auto chosen = tuner.select(shape);

  // Verify against direct evaluation of the candidates.
  const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());
  double best_time = 1e300;
  gemm::KernelConfig best;
  for (const std::size_t c : candidates) {
    const auto& config = gemm::enumerate_configs()[c];
    const double t = model.predict_seconds(config, shape);
    if (t < best_time) {
      best_time = t;
      best = config;
    }
  }
  EXPECT_EQ(chosen, best);
}

TEST(OnlineTuner, CachesPerShape) {
  // Exact one-trial-per-candidate accounting only holds fault-free.
  faults::ScopedFaultPlan no_faults{faults::FaultPlan::none()};
  std::size_t timer_calls = 0;
  OnlineTuner tuner({0, 1, 2},
                    [&](const gemm::KernelConfig&, const gemm::GemmShape&) {
                      ++timer_calls;
                      return 1e-3;
                    });
  const gemm::GemmShape a{64, 64, 64};
  const gemm::GemmShape b{128, 64, 64};
  (void)tuner.select(a);
  EXPECT_EQ(timer_calls, 3u);  // one trial per candidate
  (void)tuner.select(a);
  EXPECT_EQ(timer_calls, 3u);  // cache hit
  (void)tuner.select(b);
  EXPECT_EQ(timer_calls, 6u);  // new shape -> new trials
  EXPECT_EQ(tuner.cache_hits(), 1u);
  EXPECT_EQ(tuner.cache_misses(), 2u);
  EXPECT_EQ(tuner.cached_shapes(), 2u);
  EXPECT_NEAR(tuner.trial_seconds(), 6e-3, 1e-12);
}

TEST(OnlineTuner, AsymptoticallyMatchesOracleOnCandidates) {
  // After warm-up, the online tuner achieves the restricted ceiling
  // exactly (it measured the true best candidate per shape).
  data::ExtractionOptions extraction;
  extraction.vgg_batches = {1};
  extraction.resnet_batches = {1};
  extraction.mobilenet_batches = {1};
  const auto dataset = data::build_paper_dataset({}, extraction);
  const auto split = dataset.split(0.8, 5);
  DecisionTreePruner pruner;
  const auto allowed = pruner.prune(split.train, 6);

  // Timer uses the same noisy timing as the dataset so the cached winner
  // matches the dataset's restricted argmax.
  OnlineTuner tuner(allowed, model_timer(0.0));
  for (std::size_t r = 0; r < split.test.num_shapes(); ++r) {
    const auto& shape = split.test.shapes()[r].shape;
    const auto config = tuner.select(shape);
    // The chosen candidate must be one of the allowed ones.
    const auto idx = gemm::config_index(config);
    EXPECT_NE(std::find(allowed.begin(), allowed.end(), idx), allowed.end());
  }
  EXPECT_EQ(tuner.cache_misses(), split.test.num_shapes());
}

TEST(OnlineTuner, RejectsBadConstruction) {
  EXPECT_THROW(OnlineTuner({}, model_timer()), common::Error);
  EXPECT_THROW(OnlineTuner({0}, nullptr), common::Error);
  EXPECT_THROW(OnlineTuner({9999}, model_timer()), common::Error);
}

class ConvEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto dataset = data::build_paper_dataset();
    PipelineOptions options;
    options.num_configs = 8;
    auto result = run_pipeline(dataset, options);
    engine_ = new ConvEngine(
        std::shared_ptr<const KernelSelector>(std::move(result.selector)),
        perf::CostModel(perf::DeviceSpec::amd_r9_nano()));
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static const ConvEngine& engine() { return *engine_; }

 private:
  static ConvEngine* engine_;
};

ConvEngine* ConvEngineTest::engine_ = nullptr;

TEST_F(ConvEngineTest, PlanPrefersWinogradForLargeChannelCounts) {
  // A VGG-style 3x3 layer: Winograd cuts the multiply count by ~2.25x, so
  // the modelled-compute winner should be the Winograd lowering.
  conv::ConvShape shape;
  shape.in_height = shape.in_width = 28;
  shape.in_channels = 256;
  shape.out_channels = 256;
  shape.kernel = 3;
  shape.stride = 1;
  shape.padding = 1;
  const auto plan = engine().plan(shape);
  EXPECT_TRUE(plan.transform == data::Transform::kWinograd ||
              plan.transform == data::Transform::kWinograd4);
  EXPECT_GT(plan.modelled_seconds, 0.0);
}

TEST_F(ConvEngineTest, PlanFallsBackToIm2colWhenWinogradInapplicable) {
  conv::ConvShape strided;
  strided.in_height = strided.in_width = 56;
  strided.in_channels = 64;
  strided.out_channels = 128;
  strided.kernel = 3;
  strided.stride = 2;
  strided.padding = 1;
  EXPECT_EQ(engine().plan(strided).transform, data::Transform::kIm2col);

  conv::ConvShape pointwise;
  pointwise.in_height = pointwise.in_width = 28;
  pointwise.in_channels = 96;
  pointwise.out_channels = 24;
  pointwise.kernel = 1;
  EXPECT_EQ(engine().plan(pointwise).transform, data::Transform::kIm2col);
}

TEST_F(ConvEngineTest, RunProducesCorrectConvolution) {
  conv::ConvShape shape;
  shape.batch = 2;
  shape.in_height = shape.in_width = 10;
  shape.in_channels = 6;
  shape.out_channels = 9;
  shape.kernel = 3;
  shape.stride = 1;
  shape.padding = 1;

  common::Rng rng(3);
  std::vector<float> input(shape.input_size());
  std::vector<float> filter(shape.filter_size());
  for (auto& v : input) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : filter) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> expected(shape.output_size());
  conv::direct_conv2d(input, filter, expected, shape);

  std::vector<float> output(shape.output_size());
  syclrt::Queue queue;
  const auto plan = engine().run(queue, input, filter, output, shape);
  EXPECT_TRUE(plan.transform != data::Transform::kFullyConnected);
  // F(4x4, 3x3) trades numerical headroom for fewer multiplies.
  const float tolerance =
      plan.transform == data::Transform::kWinograd4 ? 2e-2f : 5e-3f;
  for (std::size_t i = 0; i < output.size(); ++i) {
    ASSERT_NEAR(output[i], expected[i], tolerance) << "element " << i;
  }
}

TEST(ConvEngine, RejectsUnfittedSelector) {
  auto selector = std::make_shared<DecisionTreeSelector>();
  EXPECT_THROW(ConvEngine(selector,
                          perf::CostModel(perf::DeviceSpec::amd_r9_nano())),
               common::Error);
}

}  // namespace
}  // namespace aks::select
