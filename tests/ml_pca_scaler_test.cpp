#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/linalg.hpp"
#include "ml/pca.hpp"
#include "ml/scaler.hpp"

namespace aks::ml {
namespace {

/// Data with variance concentrated along a known direction.
Matrix anisotropic_data(std::size_t n, std::size_t d, std::uint64_t seed) {
  common::Rng rng(seed);
  Matrix x(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    const double main_axis = rng.normal(0.0, 10.0);
    for (std::size_t c = 0; c < d; ++c) {
      // The dominant direction is (1, 1, ..., 1)/sqrt(d).
      x(r, c) = main_axis + rng.normal(0.0, 0.5);
    }
  }
  return x;
}

TEST(StandardScaler, TransformsToZeroMeanUnitVariance) {
  common::Rng rng(5);
  Matrix x(50, 3);
  for (auto& v : x.data()) v = rng.uniform(10, 200);
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 3; ++c) {
    double sum = 0, sumsq = 0;
    for (std::size_t r = 0; r < 50; ++r) {
      sum += z(r, c);
      sumsq += z(r, c) * z(r, c);
    }
    EXPECT_NEAR(sum / 50, 0.0, 1e-12);
    EXPECT_NEAR(sumsq / 50, 1.0, 1e-9);
  }
}

TEST(StandardScaler, ConstantColumnsAreSafe) {
  Matrix x{{5, 1}, {5, 2}, {5, 3}};
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
}

TEST(StandardScaler, RowTransformMatchesMatrixTransform) {
  common::Rng rng(1);
  Matrix x(10, 4);
  for (auto& v : x.data()) v = rng.normal(3, 7);
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  for (std::size_t r = 0; r < 10; ++r) {
    const auto row = scaler.transform_row(x.row(r));
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(row[c], z(r, c));
  }
}

TEST(StandardScaler, UseBeforeFitThrows) {
  StandardScaler scaler;
  EXPECT_THROW((void)scaler.transform(Matrix(2, 2)), common::Error);
}

TEST(Pca, RecoversDominantDirection) {
  const Matrix x = anisotropic_data(100, 4, 11);
  Pca pca;
  pca.fit(x);
  // First component should align with (1,1,1,1)/2 up to sign.
  const auto axis = pca.components().row(0);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(std::abs(axis[c]), 0.5, 0.05);
  }
  // And carry nearly all the variance.
  EXPECT_GT(pca.explained_variance_ratio()[0], 0.95);
}

TEST(Pca, ExplainedVarianceRatiosAreSortedAndSumToOne) {
  common::Rng rng(2);
  Matrix x(60, 6);
  for (auto& v : x.data()) v = rng.normal();
  Pca pca;
  pca.fit(x);
  const auto& ratios = pca.explained_variance_ratio();
  double total = 0;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    total += ratios[i];
    if (i > 0) {
      EXPECT_LE(ratios[i], ratios[i - 1] + 1e-12);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Pca, GramAndCovarianceRoutesAgree) {
  // Same data seen tall (n > d, covariance route) and wide (d > n, Gram
  // route) must produce identical spectra for the shared components.
  const Matrix tall = anisotropic_data(40, 6, 3);
  const Matrix wide = tall.transposed();  // 6 samples, 40 features

  Pca pca_tall;
  pca_tall.fit(tall);
  Pca pca_wide;
  pca_wide.fit(wide);
  // Only sanity: both produce unit-norm components.
  for (std::size_t i = 0; i < pca_tall.num_components(); ++i) {
    EXPECT_NEAR(norm(pca_tall.components().row(i)), 1.0, 1e-9);
  }
  for (std::size_t i = 0; i < pca_wide.num_components(); ++i) {
    EXPECT_NEAR(norm(pca_wide.components().row(i)), 1.0, 1e-9);
  }
  // Wide route keeps at most n-1 components.
  EXPECT_LE(pca_wide.num_components(), 5u);
}

TEST(Pca, GramRouteTransformMatchesProjection) {
  common::Rng rng(8);
  Matrix x(10, 30);  // wide: Gram route
  for (auto& v : x.data()) v = rng.normal();
  Pca pca;
  pca.fit(x);
  const Matrix z = pca.transform(x);
  // Projections must reproduce variance: column c of z has variance equal
  // to the c-th eigenvalue.
  for (std::size_t comp = 0; comp < std::min<std::size_t>(3, z.cols());
       ++comp) {
    double sum = 0, sumsq = 0;
    for (std::size_t r = 0; r < z.rows(); ++r) {
      sum += z(r, comp);
      sumsq += z(r, comp) * z(r, comp);
    }
    const double mean = sum / static_cast<double>(z.rows());
    const double var =
        (sumsq - static_cast<double>(z.rows()) * mean * mean) /
        static_cast<double>(z.rows() - 1);
    EXPECT_NEAR(var, pca.explained_variance()[comp],
                1e-6 * pca.explained_variance()[comp] + 1e-9);
  }
}

TEST(Pca, InverseTransformRoundTripsInSubspace) {
  const Matrix x = anisotropic_data(50, 5, 17);
  Pca pca;  // keep all components
  pca.fit(x);
  const Matrix z = pca.transform(x);
  const Matrix back = pca.inverse_transform(z);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      EXPECT_NEAR(back(r, c), x(r, c), 1e-6);
}

TEST(Pca, TruncationReducesComponents) {
  const Matrix x = anisotropic_data(50, 8, 23);
  Pca pca(2);
  pca.fit(x);
  EXPECT_EQ(pca.num_components(), 2u);
  EXPECT_EQ(pca.transform(x).cols(), 2u);
}

TEST(Pca, ComponentsForVarianceThresholds) {
  const Matrix x = anisotropic_data(80, 6, 31);
  Pca pca;
  pca.fit(x);
  const std::size_t k80 = pca.components_for_variance(0.8);
  const std::size_t k99 = pca.components_for_variance(0.99);
  EXPECT_GE(k99, k80);
  EXPECT_EQ(k80, 1u);  // one dominant direction
  EXPECT_THROW((void)pca.components_for_variance(0.0), common::Error);
  EXPECT_THROW((void)pca.components_for_variance(1.5), common::Error);
}

TEST(Pca, UseBeforeFitThrows) {
  Pca pca;
  EXPECT_THROW((void)pca.transform(Matrix(2, 2)), common::Error);
  EXPECT_THROW((void)pca.components_for_variance(0.9), common::Error);
}

TEST(Pca, TooFewSamplesThrows) {
  Pca pca;
  EXPECT_THROW(pca.fit(Matrix(1, 3)), common::Error);
}

}  // namespace
}  // namespace aks::ml
