#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/decision_tree.hpp"
#include "ml/linalg.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace aks::ml {
namespace {

/// Labels determined by two axis-aligned thresholds — exactly learnable by
/// a depth-2 tree.
void threshold_problem(std::size_t n, std::uint64_t seed, Matrix& x,
                       std::vector<int>& y) {
  common::Rng rng(seed);
  x.resize(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0, 100);
    x(i, 1) = rng.uniform(0, 100);
    y[i] = x(i, 0) <= 50 ? (x(i, 1) <= 30 ? 0 : 1) : 2;
  }
}

TEST(TreeClassifier, LearnsThresholdProblemExactly) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(200, 1, x, y);
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  EXPECT_DOUBLE_EQ(accuracy(y, tree.predict(x)), 1.0);
  EXPECT_EQ(tree.num_classes(), 3);
}

TEST(TreeClassifier, GeneralisesToFreshSamples) {
  Matrix x_train, x_test;
  std::vector<int> y_train, y_test;
  threshold_problem(300, 2, x_train, y_train);
  threshold_problem(100, 3, x_test, y_test);
  DecisionTreeClassifier tree;
  tree.fit(x_train, y_train);
  EXPECT_GT(accuracy(y_test, tree.predict(x_test)), 0.95);
}

TEST(TreeClassifier, MaxLeafNodesLimitsLeaves) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(200, 4, x, y);
  for (int budget : {2, 3, 5, 10}) {
    TreeOptions options;
    options.max_leaf_nodes = budget;
    DecisionTreeClassifier tree(options);
    tree.fit(x, y);
    EXPECT_LE(tree.num_leaves(), static_cast<std::size_t>(budget));
    EXPECT_GE(tree.num_leaves(), 2u);
  }
}

TEST(TreeClassifier, MaxDepthLimitsDepth) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(200, 5, x, y);
  TreeOptions options;
  options.max_depth = 1;  // a stump
  DecisionTreeClassifier tree(options);
  tree.fit(x, y);
  EXPECT_LE(tree.num_leaves(), 2u);
}

TEST(TreeClassifier, MinSamplesLeafRespected) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(100, 6, x, y);
  TreeOptions options;
  options.min_samples_leaf = 20;
  DecisionTreeClassifier tree(options);
  tree.fit(x, y);
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf()) {
      EXPECT_GE(node.n_samples, 20u);
    }
  }
}

TEST(TreeClassifier, PureNodeDoesNotSplit) {
  Matrix x{{1}, {2}, {3}, {4}};
  std::vector<int> y{0, 0, 0, 0};
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.predict_row(x.row(2)), 0);
}

TEST(TreeClassifier, ProbabilitiesSumToOne) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(150, 7, x, y);
  TreeOptions options;
  options.max_leaf_nodes = 3;
  DecisionTreeClassifier tree(options);
  tree.fit(x, y);
  const auto proba = tree.predict_proba_row(x.row(0));
  double total = 0;
  for (const double p : proba) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TreeClassifier, RejectsMalformedInput) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.fit(Matrix(3, 2), {0, 1}), common::Error);
  EXPECT_THROW(tree.fit(Matrix(2, 2), {0, -1}), common::Error);
  EXPECT_THROW(tree.fit(Matrix(2, 2), {0, 5}, 2), common::Error);
  TreeOptions bad;
  bad.max_leaf_nodes = 1;
  EXPECT_THROW(DecisionTreeClassifier{bad}, common::Error);
  EXPECT_THROW((void)tree.predict_row(std::vector<double>{1.0, 2.0}),
               common::Error);
}

TEST(TreeRegressor, FitsPiecewiseConstantExactly) {
  // y = 10 for x <= 5, else -3.
  Matrix x(40, 1);
  Matrix y(40, 1);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = static_cast<double>(i) * 0.25;
    y(i, 0) = x(i, 0) <= 5.0 ? 10.0 : -3.0;
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.num_leaves(), 2u);
  const double probe_low[] = {2.0};
  const double probe_high[] = {8.0};
  EXPECT_DOUBLE_EQ(tree.predict_row(probe_low)[0], 10.0);
  EXPECT_DOUBLE_EQ(tree.predict_row(probe_high)[0], -3.0);
}

TEST(TreeRegressor, MultiOutputLeafValuesAreMeans) {
  // Two distinct regimes; each leaf value must equal the regime mean of
  // BOTH outputs simultaneously.
  Matrix x(20, 1);
  Matrix y(20, 2);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = static_cast<double>(i);
    const bool low = i < 10;
    y(i, 0) = low ? 1.0 : 5.0;
    y(i, 1) = low ? -2.0 : 7.0;
  }
  TreeOptions options;
  options.max_leaf_nodes = 2;
  DecisionTreeRegressor tree(options);
  tree.fit(x, y);
  const auto leaves = tree.leaf_values();
  ASSERT_EQ(leaves.size(), 2u);
  // One leaf is (1,-2), the other (5,7).
  const bool first_is_low = leaves[0][0] < 3.0;
  const auto& low_leaf = first_is_low ? leaves[0] : leaves[1];
  const auto& high_leaf = first_is_low ? leaves[1] : leaves[0];
  EXPECT_DOUBLE_EQ(low_leaf[0], 1.0);
  EXPECT_DOUBLE_EQ(low_leaf[1], -2.0);
  EXPECT_DOUBLE_EQ(high_leaf[0], 5.0);
  EXPECT_DOUBLE_EQ(high_leaf[1], 7.0);
}

TEST(TreeRegressor, BestFirstGrowthSpendsBudgetOnBiggestGain) {
  // One huge step (at x=50) and one tiny step (at x=25). With 2 leaves the
  // tree must split on the huge step first.
  Matrix x(100, 1);
  Matrix y(100, 1);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i);
    y(i, 0) = (i >= 50 ? 100.0 : 0.0) + (i >= 25 ? 0.5 : 0.0);
  }
  TreeOptions options;
  options.max_leaf_nodes = 2;
  DecisionTreeRegressor tree(options);
  tree.fit(x, y);
  ASSERT_FALSE(tree.nodes().empty());
  EXPECT_NEAR(tree.nodes()[0].threshold, 49.5, 0.6);
}

TEST(TreeRegressor, PredictMatrixMatchesRows) {
  common::Rng rng(3);
  Matrix x(30, 2);
  Matrix y(30, 3);
  for (auto& v : x.data()) v = rng.uniform(0, 10);
  for (auto& v : y.data()) v = rng.normal();
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  const Matrix pred = tree.predict(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto& row_pred = tree.predict_row(x.row(r));
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(pred(r, c), row_pred[c]);
    }
  }
}

TEST(TreeRegressor, LeafCountNeverExceedsSamples) {
  common::Rng rng(9);
  Matrix x(25, 2);
  Matrix y(25, 1);
  for (auto& v : x.data()) v = rng.uniform(0, 1);
  for (auto& v : y.data()) v = rng.normal();
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_LE(tree.num_leaves(), 25u);
}

TEST(FeatureImportances, CreditTheInformativeFeature) {
  // y depends only on feature 0; feature 1 is noise.
  common::Rng rng(31);
  Matrix x(200, 2);
  std::vector<int> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(0, 100);
    x(i, 1) = rng.uniform(0, 100);
    y[i] = x(i, 0) <= 50 ? 0 : 1;
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  const auto importances = feature_importances(tree.nodes(), 2);
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_GT(importances[0], 0.95);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
}

TEST(FeatureImportances, SumToOneOnMultiFeatureTree) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(200, 32, x, y);
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  const auto importances = feature_importances(tree.nodes(), 2);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
  // Both features carry signal in this problem.
  EXPECT_GT(importances[0], 0.1);
  EXPECT_GT(importances[1], 0.1);
}

TEST(FeatureImportances, PureLeafTreeHasZeroVector) {
  Matrix x{{1}, {2}};
  std::vector<int> y{0, 0};
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  const auto importances = feature_importances(tree.nodes(), 1);
  EXPECT_DOUBLE_EQ(importances[0], 0.0);
  EXPECT_THROW((void)feature_importances({}, 1), common::Error);
}

TEST(Forest, BeatsOrMatchesSingleStumpOnNoisyProblem) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(300, 10, x, y);
  // Flip some labels to add noise.
  common::Rng rng(11);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (rng.uniform() < 0.1) y[i] = static_cast<int>(rng.uniform_index(3));
  }
  Matrix x_test;
  std::vector<int> y_test;
  threshold_problem(100, 12, x_test, y_test);

  ForestOptions options;
  options.n_trees = 30;
  options.seed = 5;
  RandomForestClassifier forest(options);
  forest.fit(x, y);
  EXPECT_GT(accuracy(y_test, forest.predict(x_test)), 0.85);
  EXPECT_EQ(forest.num_trees(), 30u);
}

TEST(Forest, DeterministicForSeed) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(100, 13, x, y);
  ForestOptions options;
  options.n_trees = 10;
  options.seed = 21;
  RandomForestClassifier a(options);
  a.fit(x, y);
  RandomForestClassifier b(options);
  b.fit(x, y);
  EXPECT_EQ(a.predict(x), b.predict(x));
}

TEST(Forest, ProbabilitiesSumToOne) {
  Matrix x;
  std::vector<int> y;
  threshold_problem(100, 14, x, y);
  RandomForestClassifier forest(ForestOptions{15, {}, 1.0, 3});
  forest.fit(x, y);
  const auto proba = forest.predict_proba_row(x.row(0));
  double total = 0;
  for (const double p : proba) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Forest, RejectsBadOptions) {
  ForestOptions zero;
  zero.n_trees = 0;
  EXPECT_THROW(RandomForestClassifier{zero}, common::Error);
  ForestOptions frac;
  frac.bootstrap_fraction = 0.0;
  EXPECT_THROW(RandomForestClassifier{frac}, common::Error);
}

}  // namespace
}  // namespace aks::ml
