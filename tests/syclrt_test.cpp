#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "syclrt/buffer.hpp"
#include "syclrt/queue.hpp"

namespace aks::syclrt {
namespace {

TEST(Range, SizeIsProduct) {
  EXPECT_EQ(Range<1>(5).size(), 5u);
  EXPECT_EQ((Range<2>(3, 4).size()), 12u);
  EXPECT_EQ((Range<3>(2, 3, 4).size()), 24u);
}

TEST(Range, IndexAccessAndMutation) {
  Range<2> r(3, 4);
  EXPECT_EQ(r[0], 3u);
  EXPECT_EQ(r[1], 4u);
  r[1] = 7;
  EXPECT_EQ(r.size(), 21u);
}

TEST(NdRange, GroupCountRoundsUp) {
  NdRange<2> range(Range<2>(10, 10), Range<2>(4, 4));
  EXPECT_EQ(range.group_count()[0], 3u);
  EXPECT_EQ(range.group_count()[1], 3u);
  EXPECT_EQ(range.padded_global()[0], 12u);
  EXPECT_EQ(range.padded_global()[1], 12u);
}

TEST(NdRange, ExactDivisionNoPadding) {
  NdRange<2> range(Range<2>(8, 16), Range<2>(4, 8));
  EXPECT_EQ(range.group_count().size(), 4u);
  EXPECT_EQ(range.padded_global(), (Range<2>(8, 16)));
}

TEST(NdRange, ZeroDimensionsThrow) {
  EXPECT_THROW(NdRange<1>(Range<1>(0), Range<1>(1)), common::Error);
  EXPECT_THROW(NdRange<1>(Range<1>(4), Range<1>(0)), common::Error);
}

TEST(NdItem, GlobalIdComposition) {
  NdItem<2> item(Id<2>(2, 1), Id<2>(3, 0), Range<2>(4, 2), Range<2>(16, 4));
  EXPECT_EQ(item.get_global_id(0), 11u);
  EXPECT_EQ(item.get_global_id(1), 2u);
  EXPECT_EQ(item.get_local_id(0), 3u);
  EXPECT_EQ(item.get_group(1), 1u);
  EXPECT_EQ(item.get_local_range(0), 4u);
  EXPECT_EQ(item.get_global_range(0), 16u);
  EXPECT_TRUE(item.in_range());
}

TEST(NdItem, OutOfLogicalRangeDetected) {
  // Group 2 with local range 4 covers global ids 8..11, logical range is 10.
  NdItem<1> inside(Id<1>(2), Id<1>(1), Range<1>(4), Range<1>(10));
  EXPECT_TRUE(inside.in_range());
  NdItem<1> outside(Id<1>(2), Id<1>(3), Range<1>(4), Range<1>(10));
  EXPECT_FALSE(outside.in_range());
}

TEST(Buffer, CopyInAndOut) {
  const float host[] = {1.0f, 2.0f, 3.0f};
  Buffer<float> buf{std::span<const float>(host)};
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.read()[1], 2.0f);
  buf.write()[1] = 9.0f;
  float out[3] = {};
  buf.copy_to(out);
  EXPECT_EQ(out[1], 9.0f);
}

TEST(Buffer, CopyToSizeMismatchThrows) {
  Buffer<int> buf(4);
  int too_small[2];
  EXPECT_THROW(buf.copy_to(too_small), common::Error);
}

TEST(Queue, ParallelForVisitsEveryItemOnce) {
  Queue queue;
  std::vector<std::atomic<int>> hits(64);
  queue.parallel_for(NdRange<2>(Range<2>(8, 8), Range<2>(4, 4)),
                     [&](const NdItem<2>& item) {
                       ++hits[item.get_global_id(0) * 8 + item.get_global_id(1)];
                     });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Queue, PaddedItemsAreLaunchedButFlagged) {
  Queue queue;
  std::atomic<int> in_range{0};
  std::atomic<int> padded{0};
  // Global 5 with local 4 pads to 8 items.
  const auto event = queue.parallel_for(
      NdRange<1>(Range<1>(5), Range<1>(4)), [&](const NdItem<1>& item) {
        (item.in_range() ? in_range : padded)++;
      });
  EXPECT_EQ(in_range.load(), 5);
  EXPECT_EQ(padded.load(), 3);
  EXPECT_EQ(event.item_count, 8u);
  EXPECT_EQ(event.group_count, 2u);
}

TEST(Queue, EventReportsTiming) {
  Queue queue;
  const auto event = queue.parallel_for(
      NdRange<1>(Range<1>(16), Range<1>(4)), [](const NdItem<1>&) {});
  EXPECT_GE(event.elapsed_seconds, 0.0);
}

TEST(Queue, WorkGroupSizeLimitEnforced) {
  Device tiny = Device::host();
  tiny.max_work_group_size = 16;
  Queue queue(tiny);
  EXPECT_THROW(queue.parallel_for(NdRange<2>(Range<2>(32, 32), Range<2>(8, 8)),
                                  [](const NdItem<2>&) {}),
               common::Error);
}

TEST(Queue, HierarchicalBarrierSemantics) {
  Queue queue;
  // Phase 1 writes per-group local memory; phase 2 reads it. The implicit
  // barrier between parallel_for_work_item calls must make phase 1 results
  // visible to every item in phase 2.
  std::atomic<int> failures{0};
  queue.parallel_for_work_group(
      Range<1>(8), Range<1>(16), [&](const WorkGroup<1>& group) {
        int local_sum = 0;  // models work-group local memory
        group.parallel_for_work_item(
            [&](const NdItem<1>&) { local_sum += 1; });
        group.parallel_for_work_item([&](const NdItem<1>&) {
          if (local_sum != 16) ++failures;
        });
      });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Queue, HierarchicalCoversAllGroups) {
  Queue queue;
  std::mutex mutex;
  std::set<std::pair<std::size_t, std::size_t>> groups;
  queue.parallel_for_work_group(Range<2>(3, 2), Range<2>(2, 2),
                                [&](const WorkGroup<2>& group) {
                                  std::lock_guard lock(mutex);
                                  groups.emplace(group.get_group(0),
                                                 group.get_group(1));
                                });
  EXPECT_EQ(groups.size(), 6u);
}

TEST(Queue, SingleTaskRunsOnce) {
  Queue queue;
  int count = 0;
  const auto event = queue.single_task([&] { ++count; });
  EXPECT_EQ(count, 1);
  EXPECT_EQ(event.item_count, 1u);
}

TEST(Queue, ExceptionInKernelPropagates) {
  Queue queue;
  EXPECT_THROW(
      queue.parallel_for(NdRange<1>(Range<1>(8), Range<1>(4)),
                         [](const NdItem<1>& item) {
                           if (item.get_global_id(0) == 3) {
                             throw common::Error("kernel failure");
                           }
                         }),
      common::Error);
}

TEST(Queue, ProfileAccumulatesAcrossSubmissions) {
  Queue queue;
  EXPECT_EQ(queue.profile().submissions, 0u);
  queue.parallel_for(NdRange<1>(Range<1>(16), Range<1>(4)),
                     [](const NdItem<1>&) {});
  queue.single_task([] {});
  EXPECT_EQ(queue.profile().submissions, 2u);
  EXPECT_EQ(queue.profile().groups_launched, 5u);  // 4 groups + 1 task
  EXPECT_EQ(queue.profile().items_launched, 17u);
  EXPECT_GE(queue.profile().total_seconds, 0.0);
  queue.reset_profile();
  EXPECT_EQ(queue.profile().submissions, 0u);
}

TEST(Queue, ThreeDimensionalRangeCoversAllItems) {
  Queue queue;
  std::vector<std::atomic<int>> hits(2 * 3 * 4);
  queue.parallel_for(
      NdRange<3>(Range<3>(2, 3, 4), Range<3>(1, 3, 2)),
      [&](const NdItem<3>& item) {
        if (!item.in_range()) return;
        const std::size_t flat = (item.get_global_id(0) * 3 +
                                  item.get_global_id(1)) * 4 +
                                 item.get_global_id(2);
        ++hits[flat];
      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Device, HostDeviceHasSaneDefaults) {
  const Device d = Device::host();
  EXPECT_FALSE(d.name.empty());
  EXPECT_GE(d.compute_units, 1u);
  EXPECT_GE(d.max_work_group_size, 1u);
}

TEST(Buffer, AtBoundsChecksBothOverloads) {
  Buffer<int> buf(3, 7);
  buf.at(2) = 9;
  EXPECT_EQ(buf.at(2), 9);
  EXPECT_THROW((void)buf.at(3), common::Error);
  const Buffer<int>& cref = buf;
  EXPECT_EQ(cref.at(0), 7);
  EXPECT_THROW((void)cref.at(5), common::Error);
}

TEST(Buffer, CopyFromReplacesContents) {
  Buffer<float> buf(4);
  const std::vector<float> host = {1.0f, 2.0f, 3.0f, 4.0f};
  buf.copy_from(host);
  EXPECT_EQ(buf.read()[0], 1.0f);
  EXPECT_EQ(buf.read()[3], 4.0f);
  const std::vector<float> wrong_size = {1.0f};
  EXPECT_THROW(buf.copy_from(wrong_size), common::Error);
}

TEST(Queue, DeterministicReplayVisitsGroupsInCanonicalOrder) {
  Queue queue;
  queue.set_deterministic_replay(true);
  EXPECT_TRUE(queue.deterministic_replay());
  std::vector<std::size_t> order;
  queue.parallel_for(NdRange<2>(Range<2>(4, 6), Range<2>(2, 2)),
                     [&](const NdItem<2>& item) {
                       if (item.get_local_id(0) == 0 &&
                           item.get_local_id(1) == 0) {
                         order.push_back(item.get_group(0) * 3 +
                                         item.get_group(1));
                       }
                     });
  ASSERT_EQ(order.size(), 6u);  // 2x3 groups
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Queue, ReplayMatchesPooledExecutionResults) {
  const auto run = [](bool replay) {
    Queue queue;
    queue.set_deterministic_replay(replay);
    std::vector<float> out(64, 0.0f);
    std::span<float> view(out);
    queue.parallel_for(NdRange<1>(Range<1>(60), Range<1>(8)),
                       [view](const NdItem<1>& item) {
                         if (!item.in_range()) return;
                         const std::size_t i = item.get_global_id(0);
                         view[i] = static_cast<float>(i) * 0.5f;
                       });
    return out;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace aks::syclrt
