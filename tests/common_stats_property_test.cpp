// Property-based tests for the statistics helpers backing the robust
// measurement path. All randomness comes from common::Rng with fixed seeds,
// so every "random" property case is reproducible bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace aks::common {
namespace {

std::vector<double> random_samples(Rng& rng, std::size_t n, double lo,
                                   double hi) {
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform(lo, hi);
  return xs;
}

TEST(StatsProperty, MedianIsWithinRangeAndOrderInvariant) {
  Rng rng(101);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(40);
    auto xs = random_samples(rng, n, -50.0, 50.0);
    const double med = median(xs);
    EXPECT_GE(med, *std::min_element(xs.begin(), xs.end()));
    EXPECT_LE(med, *std::max_element(xs.begin(), xs.end()));
    auto shuffled = xs;
    rng.shuffle(shuffled);
    EXPECT_DOUBLE_EQ(median(shuffled), med);
    // At least half the samples lie on each side (median property).
    const auto at_most = static_cast<std::size_t>(
        std::count_if(xs.begin(), xs.end(),
                      [med](double x) { return x <= med; }));
    const auto at_least = static_cast<std::size_t>(
        std::count_if(xs.begin(), xs.end(),
                      [med](double x) { return x >= med; }));
    EXPECT_GE(2 * at_most, n);
    EXPECT_GE(2 * at_least, n);
  }
}

TEST(StatsProperty, MadRejectionRemovesPlantedOutliersOnly) {
  Rng rng(202);
  for (int trial = 0; trial < 50; ++trial) {
    // A tight cluster around a random center...
    const double center = rng.uniform(1.0, 100.0);
    const std::size_t n = 12 + rng.uniform_index(20);
    std::vector<double> xs(n);
    for (auto& x : xs) x = center * (1.0 + 0.01 * rng.uniform(-1.0, 1.0));
    // ...plus up to three planted outliers far away.
    const std::size_t planted = 1 + rng.uniform_index(3);
    std::vector<std::size_t> outlier_at;
    for (std::size_t p = 0; p < planted; ++p) {
      const std::size_t i = rng.uniform_index(xs.size());
      xs[i] = center * rng.uniform(20.0, 100.0);
      outlier_at.push_back(i);
    }
    const auto keep = mad_keep_mask(xs, 3.5);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const bool is_planted = std::count(outlier_at.begin(), outlier_at.end(),
                                         i) > 0;
      if (is_planted) {
        EXPECT_FALSE(keep[i]) << "planted outlier survived at " << i;
      } else {
        EXPECT_TRUE(keep[i]) << "inlier rejected at " << i;
      }
    }
  }
}

TEST(StatsProperty, MadRejectionNeverRemovesMoreThanCap) {
  Rng rng(303);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 3 + rng.uniform_index(40);
    // Adversarial spread: wildly varying magnitudes.
    std::vector<double> xs(n);
    for (auto& x : xs) x = std::exp(rng.uniform(-10.0, 10.0));
    const auto kept = reject_outliers_mad(xs, 3.5, 0.4);
    EXPECT_GE(kept.size(),
              xs.size() - static_cast<std::size_t>(0.4 * double(xs.size())));
    EXPECT_FALSE(kept.empty());
  }
}

TEST(StatsProperty, MadKeepsEverythingWhenHalfIdentical) {
  // MAD is zero when at least half the values coincide; rejection must
  // degrade to keep-all rather than dividing by zero.
  std::vector<double> xs = {5.0, 5.0, 5.0, 5.0, 1e9, -1e9};
  const auto keep = mad_keep_mask(xs, 3.5);
  for (const bool k : keep) EXPECT_TRUE(k);
}

TEST(StatsProperty, TrimmedMeanEquivariantUnderTranslationAndScale) {
  Rng rng(404);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 5 + rng.uniform_index(30);
    const auto xs = random_samples(rng, n, -10.0, 10.0);
    const double base = trimmed_mean(xs, 0.2);
    const double shift = rng.uniform(-100.0, 100.0);
    const double scale = rng.uniform(0.1, 10.0);
    std::vector<double> transformed(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      transformed[i] = scale * xs[i] + shift;
    }
    EXPECT_NEAR(trimmed_mean(transformed, 0.2), scale * base + shift,
                1e-9 * (1.0 + std::abs(scale * base + shift)));
  }
}

TEST(StatsProperty, TrimmedMeanMonotoneInSamples) {
  // Raising any sample can never lower the trimmed mean.
  Rng rng(505);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 5 + rng.uniform_index(20);
    auto xs = random_samples(rng, n, 0.0, 10.0);
    const double base = trimmed_mean(xs, 0.2);
    const std::size_t i = rng.uniform_index(xs.size());
    xs[i] += rng.uniform(0.0, 100.0);
    EXPECT_GE(trimmed_mean(xs, 0.2), base - 1e-12);
  }
}

TEST(StatsProperty, TrimmedMeanBoundedByUntrimmedExtremes) {
  Rng rng(606);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(30);
    const auto xs = random_samples(rng, n, -5.0, 5.0);
    const double tm = trimmed_mean(xs, 0.2);
    EXPECT_GE(tm, *std::min_element(xs.begin(), xs.end()) - 1e-12);
    EXPECT_LE(tm, *std::max_element(xs.begin(), xs.end()) + 1e-12);
  }
}

TEST(StatsProperty, MadMatchesHandComputedValue) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 100.0};
  // median = 3, abs deviations = {2,1,0,1,97}, median = 1.
  EXPECT_NEAR(mad(xs), 1.4826, 1e-12);
}

TEST(StatsProperty, RobustPipelineRecoversTrueValueUnderOutliers) {
  // End-to-end property mirroring the measurement path: cluster + fast and
  // slow outliers, MAD rejection then median lands near the true center.
  Rng rng(707);
  for (int trial = 0; trial < 50; ++trial) {
    const double truth = rng.uniform(1e-4, 1e-2);
    std::vector<double> xs;
    for (int i = 0; i < 9; ++i) {
      xs.push_back(truth * (1.0 + 0.02 * rng.uniform(-1.0, 1.0)));
    }
    xs.push_back(truth * 64.0);  // slow outlier
    xs.push_back(truth / 64.0);  // fast outlier (attacks best-of-N)
    rng.shuffle(xs);
    const auto kept = reject_outliers_mad(xs, 3.5);
    const double estimate = median(kept);
    EXPECT_NEAR(estimate, truth, 0.05 * truth);
    // The naive best-of reduction is fooled by the fast outlier.
    EXPECT_LT(min_value(xs), 0.5 * truth);
  }
}

}  // namespace
}  // namespace aks::common
