// Fault-injection layer: plan parsing, deterministic probe sequences,
// scoped arming, and the hardened measurement path. The determinism tests
// are the acceptance gate for replayability: the same (plan, seed, keys)
// must yield a bit-identical fault sequence, run to run and thread
// interleaving to thread interleaving.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "dataset/benchmark_runner.hpp"
#include "faults/injector.hpp"
#include "gemm/config.hpp"
#include "gemm/registry.hpp"
#include "perfmodel/cost_model.hpp"
#include "syclrt/queue.hpp"

namespace aks::faults {
namespace {

TEST(FaultPlan, ParsesCannedNames) {
  EXPECT_FALSE(FaultPlan::parse("none").any_active());
  const auto noise = FaultPlan::parse("timing-noise-heavy");
  EXPECT_TRUE(noise.active(Site::kHostTiming));
  EXPECT_FALSE(noise.active(Site::kKernelLaunch));
  const auto launch = FaultPlan::parse("launch-failure-heavy");
  EXPECT_TRUE(launch.active(Site::kKernelLaunch));
  const auto mixed = FaultPlan::parse("mixed@0.3");
  EXPECT_TRUE(mixed.active(Site::kKernelLaunch));
  EXPECT_TRUE(mixed.active(Site::kHostTiming));
  EXPECT_TRUE(mixed.active(Site::kDatasetRow));
  EXPECT_TRUE(mixed.active(Site::kWarmUpTrial));
}

TEST(FaultPlan, ParsesKeyValueGrammarAndRoundTrips) {
  const auto plan =
      FaultPlan::parse("seed=7,launch=0.1,outlier=0.2,row=0.05,hang-ms=2");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.at(Site::kKernelLaunch).launch_failure, 0.1);
  EXPECT_DOUBLE_EQ(plan.at(Site::kHostTiming).timing_outlier, 0.2);
  EXPECT_DOUBLE_EQ(plan.at(Site::kDatasetRow).corrupt_row, 0.05);
  EXPECT_DOUBLE_EQ(plan.hang_seconds, 2e-3);
  const auto reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("bogus-plan"), common::Error);
  EXPECT_THROW((void)FaultPlan::parse("launch=1.5"), common::Error);
  EXPECT_THROW((void)FaultPlan::parse("mixed@nope"), common::Error);
  // Per-site rates must sum to at most 1 (outlier + nan share a site).
  EXPECT_THROW((void)FaultPlan::parse("outlier=0.6,nan=0.6"), common::Error);
}

std::vector<FaultKind> probe_sequence(const FaultPlan& plan,
                                      std::uint64_t base_key, int draws) {
  ScopedFaultPlan install(plan);
  std::vector<FaultKind> kinds;
  for (int i = 0; i < draws; ++i) {
    FaultScope scope(site_bit(Site::kHostTiming),
                     mix_key(base_key, static_cast<std::uint64_t>(i)));
    kinds.push_back(probe(Site::kHostTiming).kind);
  }
  return kinds;
}

TEST(FaultInjector, SameSeedSamePlanGivesBitIdenticalSequence) {
  const auto plan = FaultPlan::mixed(0.3, 42);
  const auto a = probe_sequence(plan, 0x5eed, 512);
  const auto b = probe_sequence(plan, 0x5eed, 512);
  EXPECT_EQ(a, b);
  // And the sequence is not degenerate: some faults actually fire.
  EXPECT_GT(std::count_if(a.begin(), a.end(),
                          [](FaultKind k) { return k != FaultKind::kNone; }),
            0);
  // A different seed yields a different sequence.
  auto reseeded = plan;
  reseeded.seed = 43;
  EXPECT_NE(probe_sequence(reseeded, 0x5eed, 512), a);
}

TEST(FaultInjector, SequenceIsIndependentOfThreadInterleaving) {
  const auto plan = FaultPlan::mixed(0.5, 9);
  const auto serial = probe_sequence(plan, 0xabc, 256);
  // Same keys probed from many threads, racing: per-key results must match
  // the serial sequence exactly because decisions are pure in the key.
  ScopedFaultPlan install(plan);
  std::vector<FaultKind> parallel(256, FaultKind::kNone);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = t; i < 256; i += 8) {
        FaultScope scope(site_bit(Site::kHostTiming),
                         mix_key(0xabc, static_cast<std::uint64_t>(i)));
        parallel[static_cast<std::size_t>(i)] =
            probe(Site::kHostTiming).kind;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(parallel, serial);
}

TEST(FaultInjector, NoFaultsOutsideArmedScope) {
  ScopedFaultPlan install(FaultPlan::mixed(1.0, 1));
  // No scope at all.
  EXPECT_EQ(probe(Site::kHostTiming).kind, FaultKind::kNone);
  EXPECT_NO_THROW(maybe_inject_launch_fault());
  // A scope that arms a different site.
  FaultScope scope(site_bit(Site::kDatasetRow), 1);
  EXPECT_EQ(probe(Site::kHostTiming).kind, FaultKind::kNone);
  EXPECT_NO_THROW(maybe_inject_launch_fault());
}

TEST(FaultInjector, ScopedNonePinsFaultFreeOverInstalledPlan) {
  ScopedFaultPlan outer(FaultPlan::mixed(1.0, 1));
  {
    ScopedFaultPlan inner(FaultPlan::none());
    FaultScope scope(site_bit(Site::kHostTiming), 1);
    EXPECT_FALSE(plan_active());
    EXPECT_EQ(probe(Site::kHostTiming).kind, FaultKind::kNone);
  }
  EXPECT_TRUE(plan_active());
}

TEST(FaultInjector, OutlierMagnitudesSpanSlowAndFast) {
  FaultPlan plan;
  plan.seed = 3;
  plan.at(Site::kHostTiming).timing_outlier = 1.0;
  ScopedFaultPlan install(plan);
  bool saw_slow = false;
  bool saw_fast = false;
  for (int i = 0; i < 64; ++i) {
    FaultScope scope(site_bit(Site::kHostTiming),
                     static_cast<std::uint64_t>(i));
    const auto fault = probe(Site::kHostTiming);
    ASSERT_EQ(fault.kind, FaultKind::kTimingOutlier);
    ASSERT_GT(fault.magnitude, 0.0);
    if (fault.magnitude > 1.0) saw_slow = true;
    if (fault.magnitude < 1.0) saw_fast = true;
    EXPECT_LE(fault.magnitude, plan.outlier_max_factor);
    EXPECT_GE(fault.magnitude, 1.0 / plan.outlier_max_factor);
  }
  EXPECT_TRUE(saw_slow);
  EXPECT_TRUE(saw_fast);
}

TEST(Queue, LaunchFaultFiresInsideArmedScope) {
  FaultPlan plan;
  plan.seed = 11;
  plan.at(Site::kKernelLaunch).launch_failure = 1.0;
  ScopedFaultPlan install(plan);

  const gemm::GemmShape shape{16, 16, 16};
  std::vector<float> a(shape.m * shape.k, 1.0f);
  std::vector<float> b(shape.k * shape.n, 1.0f);
  std::vector<float> c(shape.m * shape.n, 0.0f);
  const auto& config = gemm::enumerate_configs()[0];

  syclrt::Queue queue;
  // Unarmed: correctness paths never see the fault even at rate 1.
  EXPECT_NO_THROW((void)gemm::launch_gemm(queue, config, a, b, c, shape));
  // Armed: the launch hook throws deterministically.
  FaultScope scope(site_bit(Site::kKernelLaunch), 0xfeed);
  EXPECT_THROW((void)gemm::launch_gemm(queue, config, a, b, c, shape),
               LaunchFailure);
}

TEST(RobustMeasurement, CellStaysFiniteUnderHeavyFaults) {
  const perf::TimingModel timing(perf::DeviceSpec::amd_r9_nano(), 0.03, 42);
  const auto& config = gemm::enumerate_configs()[100];
  const gemm::GemmShape shape{256, 256, 256};
  data::RunnerOptions options;
  options.iterations = 5;
  options.aggregate = data::RunnerOptions::Aggregate::kMedian;

  ScopedFaultPlan install(FaultPlan::mixed(0.6, 4));
  const auto cell = data::measure_cell_robust(timing, config, shape, options);
  EXPECT_TRUE(std::isfinite(cell.seconds));
  EXPECT_GT(cell.seconds, 0.0);
  EXPECT_GE(cell.attempts, 1);
}

TEST(RobustMeasurement, CellFallsBackToModelWhenEveryLaunchFails) {
  const perf::TimingModel timing(perf::DeviceSpec::amd_r9_nano(), 0.03, 42);
  const auto& config = gemm::enumerate_configs()[0];
  const gemm::GemmShape shape{64, 64, 64};
  FaultPlan plan;
  plan.seed = 5;
  plan.at(Site::kKernelLaunch).launch_failure = 1.0;
  ScopedFaultPlan install(plan);
  const auto cell = data::measure_cell_robust(timing, config, shape);
  EXPECT_TRUE(cell.fell_back);
  EXPECT_GT(cell.launch_failures, 0);
  EXPECT_DOUBLE_EQ(cell.seconds,
                   timing.model().predict_seconds(config, shape));
}

TEST(RobustMeasurement, MeasurementIsDeterministicUnderPlan) {
  const perf::TimingModel timing(perf::DeviceSpec::amd_r9_nano(), 0.03, 42);
  const auto& config = gemm::enumerate_configs()[250];
  const gemm::GemmShape shape{128, 512, 64};
  data::RunnerOptions options;
  options.aggregate = data::RunnerOptions::Aggregate::kTrimmedMean;

  const auto run = [&] {
    ScopedFaultPlan install(FaultPlan::timing_noise_heavy(0.4, 13));
    return data::measure_cell_robust(timing, config, shape, options);
  };
  const auto first = run();
  const auto second = run();
  // Bit-identical, not approximately equal: the whole point of the layer.
  EXPECT_EQ(first.seconds, second.seconds);
  EXPECT_EQ(first.attempts, second.attempts);
  EXPECT_EQ(first.nan_samples, second.nan_samples);
  EXPECT_EQ(first.outliers_rejected, second.outliers_rejected);
}

}  // namespace
}  // namespace aks::faults
