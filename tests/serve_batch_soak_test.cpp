// Concurrency soak for the batched/async selection API: 8 threads overlap
// select(), select_batch() and select_async() on one service while an
// observer thread snapshots stats. Invariants under TSan: warm-up runs
// exactly once per unique shape (single-flight holds across entry points),
// every request is accounted as a hit, miss or coalesced wait, counters
// only ever grow, and nested pool use (async selects running on the same
// global pool the warm-up's parallel_for borrows) never deadlocks.
//
// Suite name SelectionServiceBatch is matched by the CI sanitize/tsan
// filters (SelectionService[A-Za-z]*).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gemm/config.hpp"
#include "serve/selection_service.hpp"

namespace aks::serve {
namespace {

std::vector<gemm::GemmShape> test_shapes(std::size_t n) {
  std::vector<gemm::GemmShape> shapes;
  for (std::size_t i = 0; i < n; ++i) {
    shapes.push_back(
        {48 + 32 * i, 96 + 16 * ((i * 5) % 13), 48 + 64 * ((i * 3) % 7)});
  }
  return shapes;
}

/// Warm-up that counts invocations per shape and runs part of its work as a
/// parallel_for on the global pool — the same pool select_async() tasks
/// occupy — so the soak exercises the nested-use guarantee for real.
class CountingWarmUp {
 public:
  gemm::KernelConfig operator()(const gemm::GemmShape& shape) {
    {
      std::lock_guard lock(mutex_);
      ++calls_[shape];
    }
    std::atomic<std::uint64_t> sum{0};
    common::ThreadPool::global().parallel_for(8, [&](std::size_t i) {
      sum.fetch_add(shape.m * (i + 1), std::memory_order_relaxed);
    });
    // sum is deterministic in the shape, so folding it in keeps the answer
    // a pure function of the shape while making the nested work observable.
    const auto& configs = gemm::enumerate_configs();
    return configs[(shape.m * 31 + shape.k * 7 + shape.n + sum.load()) %
                   configs.size()];
  }

  std::map<gemm::GemmShape, std::size_t> calls() {
    std::lock_guard lock(mutex_);
    return calls_;
  }

 private:
  std::mutex mutex_;
  std::map<gemm::GemmShape, std::size_t> calls_;
};

TEST(SelectionServiceBatch, ConcurrentMixedEntryPointsSoak) {
  auto warm_up = std::make_shared<CountingWarmUp>();
  SelectionService service(
      [warm_up](const gemm::GemmShape& shape) { return (*warm_up)(shape); });

  const auto shapes = test_shapes(24);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 60;
  std::atomic<std::uint64_t> requested{0};
  std::atomic<bool> stop_observer{false};

  // Observer: every stats() snapshot must be >= the previous one field by
  // field (counters are monotonic even while batches are in flight).
  std::thread observer([&] {
    ServiceStats last{};
    while (!stop_observer.load(std::memory_order_acquire)) {
      const auto now = service.stats();
      EXPECT_GE(now.hits, last.hits);
      EXPECT_GE(now.misses, last.misses);
      EXPECT_GE(now.coalesced_waits, last.coalesced_waits);
      EXPECT_GE(now.batch_requests, last.batch_requests);
      EXPECT_GE(now.batch_shapes, last.batch_shapes);
      EXPECT_GE(now.batch_dedup, last.batch_dedup);
      EXPECT_GE(now.batch_wave_shapes, last.batch_wave_shapes);
      EXPECT_EQ(now.duplicate_sweeps, 0u);
      last = now;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      common::Rng rng(0x50a1 + t);
      for (std::size_t it = 0; it < kIterations; ++it) {
        const double op = rng.uniform();
        if (op < 0.4) {
          const auto& shape = shapes[rng.uniform_index(shapes.size())];
          (void)service.select(shape);
          requested.fetch_add(1, std::memory_order_relaxed);
        } else if (op < 0.8) {
          std::vector<gemm::GemmShape> batch;
          const std::size_t size = 1 + rng.uniform_index(16);
          for (std::size_t i = 0; i < size; ++i) {
            batch.push_back(shapes[rng.uniform_index(shapes.size())]);
          }
          const auto out = service.select_batch(batch);
          EXPECT_EQ(out.size(), batch.size());
          requested.fetch_add(size, std::memory_order_relaxed);
        } else {
          const auto& shape = shapes[rng.uniform_index(shapes.size())];
          auto future = service.select_async(shape);
          (void)future.get();
          requested.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  stop_observer.store(true, std::memory_order_release);
  observer.join();

  // Exactly-once warm-up per unique shape, across all three entry points.
  const auto calls = warm_up->calls();
  for (const auto& [shape, count] : calls) {
    EXPECT_EQ(count, 1u) << "shape swept " << count << " times";
  }
  EXPECT_LE(calls.size(), shapes.size());

  const auto stats = service.stats();
  EXPECT_EQ(stats.duplicate_sweeps, 0u);
  EXPECT_EQ(stats.misses, calls.size());
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced_waits,
            requested.load())
      << "every request must be accounted as hit, miss or coalesced wait";
  EXPECT_EQ(stats.cached_shapes, calls.size());
}

}  // namespace
}  // namespace aks::serve
