#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/codegen.hpp"
#include "core/pruning.hpp"
#include "dataset/benchmark_runner.hpp"

namespace aks::select {
namespace {

class CodegenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::ExtractionOptions extraction;
    extraction.vgg_batches = {1};
    extraction.resnet_batches = {1};
    extraction.mobilenet_batches = {1};
    const auto dataset = data::build_paper_dataset({}, extraction);
    split_ = new data::DatasetSplit(dataset.split(0.8, 5));
    DecisionTreePruner pruner;
    selector_ = new DecisionTreeSelector();
    selector_->fit(split_->train, pruner.prune(split_->train, 6));
  }
  static void TearDownTestSuite() {
    delete split_;
    delete selector_;
    split_ = nullptr;
    selector_ = nullptr;
  }
  static const data::DatasetSplit& split() { return *split_; }
  static const DecisionTreeSelector& selector() { return *selector_; }

 private:
  static data::DatasetSplit* split_;
  static DecisionTreeSelector* selector_;
};

data::DatasetSplit* CodegenTest::split_ = nullptr;
DecisionTreeSelector* CodegenTest::selector_ = nullptr;

TEST_F(CodegenTest, EmitsCompilableLookingCode) {
  const std::string code = generate_selector_code(selector());
  EXPECT_NE(code.find("struct KernelChoice"), std::string::npos);
  EXPECT_NE(code.find("inline KernelChoice select_gemm_kernel"), std::string::npos);
  EXPECT_NE(code.find("namespace aks_generated"), std::string::npos);
  EXPECT_NE(code.find("return {"), std::string::npos);
  // Balanced braces.
  long depth = 0;
  for (const char ch : code) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(CodegenTest, OptionsControlNames) {
  CodegenOptions options;
  options.function_name = "pick_kernel";
  options.namespace_name = "";
  const std::string code = generate_selector_code(selector(), options);
  EXPECT_NE(code.find("pick_kernel"), std::string::npos);
  EXPECT_EQ(code.find("namespace"), std::string::npos);
}

TEST_F(CodegenTest, GeneratedLogicMatchesSelectorEverywhere) {
  // The emitted nested ifs and the live selector must agree on every test
  // shape and on random probes.
  for (std::size_t r = 0; r < split().test.num_shapes(); ++r) {
    const auto row = split().test.features().row(r);
    const auto expected =
        gemm::enumerate_configs()[selector().select(row)];
    const auto emitted =
        evaluate_generated_logic(selector(), row[0], row[1], row[2]);
    EXPECT_EQ(emitted, expected) << "row " << r;
  }
  common::Rng rng(3);
  for (int probe = 0; probe < 200; ++probe) {
    const double m = rng.uniform(1, 300000);
    const double k = rng.uniform(1, 30000);
    const double n = rng.uniform(1, 5000);
    const double features[3] = {m, k, n};
    const auto expected = gemm::enumerate_configs()[selector().select(features)];
    EXPECT_EQ(evaluate_generated_logic(selector(), m, k, n), expected);
  }
}

TEST_F(CodegenTest, EveryLeafEmitsAnAllowedConfig) {
  const std::string code = generate_selector_code(selector());
  // Each allowed config name may appear; no disallowed names may.
  for (const auto& config : gemm::enumerate_configs()) {
    const bool is_allowed =
        std::find(selector().allowed().begin(), selector().allowed().end(),
                  gemm::config_index(config)) != selector().allowed().end();
    if (!is_allowed) {
      EXPECT_EQ(code.find("// " + config.name()), std::string::npos);
    }
  }
}

TEST_F(CodegenTest, UnfittedSelectorThrows) {
  DecisionTreeSelector unfitted;
  EXPECT_THROW((void)generate_selector_code(unfitted), common::Error);
  EXPECT_THROW((void)evaluate_generated_logic(unfitted, 1, 1, 1),
               common::Error);
}

TEST_F(CodegenTest, ScaledSelectorRejected) {
  DecisionTreeSelector scaled(ml::TreeOptions{}, /*scale_features=*/true);
  scaled.fit(split().train, selector().allowed());
  EXPECT_THROW((void)generate_selector_code(scaled), common::Error);
}

}  // namespace
}  // namespace aks::select
