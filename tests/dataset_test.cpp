#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>

#include "common/error.hpp"
#include "dataset/benchmark_runner.hpp"
#include "dataset/extract.hpp"
#include "dataset/lowering.hpp"
#include "dataset/networks.hpp"
#include "dataset/perf_dataset.hpp"

namespace aks::data {
namespace {

TEST(Networks, Vgg16Structure) {
  const Network net = vgg16();
  EXPECT_EQ(net.convs.size(), 13u);
  EXPECT_EQ(net.fcs.size(), 3u);
  for (const auto& conv : net.convs) {
    EXPECT_EQ(conv.kernel, 3);
    EXPECT_EQ(conv.stride, 1);
    EXPECT_TRUE(conv.winograd_applicable());
  }
  EXPECT_EQ(net.fcs[0].in_features, 25088);
  EXPECT_EQ(net.fcs[2].out_features, 1000);
}

TEST(Networks, Resnet50Structure) {
  const Network net = resnet50();
  // Stem + 16 bottlenecks x 3 convs + 4 downsample projections = 53.
  EXPECT_EQ(net.convs.size(), 53u);
  EXPECT_EQ(net.fcs.size(), 1u);
  EXPECT_EQ(net.convs.front().kernel, 7);
  // Final stage output feeds a 2048-wide classifier.
  EXPECT_EQ(net.fcs[0].in_features, 2048);
}

TEST(Networks, MobilenetV2Structure) {
  const Network net = mobilenet_v2();
  EXPECT_EQ(net.fcs.size(), 1u);
  std::size_t depthwise = 0;
  for (const auto& conv : net.convs) depthwise += conv.is_depthwise() ? 1u : 0u;
  // One depthwise conv per inverted-residual block (17 blocks).
  EXPECT_EQ(depthwise, 17u);
  EXPECT_EQ(net.fcs[0].in_features, 1280);
}

TEST(Networks, SpatialDimensionsChainCorrectly) {
  for (const auto& net : paper_networks()) {
    for (const auto& conv : net.convs) {
      EXPECT_GT(conv.out_height(), 0) << net.name << ":" << conv.name;
      EXPECT_GT(conv.out_width(), 0) << net.name << ":" << conv.name;
    }
  }
}

TEST(Lowering, Im2colShapeFormula) {
  ConvLayer conv;
  conv.in_channels = 64;
  conv.out_channels = 128;
  conv.kernel = 3;
  conv.stride = 1;
  conv.padding = 1;
  conv.in_height = conv.in_width = 56;
  const auto shape = im2col_shape(conv, 4);
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->m, 4u * 56 * 56);
  EXPECT_EQ(shape->k, 64u * 9);
  EXPECT_EQ(shape->n, 128u);
}

TEST(Lowering, Im2colSkipsDepthwise) {
  ConvLayer dw;
  dw.in_channels = dw.out_channels = dw.groups = 96;
  dw.kernel = 3;
  dw.in_height = dw.in_width = 28;
  dw.padding = 1;
  EXPECT_FALSE(im2col_shape(dw, 1).has_value());
  EXPECT_FALSE(winograd_shape(dw, 1).has_value());
}

TEST(Lowering, WinogradShapeFormula) {
  ConvLayer conv;
  conv.in_channels = 256;
  conv.out_channels = 512;
  conv.kernel = 3;
  conv.stride = 1;
  conv.padding = 1;
  conv.in_height = conv.in_width = 14;
  const auto shape = winograd_shape(conv, 2);
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->m, 2u * 7 * 7);  // 2x2 output tiles over 14x14
  EXPECT_EQ(shape->k, 256u);
  EXPECT_EQ(shape->n, 512u);
}

TEST(Lowering, WinogradRejectsStride2And1x1) {
  ConvLayer strided;
  strided.in_channels = 3;
  strided.out_channels = 64;
  strided.kernel = 3;
  strided.stride = 2;
  strided.padding = 1;
  strided.in_height = strided.in_width = 224;
  EXPECT_FALSE(winograd_shape(strided, 1).has_value());

  ConvLayer pointwise;
  pointwise.in_channels = 64;
  pointwise.out_channels = 256;
  pointwise.kernel = 1;
  pointwise.in_height = pointwise.in_width = 56;
  EXPECT_FALSE(winograd_shape(pointwise, 1).has_value());
}

TEST(Lowering, FcShape) {
  const auto shape = fc_shape({"fc", 4096, 1000}, 16);
  EXPECT_EQ(shape.m, 16u);
  EXPECT_EQ(shape.k, 4096u);
  EXPECT_EQ(shape.n, 1000u);
}

TEST(Lowering, NetworkLoweringCoversAllTransforms) {
  const auto lowered = lower_network(vgg16(), {1});
  std::set<Transform> transforms;
  for (const auto& item : lowered) transforms.insert(item.transform);
  EXPECT_EQ(transforms.size(), 3u);
  // 13 im2col + 13 winograd + 3 fc.
  EXPECT_EQ(lowered.size(), 29u);
}

TEST(Extract, DeduplicationKeepsFirstProvenance) {
  std::vector<LoweredGemm> items;
  LoweredGemm a;
  a.shape = {8, 8, 8};
  a.layer = "first";
  LoweredGemm b = a;
  b.layer = "second";
  items.push_back(a);
  items.push_back(b);
  const auto deduped = deduplicate(items);
  ASSERT_EQ(deduped.size(), 1u);
  EXPECT_EQ(deduped[0].layer, "first");
}

TEST(Extract, PaperShapeCountsAreInPaperRegime) {
  const auto per_network = extract_paper_shapes();
  ASSERT_EQ(per_network.size(), 3u);
  // Documented counts for the default batch sets (paper: 78 / 66 / 26).
  EXPECT_EQ(per_network[0].network, "VGG16");
  EXPECT_EQ(per_network[0].shapes.size(), 78u);
  EXPECT_EQ(per_network[1].network, "ResNet50");
  EXPECT_EQ(per_network[1].shapes.size(), 73u);
  EXPECT_EQ(per_network[2].network, "MobileNetV2");
  EXPECT_EQ(per_network[2].shapes.size(), 21u);
  EXPECT_EQ(extract_all_shapes().size(), 172u);
}

TEST(Extract, ShapesWithinNetworkAreUnique) {
  for (const auto& per_network : extract_paper_shapes()) {
    std::set<gemm::GemmShape> seen;
    for (const auto& item : per_network.shapes) {
      EXPECT_TRUE(seen.insert(item.shape).second)
          << per_network.network << " duplicates " << item.shape.to_string();
    }
  }
}

PerfDataset tiny_dataset() {
  std::vector<LoweredGemm> shapes(3);
  shapes[0].shape = {64, 64, 64};
  shapes[1].shape = {1, 4096, 1000};
  shapes[2].shape = {3136, 576, 64};
  data::RunnerOptions options;
  options.iterations = 2;
  return run_model_benchmarks(shapes, perf::DeviceSpec::amd_r9_nano(),
                              options);
}

TEST(PerfDataset, ScoresAreNormalisedPerRow) {
  const auto ds = tiny_dataset();
  EXPECT_EQ(ds.num_configs(), 640u);
  for (std::size_t r = 0; r < ds.num_shapes(); ++r) {
    double best = 0.0;
    for (std::size_t c = 0; c < ds.num_configs(); ++c) {
      const double s = ds.scores()(r, c);
      EXPECT_GT(s, 0.0);
      EXPECT_LE(s, 1.0);
      best = std::max(best, s);
    }
    EXPECT_DOUBLE_EQ(best, 1.0);
    EXPECT_DOUBLE_EQ(ds.scores()(r, ds.best_config(r)), 1.0);
  }
}

TEST(PerfDataset, FeaturesMatchShapes) {
  const auto ds = tiny_dataset();
  EXPECT_DOUBLE_EQ(ds.features()(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(ds.features()(1, 1), 4096.0);
  EXPECT_DOUBLE_EQ(ds.features()(1, 2), 1000.0);
}

TEST(PerfDataset, OptimalCountsSumToRows) {
  const auto ds = tiny_dataset();
  std::size_t total = 0;
  for (const auto c : ds.optimal_counts()) total += c;
  EXPECT_EQ(total, ds.num_shapes());
}

TEST(PerfDataset, RestrictedScoreNeverExceedsOne) {
  const auto ds = tiny_dataset();
  const std::vector<std::size_t> allowed = {0, 100, 639};
  for (std::size_t r = 0; r < ds.num_shapes(); ++r) {
    const double s = ds.best_restricted_score(r, allowed);
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_THROW((void)ds.best_restricted_score(0, {}), common::Error);
  EXPECT_THROW((void)ds.best_restricted_score(0, {9999}), common::Error);
}

TEST(PerfDataset, SubsetPreservesRows) {
  const auto ds = tiny_dataset();
  const auto sub = ds.subset({2, 0});
  EXPECT_EQ(sub.num_shapes(), 2u);
  EXPECT_EQ(sub.shapes()[0].shape, ds.shapes()[2].shape);
  EXPECT_EQ(sub.shapes()[1].shape, ds.shapes()[0].shape);
  EXPECT_THROW((void)ds.subset({17}), common::Error);
}

TEST(PerfDataset, SplitIsDisjointAndComplete) {
  const auto ds = build_paper_dataset();
  const auto split = ds.split(0.8, 123);
  EXPECT_EQ(split.train.num_shapes() + split.test.num_shapes(),
            ds.num_shapes());
  // The paper's proportions: 80% train.
  EXPECT_NEAR(static_cast<double>(split.train.num_shapes()) /
                  static_cast<double>(ds.num_shapes()),
              0.8, 0.01);
  std::set<std::size_t> train(split.train_rows.begin(),
                              split.train_rows.end());
  for (const auto r : split.test_rows) EXPECT_EQ(train.count(r), 0u);
  EXPECT_THROW((void)ds.split(0.0, 1), common::Error);
  EXPECT_THROW((void)ds.split(1.0, 1), common::Error);
}

TEST(PerfDataset, SplitIsSeedDeterministic) {
  const auto ds = tiny_dataset();
  const auto a = ds.split(0.67, 42);
  const auto b = ds.split(0.67, 42);
  EXPECT_EQ(a.train_rows, b.train_rows);
  // With only 3 rows two seeds can produce the same partition; some seed in
  // a small set must differ.
  bool any_differ = false;
  for (std::uint64_t seed = 43; seed < 53 && !any_differ; ++seed) {
    any_differ = ds.split(0.67, seed).train_rows != a.train_rows;
  }
  EXPECT_TRUE(any_differ);
}

TEST(PerfDataset, SaveLoadRoundTrip) {
  const auto ds = tiny_dataset();
  const auto path =
      std::filesystem::temp_directory_path() / "aks_dataset_roundtrip.csv";
  ds.save(path);
  const auto loaded = PerfDataset::load(path);
  EXPECT_EQ(loaded.num_shapes(), ds.num_shapes());
  EXPECT_EQ(loaded.num_configs(), ds.num_configs());
  for (std::size_t r = 0; r < ds.num_shapes(); ++r) {
    EXPECT_EQ(loaded.shapes()[r].shape, ds.shapes()[r].shape);
    for (std::size_t c = 0; c < ds.num_configs(); ++c) {
      EXPECT_NEAR(loaded.times()(r, c), ds.times()(r, c),
                  1e-9 * ds.times()(r, c));
    }
  }
  std::filesystem::remove(path);
}

TEST(Runner, DeterministicAcrossRuns) {
  const auto a = tiny_dataset();
  const auto b = tiny_dataset();
  for (std::size_t r = 0; r < a.num_shapes(); ++r)
    for (std::size_t c = 0; c < a.num_configs(); ++c)
      ASSERT_DOUBLE_EQ(a.times()(r, c), b.times()(r, c));
}

TEST(Runner, ProgressCallbackFires) {
  std::vector<LoweredGemm> shapes(2);
  shapes[0].shape = {8, 8, 8};
  shapes[1].shape = {16, 16, 16};
  RunnerOptions options;
  std::atomic<std::size_t> calls{0};
  options.progress = [&](std::size_t, std::size_t total) {
    EXPECT_EQ(total, 2u);
    ++calls;
  };
  (void)run_model_benchmarks(shapes, perf::DeviceSpec::amd_r9_nano(), options);
  EXPECT_EQ(calls.load(), 2u);
}

TEST(Runner, HostRunExecutesKernel) {
  const double seconds =
      time_host_run(gemm::KernelConfig{2, 2, 2, 8, 8}, {32, 16, 32});
  EXPECT_GT(seconds, 0.0);
}

TEST(Runner, RejectsBadOptions) {
  std::vector<LoweredGemm> shapes(1);
  shapes[0].shape = {8, 8, 8};
  RunnerOptions options;
  options.iterations = 0;
  EXPECT_THROW(
      run_model_benchmarks(shapes, perf::DeviceSpec::amd_r9_nano(), options),
      common::Error);
  EXPECT_THROW(run_model_benchmarks({}, perf::DeviceSpec::amd_r9_nano(), {}),
               common::Error);
}

}  // namespace
}  // namespace aks::data
