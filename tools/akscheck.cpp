// akscheck — race/bounds/config analysis driver for the kernel zoo.
//
// Runs the two akscheck passes over the registry configuration space:
//
//   checked execution  (--registry)  replay every compiled kernel over
//                                    shadow-recording accessors on a shape
//                                    corpus; races, out-of-bounds accesses,
//                                    unguarded tails, numeric divergence;
//   config lint        (--lint)      validate every configuration against
//                                    device execution limits;
//   conv lowerings     (--conv)      replay the im2col/Winograd lowerings
//                                    through their production code path;
//   certificates       (certify)     symbolic access verification of every
//                                    configuration for ALL shapes: bounds,
//                                    races, tails and device capacity, with
//                                    SAFE/UNSAFE/UNKNOWN certificates and a
//                                    --differential cross-check against the
//                                    dynamic replay;
//   lock order         (locks)       drive the serving stack (thread pool,
//                                    tuner, service, store, trace, faults)
//                                    from many threads and validate the
//                                    observed lock-order graph: no cycles,
//                                    no lock held across a condition wait.
//
// With no pass flags, --registry and --lint both run. Exit status: 0 clean,
// 1 findings, 2 usage error.
#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/checked_conv.hpp"
#include "check/checked_gemm.hpp"
#include "check/config_lint.hpp"
#include "check/lock_drill.hpp"
#include "check/lockdep.hpp"
#include "check/report_json.hpp"
#include "check/symbolic/certificate.hpp"
#include "common/error.hpp"
#include "gemm/config.hpp"
#include "perfmodel/device_spec.hpp"

namespace {

using namespace aks;

struct Args {
  bool registry = false;
  bool lint = false;
  bool conv = false;
  bool certify = false;
  bool locks = false;
  bool differential = false;
  std::size_t threads = 8;
  std::size_t requests = 64;
  std::string devices = "all";
  std::string report;
  std::string format = "csv";
  std::vector<gemm::GemmShape> shapes;
  std::size_t max_configs = 0;
  std::size_t conv_stride = 80;
  std::size_t samples = 0;
  bool verbose = false;
};

/// stoull with validation: rejects empty, non-digit, and overflowing input
/// with a usage error instead of an uncaught std exception.
std::size_t parse_size(const std::string& text, const char* what) {
  AKS_CHECK(!text.empty() &&
                text.find_first_not_of("0123456789") == std::string::npos,
            what << " must be a non-negative integer, got '" << text << "'");
  try {
    return std::stoull(text);
  } catch (const std::out_of_range&) {
    AKS_FAIL(what << " is out of range: '" << text << "'");
  }
}

gemm::GemmShape parse_shape(const std::string& text) {
  gemm::GemmShape shape;
  const auto x1 = text.find('x');
  const auto x2 = text.find('x', x1 + 1);
  AKS_CHECK(x1 != std::string::npos && x2 != std::string::npos,
            "shape must be MxKxN, got '" << text << "'");
  shape.m = parse_size(text.substr(0, x1), "shape dimension M");
  shape.k = parse_size(text.substr(x1 + 1, x2 - x1 - 1), "shape dimension K");
  shape.n = parse_size(text.substr(x2 + 1), "shape dimension N");
  AKS_CHECK(shape.m > 0 && shape.k > 0 && shape.n > 0,
            "shape dimensions must be positive: '" << text << "'");
  return shape;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto value = [&]() -> std::string {
      AKS_CHECK(i + 1 < argc, "missing value for option " << token);
      return argv[++i];
    };
    if (token == "--registry") {
      args.registry = true;
    } else if (token == "--lint") {
      args.lint = true;
    } else if (token == "--conv") {
      args.conv = true;
    } else if (token == "certify" || token == "--certify") {
      args.certify = true;
    } else if (token == "locks" || token == "--locks") {
      args.locks = true;
    } else if (token == "--threads") {
      args.threads = parse_size(value(), "--threads");
      AKS_CHECK(args.threads > 0, "--threads must be positive");
    } else if (token == "--requests") {
      args.requests = parse_size(value(), "--requests");
    } else if (token == "--differential") {
      args.differential = true;
    } else if (token == "--verbose") {
      args.verbose = true;
    } else if (token == "--devices") {
      args.devices = value();
    } else if (token == "--report") {
      args.report = value();
    } else if (token == "--format") {
      args.format = value();
      AKS_CHECK(args.format == "csv" || args.format == "json" ||
                    args.format == "dot",
                "--format must be csv, json or dot, got '" << args.format
                                                           << "'");
    } else if (token == "--samples") {
      args.samples = parse_size(value(), "--samples");
    } else if (token == "--max-configs") {
      args.max_configs = parse_size(value(), "--max-configs");
    } else if (token == "--conv-stride") {
      args.conv_stride = parse_size(value(), "--conv-stride");
    } else if (token == "--shapes") {
      const std::string list = value();
      std::size_t start = 0;
      while (start <= list.size()) {
        const auto comma = list.find(',', start);
        const auto end = comma == std::string::npos ? list.size() : comma;
        if (end > start) {
          args.shapes.push_back(parse_shape(list.substr(start, end - start)));
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      AKS_CHECK(!args.shapes.empty(), "--shapes needs at least one MxKxN");
    } else {
      AKS_FAIL("unknown option '" << token << "'");
    }
  }
  if (!args.registry && !args.lint && !args.conv && !args.certify &&
      !args.locks) {
    args.registry = true;
    args.lint = true;
  }
  AKS_CHECK(!args.differential || args.certify,
            "--differential requires the certify pass");
  AKS_CHECK(args.format != "dot" || args.locks,
            "--format dot is only valid for the locks pass");
  AKS_CHECK(!(args.locks && args.format == "csv" && !args.report.empty()) ||
                args.lint || args.certify,
            "locks reports are dot or json; pass --format dot|json");
  return args;
}

std::vector<perf::DeviceSpec> devices_from(const std::string& spec) {
  std::vector<perf::DeviceSpec> devices;
  const auto add = [&devices](const std::string& name) {
    if (name == "r9nano") {
      devices.push_back(perf::DeviceSpec::amd_r9_nano());
    } else if (name == "embedded") {
      devices.push_back(perf::DeviceSpec::embedded_accelerator());
    } else if (name == "igpu") {
      devices.push_back(perf::DeviceSpec::integrated_gpu());
    } else {
      AKS_FAIL("unknown device '" << name
                                  << "' (all | r9nano | embedded | igpu)");
    }
  };
  if (spec == "all") {
    add("r9nano");
    add("embedded");
    add("igpu");
    return devices;
  }
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const auto end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) add(spec.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  AKS_CHECK(!devices.empty(), "--devices selected no device");
  return devices;
}

void print_findings(const std::vector<check::Diagnostic>& findings,
                    std::size_t limit) {
  std::size_t shown = 0;
  for (const auto& finding : findings) {
    if (shown++ == limit) {
      std::cout << "  ... " << findings.size() - limit << " more\n";
      break;
    }
    std::cout << "  " << finding.format() << "\n";
  }
}

int run(const Args& args) {
  std::size_t total_findings = 0;

  if (args.lint) {
    const auto devices = devices_from(args.devices);
    const auto& configs = gemm::enumerate_configs();
    const auto report = check::lint_configs(configs, devices);
    std::cout << "[lint] " << report.configs_checked << " configs x "
              << report.devices_checked << " devices: " << report.findings.size()
              << " finding(s)\n";
    if (!report.clean()) {
      std::vector<check::Diagnostic> diags;
      for (const auto& finding : report.findings) {
        diags.push_back(finding.to_diagnostic());
      }
      print_findings(diags, args.verbose ? diags.size() : 10);
    }
    if (!args.report.empty()) {
      if (args.format == "json") {
        check::save_json(args.report, check::to_json(report));
      } else {
        report.save_csv(args.report);
      }
      std::cout << "[lint] report written to " << args.report << "\n";
    }
    total_findings += report.findings.size();
  }

  if (args.registry) {
    check::RegistryCheckOptions options;
    options.shapes = args.shapes;
    options.max_configs = args.max_configs;
    const auto summary = check::check_registry(options);
    std::cout << "[registry] " << summary.configs_checked << " configs, "
              << summary.launches << " checked launches, max |err| "
              << summary.max_abs_error << ": " << summary.findings.size()
              << " finding(s)";
    if (summary.dropped_findings > 0) {
      std::cout << " (+" << summary.dropped_findings << " dropped)";
    }
    std::cout << "\n";
    if (!summary.clean()) {
      print_findings(summary.findings,
                     args.verbose ? summary.findings.size() : 10);
    }
    total_findings += summary.findings.size() + summary.dropped_findings;
  }

  if (args.certify) {
    namespace sym = check::symbolic;
    const auto devices = devices_from(args.devices);
    const auto& configs = gemm::enumerate_configs();
    sym::CertifyOptions options;
    options.max_configs = args.max_configs;
    const auto report = sym::certify_space(configs, devices, options);
    std::cout << "[certify] " << report.configs_checked << " configs x "
              << report.devices_checked << " devices: "
              << report.count(sym::Verdict::safe) << " SAFE, "
              << report.count(sym::Verdict::unsafe) << " UNSAFE, "
              << report.count(sym::Verdict::unknown) << " UNKNOWN\n";
    std::size_t shown = 0;
    const std::size_t limit = args.verbose ? report.certificates.size() : 10;
    for (const auto& cert : report.certificates) {
      if (cert.verdict == sym::Verdict::safe) continue;
      if (shown++ == limit) break;
      std::cout << "  " << sym::to_string(cert.verdict) << " " << cert.config
                << " on " << cert.device << " [" << cert.rule << "] "
                << cert.message << "\n";
    }
    if (!args.report.empty()) {
      if (args.format == "json") {
        check::save_json(args.report, check::to_json(report));
      } else {
        report.save_csv(args.report);
      }
      std::cout << "[certify] report written to " << args.report << "\n";
    }
    total_findings += report.certificates.size() -
                      report.count(sym::Verdict::safe);

    if (args.differential) {
      const auto diff =
          sym::differential_check(report, configs, devices, args.samples);
      std::cout << "[certify] differential: " << diff.configs_sampled
                << " configs sampled, " << diff.replays << " replays, "
                << diff.mismatches.size() << " mismatch(es)\n";
      for (const auto& mismatch : diff.mismatches) {
        std::cout << "  MISMATCH " << mismatch.config << " on "
                  << mismatch.device << ": " << mismatch.detail << "\n";
      }
      total_findings += diff.mismatches.size();
    }
  }

  if (args.locks) {
    check::LockDrillOptions options;
    options.threads = args.threads;
    options.requests_per_thread = args.requests;
    const auto report = check::run_lock_drill(options);
    std::cout << "[locks] " << report.classes.size() << " lock classes, "
              << report.edges.size() << " order edges: "
              << report.cycles.size() << " cycle(s), "
              << report.held_while_blocking.size()
              << " held-while-blocking violation(s)\n";
    for (const auto& cycle : report.cycles) {
      std::cout << "  CYCLE ";
      for (const auto& name : cycle.names) std::cout << name << " -> ";
      std::cout << cycle.names.front() << "\n";
    }
    for (const auto& violation : report.held_while_blocking) {
      std::cout << "  HELD-WHILE-BLOCKING wait on " << violation.blocked_on
                << " holding {";
      for (std::size_t i = 0; i < violation.held.size(); ++i) {
        std::cout << (i > 0 ? ", " : "") << violation.held[i];
      }
      std::cout << "} x" << violation.count << "\n";
    }
    if (args.verbose) {
      for (const auto& edge : report.edges) {
        std::cout << "  " << edge.from_name << " -> " << edge.to_name << " x"
                  << edge.count << "\n";
      }
    }
    if (!args.report.empty()) {
      std::ofstream out(args.report);
      AKS_CHECK(out.is_open(), "cannot open " << args.report);
      if (args.format == "dot") {
        check::lockdep::write_dot(report, out);
      } else {
        check::lockdep::write_json(report, out);
      }
      std::cout << "[locks] report written to " << args.report << "\n";
    }
    total_findings +=
        report.cycles.size() + report.held_while_blocking.size();
  }

  if (args.conv) {
    const auto summary = check::check_conv_lowerings(args.conv_stride);
    std::cout << "[conv] " << summary.configs_checked << " configs, "
              << summary.launches << " checked lowerings, max |err| "
              << summary.max_abs_error << ": " << summary.findings.size()
              << " finding(s)\n";
    if (!summary.clean()) {
      print_findings(summary.findings,
                     args.verbose ? summary.findings.size() : 10);
    }
    total_findings += summary.findings.size() + summary.dropped_findings;
  }

  if (total_findings == 0) {
    std::cout << "akscheck: clean\n";
    return 0;
  }
  std::cout << "akscheck: " << total_findings << " finding(s)\n";
  return 1;
}

void print_usage() {
  std::cerr <<
      "usage: akscheck [certify|locks] [passes] [options]\n"
      "passes (default: --registry --lint):\n"
      "  --registry          checked replay of the GEMM kernel zoo\n"
      "  --lint              config validity vs device execution limits\n"
      "  --conv              checked replay of the conv lowerings\n"
      "  certify             symbolic SAFE/UNSAFE/UNKNOWN certificates for\n"
      "                      every configuration, over all shapes\n"
      "  locks               drive the serving stack concurrently and\n"
      "                      validate the observed lock-order graph\n"
      "options:\n"
      "  --devices all|r9nano,embedded,igpu   lint/certify targets\n"
      "  --shapes MxKxN,...  registry shape corpus (default built-in)\n"
      "  --max-configs N     registry/certify: first N configs (0 = all)\n"
      "  --conv-stride N     conv: every Nth config (default 80)\n"
      "  --differential      certify: cross-check certificates against\n"
      "                      sampled dynamic replays\n"
      "  --samples N         differential: configs to sample (0 = all)\n"
      "  --threads N         locks: worker threads (default 8)\n"
      "  --requests N        locks: requests per thread (default 64)\n"
      "  --report <path>     write the lint/certify/locks report\n"
      "  --format csv|json|dot  report format (default csv; dot is\n"
      "                      locks-only)\n"
      "  --verbose           print every finding / every order edge\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const aks::common::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
