// aks_tune — command-line driver for the automated kernel selection flow.
//
//   aks_tune dataset <out.csv>                  build + save the tuning dataset
//   aks_tune prune   [options]                  choose a kernel set, print it
//   aks_tune train   [options]                  full pipeline; save/emit selector
//   aks_tune select  --selector <file> M K N    query a saved selector
//   aks_tune serve   [options]                  replay the shape corpus
//                                               through the concurrent
//                                               serving layer, print metrics
//                                               (--store <file> persists and
//                                               warm-starts the decisions)
//   aks_tune store   inspect <store>            persistent-store toolbox
//   aks_tune store   export  <store> <out.csv>
//   aks_tune store   import  <in.csv> <store>
//   aks_tune store   merge   <dst> <src>...
//   aks_tune store   compact <store>
//   aks_tune report                             one-page tuning summary
//
// Common options:
//   --dataset <file>     load a dataset saved by `aks_tune dataset` instead
//                        of rebuilding (rebuild is the default; it is fast)
//   --device <name>      r9nano | igpu | embedded       (default r9nano)
//   --method <name>      topn | kmeans | hdbscan | pca-kmeans | dtree | agglo
//   --selector-method    dtree | forest | 1nn | 3nn | linear-svm |
//                        radial-svm | gbm
//   --n <count>          kernel budget (default 8)
//   --out <file>         where `train` writes the selector
//   --emit-code          `train` prints the generated C++ selector
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "check/symbolic/certificate.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/codegen.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "core/serialize.hpp"
#include "dataset/benchmark_runner.hpp"
#include "faults/injector.hpp"
#include "serve/selection_service.hpp"
#include "store/csv_io.hpp"
#include "store/selection_store.hpp"
#include "trace/trace.hpp"

namespace {

using namespace aks;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
  bool emit_code = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--emit-code") {
      args.emit_code = true;
    } else if (token.rfind("--", 0) == 0) {
      AKS_CHECK(i + 1 < argc, "missing value for option " << token);
      args.options[token.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

perf::DeviceSpec device_from(const Args& args) {
  if (const auto file = args.options.find("device-file");
      file != args.options.end()) {
    return perf::DeviceSpec::from_file(file->second);
  }
  const auto it = args.options.find("device");
  const std::string name = it == args.options.end() ? "r9nano" : it->second;
  if (name == "r9nano") return perf::DeviceSpec::amd_r9_nano();
  if (name == "igpu") return perf::DeviceSpec::integrated_gpu();
  if (name == "embedded") return perf::DeviceSpec::embedded_accelerator();
  AKS_FAIL("unknown device '" << name << "' (r9nano | igpu | embedded)");
}

select::PruneMethod prune_method_from(const Args& args) {
  const auto it = args.options.find("method");
  const std::string name = it == args.options.end() ? "dtree" : it->second;
  if (name == "topn") return select::PruneMethod::kTopN;
  if (name == "kmeans") return select::PruneMethod::kKMeans;
  if (name == "hdbscan") return select::PruneMethod::kHdbscan;
  if (name == "pca-kmeans") return select::PruneMethod::kPcaKMeans;
  if (name == "dtree") return select::PruneMethod::kDecisionTree;
  if (name == "agglo") return select::PruneMethod::kAgglomerative;
  AKS_FAIL("unknown prune method '" << name << "'");
}

select::SelectorMethod selector_method_from(const Args& args) {
  const auto it = args.options.find("selector-method");
  const std::string name = it == args.options.end() ? "dtree" : it->second;
  if (name == "dtree") return select::SelectorMethod::kDecisionTree;
  if (name == "forest") return select::SelectorMethod::kRandomForest;
  if (name == "1nn") return select::SelectorMethod::k1Nn;
  if (name == "3nn") return select::SelectorMethod::k3Nn;
  if (name == "linear-svm") return select::SelectorMethod::kLinearSvm;
  if (name == "radial-svm") return select::SelectorMethod::kRadialSvm;
  if (name == "gbm") return select::SelectorMethod::kGradientBoosting;
  AKS_FAIL("unknown selector method '" << name << "'");
}

std::size_t budget_from(const Args& args) {
  const auto it = args.options.find("n");
  if (it == args.options.end()) return 8;
  const int parsed = std::stoi(it->second);
  AKS_CHECK(parsed >= 2 && parsed <= 640, "--n must be in 2..640");
  return static_cast<std::size_t>(parsed);
}

data::PerfDataset dataset_from(const Args& args) {
  const auto it = args.options.find("dataset");
  if (it != args.options.end()) {
    std::cerr << "loading dataset from " << it->second << "\n";
    return data::PerfDataset::load(it->second);
  }
  std::cerr << "building dataset on " << device_from(args).name << "...\n";
  return data::run_model_benchmarks(data::extract_all_shapes(),
                                    device_from(args), {});
}

// Certificate gate for a persistent store: --certify <certify.csv> (a
// report saved by the symbolic verifier) becomes the per-config SAFE mask
// and expected-digest table for `device`, so uncertified or
// stale-certificate records are rejected at load.
store::StoreOptions store_options_from(const Args& args,
                                       const perf::DeviceSpec& device,
                                       bool strict = false) {
  store::StoreOptions options;
  options.strict = strict;
  const auto it = args.options.find("certify");
  if (it == args.options.end()) return options;
  const auto report = check::symbolic::CertifyReport::load_csv(it->second);
  const std::size_t num_configs = gemm::enumerate_configs().size();
  options.certified_mask = report.safe_mask(num_configs, device.name);
  options.cert_digests.assign(num_configs, 0);
  for (const auto& cert : report.certificates) {
    if (cert.device != device.name || cert.config_index >= num_configs) {
      continue;
    }
    // Digest over the verdict-defining fields: regenerating certificates
    // with a different outcome invalidates stored records for the config.
    const std::string row = cert.config + "|" + cert.device + "|" +
                            std::string(to_string(cert.verdict)) + "|" +
                            cert.rule + "|" + cert.precondition;
    options.cert_digests[cert.config_index] = common::fnv1a64(row);
  }
  std::size_t safe = 0;
  for (const bool bit : options.certified_mask) safe += bit ? 1u : 0u;
  std::cerr << "certificate gate: " << safe << "/" << num_configs
            << " configs SAFE on " << device.name << "\n";
  return options;
}

int cmd_store(const Args& args) {
  AKS_CHECK(!args.positional.empty(),
            "usage: aks_tune store inspect|export|import|merge|compact ...");
  const std::string sub = args.positional[0];
  const auto device = device_from(args);

  if (sub == "inspect") {
    AKS_CHECK(args.positional.size() == 2,
              "usage: aks_tune store inspect <store>");
    const store::SelectionStore store(args.positional[1],
                                      store_options_from(args, device));
    const auto stats = store.stats();
    std::cout << args.positional[1] << ": " << stats.selections
              << " selections, " << stats.devices << " devices\n"
              << "  loaded " << stats.records_loaded
              << " records, corrupt tail records "
              << stats.corrupt_tail_records << " (" << stats.bytes_dropped
              << " bytes dropped)\n"
              << "  rejected: malformed " << stats.rejected_malformed
              << ", uncertified " << stats.rejected_uncertified
              << ", stale digest " << stats.rejected_digest << "\n";
    const auto& configs = gemm::enumerate_configs();
    for (const auto& profile : store.devices()) {
      std::cout << "  device " << store::fingerprint_hex(profile.fingerprint)
                << "  "
                << profile.name << "\n";
    }
    for (const auto& record : store.selections()) {
      std::cout << "  " << store::fingerprint_hex(record.device_fingerprint)
                << "  "
                << record.shape.m << "x" << record.shape.k << "x"
                << record.shape.n << " -> "
                << configs[record.config_index].name() << "  ("
                << to_string(record.source) << ", " << record.warmup_seconds
                << "s warm-up, " << record.sweeps << " sweeps)\n";
    }
    return 0;
  }
  if (sub == "export") {
    AKS_CHECK(args.positional.size() == 3,
              "usage: aks_tune store export <store> <out.csv>");
    const store::SelectionStore store(args.positional[1],
                                      store_options_from(args, device));
    std::ofstream out(args.positional[2]);
    AKS_CHECK(out.good(), "cannot open " << args.positional[2]);
    export_store_csv(store, out);
    std::cout << "exported " << store.stats().selections << " selections, "
              << store.stats().devices << " devices to " << args.positional[2]
              << "\n";
    return 0;
  }
  if (sub == "import") {
    AKS_CHECK(args.positional.size() == 3,
              "usage: aks_tune store import <in.csv> <store>");
    std::ifstream in(args.positional[1]);
    AKS_CHECK(in.good(), "cannot open " << args.positional[1]);
    // Imports are validation-strict: a malformed row or an uncertified
    // config is an error, not a silently dropped record.
    store::SelectionStore store(args.positional[2],
                                store_options_from(args, device,
                                                   /*strict=*/true));
    const std::size_t imported = import_store_csv(in, store);
    store.flush();
    std::cout << "imported " << imported << " records into "
              << args.positional[2] << "\n";
    return 0;
  }
  if (sub == "merge") {
    AKS_CHECK(args.positional.size() >= 3,
              "usage: aks_tune store merge <dst> <src>...");
    store::SelectionStore dst(args.positional[1],
                              store_options_from(args, device));
    std::size_t adopted = 0;
    for (std::size_t i = 2; i < args.positional.size(); ++i) {
      const store::SelectionStore src(args.positional[i],
                                      store_options_from(args, device));
      adopted += dst.merge_from(src);
    }
    dst.flush();
    std::cout << "merged " << adopted << " records into " << args.positional[1]
              << " (" << dst.stats().selections << " selections, "
              << dst.stats().devices << " devices)\n";
    return 0;
  }
  if (sub == "compact") {
    AKS_CHECK(args.positional.size() == 2,
              "usage: aks_tune store compact <store>");
    store::SelectionStore store(args.positional[1],
                                store_options_from(args, device));
    store.compact();
    std::cout << "compacted " << args.positional[1] << " to "
              << store.stats().selections << " selections, "
              << store.stats().devices << " devices\n";
    return 0;
  }
  AKS_FAIL("unknown store subcommand '" << sub
                                        << "' (inspect | export | import | "
                                           "merge | compact)");
}

int cmd_dataset(const Args& args) {
  AKS_CHECK(!args.positional.empty(), "usage: aks_tune dataset <out.csv>");
  const auto dataset = dataset_from(args);
  dataset.save(args.positional[0]);
  std::cout << "wrote " << dataset.num_shapes() << " shapes x "
            << dataset.num_configs() << " configs to " << args.positional[0]
            << "\n";
  return 0;
}

int cmd_prune(const Args& args) {
  const auto dataset = dataset_from(args);
  const auto split = dataset.split(0.8, 1);
  const auto pruner = select::make_pruner(prune_method_from(args));
  const auto configs = pruner->prune(split.train, budget_from(args));
  std::cout << "method: " << pruner->name() << ", budget: " << configs.size()
            << ", test ceiling: "
            << 100.0 * select::pruning_ceiling(split.test, configs) << "%\n";
  for (const auto& config : select::configs_of(configs)) {
    std::cout << "  " << config.name() << "\n";
  }
  return 0;
}

int cmd_train(const Args& args) {
  const auto dataset = dataset_from(args);
  select::PipelineOptions options;
  options.num_configs = budget_from(args);
  options.prune_method = prune_method_from(args);
  options.selector_method = selector_method_from(args);
  const auto result = select::run_pipeline(dataset, options);

  std::cout << "pruner " << select::to_string(options.prune_method)
            << " + selector " << select::to_string(options.selector_method)
            << " @ " << options.num_configs << " kernels\n"
            << "  test ceiling:   " << 100.0 * result.ceiling << "%\n"
            << "  test achieved:  " << 100.0 * result.achieved << "%\n"
            << "  compiled kernels shipped: " << result.compiled_kernels
            << "\n";

  const auto* tree =
      dynamic_cast<const select::DecisionTreeSelector*>(result.selector.get());
  const auto out = args.options.find("out");
  if (out != args.options.end()) {
    AKS_CHECK(tree != nullptr,
              "--out only supports the decision-tree selector");
    select::save_selector(*tree, out->second);
    std::cout << "  selector saved to " << out->second << "\n";
  }
  if (args.emit_code) {
    AKS_CHECK(tree != nullptr,
              "--emit-code only supports the decision-tree selector");
    std::cout << select::generate_selector_code(*tree);
  }
  return 0;
}

int cmd_select(const Args& args) {
  const auto file = args.options.find("selector");
  AKS_CHECK(file != args.options.end() && args.positional.size() == 3,
            "usage: aks_tune select --selector <file> M K N");
  const auto selector = select::load_selector(file->second);
  gemm::GemmShape shape;
  shape.m = std::stoull(args.positional[0]);
  shape.k = std::stoull(args.positional[1]);
  shape.n = std::stoull(args.positional[2]);
  std::cout << selector.select_config(shape).name() << "\n";
  return 0;
}

// Replays the extracted shape corpus through serve::SelectionService with
// --threads concurrent clients x --repeats passes, serving either the online
// tuner (--serve-mode online, default) or a freshly trained selector
// (--serve-mode learned), and prints the service metrics as CSV
// (--metrics-out <file> to redirect).
int cmd_serve(const Args& args) {
  std::size_t threads = 4;
  if (const auto it = args.options.find("threads"); it != args.options.end()) {
    const int parsed = std::stoi(it->second);
    AKS_CHECK(parsed >= 1 && parsed <= 256, "--threads must be in 1..256");
    threads = static_cast<std::size_t>(parsed);
  }
  std::size_t repeats = 20;
  if (const auto it = args.options.find("repeats"); it != args.options.end()) {
    const int parsed = std::stoi(it->second);
    AKS_CHECK(parsed >= 1, "--repeats must be positive");
    repeats = static_cast<std::size_t>(parsed);
  }
  // 0 (default) = per-request select(); N >= 1 = clients resolve their
  // shuffled pass in select_batch() chunks of N, like a framework picking
  // kernels for a whole graph at once.
  std::size_t batch_size = 0;
  if (const auto it = args.options.find("batch-size");
      it != args.options.end()) {
    const int parsed = std::stoi(it->second);
    AKS_CHECK(parsed >= 0, "--batch-size must be >= 0");
    batch_size = static_cast<std::size_t>(parsed);
  }
  const auto mode_it = args.options.find("serve-mode");
  const std::string mode =
      mode_it == args.options.end() ? "online" : mode_it->second;
  AKS_CHECK(mode == "online" || mode == "learned",
            "--serve-mode must be online | learned");

  const auto dataset = dataset_from(args);
  const auto split = dataset.split(0.8, 1);
  const auto pruner = select::make_pruner(prune_method_from(args));
  const auto allowed = pruner->prune(split.train, budget_from(args));

  std::vector<gemm::GemmShape> corpus;
  for (const auto& lowered : data::extract_all_shapes()) {
    corpus.push_back(lowered.shape);
  }

  const auto device = device_from(args);
  std::unique_ptr<store::SelectionStore> store;
  if (const auto it = args.options.find("store"); it != args.options.end()) {
    store = std::make_unique<store::SelectionStore>(
        it->second, store_options_from(args, device));
  }

  // Tracing covers everything from here on — warm start, the client loops,
  // provisional refreshes and the final store flush all land in one file.
  std::unique_ptr<trace::TraceSession> trace_session;
  const auto trace_out = args.options.find("trace-out");
  if (trace_out != args.options.end()) {
    trace::TraceOptions trace_options;
    if (const auto kb = args.options.find("trace-buffer-kb");
        kb != args.options.end()) {
      const int parsed = std::stoi(kb->second);
      AKS_CHECK(parsed >= 1, "--trace-buffer-kb must be positive");
      trace_options.buffer_bytes_per_thread =
          static_cast<std::size_t>(parsed) * 1024;
    }
    trace_session = std::make_unique<trace::TraceSession>(trace_options);
  }

  const perf::TimingModel timing(device, 0.03, 42);
  select::OnlineTuner tuner(
      allowed, [&](const gemm::KernelConfig& config,
                   const gemm::GemmShape& shape) {
        return timing.best_of(config, shape, 5);
      });
  std::unique_ptr<select::KernelSelector> learned;
  std::unique_ptr<serve::SelectionService> service;
  serve::ServiceOptions service_options;
  if (faults::plan_active()) {
    // Under an installed fault plan, serve the degradation contract: a
    // failed warm-up answers with the tuner's guaranteed fallback instead
    // of surfacing the error to clients.
    service_options.fallback = tuner.fallback_config();
  }
  if (mode == "learned") {
    learned = std::make_unique<select::DecisionTreeSelector>();
    learned->fit(split.train, allowed);
    service = std::make_unique<serve::SelectionService>(*learned,
                                                        service_options);
  } else {
    service = std::make_unique<serve::SelectionService>(tuner,
                                                        service_options);
  }
  if (store) {
    const std::size_t seeded = service->warm_start(*store, device);
    std::cerr << "warm start: " << seeded << " shapes pre-seeded from "
              << store->path() << "\n";
  }

  std::cerr << "serving " << corpus.size() << " shapes x " << repeats
            << " repeats on " << threads << " threads (" << mode;
  if (batch_size > 0) std::cerr << ", batches of " << batch_size;
  std::cerr << ")...\n";
  common::Timer timer;
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      common::Rng rng(0xab5 + t);
      std::vector<std::size_t> order(corpus.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::vector<gemm::GemmShape> batch;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        rng.shuffle(order);
        if (batch_size == 0) {
          for (const std::size_t s : order) (void)service->select(corpus[s]);
          continue;
        }
        for (std::size_t at = 0; at < order.size(); at += batch_size) {
          batch.clear();
          const std::size_t end = std::min(at + batch_size, order.size());
          for (std::size_t i = at; i < end; ++i) {
            batch.push_back(corpus[order[i]]);
          }
          (void)service->select_batch(batch);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds = timer.elapsed_seconds();

  std::size_t refreshed = 0;
  if (store) {
    // Cross-device priors served during the run get their local re-tune
    // now, off the client path, before the decisions are persisted.
    refreshed = service->refresh_provisional();
  }
  const auto stats = service->stats();
  const auto total = static_cast<double>(threads * repeats * corpus.size());
  std::cout << "served " << static_cast<std::uint64_t>(total) << " selects in "
            << seconds << "s (" << total / seconds << "/s)\n"
            << "  hits " << stats.hits << ", misses " << stats.misses
            << ", coalesced waits " << stats.coalesced_waits
            << ", duplicate sweeps " << stats.duplicate_sweeps << "\n"
            << "  cached shapes " << stats.cached_shapes
            << ", warm-up seconds " << stats.warmup_seconds << "\n";
  if (batch_size > 0) {
    std::cout << "  batches " << stats.batch_requests << ", batched shapes "
              << stats.batch_shapes << ", deduplicated " << stats.batch_dedup
              << ", wave-warmed " << stats.batch_wave_shapes << "\n";
  }
  if (store) {
    std::cout << "  store: preloaded " << stats.preloaded
              << ", transfer priors " << stats.transfer_priors
              << ", refreshed " << refreshed;
    try {
      const std::size_t flushed = store->flush();
      std::cout << ", flushed " << flushed << " records\n";
    } catch (const common::Error& e) {
      // Degradation contract: losing warm-start persistence must never
      // fail the serving run — the decisions already served stand.
      std::cout << ", flush FAILED (kept in memory)\n";
      std::cerr << "warning: store flush failed: " << e.what() << "\n";
    }
  }
  if (faults::plan_active()) {
    std::cout << "  warm-up failures " << stats.warmup_failures
              << ", fallbacks served " << stats.fallbacks_served
              << ", quarantined configs " << tuner.quarantined().size()
              << ", degraded selects " << tuner.degraded_selects() << "\n"
              << "  fault probes " << faults::probes_total()
              << ", faults injected " << faults::faults_injected_total()
              << "\n";
  }
  if (const auto out = args.options.find("metrics-out");
      out != args.options.end()) {
    std::ofstream file(out->second);
    AKS_CHECK(file.good(), "cannot open " << out->second);
    service->metrics().write_csv(file);
    std::cout << "  metrics written to " << out->second << "\n";
  } else {
    service->metrics().write_csv(std::cout);
  }
  if (trace_session) {
    trace_session->stop();
    {
      std::ofstream file(trace_out->second);
      AKS_CHECK(file.good(), "cannot open " << trace_out->second);
      trace_session->write_chrome_json(file);
    }
    const auto trace_stats = trace_session->stats();
    std::cout << "  trace: " << trace_stats.recorded << " events from "
              << trace_stats.threads << " threads ("
              << trace_stats.dropped
              << " dropped) written to " << trace_out->second << "\n";
    if (const auto summary = args.options.find("trace-summary-out");
        summary != args.options.end()) {
      std::ofstream file(summary->second);
      AKS_CHECK(file.good(), "cannot open " << summary->second);
      trace_session->write_span_summary_csv(file);
      std::cout << "  trace summary written to " << summary->second << "\n";
    }
  }
  return stats.duplicate_sweeps == 0 ? 0 : 1;
}

int cmd_report(const Args& args) {
  const auto dataset = dataset_from(args);
  const auto counts = dataset.optimal_counts();
  std::size_t winners = 0;
  for (const auto c : counts) winners += c > 0 ? 1u : 0u;
  std::cout << "dataset: " << dataset.num_shapes() << " shapes, "
            << dataset.num_configs() << " configs, " << winners
            << " distinct winners\n";
  for (const std::size_t n : {std::size_t{4}, std::size_t{8}, std::size_t{15}}) {
    select::PipelineOptions options;
    options.num_configs = n;
    const auto result = select::run_pipeline(dataset, options);
    std::cout << "  " << n << " kernels: ceiling "
              << 100.0 * result.ceiling << "%, tree selector "
              << 100.0 * result.achieved << "%\n";
  }
  return 0;
}

void print_usage() {
  std::cerr <<
      "usage: aks_tune <command> [options]\n"
      "commands:\n"
      "  dataset <out.csv>   build and save the tuning dataset\n"
      "  prune               choose a kernel set and print it\n"
      "  train               full pipeline; --out/--emit-code to deploy\n"
      "  select --selector <file> M K N\n"
      "  serve               replay the corpus through the serving layer\n"
      "                      (--threads N --repeats R --serve-mode\n"
      "                      online|learned --metrics-out <csv>\n"
      "                      --batch-size N to resolve each pass through\n"
      "                      select_batch() in chunks of N (0 = per-request\n"
      "                      select(), the default)\n"
      "                      --store <file> to warm-start from / persist to\n"
      "                      a selection store; --trace-out <json> records a\n"
      "                      Chrome/Perfetto trace of the run, with\n"
      "                      --trace-buffer-kb N per-thread buffering and\n"
      "                      --trace-summary-out <csv> per-span quantiles)\n"
      "  store inspect <store>          persistent selection-store toolbox\n"
      "  store export <store> <out.csv>\n"
      "  store import <in.csv> <store>\n"
      "  store merge <dst> <src>...\n"
      "  store compact <store>\n"
      "  report              one-page tuning summary\n"
      "options: --dataset <csv> --device r9nano|igpu|embedded\n"
      "         --device-file <key=value file> (see DeviceSpec::from_file)\n"
      "         --method topn|kmeans|hdbscan|pca-kmeans|dtree|agglo\n"
      "         --selector-method dtree|forest|1nn|3nn|linear-svm|radial-svm|gbm\n"
      "         --n <budget> --out <file> --emit-code\n"
      "         --fault-plan <spec>  inject deterministic faults (canned:\n"
      "                      none|timing-noise-heavy|launch-failure-heavy|\n"
      "                      mixed, optional @rate, or key=value pairs —\n"
      "                      see DESIGN.md; overrides AKS_FAULT_PLAN)\n"
      "         --certify <certify.csv>  gate store records on symbolic\n"
      "                      SAFE certificates (see `aks_check certify`)\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    // Install the fault plan before any command runs so every layer
    // (dataset runner, tuner, serving) sees the same plan for the whole
    // process; takes precedence over the AKS_FAULT_PLAN environment plan.
    std::optional<aks::faults::ScopedFaultPlan> fault_plan;
    if (const auto it = args.options.find("fault-plan");
        it != args.options.end()) {
      const auto plan = aks::faults::FaultPlan::parse(it->second);
      fault_plan.emplace(plan);
      std::cerr << "fault plan: " << plan.to_string() << "\n";
    }
    if (args.command == "dataset") return cmd_dataset(args);
    if (args.command == "prune") return cmd_prune(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "select") return cmd_select(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "store") return cmd_store(args);
    if (args.command == "report") return cmd_report(args);
    print_usage();
    return args.command.empty() ? 1 : 2;
  } catch (const aks::common::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
