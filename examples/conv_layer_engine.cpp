// Scenario: running real convolution layers through the deployed engine.
//
// Demonstrates the full deployment stack: a selector trained by the tuning
// pipeline drives the ConvEngine, which picks the lowering (im2col vs
// Winograd) and the kernel per layer, then actually executes the
// convolution on the host runtime — verified against the direct reference.
//
// Build & run:  ./build/examples/conv_layer_engine
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "conv/direct.hpp"
#include "core/conv_engine.hpp"
#include "core/pipeline.hpp"
#include "dataset/benchmark_runner.hpp"
#include "syclrt/queue.hpp"

namespace {

aks::conv::ConvShape layer(int spatial, int in_c, int out_c, int kernel,
                           int stride, int padding) {
  aks::conv::ConvShape s;
  s.in_height = s.in_width = spatial;
  s.in_channels = in_c;
  s.out_channels = out_c;
  s.kernel = kernel;
  s.stride = stride;
  s.padding = padding;
  return s;
}

}  // namespace

int main() {
  using namespace aks;

  std::cout << "Training the kernel selector (8-kernel library)...\n";
  const auto dataset = data::build_paper_dataset();
  select::PipelineOptions options;
  options.num_configs = 8;
  auto pipeline = select::run_pipeline(dataset, options);

  const select::ConvEngine engine(
      std::shared_ptr<const select::KernelSelector>(
          std::move(pipeline.selector)),
      perf::CostModel(perf::DeviceSpec::amd_r9_nano()));

  // A miniature VGG/MobileNet-flavoured layer mix (small spatial sizes so
  // the host execution stays fast).
  struct NamedLayer {
    const char* name;
    conv::ConvShape shape;
  };
  const NamedLayer layers[] = {
      {"vgg-ish 3x3", layer(16, 16, 32, 3, 1, 1)},
      {"stem 3x3/s2", layer(16, 3, 24, 3, 2, 1)},
      {"pointwise 1x1", layer(14, 48, 24, 1, 1, 0)},
      {"deep 3x3", layer(8, 64, 64, 3, 1, 1)},
  };

  syclrt::Queue queue;
  common::Rng rng(11);
  std::cout << "\n" << common::pad_right("layer", 16)
            << common::pad_right("gemm shape", 16)
            << common::pad_right("lowering", 10)
            << common::pad_right("kernel", 18) << "max error\n";
  bool all_ok = true;
  for (const auto& [name, shape] : layers) {
    std::vector<float> input(shape.input_size());
    std::vector<float> filter(shape.filter_size());
    for (auto& v : input) v = static_cast<float>(rng.uniform(-1, 1));
    for (auto& v : filter) v = static_cast<float>(rng.uniform(-1, 1));

    std::vector<float> output(shape.output_size());
    const auto plan = engine.run(queue, input, filter, output, shape);

    std::vector<float> expected(shape.output_size());
    conv::direct_conv2d(input, filter, expected, shape);
    float max_error = 0.0f;
    for (std::size_t i = 0; i < output.size(); ++i) {
      max_error = std::max(max_error, std::abs(output[i] - expected[i]));
    }
    all_ok = all_ok && max_error < 1e-2f;

    std::cout << common::pad_right(name, 16)
              << common::pad_right(plan.gemm_shape.to_string(), 16)
              << common::pad_right(data::to_string(plan.transform), 10)
              << common::pad_right(plan.config.name(), 18) << max_error
              << "\n";
  }
  std::cout << (all_ok ? "\nall layers verified against the direct reference\n"
                       : "\nERROR: mismatch vs direct reference\n");
  return all_ok ? 0 : 1;
}
