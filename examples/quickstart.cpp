// Quickstart: the complete automated-kernel-selection workflow in one file.
//
//   1. extract GEMM shapes from the network zoo,
//   2. benchmark all 640 kernel configurations on the device model,
//   3. prune to an 8-kernel library with the decision-tree pruner,
//   4. train a decision-tree runtime selector,
//   5. use the selector to pick and actually run a kernel for a new shape.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "core/pipeline.hpp"
#include "dataset/benchmark_runner.hpp"
#include "gemm/reference.hpp"
#include "gemm/registry.hpp"
#include "syclrt/queue.hpp"

int main() {
  using namespace aks;

  // Steps 1-2: the tuning dataset (shapes x configurations scores).
  std::cout << "Building the tuning dataset (172 shapes x 640 configs)...\n";
  const data::PerfDataset dataset = data::build_paper_dataset();

  // Steps 3-4: prune and train in one call.
  select::PipelineOptions options;
  options.num_configs = 8;
  options.prune_method = select::PruneMethod::kDecisionTree;
  options.selector_method = select::SelectorMethod::kDecisionTree;
  const select::PipelineResult result = select::run_pipeline(dataset, options);

  std::cout << "Shipping " << result.configs.size() << " configurations ("
            << result.compiled_kernels << " compiled kernels instead of "
            << gemm::registry_size() << "):\n";
  for (const auto& config : select::configs_of(result.configs)) {
    std::cout << "  " << config.name() << "\n";
  }
  std::cout << "Selection ceiling on held-out shapes: "
            << 100.0 * result.ceiling << "% of optimal\n"
            << "Trained selector achieves:            "
            << 100.0 * result.achieved << "% of optimal\n\n";

  // Step 5: run a GEMM the selector has never seen.
  const gemm::GemmShape shape{300, 200, 150};
  const gemm::KernelConfig config = result.selector->select_config(shape);
  std::cout << "For C[" << shape.m << "x" << shape.n << "] = A[" << shape.m
            << "x" << shape.k << "] * B[" << shape.k << "x" << shape.n
            << "] the selector picks: " << config.name() << "\n";

  std::vector<float> a(shape.m * shape.k, 0.5f);
  std::vector<float> b(shape.k * shape.n, 2.0f);
  std::vector<float> c(shape.m * shape.n);
  syclrt::Queue queue;
  const auto event = gemm::launch_gemm(queue, config, a, b, c, shape);

  // Verify against the scalar reference.
  std::vector<float> expected(c.size());
  gemm::reference_gemm(a, b, expected, shape);
  float max_error = 0.0f;
  for (std::size_t i = 0; i < c.size(); ++i) {
    max_error = std::max(max_error, std::abs(c[i] - expected[i]));
  }
  std::cout << "Kernel ran " << event.group_count << " work-groups in "
            << event.elapsed_seconds * 1e3 << " ms on the host runtime; "
            << "max error vs reference = " << max_error << "\n";
  return max_error < 1e-3f ? 0 : 1;
}
