// Deployment: emit a dependency-free C++ kernel selector.
//
// Section IV of the paper argues decision trees are the right deployment
// vehicle because they compile down to nested if statements. This example
// runs the full pipeline and prints the generated translation unit — paste
// it into a compute library and call select_gemm_kernel(m, k, n) with zero
// runtime dependencies on the tuning stack.
//
// Build & run:  ./build/examples/generate_selector [num_kernels]
//               (writes the generated code to stdout)
#include <cstdlib>
#include <iostream>

#include "core/codegen.hpp"
#include "core/pipeline.hpp"
#include "dataset/benchmark_runner.hpp"

int main(int argc, char** argv) {
  using namespace aks;

  std::size_t num_kernels = 6;
  if (argc > 1) {
    const int parsed = std::atoi(argv[1]);
    if (parsed < 2 || parsed > 640) {
      std::cerr << "usage: " << argv[0] << " [num_kernels in 2..640]\n";
      return 1;
    }
    num_kernels = static_cast<std::size_t>(parsed);
  }

  const auto dataset = data::build_paper_dataset();
  select::PipelineOptions options;
  options.num_configs = num_kernels;
  options.prune_method = select::PruneMethod::kDecisionTree;
  options.selector_method = select::SelectorMethod::kDecisionTree;
  const auto result = select::run_pipeline(dataset, options);

  const auto* tree =
      dynamic_cast<const select::DecisionTreeSelector*>(result.selector.get());
  if (tree == nullptr) {
    std::cerr << "pipeline did not produce a decision-tree selector\n";
    return 1;
  }

  std::cerr << "// Selector trained on " << dataset.num_shapes()
            << " shapes; achieves " << 100.0 * result.achieved
            << "% of optimal on held-out shapes (ceiling "
            << 100.0 * result.ceiling << "%).\n";
  std::cout << select::generate_selector_code(*tree);
  return 0;
}
