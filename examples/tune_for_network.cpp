// Scenario: tuning a compute library for ONE network on ONE device.
//
// A team deploying MobileNetV2 on an embedded accelerator wants a minimal
// kernel library. This example tunes on that network's own GEMM shapes and
// device model, prunes to 5 kernels, and reports the per-layer choice plus
// the speedup over shipping a single fixed "default" kernel.
//
// Build & run:  ./build/examples/tune_for_network
#include <iostream>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "core/pipeline.hpp"
#include "dataset/benchmark_runner.hpp"

int main() {
  using namespace aks;

  // Lower only MobileNetV2, at batch sizes 1 and 8 (edge inference).
  data::ExtractionOptions extraction;
  extraction.mobilenet_batches = {1, 8};
  const auto per_network = data::extract_paper_shapes(extraction);
  const auto& mobilenet = per_network[2];
  std::cout << "MobileNetV2 lowers to " << mobilenet.shapes.size()
            << " distinct GEMM shapes at batch sizes {1, 8}\n";

  // Benchmark on the embedded accelerator model.
  const auto device = perf::DeviceSpec::embedded_accelerator();
  std::cout << "Tuning for: " << device.name << " ("
            << device.peak_flops() * 1e-9 << " GFLOP/s peak, "
            << device.dram_bw_gbps << " GB/s)\n\n";
  const auto dataset = data::run_model_benchmarks(mobilenet.shapes, device, {});

  // Prune to a 5-kernel library and train the runtime selector.
  select::PipelineOptions options;
  options.num_configs = 5;
  options.train_fraction = 0.75;
  const auto result = select::run_pipeline(dataset, options);

  std::cout << "Shipped kernels (" << result.compiled_kernels
            << " compiled instantiations):\n";
  for (const auto& config : select::configs_of(result.configs)) {
    std::cout << "  " << config.name() << "\n";
  }
  std::cout << "\nPer-layer selection (first 12 layers):\n";
  std::cout << common::pad_right("layer", 22) << common::pad_right("shape", 20)
            << common::pad_right("transform", 10) << "chosen kernel\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(12, dataset.num_shapes());
       ++i) {
    const auto& item = dataset.shapes()[i];
    const auto config = result.selector->select_config(item.shape);
    std::cout << common::pad_right(item.layer, 22)
              << common::pad_right(item.shape.to_string(), 20)
              << common::pad_right(data::to_string(item.transform), 10)
              << config.name() << "\n";
  }

  // Compare against shipping one fixed default kernel (the best single
  // config by mean score) for every layer.
  const auto means = dataset.mean_scores();
  const std::size_t default_config = common::argmax(means);
  std::vector<double> selected_scores;
  std::vector<double> default_scores;
  for (std::size_t r = 0; r < dataset.num_shapes(); ++r) {
    const std::size_t chosen =
        result.selector->select(dataset.features().row(r));
    selected_scores.push_back(dataset.scores()(r, chosen));
    default_scores.push_back(dataset.scores()(r, default_config));
  }
  const double selected = common::geometric_mean(selected_scores);
  const double fixed = common::geometric_mean(default_scores);
  std::cout << "\nGeomean % of optimal across all layers:\n"
            << "  single fixed kernel ("
            << gemm::enumerate_configs()[default_config].name()
            << "): " << 100.0 * fixed << "%\n"
            << "  5-kernel library + selector:      " << 100.0 * selected
            << "%\n"
            << "  => " << selected / fixed
            << "x geomean speedup from automated selection\n";
  return selected >= fixed ? 0 : 1;
}
