// Scenario: tuning one kernel with a limited benchmarking budget.
//
// A developer has a new GEMM shape and can afford ~60 benchmark runs, not
// 640. This example runs the budgeted search strategies against the device
// model, prints what each found and how it compares to brute force, and
// shows the best-so-far trajectory of the winner.
//
// Build & run:  ./build/examples/search_strategies [M K N] [budget]
#include <cstdlib>
#include <iostream>

#include "common/strings.hpp"
#include "perfmodel/cost_model.hpp"
#include "tune/search.hpp"

int main(int argc, char** argv) {
  using namespace aks;

  gemm::GemmShape shape{3136, 576, 128};
  std::size_t budget = 60;
  if (argc >= 4) {
    shape.m = std::strtoull(argv[1], nullptr, 10);
    shape.k = std::strtoull(argv[2], nullptr, 10);
    shape.n = std::strtoull(argv[3], nullptr, 10);
  }
  if (argc >= 5) budget = std::strtoull(argv[4], nullptr, 10);

  const perf::CostModel model(perf::DeviceSpec::amd_r9_nano());
  const tune::Objective objective = [&](const gemm::KernelConfig& config) {
    return model.predict_seconds(config, shape);
  };

  std::cout << "Tuning GEMM " << shape.to_string() << " with a budget of "
            << budget << " evaluations (space: 640)\n\n";

  const auto truth = tune::exhaustive_search(objective);
  std::cout << common::pad_right("brute force (640 evals):", 28)
            << truth.best.name() << "  "
            << truth.best_value * 1e6 << " us\n";

  const auto report = [&](const char* label, const tune::SearchResult& r) {
    std::cout << common::pad_right(std::string(label) + " (" +
                                       std::to_string(r.evaluations) +
                                       " evals):",
                                   28)
              << r.best.name() << "  " << r.best_value * 1e6 << " us  ("
              << 100.0 * truth.best_value / r.best_value << "% of optimal)\n";
  };

  report("random search", tune::random_search(objective, budget, 1));
  tune::AnnealingOptions aopts;
  aopts.budget = budget;
  aopts.seed = 1;
  report("simulated annealing", tune::simulated_annealing(objective, aopts));
  tune::EvolutionOptions eopts;
  eopts.budget = budget;
  eopts.seed = 1;
  const auto evolved = tune::evolutionary_search(objective, eopts);
  report("evolutionary", evolved);

  std::cout << "\nEvolutionary best-so-far trajectory (us):\n  ";
  for (std::size_t i = 0; i < evolved.trajectory.size(); i += 8) {
    std::cout << common::format_fixed(evolved.trajectory[i] * 1e6, 1) << " ";
  }
  std::cout << "-> " << common::format_fixed(evolved.best_value * 1e6, 1)
            << "\n";
  return 0;
}
