// Dataset exploration: where the GEMM shapes come from and what the
// configuration space looks like — the Section II story, interactively.
//
// Build & run:  ./build/examples/explore_dataset
#include <iostream>
#include <map>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "dataset/benchmark_runner.hpp"
#include "gemm/config.hpp"
#include "gemm/registry.hpp"
#include "ml/decision_tree.hpp"
#include "perfmodel/device_spec.hpp"

int main() {
  using namespace aks;

  // --- Shape extraction ---------------------------------------------------
  std::cout << "GEMM shapes extracted from the network zoo\n"
            << "------------------------------------------\n";
  const auto per_network = data::extract_paper_shapes();
  std::size_t total = 0;
  for (const auto& entry : per_network) {
    std::map<std::string, std::size_t> by_transform;
    gemm::GemmShape largest{0, 0, 0};
    for (const auto& item : entry.shapes) {
      ++by_transform[data::to_string(item.transform)];
      if (item.shape.flops() > largest.flops()) largest = item.shape;
    }
    std::cout << common::pad_right(entry.network, 14) << entry.shapes.size()
              << " shapes (";
    bool first = true;
    for (const auto& [transform, count] : by_transform) {
      if (!first) std::cout << ", ";
      std::cout << count << " " << transform;
      first = false;
    }
    std::cout << "), largest " << largest.to_string() << " = "
              << largest.flops() * 1e-9 << " GFLOP\n";
    total += entry.shapes.size();
  }
  std::cout << "total: " << total << " shapes (paper: 170)\n\n";

  // --- Configuration space -------------------------------------------------
  std::cout << "Kernel configuration space\n"
            << "--------------------------\n"
            << "tile sizes {1,2,4,8}^3 -> " << gemm::registry_size()
            << " compiled kernels; x" << gemm::work_group_shapes().size()
            << " work-group shapes -> " << gemm::enumerate_configs().size()
            << " configurations\n";
  // Register pressure across the space (the occupancy driver).
  std::vector<double> regs;
  for (const auto& config : gemm::enumerate_configs()) {
    regs.push_back(config.registers_per_item());
  }
  std::cout << "registers per work-item: min " << common::min_value(regs)
            << ", median " << common::median(regs) << ", max "
            << common::max_value(regs) << "\n\n";

  // --- Performance structure ----------------------------------------------
  std::cout << "Performance structure on the R9 Nano model\n"
            << "------------------------------------------\n";
  const auto dataset = data::build_paper_dataset();
  const auto counts = dataset.optimal_counts();
  std::size_t winners = 0;
  for (const auto c : counts) winners += c > 0 ? 1u : 0u;
  std::cout << winners << " of 640 configurations win at least one shape.\n";

  // Which compile-time kernels would a library need to cover all winners?
  std::vector<gemm::KernelConfig> winning;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) winning.push_back(gemm::enumerate_configs()[c]);
  }
  std::cout << "Covering every winner outright would require "
            << gemm::count_compiled_kernels(winning)
            << " compiled kernels — the library-size problem the paper's\n"
               "pruning pipeline exists to solve.\n\n";

  // Per-network difficulty: geomean of the single best fixed config.
  std::cout << "Best single fixed configuration per network (geomean % of"
               " optimal):\n";
  std::map<std::string, std::vector<std::size_t>> rows_by_network;
  for (std::size_t r = 0; r < dataset.num_shapes(); ++r) {
    rows_by_network[dataset.shapes()[r].network].push_back(r);
  }
  for (const auto& [network, rows] : rows_by_network) {
    double best_geomean = 0.0;
    std::size_t best_config = 0;
    for (std::size_t c = 0; c < dataset.num_configs(); ++c) {
      std::vector<double> scores;
      scores.reserve(rows.size());
      for (const std::size_t r : rows) scores.push_back(dataset.scores()(r, c));
      const double g = common::geometric_mean(scores);
      if (g > best_geomean) {
        best_geomean = g;
        best_config = c;
      }
    }
    std::cout << "  " << common::pad_right(network, 14)
              << gemm::enumerate_configs()[best_config].name() << "  "
              << 100.0 * best_geomean << "%\n";
  }
  // What drives selection? Train the Table-I decision tree and read its
  // impurity-based feature importances.
  const auto split = dataset.split(0.8, 1);
  std::vector<int> labels(split.train.num_shapes());
  for (std::size_t r = 0; r < split.train.num_shapes(); ++r) {
    labels[r] = static_cast<int>(split.train.best_config(r) % 64);
  }
  ml::DecisionTreeClassifier tree;
  tree.fit(split.train.features(), labels);
  const auto importances = ml::feature_importances(tree.nodes(), 3);
  std::cout << "\nFeature importances of a best-kernel decision tree:\n"
            << "  M (rows):    " << 100.0 * importances[0] << "%\n"
            << "  K (depth):   " << 100.0 * importances[1] << "%\n"
            << "  N (columns): " << 100.0 * importances[2] << "%\n";

  // Peak throughput context for the dataset (the "flops attained" record).
  double best_gflops = 0.0;
  for (std::size_t r = 0; r < dataset.num_shapes(); ++r) {
    best_gflops = std::max(best_gflops, dataset.gflops(r, dataset.best_config(r)));
  }
  std::cout << "\nBest modelled throughput in the dataset: " << best_gflops
            << " GFLOP/s (device peak: "
            << perf::DeviceSpec::amd_r9_nano().peak_flops() * 1e-9
            << ")\n";

  std::cout << "\n(no single kernel serves everything well - hence runtime"
               " selection)\n";
  return 0;
}
