// Umbrella header: the whole AKS public API.
//
// Fine-grained includes are preferred inside this repo; downstream users
// who just want the workflow can include this one header.
#pragma once

// Substrates (bottom-up).
#include "common/csv.hpp"        // IWYU pragma: export
#include "common/error.hpp"      // IWYU pragma: export
#include "common/matrix.hpp"     // IWYU pragma: export
#include "common/rng.hpp"        // IWYU pragma: export
#include "common/stats.hpp"      // IWYU pragma: export
#include "faults/fault_plan.hpp" // IWYU pragma: export
#include "faults/injector.hpp"   // IWYU pragma: export
#include "syclrt/buffer.hpp"     // IWYU pragma: export
#include "syclrt/queue.hpp"      // IWYU pragma: export
#include "gemm/config.hpp"       // IWYU pragma: export
#include "gemm/hierarchical_kernel.hpp"  // IWYU pragma: export
#include "gemm/reference.hpp"    // IWYU pragma: export
#include "gemm/registry.hpp"     // IWYU pragma: export
#include "conv/direct.hpp"       // IWYU pragma: export
#include "conv/im2col.hpp"       // IWYU pragma: export
#include "conv/winograd.hpp"     // IWYU pragma: export
#include "perfmodel/cost_model.hpp"   // IWYU pragma: export
#include "perfmodel/device_spec.hpp"  // IWYU pragma: export
#include "dataset/benchmark_runner.hpp"  // IWYU pragma: export
#include "dataset/extract.hpp"   // IWYU pragma: export
#include "dataset/networks.hpp"  // IWYU pragma: export
#include "dataset/perf_dataset.hpp"  // IWYU pragma: export

// ML stack.
#include "ml/agglomerative.hpp"      // IWYU pragma: export
#include "ml/cluster_metrics.hpp"    // IWYU pragma: export
#include "ml/decision_tree.hpp"      // IWYU pragma: export
#include "ml/gradient_boosting.hpp"  // IWYU pragma: export
#include "ml/hdbscan.hpp"            // IWYU pragma: export
#include "ml/kmeans.hpp"             // IWYU pragma: export
#include "ml/knn.hpp"                // IWYU pragma: export
#include "ml/metrics.hpp"            // IWYU pragma: export
#include "ml/model_selection.hpp"    // IWYU pragma: export
#include "ml/pca.hpp"                // IWYU pragma: export
#include "ml/random_forest.hpp"      // IWYU pragma: export
#include "ml/scaler.hpp"             // IWYU pragma: export
#include "ml/svm.hpp"                // IWYU pragma: export

// Search strategies.
#include "tune/extended_space.hpp"  // IWYU pragma: export
#include "tune/search.hpp"          // IWYU pragma: export

// The kernel-selection core.
#include "core/codegen.hpp"            // IWYU pragma: export
#include "core/conv_engine.hpp"        // IWYU pragma: export
#include "core/evaluation.hpp"         // IWYU pragma: export
#include "core/network_estimator.hpp"  // IWYU pragma: export
#include "core/online.hpp"             // IWYU pragma: export
#include "core/pipeline.hpp"           // IWYU pragma: export
#include "core/pruning.hpp"            // IWYU pragma: export
#include "core/selector.hpp"           // IWYU pragma: export
#include "core/serialize.hpp"          // IWYU pragma: export
