// Index-space types mirroring SYCL's range/id/nd_range.
//
// Only the 1-D and 2-D cases are exercised by the GEMM library, but the
// types are dimension-templated like their SYCL counterparts so additional
// kernels (e.g. 3-D batched GEMM) slot in without runtime changes.
#pragma once

#include <array>
#include <cstddef>

#include "common/error.hpp"

namespace aks::syclrt {

template <int Dims>
class Range {
  static_assert(Dims >= 1 && Dims <= 3, "SYCL ranges are 1-3 dimensional");

 public:
  Range() { values_.fill(0); }

  template <typename... Ts>
    requires(sizeof...(Ts) == Dims)
  explicit Range(Ts... vs) : values_{static_cast<std::size_t>(vs)...} {}

  [[nodiscard]] std::size_t operator[](int d) const { return values_[static_cast<std::size_t>(d)]; }
  [[nodiscard]] std::size_t& operator[](int d) { return values_[static_cast<std::size_t>(d)]; }

  /// Total number of indices in the range.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 1;
    for (auto v : values_) total *= v;
    return total;
  }

  [[nodiscard]] bool operator==(const Range&) const = default;

 private:
  std::array<std::size_t, static_cast<std::size_t>(Dims)> values_;
};

template <int Dims>
using Id = Range<Dims>;

/// Global + local iteration space. Unlike core SYCL, the global range need
/// not be a multiple of the local range: the executor pads the global range
/// up to whole work-groups and kernels are expected to guard out-of-range
/// items — the convention used by SYCL-DNN's kernel launchers.
template <int Dims>
class NdRange {
 public:
  NdRange(Range<Dims> global, Range<Dims> local)
      : global_(global), local_(local) {
    for (int d = 0; d < Dims; ++d) {
      AKS_CHECK(local[d] > 0, "nd_range local dimension " << d << " is zero");
      AKS_CHECK(global[d] > 0, "nd_range global dimension " << d << " is zero");
    }
  }

  [[nodiscard]] Range<Dims> global() const { return global_; }
  [[nodiscard]] Range<Dims> local() const { return local_; }

  /// Number of work-groups per dimension (global rounded up to local).
  [[nodiscard]] Range<Dims> group_count() const {
    Range<Dims> out;
    for (int d = 0; d < Dims; ++d)
      out[d] = (global_[d] + local_[d] - 1) / local_[d];
    return out;
  }

  /// Global range padded to a whole number of work-groups.
  [[nodiscard]] Range<Dims> padded_global() const {
    Range<Dims> groups = group_count();
    Range<Dims> out;
    for (int d = 0; d < Dims; ++d) out[d] = groups[d] * local_[d];
    return out;
  }

 private:
  Range<Dims> global_;
  Range<Dims> local_;
};

}  // namespace aks::syclrt
