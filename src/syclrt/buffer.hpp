// Host-memory buffer mirroring sycl::buffer.
//
// The host runtime has a single address space, so accessors degenerate to
// spans; the class still models SYCL's ownership rules: a buffer owns its
// storage, kernels see it through explicit read/write accessors, and the
// element count is fixed at construction.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace aks::syclrt {

template <typename T>
class Buffer {
 public:
  explicit Buffer(std::size_t count, T init = T{}) : storage_(count, init) {}

  /// Copy-in constructor (like sycl::buffer(host_ptr, range)).
  explicit Buffer(std::span<const T> host_data)
      : storage_(host_data.begin(), host_data.end()) {}

  [[nodiscard]] std::size_t size() const { return storage_.size(); }

  /// Read-only accessor.
  [[nodiscard]] std::span<const T> read() const { return storage_; }

  /// Read-write accessor.
  [[nodiscard]] std::span<T> write() { return storage_; }

  /// Bounds-checked element access for host-side debugging; throws
  /// common::Error on an out-of-range index instead of invoking UB.
  [[nodiscard]] T& at(std::size_t i) {
    AKS_CHECK(i < storage_.size(),
              "buffer index " << i << " out of range (size "
              << storage_.size() << ")");
    return storage_[i];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    AKS_CHECK(i < storage_.size(),
              "buffer index " << i << " out of range (size "
              << storage_.size() << ")");
    return storage_[i];
  }

  /// Copies buffer contents back to a host range (like a host accessor).
  void copy_to(std::span<T> dst) const {
    AKS_CHECK(dst.size() == storage_.size(),
              "copy_to size mismatch: " << dst.size() << " vs "
              << storage_.size());
    std::copy(storage_.begin(), storage_.end(), dst.begin());
  }

  /// Copies a host range into the buffer — the post-construction symmetric
  /// of the copy-in constructor.
  void copy_from(std::span<const T> src) {
    AKS_CHECK(src.size() == storage_.size(),
              "copy_from size mismatch: " << src.size() << " vs "
              << storage_.size());
    std::copy(src.begin(), src.end(), storage_.begin());
  }

 private:
  std::vector<T> storage_;
};

}  // namespace aks::syclrt
