// Execution queue mirroring sycl::queue for the host device.
//
// Two submission models are provided, matching SYCL:
//
//  * `parallel_for(nd_range, kernel)` — flat ND-range. Work-groups execute
//    concurrently on the shared thread pool; work-items within a group run
//    sequentially on one thread. Kernels must not rely on barriers in this
//    model (the register-tiled GEMM family does not).
//
//  * `parallel_for_work_group(groups, group_size, body)` — hierarchical
//    model. The body runs once per group and may call
//    `WorkGroup::parallel_for_work_item` any number of times; each call is a
//    full pass over the group's items, so the gap between two calls has
//    work-group barrier semantics. Local memory is modelled by variables in
//    the body's scope (one instance per group, shared by its items).
//
// Submissions are synchronous: the call returns once every work-group has
// finished, and returns an Event carrying the measured wall time. A SYCL
// queue is asynchronous, but the libraries in this repo always wait before
// reading results, so a synchronous queue preserves observable behaviour
// while keeping ownership simple.
//
// Submissions may be made from any thread, including a worker of the very
// pool the queue dispatches to (e.g. a kernel launched from inside a pooled
// benchmark loop, or from a serve::SelectionService warm-up running on a
// nested task). Work-group dispatch goes through the pool's reentrancy-safe
// parallel_for: the submitting thread claims and executes group chunks
// itself and help-drains the queue while stragglers finish, so nested
// launches cannot deadlock (see common/thread_pool.hpp).
#pragma once

#include <functional>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "faults/injector.hpp"
#include "syclrt/device.hpp"
#include "syclrt/instrument.hpp"
#include "syclrt/nd_item.hpp"
#include "syclrt/range.hpp"
#include "trace/trace.hpp"

namespace aks::syclrt {

namespace detail {
/// Out-of-line trace helpers so the submission templates stay small: arm
/// attaches the launch dimensions plus the installed trace::LaunchAnnotation
/// (config index, shape, predicted time) to the span's begin event; finish
/// attaches the measured wall time (and the prediction for side-by-side
/// comparison) to its end event. Call only when trace::enabled().
void arm_launch_span(trace::Span& span, const char* name, std::size_t groups,
                     std::size_t items);
void finish_launch_span(trace::Span& span, double elapsed_seconds);
}  // namespace detail

/// Completion record for a submission.
struct Event {
  /// Wall-clock execution time of the whole submission, in seconds.
  double elapsed_seconds = 0.0;
  /// Number of work-groups launched.
  std::size_t group_count = 0;
  /// Number of work-items launched (after padding to whole groups).
  std::size_t item_count = 0;
};

/// Handle passed to hierarchical kernels; iterates this group's work-items.
template <int Dims>
class WorkGroup {
 public:
  WorkGroup(Id<Dims> group, Range<Dims> local_range,
            Range<Dims> logical_global)
      : group_(group), local_range_(local_range),
        logical_global_(logical_global) {}

  [[nodiscard]] std::size_t get_group(int d) const { return group_[d]; }
  [[nodiscard]] std::size_t get_local_range(int d) const {
    return local_range_[d];
  }

  /// Runs fn(item) for every work-item of this group. Consecutive calls are
  /// separated by an implicit work-group barrier (sequential execution).
  template <typename Fn>
  void parallel_for_work_item(Fn&& fn) const {
    if constexpr (Dims == 1) {
      for (std::size_t l0 = 0; l0 < local_range_[0]; ++l0)
        run_item(fn, NdItem<1>(group_, Id<1>(l0), local_range_,
                               logical_global_));
    } else if constexpr (Dims == 2) {
      for (std::size_t l0 = 0; l0 < local_range_[0]; ++l0)
        for (std::size_t l1 = 0; l1 < local_range_[1]; ++l1)
          run_item(fn, NdItem<2>(group_, Id<2>(l0, l1), local_range_,
                                 logical_global_));
    } else {
      for (std::size_t l0 = 0; l0 < local_range_[0]; ++l0)
        for (std::size_t l1 = 0; l1 < local_range_[1]; ++l1)
          for (std::size_t l2 = 0; l2 < local_range_[2]; ++l2)
            run_item(fn, NdItem<3>(group_, Id<3>(l0, l1, l2), local_range_,
                                   logical_global_));
    }
  }

 private:
  /// Refreshes the instrumentation context (when one is installed) before
  /// handing the item to the kernel, so checked accessors can attribute the
  /// access and detect unguarded tail items.
  template <typename Fn>
  void run_item(Fn& fn, NdItem<Dims> item) const {
    if (auto* ctx = instrument::context()) {
      ctx->item_in_logical_range = item.logical_in_range();
      ctx->guard_queried = false;
    }
    fn(item);
  }

  Id<Dims> group_;
  Range<Dims> local_range_;
  Range<Dims> logical_global_;
};

/// Running profiling totals of a queue (cleared with reset_profile()).
struct QueueProfile {
  std::size_t submissions = 0;
  std::size_t groups_launched = 0;
  std::size_t items_launched = 0;
  double total_seconds = 0.0;
};

class Queue {
 public:
  /// Uses the process-global thread pool when `pool` is null.
  explicit Queue(Device device = Device::host(),
                 common::ThreadPool* pool = nullptr);

  [[nodiscard]] const Device& device() const { return device_; }

  /// Accumulated profiling data across all submissions so far.
  [[nodiscard]] const QueueProfile& profile() const { return profile_; }
  void reset_profile() { profile_ = {}; }

  /// Deterministic replay: work-groups execute sequentially in canonical
  /// flat order on the submitting thread, with an instrumentation context
  /// installed (see instrument.hpp). This is the execution mode required by
  /// checked buffers/accessors — race attribution and reproducible reports
  /// rely on the serial group order. Timings remain valid but measure
  /// serial execution; do not feed them to the dataset.
  void set_deterministic_replay(bool on) { replay_ = on; }
  [[nodiscard]] bool deterministic_replay() const { return replay_; }

  /// Flat ND-range submission; see file comment for the execution contract.
  template <int Dims, typename Kernel>
  Event parallel_for(NdRange<Dims> range, Kernel&& kernel) {
    validate(range);
    // Fault-injection hook: inside an armed measurement scope this may
    // throw LaunchFailure / DeadlineExceeded before any work is dispatched
    // (see src/faults). A no-op everywhere else.
    faults::maybe_inject_launch_fault();
    const Range<Dims> groups = range.group_count();
    const Range<Dims> local = range.local();
    const Range<Dims> logical = range.global();
    trace::Span span;
    if (trace::enabled()) {
      detail::arm_launch_span(span, "queue.parallel_for", groups.size(),
                              range.padded_global().size());
    }
    common::Timer timer;
    for_each_group(groups, [&](Id<Dims> group) {
      WorkGroup<Dims>(group, local, logical)
          .parallel_for_work_item([&](const NdItem<Dims>& item) { kernel(item); });
    });
    Event event;
    event.elapsed_seconds = timer.elapsed_seconds();
    event.group_count = groups.size();
    event.item_count = range.padded_global().size();
    if (span.armed()) detail::finish_launch_span(span, event.elapsed_seconds);
    record(event);
    return event;
  }

  /// Hierarchical submission: body(WorkGroup) runs once per group.
  template <int Dims, typename Body>
  Event parallel_for_work_group(Range<Dims> num_groups, Range<Dims> group_size,
                                Body&& body) {
    Range<Dims> logical;
    for (int d = 0; d < Dims; ++d) logical[d] = num_groups[d] * group_size[d];
    validate(NdRange<Dims>(logical, group_size));
    faults::maybe_inject_launch_fault();
    trace::Span span;
    if (trace::enabled()) {
      detail::arm_launch_span(span, "queue.parallel_for_work_group",
                              num_groups.size(), logical.size());
    }
    common::Timer timer;
    for_each_group(num_groups, [&](Id<Dims> group) {
      body(WorkGroup<Dims>(group, group_size, logical));
    });
    Event event;
    event.elapsed_seconds = timer.elapsed_seconds();
    event.group_count = num_groups.size();
    event.item_count = logical.size();
    if (span.armed()) detail::finish_launch_span(span, event.elapsed_seconds);
    record(event);
    return event;
  }

  /// Runs a single task on the queue's device.
  Event single_task(const std::function<void()>& task);

 private:
  void record(const Event& event) {
    ++profile_.submissions;
    profile_.groups_launched += event.group_count;
    profile_.items_launched += event.item_count;
    profile_.total_seconds += event.elapsed_seconds;
  }

  template <int Dims>
  void validate(const NdRange<Dims>& range) const {
    AKS_CHECK(range.local().size() <= device_.max_work_group_size,
              "work-group size " << range.local().size()
              << " exceeds device limit " << device_.max_work_group_size);
  }

  /// Dispatches group indices across the pool (groups are independent), or
  /// serially in flat order under deterministic replay.
  template <int Dims, typename Fn>
  void for_each_group(Range<Dims> groups, Fn&& fn) {
    const std::size_t total = groups.size();
    const auto decode = [&groups](std::size_t flat) {
      Id<Dims> group;
      std::size_t rem = flat;
      for (int d = Dims - 1; d >= 0; --d) {
        group[d] = rem % groups[d];
        rem /= groups[d];
      }
      return group;
    };
    if (replay_) {
      instrument::ItemContext ctx;
      const instrument::ContextScope scope(ctx);
      for (std::size_t flat = 0; flat < total; ++flat) {
        ctx.flat_group = flat;
        fn(decode(flat));
      }
      return;
    }
    pool_->parallel_for(total,
                        [&](std::size_t flat) { fn(decode(flat)); });
  }

  Device device_;
  common::ThreadPool* pool_;
  QueueProfile profile_;
  bool replay_ = false;
};

}  // namespace aks::syclrt
