// Device description for the host runtime.
//
// The host runtime executes on the CPU, but it carries the same queryable
// properties a SYCL device exposes so library code (kernel launch heuristics,
// the benchmark harness) is written against the device interface rather than
// host assumptions. The *performance model* devices live in src/perfmodel;
// this type describes the executing device.
#pragma once

#include <cstddef>
#include <string>

namespace aks::syclrt {

struct Device {
  std::string name;
  std::string vendor;
  /// Number of parallel compute units (worker threads for the host device).
  std::size_t compute_units = 1;
  /// Maximum work-items per work-group the device accepts.
  std::size_t max_work_group_size = 1024;
  /// Local ("shared") memory available per work-group, in bytes.
  std::size_t local_memory_bytes = 64 * 1024;

  /// The host CPU device used for functional execution.
  static Device host();
};

}  // namespace aks::syclrt
