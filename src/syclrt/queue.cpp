#include "syclrt/queue.hpp"

#include <thread>

namespace aks::syclrt {

Device Device::host() {
  Device d;
  d.name = "AKS host CPU";
  d.vendor = "aks";
  d.compute_units = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  d.max_work_group_size = 1024;
  d.local_memory_bytes = 64 * 1024;
  return d;
}

Queue::Queue(Device device, common::ThreadPool* pool)
    : device_(std::move(device)),
      pool_(pool != nullptr ? pool : &common::ThreadPool::global()) {}

Event Queue::single_task(const std::function<void()>& task) {
  faults::maybe_inject_launch_fault();
  common::Timer timer;
  task();
  Event event;
  event.elapsed_seconds = timer.elapsed_seconds();
  event.group_count = 1;
  event.item_count = 1;
  record(event);
  return event;
}

}  // namespace aks::syclrt
