#include "syclrt/queue.hpp"

#include <string>
#include <thread>

namespace aks::syclrt {

namespace detail {

void arm_launch_span(trace::Span& span, const char* name, std::size_t groups,
                     std::size_t items) {
  const trace::LaunchAnnotation::Info* info =
      trace::LaunchAnnotation::current();
  if (info != nullptr) {
    // Shape as one interned "MxKxN" string: kMaxArgs is 4 and config +
    // shape + dimensions already fill the begin payload. Interning takes
    // the session lock, which a multi-millisecond kernel launch can afford.
    const char* shape = "?";
    if (auto* session = trace::TraceSession::current()) {
      shape = session->intern(std::to_string(info->m) + "x" +
                              std::to_string(info->k) + "x" +
                              std::to_string(info->n));
    }
    span.arm(name, {trace::arg("config", info->config_index),
                    trace::arg("shape", shape), trace::arg("groups", groups),
                    trace::arg("items", items)});
  } else {
    span.arm(name,
             {trace::arg("groups", groups), trace::arg("items", items)});
  }
}

void finish_launch_span(trace::Span& span, double elapsed_seconds) {
  span.annotate(trace::arg("measured_seconds", elapsed_seconds));
  const trace::LaunchAnnotation::Info* info =
      trace::LaunchAnnotation::current();
  if (info != nullptr && info->has_prediction) {
    span.annotate(trace::arg("predicted_seconds", info->predicted_seconds));
  }
}

}  // namespace detail

Device Device::host() {
  Device d;
  d.name = "AKS host CPU";
  d.vendor = "aks";
  d.compute_units = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  d.max_work_group_size = 1024;
  d.local_memory_bytes = 64 * 1024;
  return d;
}

Queue::Queue(Device device, common::ThreadPool* pool)
    : device_(std::move(device)),
      pool_(pool != nullptr ? pool : &common::ThreadPool::global()) {}

Event Queue::single_task(const std::function<void()>& task) {
  faults::maybe_inject_launch_fault();
  trace::Span span;
  if (trace::enabled()) {
    detail::arm_launch_span(span, "queue.single_task", 1, 1);
  }
  common::Timer timer;
  task();
  Event event;
  event.elapsed_seconds = timer.elapsed_seconds();
  event.group_count = 1;
  event.item_count = 1;
  if (span.armed()) detail::finish_launch_span(span, event.elapsed_seconds);
  record(event);
  return event;
}

}  // namespace aks::syclrt
