// Instrumentation context published by the deterministic replay executor.
//
// Checked execution (src/check) needs to attribute every memory access made
// by a kernel to the work-group and work-item that performed it, and to know
// whether that item consulted `NdItem::in_range()` before touching memory.
// The runtime publishes that information through a thread-local pointer: the
// replay executor installs an `ItemContext` for the duration of a
// submission, `WorkGroup::parallel_for_work_item` refreshes the per-item
// fields before each kernel invocation, and `NdItem::in_range()` flips
// `guard_queried`. Checked accessors read the context at every access.
//
// Outside replay submissions the pointer is null and the hooks cost one
// thread-local load; the parallel executor never installs a context, so
// checked diagnostics are only meaningful under
// `Queue::set_deterministic_replay(true)` (parallel execution would need
// atomic shadow state and would lose reproducible group ordering).
#pragma once

#include <cstddef>

namespace aks::syclrt::instrument {

/// Execution state of the work-item currently running on this thread.
struct ItemContext {
  /// Flat index of the executing work-group (row-major over group counts).
  std::size_t flat_group = 0;
  /// True when the item lies inside the logical (unpadded) global range.
  bool item_in_logical_range = true;
  /// True once the kernel has called `in_range()` for the current item.
  bool guard_queried = false;
};

namespace detail {
inline thread_local ItemContext* tl_context = nullptr;
}  // namespace detail

/// The context of the submission executing on this thread, or null when no
/// instrumented (replay) submission is active.
[[nodiscard]] inline ItemContext* context() { return detail::tl_context; }

/// RAII installation of a context for one submission.
class ContextScope {
 public:
  explicit ContextScope(ItemContext& ctx) : prev_(detail::tl_context) {
    detail::tl_context = &ctx;
  }
  ~ContextScope() { detail::tl_context = prev_; }

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  ItemContext* prev_;
};

}  // namespace aks::syclrt::instrument
