// Per-work-item handle passed to kernels, mirroring sycl::nd_item.
#pragma once

#include "syclrt/instrument.hpp"
#include "syclrt/range.hpp"

namespace aks::syclrt {

template <int Dims>
class NdItem {
 public:
  NdItem(Id<Dims> group, Id<Dims> local, Range<Dims> local_range,
         Range<Dims> logical_global)
      : group_(group),
        local_(local),
        local_range_(local_range),
        logical_global_(logical_global) {}

  /// Global index (may exceed the logical global range when the executor
  /// padded the launch to whole work-groups; kernels must guard).
  [[nodiscard]] std::size_t get_global_id(int d) const {
    return group_[d] * local_range_[d] + local_[d];
  }

  [[nodiscard]] std::size_t get_local_id(int d) const { return local_[d]; }
  [[nodiscard]] std::size_t get_group(int d) const { return group_[d]; }
  [[nodiscard]] std::size_t get_local_range(int d) const {
    return local_range_[d];
  }

  /// The logical (unpadded) global range of the launch.
  [[nodiscard]] std::size_t get_global_range(int d) const {
    return logical_global_[d];
  }

  /// True when this item falls inside the logical global range. Under
  /// checked replay this also records that the kernel consulted the guard,
  /// so tail accesses after an `in_range()` check are not flagged.
  [[nodiscard]] bool in_range() const {
    if (auto* ctx = instrument::context()) ctx->guard_queried = true;
    return logical_in_range();
  }

  /// The same predicate without the instrumentation side effect; used by
  /// the executor to seed the item context.
  [[nodiscard]] bool logical_in_range() const {
    for (int d = 0; d < Dims; ++d)
      if (get_global_id(d) >= logical_global_[d]) return false;
    return true;
  }

 private:
  Id<Dims> group_;
  Id<Dims> local_;
  Range<Dims> local_range_;
  Range<Dims> logical_global_;
};

}  // namespace aks::syclrt
