// Leveled stderr logging. Deliberately tiny: the benches and examples print
// their primary results to stdout; the log is for progress and diagnostics.
#pragma once

#include <sstream>
#include <string>

namespace aks::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default: kInfo).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits a single log line to stderr if `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

#define AKS_LOG(level, ...)                                        \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::aks::common::log_level())) {            \
      std::ostringstream aks_log_os_;                              \
      aks_log_os_ << __VA_ARGS__;                                  \
      ::aks::common::log_message(level, aks_log_os_.str());        \
    }                                                              \
  } while (false)

#define AKS_DEBUG(...) AKS_LOG(::aks::common::LogLevel::kDebug, __VA_ARGS__)
#define AKS_INFO(...) AKS_LOG(::aks::common::LogLevel::kInfo, __VA_ARGS__)
#define AKS_WARN(...) AKS_LOG(::aks::common::LogLevel::kWarn, __VA_ARGS__)
#define AKS_ERROR(...) AKS_LOG(::aks::common::LogLevel::kError, __VA_ARGS__)

}  // namespace aks::common
