#include "common/csv.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace aks::common {

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  AKS_FAIL("CSV column not found: " << name);
}

CsvTable read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  AKS_CHECK(in.is_open(), "cannot open CSV file " << path);
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = split(line, ',');
    if (first) {
      table.header = std::move(fields);
      first = false;
      continue;
    }
    AKS_CHECK(fields.size() == table.header.size(),
              "ragged CSV row in " << path << ": got " << fields.size()
              << " fields, expected " << table.header.size());
    table.rows.push_back(std::move(fields));
  }
  AKS_CHECK(!first, "CSV file " << path << " is empty");
  return table;
}

void write_csv(const std::filesystem::path& path, const CsvTable& table) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  AKS_CHECK(out.is_open(), "cannot write CSV file " << path);
  out << join(table.header, ",") << "\n";
  for (const auto& row : table.rows) {
    AKS_CHECK(row.size() == table.header.size(),
              "ragged CSV row: got " << row.size() << " fields, expected "
              << table.header.size());
    out << join(row, ",") << "\n";
  }
  AKS_CHECK(out.good(), "I/O error writing CSV file " << path);
}

void write_matrix_csv(const std::filesystem::path& path,
                      const std::vector<std::string>& header,
                      const Matrix& values, int decimals) {
  AKS_CHECK(header.size() == values.cols(),
            "header has " << header.size() << " names but matrix has "
            << values.cols() << " columns");
  CsvTable table;
  table.header = header;
  table.rows.reserve(values.rows());
  for (std::size_t r = 0; r < values.rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(values.cols());
    for (std::size_t c = 0; c < values.cols(); ++c)
      row.push_back(format_fixed(values(r, c), decimals));
    table.rows.push_back(std::move(row));
  }
  write_csv(path, table);
}

Matrix parse_numeric(const CsvTable& table) {
  Matrix out(table.num_rows(), table.num_cols());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_cols(); ++c) {
      try {
        out(r, c) = std::stod(table.rows[r][c]);
      } catch (const std::exception&) {
        AKS_FAIL("non-numeric CSV cell at row " << r << " col " << c << ": '"
                 << table.rows[r][c] << "'");
      }
    }
  }
  return out;
}

}  // namespace aks::common
