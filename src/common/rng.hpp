// Deterministic pseudo-random number generation.
//
// AKS requires bit-for-bit reproducible experiments across platforms, so it
// carries its own xoshiro256++ implementation instead of relying on the
// standard library's unspecified distributions. All stochastic components
// (noise injection, k-means++ seeding, dataset splits, forests, SMO) take an
// explicit seed and derive their streams from this generator.
#pragma once

#include <cstdint>
#include <vector>

namespace aks::common {

/// xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Standard normal via Box-Muller (deterministic, cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal such that the *median* of the distribution is `median` and
  /// the underlying normal has standard deviation `sigma`.
  double lognormal_median(double median, double sigma);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = uniform_index(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child seed; used to give each parallel worker or
  /// sub-component its own stream without correlation.
  std::uint64_t fork_seed();

 private:
  std::uint64_t s_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace aks::common
