#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace aks::common {

namespace {

std::size_t bucket_index(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const double ns = seconds * 1e9;
  if (ns < 2.0) return 0;
  const auto truncated = static_cast<std::uint64_t>(ns);
  const auto index = static_cast<std::size_t>(std::bit_width(truncated)) - 1;
  return std::min(index, LatencyHistogram::kBuckets - 1);
}

}  // namespace

void LatencyHistogram::record_seconds(double seconds) {
  buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_.add(seconds);
}

double LatencyHistogram::mean_seconds() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
}

double LatencyHistogram::bucket_upper_seconds(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) + 1) * 1e-9;
}

double LatencyHistogram::quantile_seconds(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return bucket_upper_seconds(i);
  }
  return bucket_upper_seconds(kBuckets - 1);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Accumulator& MetricsRegistry::accumulator(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = accumulators_[name];
  if (!slot) slot = std::make_unique<Accumulator>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "name,kind,field,value\n";
  for (const auto& [name, c] : counters_) {
    out << name << ",counter,value," << c->value() << "\n";
  }
  for (const auto& [name, a] : accumulators_) {
    out << name << ",accumulator,value," << a->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << ",histogram,count," << h->count() << "\n"
        << name << ",histogram,total_seconds," << h->total_seconds() << "\n"
        << name << ",histogram,mean_seconds," << h->mean_seconds() << "\n"
        << name << ",histogram,p50_seconds," << h->quantile_seconds(0.5) << "\n"
        << name << ",histogram,p90_seconds," << h->quantile_seconds(0.9) << "\n"
        << name << ",histogram,p99_seconds," << h->quantile_seconds(0.99)
        << "\n";
  }
}

std::string MetricsRegistry::to_csv() const {
  std::ostringstream out;
  write_csv(out);
  return out.str();
}

}  // namespace aks::common
