#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace aks::common {

namespace {

std::size_t bucket_index(double seconds) {
  if (!(seconds > 0.0)) return 0;  // negatives and NaN land in bucket 0
  const double ns = seconds * 1e9;
  if (ns < 2.0) return 0;
  // Clamp before the cast: static_cast<uint64_t> of a double >= 2^64 (or
  // inf) is undefined behaviour. Anything at or past the last bucket's
  // lower edge (2^(kBuckets-1) ns) belongs in the last bucket anyway.
  if (ns >= std::ldexp(1.0, LatencyHistogram::kBuckets - 1)) {
    return LatencyHistogram::kBuckets - 1;
  }
  const auto truncated = static_cast<std::uint64_t>(ns);
  const auto index = static_cast<std::size_t>(std::bit_width(truncated)) - 1;
  return std::min(index, LatencyHistogram::kBuckets - 1);
}

/// CSV metadata characters would corrupt write_csv output; reject them when
/// the metric is first registered rather than silently emitting a broken
/// schema at export time.
void check_metric_name(const std::string& name) {
  AKS_CHECK(!name.empty(), "metric name must not be empty");
  AKS_CHECK(name.find_first_of(",\"\n\r") == std::string::npos,
            "metric name '" << name
                            << "' contains CSV metadata characters "
                               "(comma, quote, or newline)");
}

}  // namespace

void LatencyHistogram::record_seconds(double seconds) {
  buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_.add(seconds);
}

void LatencyHistogram::record_value(std::uint64_t value) {
  // One unit == one nanosecond slot, computed directly from the integer so
  // values sitting exactly on a power-of-two bucket edge never land one
  // bucket off through double rounding.
  const std::size_t index =
      value < 2 ? 0
                : std::min(static_cast<std::size_t>(std::bit_width(value)) - 1,
                           kBuckets - 1);
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_.add(static_cast<double>(value) * 1e-9);
}

double LatencyHistogram::mean_seconds() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
}

double LatencyHistogram::bucket_upper_seconds(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) + 1) * 1e-9;
}

double LatencyHistogram::quantile_seconds(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // rank >= 1 so q=0 resolves to the first *non-empty* bucket instead of
  // bucket 0's upper edge when bucket 0 holds no samples.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return bucket_upper_seconds(i);
  }
  return bucket_upper_seconds(kBuckets - 1);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  check_metric_name(name);
  aks::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Accumulator& MetricsRegistry::accumulator(const std::string& name) {
  check_metric_name(name);
  aks::MutexLock lock(mutex_);
  auto& slot = accumulators_[name];
  if (!slot) slot = std::make_unique<Accumulator>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  check_metric_name(name);
  aks::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  aks::MutexLock lock(mutex_);
  out << "name,kind,field,value\n";
  for (const auto& [name, c] : counters_) {
    out << name << ",counter,value," << c->value() << "\n";
  }
  for (const auto& [name, a] : accumulators_) {
    out << name << ",accumulator,value," << a->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << ",histogram,count," << h->count() << "\n"
        << name << ",histogram,total_seconds," << h->total_seconds() << "\n"
        << name << ",histogram,mean_seconds," << h->mean_seconds() << "\n"
        << name << ",histogram,p50_seconds," << h->quantile_seconds(0.5) << "\n"
        << name << ",histogram,p90_seconds," << h->quantile_seconds(0.9) << "\n"
        << name << ",histogram,p99_seconds," << h->quantile_seconds(0.99)
        << "\n";
  }
}

std::string MetricsRegistry::to_csv() const {
  std::ostringstream out;
  write_csv(out);
  return out.str();
}

}  // namespace aks::common
