#include "common/strings.hpp"

#include <cctype>
#include <sstream>

namespace aks::common {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

}  // namespace aks::common
