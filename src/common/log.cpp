#include "common/log.hpp"

#include <atomic>
#include <iostream>

#include "common/sync.hpp"

namespace aks::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
// Serializes whole lines onto std::cerr; leaf lock, nothing is acquired
// under it.
aks::Mutex g_mutex{"log.stream"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  aks::MutexLock lock(g_mutex);
  std::cerr << "[aks:" << level_name(level) << "] " << message << "\n";
}

}  // namespace aks::common
