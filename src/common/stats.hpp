// Descriptive statistics used by the dataset, evaluation and bench layers.
//
// The paper scores kernel selections with the *geometric* mean of per-shape
// relative performance, so `geometric_mean` is the workhorse here; the rest
// support dataset summaries (Figure 1) and the PCA variance report.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace aks::common {

/// Arithmetic mean; requires a non-empty range.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); requires at least 2 values.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Geometric mean; requires non-empty range of strictly positive values.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Harmonic mean; requires non-empty range of strictly positive values.
[[nodiscard]] double harmonic_mean(std::span<const double> xs);

/// Median (average of middle two for even sizes); requires non-empty range.
[[nodiscard]] double median(std::span<const double> xs);

/// Median absolute deviation from the median, scaled by 1.4826 so it is a
/// consistent sigma estimate for normal data; requires non-empty range.
[[nodiscard]] double mad(std::span<const double> xs);

/// Mean after symmetrically trimming floor(trim * n) samples from each end
/// of the sorted range; trim in [0, 0.5), requires enough samples to leave
/// at least one untrimmed. trim = 0 is the arithmetic mean.
[[nodiscard]] double trimmed_mean(std::span<const double> xs, double trim);

/// MAD-based outlier rejection: keep-mask over `xs` marking samples within
/// `threshold` scaled MADs of the median. Guarantees: never rejects more
/// than floor(max_reject_fraction * n) samples (the farthest-from-median
/// ones go first), and rejects nothing when the MAD is zero (degenerate
/// half-identical data). The robust-measurement layer runs this before any
/// reduction so a single glitched timing cannot steal a best-of-N.
[[nodiscard]] std::vector<bool> mad_keep_mask(std::span<const double> xs,
                                              double threshold = 3.5,
                                              double max_reject_fraction = 0.4);

/// Convenience: the samples surviving mad_keep_mask, in input order.
[[nodiscard]] std::vector<double> reject_outliers_mad(
    std::span<const double> xs, double threshold = 3.5,
    double max_reject_fraction = 0.4);

/// Linear-interpolated quantile, q in [0, 1]; requires non-empty range.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);

/// Index of the maximum element; first occurrence wins ties.
[[nodiscard]] std::size_t argmax(std::span<const double> xs);

/// Index of the minimum element; first occurrence wins ties.
[[nodiscard]] std::size_t argmin(std::span<const double> xs);

/// Indices that would sort `xs` ascending (stable).
[[nodiscard]] std::vector<std::size_t> argsort(std::span<const double> xs);

/// Indices that would sort `xs` descending (stable).
[[nodiscard]] std::vector<std::size_t> argsort_descending(std::span<const double> xs);

/// Fractional ranks of `xs` (average rank for ties), 1-based.
[[nodiscard]] std::vector<double> ranks(std::span<const double> xs);

/// Pearson correlation coefficient; requires >= 2 values and non-constant
/// inputs.
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys);

/// Spearman rank correlation (Pearson on fractional ranks). Used to compare
/// how two timing sources *order* kernel configurations.
[[nodiscard]] double spearman_correlation(std::span<const double> xs,
                                          std::span<const double> ys);

}  // namespace aks::common
