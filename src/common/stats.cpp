#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace aks::common {

double mean(std::span<const double> xs) {
  AKS_CHECK(!xs.empty(), "mean of empty range");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  AKS_CHECK(xs.size() >= 2, "variance needs at least 2 values, got " << xs.size());
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double geometric_mean(std::span<const double> xs) {
  AKS_CHECK(!xs.empty(), "geometric_mean of empty range");
  double log_sum = 0.0;
  for (double x : xs) {
    AKS_CHECK(x > 0.0, "geometric_mean requires positive values, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double harmonic_mean(std::span<const double> xs) {
  AKS_CHECK(!xs.empty(), "harmonic_mean of empty range");
  double inv_sum = 0.0;
  for (double x : xs) {
    AKS_CHECK(x > 0.0, "harmonic_mean requires positive values, got " << x);
    inv_sum += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv_sum;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mad(std::span<const double> xs) {
  AKS_CHECK(!xs.empty(), "mad of empty range");
  const double med = median(xs);
  std::vector<double> deviations(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    deviations[i] = std::abs(xs[i] - med);
  }
  // 1.4826 makes the MAD estimate sigma for normal data.
  return 1.4826 * median(deviations);
}

double trimmed_mean(std::span<const double> xs, double trim) {
  AKS_CHECK(!xs.empty(), "trimmed_mean of empty range");
  AKS_CHECK(trim >= 0.0 && trim < 0.5,
            "trimmed_mean trim must be in [0, 0.5), got " << trim);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto cut =
      static_cast<std::size_t>(trim * static_cast<double>(sorted.size()));
  AKS_CHECK(2 * cut < sorted.size(), "trimmed_mean trims every sample");
  double acc = 0.0;
  for (std::size_t i = cut; i < sorted.size() - cut; ++i) acc += sorted[i];
  return acc / static_cast<double>(sorted.size() - 2 * cut);
}

std::vector<bool> mad_keep_mask(std::span<const double> xs, double threshold,
                                double max_reject_fraction) {
  AKS_CHECK(!xs.empty(), "mad_keep_mask of empty range");
  AKS_CHECK(threshold > 0.0, "mad_keep_mask threshold must be positive");
  AKS_CHECK(max_reject_fraction >= 0.0 && max_reject_fraction < 1.0,
            "mad_keep_mask max_reject_fraction must be in [0, 1)");
  std::vector<bool> keep(xs.size(), true);
  const double scale = mad(xs);
  if (scale <= 0.0) return keep;  // degenerate: at least half identical
  const double med = median(xs);
  const double limit = threshold * scale;
  // Reject farthest-first so the cap keeps the closest offenders rather
  // than an arbitrary input-order subset.
  std::vector<double> deviations(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    deviations[i] = std::abs(xs[i] - med);
  }
  const auto by_deviation = argsort_descending(deviations);
  const auto max_rejects = static_cast<std::size_t>(
      max_reject_fraction * static_cast<double>(xs.size()));
  std::size_t rejected = 0;
  for (const std::size_t i : by_deviation) {
    if (rejected >= max_rejects || deviations[i] <= limit) break;
    keep[i] = false;
    ++rejected;
  }
  return keep;
}

std::vector<double> reject_outliers_mad(std::span<const double> xs,
                                        double threshold,
                                        double max_reject_fraction) {
  const auto keep = mad_keep_mask(xs, threshold, max_reject_fraction);
  std::vector<double> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (keep[i]) out.push_back(xs[i]);
  }
  return out;
}

double quantile(std::span<const double> xs, double q) {
  AKS_CHECK(!xs.empty(), "quantile of empty range");
  AKS_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1], got " << q);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_value(std::span<const double> xs) {
  AKS_CHECK(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  AKS_CHECK(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

std::size_t argmax(std::span<const double> xs) {
  AKS_CHECK(!xs.empty(), "argmax of empty range");
  return static_cast<std::size_t>(
      std::distance(xs.begin(), std::max_element(xs.begin(), xs.end())));
}

std::size_t argmin(std::span<const double> xs) {
  AKS_CHECK(!xs.empty(), "argmin of empty range");
  return static_cast<std::size_t>(
      std::distance(xs.begin(), std::min_element(xs.begin(), xs.end())));
}

std::vector<std::size_t> argsort(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  return idx;
}

std::vector<std::size_t> argsort_descending(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return xs[a] > xs[b]; });
  return idx;
}

std::vector<double> ranks(std::span<const double> xs) {
  const auto order = argsort(xs);
  std::vector<double> out(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    // Find the run of ties and assign each its average rank.
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double average_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = average_rank;
    i = j + 1;
  }
  return out;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  AKS_CHECK(xs.size() == ys.size(), "correlation: size mismatch");
  AKS_CHECK(xs.size() >= 2, "correlation needs at least 2 points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  AKS_CHECK(sxx > 0.0 && syy > 0.0, "correlation of a constant input");
  return sxy / std::sqrt(sxx * syy);
}

double spearman_correlation(std::span<const double> xs,
                            std::span<const double> ys) {
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson_correlation(rx, ry);
}

}  // namespace aks::common
