// Portable Clang Thread Safety Analysis macros — the compile-time half of
// the concurrency contract (the runtime half is check/lockdep.hpp).
//
// Under Clang the macros expand to the thread-safety attributes, so a
// `-Wthread-safety` build statically proves that every access to an
// `AKS_GUARDED_BY` member happens with its mutex held and that every
// `AKS_REQUIRES` callee is entered with the right capability. Under any
// other compiler they expand to nothing, so GCC builds are unaffected.
//
// Use through the annotated primitives in common/sync.hpp (aks::Mutex,
// aks::SharedMutex, aks::CondVar and their RAII guards); raw std::mutex
// members cannot participate in the analysis. The negative compile tests
// under tests/compile_fail/ prove the macros are live on Clang: a planted
// guarded-state violation must fail the build.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define AKS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define AKS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (lockable) type.
#define AKS_CAPABILITY(x) AKS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose lifetime equals a capability hold.
#define AKS_SCOPED_CAPABILITY AKS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only with `x` held (shared hold suffices
/// for reads, exclusive for writes).
#define AKS_GUARDED_BY(x) AKS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define AKS_PT_GUARDED_BY(x) AKS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function that must be entered with the capability held exclusively.
#define AKS_REQUIRES(...) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that must be entered with the capability held at least shared.
#define AKS_REQUIRES_SHARED(...) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability exclusively (held on return).
#define AKS_ACQUIRE(...) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that acquires the capability shared.
#define AKS_ACQUIRE_SHARED(...) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function that releases an exclusively held capability.
#define AKS_RELEASE(...) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that releases a shared-held capability.
#define AKS_RELEASE_SHARED(...) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function that tries to acquire; first argument is the success value.
#define AKS_TRY_ACQUIRE(...) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function that must be entered with the capability NOT held (deadlock
/// guard for self-locking public APIs).
#define AKS_EXCLUDES(...) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime) that the calling thread holds the capability; tells
/// the analysis to assume it from here on.
#define AKS_ASSERT_CAPABILITY(x) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returning a reference to the capability guarding its result.
#define AKS_RETURN_CAPABILITY(x) \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function is exempt from analysis. Every use must carry
/// a comment explaining which protocol (e.g. release/acquire publication)
/// replaces the mutex the analysis cannot see.
#define AKS_NO_THREAD_SAFETY_ANALYSIS \
  AKS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
