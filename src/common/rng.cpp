#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aks::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa: uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  AKS_CHECK(lo <= hi, "uniform: lo " << lo << " > hi " << hi);
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  AKS_CHECK(n > 0, "uniform_index: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = n;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return static_cast<std::size_t>(v % bound);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) {
  AKS_CHECK(median > 0.0, "lognormal_median: median must be positive");
  return median * std::exp(sigma * normal());
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

std::uint64_t Rng::fork_seed() { return next_u64(); }

}  // namespace aks::common
