// Monotonic wall-clock timer for the benchmark harness.
#pragma once

#include <chrono>

namespace aks::common {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or last reset().
  [[nodiscard]] std::int64_t elapsed_nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aks::common
