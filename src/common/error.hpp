// Error handling primitives shared by every AKS module.
//
// AKS uses exceptions for recoverable errors at API boundaries (file I/O,
// invalid user-supplied configuration) and assert-style checks for internal
// invariants. Both funnel through `aks::common::Error` so callers can catch
// a single type.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace aks::common {

/// Exception type thrown by all AKS libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* expr, const std::string& msg,
                                     const std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << ": check failed";
  if (expr != nullptr) os << " (" << expr << ")";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}

}  // namespace detail

/// Throws `Error` with location info when `cond` is false.
/// Usage: AKS_CHECK(n > 0, "need at least one sample, got " << n);
#define AKS_CHECK(cond, ...)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream aks_check_os_;                                    \
      aks_check_os_ << __VA_ARGS__;                                        \
      ::aks::common::detail::throw_error(#cond, aks_check_os_.str(),       \
                                         std::source_location::current()); \
    }                                                                      \
  } while (false)

/// Unconditional failure with message.
#define AKS_FAIL(...)                                                      \
  do {                                                                     \
    std::ostringstream aks_check_os_;                                      \
    aks_check_os_ << __VA_ARGS__;                                          \
    ::aks::common::detail::throw_error(nullptr, aks_check_os_.str(),       \
                                       std::source_location::current());   \
  } while (false)

}  // namespace aks::common
