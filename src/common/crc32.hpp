// Data-integrity hashes for on-disk artefacts.
//
// crc32() is the IEEE CRC-32 (polynomial 0xEDB88320, the zlib/PNG variant):
// strong enough to catch the faults the persistent store defends against —
// torn writes, truncation, random bit flips — at four bytes per record.
// fnv1a64() is the 64-bit FNV-1a string hash used for stable content
// digests (device fingerprints, certificate digests) that must agree across
// processes and platforms; unlike std::hash it is pinned by this header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aks::common {

/// CRC-32 (IEEE) of `size` bytes starting at `data`. `seed` chains partial
/// computations: crc32(b, crc32(a)) == crc32(a + b).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

/// 64-bit FNV-1a over the bytes of `text`. Stable across runs, platforms
/// and compilers (unlike std::hash), so safe to persist.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// FNV-1a continuation over raw bytes for composite digests.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t size,
                                    std::uint64_t seed);

}  // namespace aks::common
