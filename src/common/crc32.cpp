#include "common/crc32.hpp"

#include <array>

namespace aks::common {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view text) {
  return fnv1a64(text.data(), text.size(), 0xcbf29ce484222325ULL);
}

}  // namespace aks::common
