// Minimal CSV reader/writer.
//
// The tuning dataset (shapes x configurations performance table) and all
// bench outputs are persisted as plain CSV so they can be inspected with
// standard tools, mirroring the dataset the paper published alongside the
// code. Only the subset of CSV AKS emits is supported: no quoting, no
// embedded delimiters.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace aks::common {

/// An in-memory CSV table: one header row plus string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::size_t num_rows() const { return rows.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header.size(); }

  /// Column index for a header name; throws if absent.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;
};

/// Parses a CSV file with a header row. Throws Error on I/O failure or
/// ragged rows.
[[nodiscard]] CsvTable read_csv(const std::filesystem::path& path);

/// Writes a CSV file; throws on I/O failure or ragged rows.
void write_csv(const std::filesystem::path& path, const CsvTable& table);

/// Convenience: writes a numeric matrix with the given column names.
void write_matrix_csv(const std::filesystem::path& path,
                      const std::vector<std::string>& header,
                      const Matrix& values, int decimals = 9);

/// Convenience: parses all cells of the table (excluding header) as doubles.
[[nodiscard]] Matrix parse_numeric(const CsvTable& table);

}  // namespace aks::common
