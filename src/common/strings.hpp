// Small string utilities (split/trim/join/formatting) for CSV handling and
// human-readable report output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aks::common {

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Fixed-point formatting with the given number of decimals.
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Left-pads with spaces to the given width.
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);

/// Right-pads with spaces to the given width.
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

}  // namespace aks::common
