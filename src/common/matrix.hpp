// Dense row-major matrix container used throughout AKS.
//
// `MatrixT<T>` is deliberately minimal: contiguous storage, bounds-checked
// element access in debug-style accessors, row views via std::span, and the
// handful of structural operations (resize, fill, row extraction) the ML and
// dataset layers need. Numerical algorithms live in `aks::ml::linalg`, not
// here, to keep the container free of policy.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace aks::common {

template <typename T>
class MatrixT {
 public:
  MatrixT() = default;

  MatrixT(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Build from nested initializer lists; all rows must have equal length.
  MatrixT(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      AKS_CHECK(r.size() == cols_, "ragged initializer: row has " << r.size()
                                   << " elements, expected " << cols_);
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws Error on out-of-range indices.
  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    AKS_CHECK(r < rows_ && c < cols_, "matrix index (" << r << "," << c
              << ") out of range for " << rows_ << "x" << cols_);
    return (*this)(r, c);
  }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
    AKS_CHECK(r < rows_ && c < cols_, "matrix index (" << r << "," << c
              << ") out of range for " << rows_ << "x" << cols_);
    return (*this)(r, c);
  }

  [[nodiscard]] std::span<T> row(std::size_t r) {
    AKS_CHECK(r < rows_, "row " << r << " out of range for " << rows_ << " rows");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    AKS_CHECK(r < rows_, "row " << r << " out of range for " << rows_ << " rows");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::vector<T> col(std::size_t c) const {
    AKS_CHECK(c < cols_, "col " << c << " out of range for " << cols_ << " cols");
    std::vector<T> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
    return out;
  }

  [[nodiscard]] std::span<T> data() noexcept { return data_; }
  [[nodiscard]] std::span<const T> data() const noexcept { return data_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  void resize(std::size_t rows, std::size_t cols, T init = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, init);
  }

  /// Appends a row; the matrix must be empty or have matching column count.
  void append_row(std::span<const T> values) {
    if (rows_ == 0 && cols_ == 0) cols_ = values.size();
    AKS_CHECK(values.size() == cols_, "append_row: got " << values.size()
              << " values, expected " << cols_);
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
  }

  /// Returns a new matrix containing the given rows in the given order.
  [[nodiscard]] MatrixT select_rows(std::span<const std::size_t> indices) const {
    MatrixT out(indices.size(), cols_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      AKS_CHECK(indices[i] < rows_, "select_rows: index " << indices[i]
                << " out of range for " << rows_ << " rows");
      auto src = row(indices[i]);
      std::copy(src.begin(), src.end(), out.row(i).begin());
    }
    return out;
  }

  [[nodiscard]] MatrixT transposed() const {
    MatrixT out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  [[nodiscard]] bool operator==(const MatrixT& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Matrix = MatrixT<double>;
using FMatrix = MatrixT<float>;

}  // namespace aks::common
