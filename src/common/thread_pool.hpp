// Fixed-size thread pool with a blocking parallel_for.
//
// Used by the ND-range executor (one task per work-group chunk) and the
// benchmark runner. Following the Core Guidelines concurrency rules, tasks
// must not share mutable state: parallel_for hands each invocation a
// distinct index range and joins before returning, so lifetimes are simple
// and no synchronisation is needed inside user code.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aks::common {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count), partitioned into contiguous
  /// chunks across the workers. Blocks until all invocations complete.
  /// Exceptions from `fn` are captured and the first one is rethrown.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace aks::common
