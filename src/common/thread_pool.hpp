// Fixed-size thread pool with a blocking, reentrancy-safe parallel_for.
//
// Used by the ND-range executor (one task per work-group chunk) and the
// benchmark runner. Following the Core Guidelines concurrency rules, tasks
// must not share mutable state: parallel_for hands each invocation a
// distinct index range and joins before returning, so lifetimes are simple
// and no synchronisation is needed inside user code.
//
// Reentrancy guarantee: parallel_for may be called from inside a task that
// is itself running on this pool (nested parallelism), to any depth, without
// deadlocking. Work is claimed from a shared chunk counter and the caller
// always participates: it executes chunks of its own loop first, so the loop
// completes even when every worker is busy. While its last chunks finish on
// other workers, a caller that is itself a pool worker help-drains the task
// queue (executing other queued work) instead of sleeping. This is what lets
// `syclrt::Queue` submissions and `run_model_benchmarks` nest — e.g. a
// kernel launch from inside a pooled benchmark loop — which previously
// deadlocked once every worker sat in a nested wait.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace aks::common {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count), partitioned into contiguous
  /// chunks claimed dynamically by the workers and the calling thread.
  /// Blocks until all invocations complete. Safe to call from inside a task
  /// running on this pool (see the reentrancy guarantee above). Exceptions
  /// from `fn` are captured and the first one is rethrown.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Enqueues one fire-and-forget task and returns immediately; tasks run
  /// FIFO on the workers. The caller owns result/error delivery (e.g. via a
  /// captured std::promise — see serve::SelectionService::select_async). A
  /// posted task may itself call parallel_for on this pool (the reentrancy
  /// guarantee covers it) and blocked parallel_for callers help-drain
  /// posted tasks, so posting from inside a task cannot deadlock the pool.
  void post(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct ParallelJob;

  void worker_loop();
  void enqueue(std::function<void()> task);
  /// Pops and runs one queued task if any is pending; used by blocked
  /// parallel_for callers on worker threads to help drain the queue.
  bool try_run_one_task();

  std::vector<std::thread> workers_;
  // Guards the task queue and the stop flag; workers block on cv_ with only
  // this lock held. Leaf lock by construction: enqueue/pop never call user
  // code under it (tasks run after the guard scope closes).
  aks::Mutex mutex_{"pool.queue"};
  std::queue<std::function<void()>> tasks_ AKS_GUARDED_BY(mutex_);
  aks::CondVar cv_;
  bool stopping_ AKS_GUARDED_BY(mutex_) = false;
};

}  // namespace aks::common
