// Lightweight concurrent metrics: atomic counters, double accumulators and
// fixed-bucket latency histograms, grouped in a registry exportable to CSV.
//
// Built for the serving layer (src/serve) but generic: every instrument is
// safe to update from any number of threads with relaxed atomics, so the
// hot-path cost is one uncontended atomic RMW. Reads are monotonic but not
// snapshot-consistent across instruments — fine for operational telemetry,
// not for invariant checks.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "common/timer.hpp"

namespace aks::common {

/// Monotonically increasing event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Concurrent sum of doubles (e.g. total trial seconds). Uses a CAS loop
/// rather than atomic<double>::fetch_add for toolchain portability.
class Accumulator {
 public:
  void add(double v) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + v,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram with fixed power-of-two nanosecond buckets: bucket i
/// counts samples in [2^i, 2^(i+1)) ns, with the first and last buckets
/// absorbing underflow/overflow. 40 buckets span 1 ns .. ~18 min, which
/// covers everything from a cache-hit select() to a full warm-up sweep.
/// Quantiles are bucket upper bounds, i.e. conservative to within 2x.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record_seconds(double seconds);

  /// Records a dimensionless count (batch size, queue depth) into the same
  /// power-of-two buckets, one unit per nanosecond slot: bucket i counts
  /// values in [2^i, 2^(i+1)). Exported quantiles/means then read as plain
  /// values after multiplying the *_seconds fields by 1e9.
  void record_value(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double total_seconds() const { return total_.value(); }
  [[nodiscard]] double mean_seconds() const;
  /// Upper bound of the bucket holding the q-quantile sample (q in [0, 1]).
  [[nodiscard]] double quantile_seconds(double q) const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Exclusive upper edge of bucket i, in seconds.
  [[nodiscard]] static double bucket_upper_seconds(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  Accumulator total_;
};

/// Records the lifetime of the scope into a histogram on destruction.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram& histogram)
      : histogram_(histogram) {}
  ~ScopedLatency() { histogram_.record_seconds(timer_.elapsed_seconds()); }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram& histogram_;
  Timer timer_;
};

/// Named instruments with stable addresses: references returned by the
/// lookup methods stay valid for the registry's lifetime, so hot paths can
/// resolve a metric once and update it lock-free afterwards.
class MetricsRegistry {
 public:
  /// Lookups create the instrument on first use. Names must be non-empty
  /// and free of CSV metadata characters (comma, double quote, newline) —
  /// offenders throw `common::Error` at registration rather than corrupting
  /// the write_csv schema at export time.
  Counter& counter(const std::string& name);
  Accumulator& accumulator(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// One row per (metric, field): `name,kind,field,value`. Counters and
  /// accumulators export `value`; histograms export count, total_seconds,
  /// mean_seconds and p50/p90/p99 bucket upper bounds. Rows are sorted by
  /// name for deterministic output.
  void write_csv(std::ostream& out) const;
  [[nodiscard]] std::string to_csv() const;

 private:
  // Guards the name → instrument maps only; the instruments themselves are
  // lock-free and deliberately NOT guarded (their stable addresses are the
  // whole point). Leaf lock: nothing is acquired under it.
  mutable aks::Mutex mutex_{"metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      AKS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Accumulator>> accumulators_
      AKS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      AKS_GUARDED_BY(mutex_);
};

}  // namespace aks::common
