#include "common/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "common/error.hpp"

namespace aks::common {

namespace {
// Which pool (if any) the current thread belongs to. Lets parallel_for
// detect nested calls and switch from a blocking wait to the help-drain
// path, which is what makes nesting deadlock-free.
thread_local const ThreadPool* tl_worker_pool = nullptr;
}  // namespace

// One parallel_for invocation. Chunks are claimed via `next` by any thread
// running run_chunks() — the enqueued helper tasks and the caller itself.
// The job outlives the caller via shared_ptr: a helper task that wakes up
// after every chunk was claimed only touches `next` and exits, so the
// caller may safely return (and destroy `fn`) once `done == chunks`.
struct ThreadPool::ParallelJob {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::size_t chunks = 0;
  std::size_t count = 0;
  std::size_t per_chunk = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  aks::Mutex done_mutex{"pool.job.done"};
  aks::CondVar done_cv;
  aks::Mutex error_mutex{"pool.job.error"};
  std::exception_ptr error AKS_GUARDED_BY(error_mutex);

  [[nodiscard]] bool finished() const {
    return done.load(std::memory_order_acquire) == chunks;
  }

  void run_chunks() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t begin = c * per_chunk;
      const std::size_t end = std::min(count, begin + per_chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        aks::MutexLock lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        aks::MutexLock lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    aks::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return tl_worker_pool == this; }

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      aks::MutexLock lock(mutex_);
      // Explicit predicate loop (not cv.wait(lock, pred)): thread-safety
      // analysis treats lambdas as separate functions, so the inline form
      // keeps the guarded reads visible to the checker.
      while (!stopping_ && tasks_.empty()) cv_.wait(lock);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::post(std::function<void()> task) { enqueue(std::move(task)); }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    aks::MutexLock lock(mutex_);
    AKS_CHECK(!stopping_, "enqueue on stopped thread pool");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one_task() {
  std::function<void()> task;
  {
    aks::MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, num_threads());
  if (chunks <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<ParallelJob>();
  job->chunks = chunks;
  job->count = count;
  job->per_chunk = (count + chunks - 1) / chunks;
  job->fn = &fn;

  for (std::size_t h = 1; h < chunks; ++h) {
    enqueue([job] { job->run_chunks(); });
  }
  // The caller claims chunks too: the loop makes progress even when every
  // worker is busy (or is itself blocked in a nested parallel_for), which
  // is the reentrancy guarantee documented in the header.
  job->run_chunks();

  if (!job->finished()) {
    if (on_worker_thread()) {
      // Nested call: our remaining chunks are executing on other workers.
      // Help drain the queue (other jobs' chunks) instead of sleeping so
      // the pool as a whole keeps making progress; fall back to a short
      // timed wait when the queue is empty.
      while (!job->finished()) {
        if (try_run_one_task()) continue;
        aks::MutexLock lock(job->done_mutex);
        if (!job->finished()) {
          job->done_cv.wait_for(lock, std::chrono::microseconds(200));
        }
      }
    } else {
      aks::MutexLock lock(job->done_mutex);
      while (!job->finished()) job->done_cv.wait(lock);
    }
  }
  // Snapshot under error_mutex: run_chunks writes `error` under the same
  // lock, and the final writer may be a helper task whose only
  // happens-before edge to us is the done counter (see run_chunks).
  std::exception_ptr error;
  {
    aks::MutexLock lock(job->error_mutex);
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace aks::common
