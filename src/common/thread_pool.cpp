#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "common/error.hpp"

namespace aks::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    AKS_CHECK(!stopping_, "enqueue on stopped thread pool");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, num_threads());
  if (chunks <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  Shared shared;
  shared.remaining.store(chunks, std::memory_order_relaxed);

  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(count, begin + per_chunk);
    enqueue([&shared, &fn, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(shared.error_mutex);
        if (!shared.error) shared.error = std::current_exception();
      }
      if (shared.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(shared.done_mutex);
        shared.done_cv.notify_all();
      }
    });
  }

  std::unique_lock lock(shared.done_mutex);
  shared.done_cv.wait(lock, [&shared] {
    return shared.remaining.load(std::memory_order_acquire) == 0;
  });
  if (shared.error) std::rethrow_exception(shared.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace aks::common
