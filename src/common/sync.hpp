// Annotated synchronization primitives — the enforcement point of the
// concurrency contract.
//
// aks::Mutex / aks::SharedMutex / aks::CondVar wrap the std primitives with
// two additions:
//
//  1. Clang Thread Safety Analysis capabilities (thread_annotations.hpp):
//     members declared `AKS_GUARDED_BY(mutex_)` and functions declared
//     `AKS_REQUIRES(mutex_)` are checked at compile time under
//     `-Wthread-safety`.
//  2. Lockdep instrumentation (check/lockdep.hpp): every mutex belongs to a
//     named lock class, and every nested acquisition feeds the global
//     lock-order graph, so any binary doubles as a deterministic
//     deadlock-potential detector (`akscheck locks`, AKS_LOCKDEP_OUT).
//
// Usage mirrors the std types it replaces:
//
//   aks::Mutex mutex_{"store.state"};
//   std::map<Key, Record> records_ AKS_GUARDED_BY(mutex_);
//   ...
//   aks::MutexLock lock(mutex_);       // std::lock_guard / unique_lock
//   aks::ReaderMutexLock lock(mutex_); // std::shared_lock
//   aks::WriterMutexLock lock(mutex_); // std::unique_lock on shared_mutex
//
// Condition waits take the guard itself, and callers write the predicate
// loop explicitly — TSA analyzes lambdas as separate functions, so the
// `cv.wait(lock, pred)` form defeats the analysis:
//
//   aks::MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);
//
// Lockdep records the acquisition edge *before* blocking on the underlying
// mutex, so a report captured from another thread names the cycle even
// while the deadlock is in progress.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "check/lockdep.hpp"
#include "common/thread_annotations.hpp"

namespace aks {

/// Exclusive mutex carrying a lock-class name. Instances constructed with
/// the same name (all shard stripes, all single-flight entries) share one
/// lockdep class, keeping the order graph small and schedule-independent.
class AKS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* lock_class)
      : class_id_(check::lockdep::register_class(lock_class)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AKS_ACQUIRE() {
    check::lockdep::on_acquire(class_id_);
    mutex_.lock();
  }
  void unlock() AKS_RELEASE() {
    check::lockdep::on_release(class_id_);
    mutex_.unlock();
  }

  [[nodiscard]] std::uint32_t lock_class() const { return class_id_; }

 private:
  friend class CondVar;
  std::mutex mutex_;
  std::uint32_t class_id_;
};

/// Reader/writer mutex; shared acquisitions feed the same lockdep class as
/// exclusive ones (a shared hold still blocks writers, so it participates
/// in deadlock cycles).
class AKS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* lock_class)
      : class_id_(check::lockdep::register_class(lock_class)) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() AKS_ACQUIRE() {
    check::lockdep::on_acquire(class_id_);
    mutex_.lock();
  }
  void unlock() AKS_RELEASE() {
    check::lockdep::on_release(class_id_);
    mutex_.unlock();
  }
  void lock_shared() AKS_ACQUIRE_SHARED() {
    check::lockdep::on_acquire(class_id_);
    mutex_.lock_shared();
  }
  void unlock_shared() AKS_RELEASE_SHARED() {
    check::lockdep::on_release(class_id_);
    mutex_.unlock_shared();
  }

  [[nodiscard]] std::uint32_t lock_class() const { return class_id_; }

 private:
  std::shared_mutex mutex_;
  std::uint32_t class_id_;
};

/// RAII exclusive guard (replaces std::lock_guard / std::unique_lock).
/// Supports mid-scope unlock()/lock() for drop-the-lock-and-work patterns;
/// the destructor releases only if still held.
class AKS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) AKS_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
  }
  ~MutexLock() AKS_RELEASE() {
    if (owned_) mutex_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() AKS_RELEASE() {
    mutex_->unlock();
    owned_ = false;
  }
  void lock() AKS_ACQUIRE() {
    mutex_->lock();
    owned_ = true;
  }
  [[nodiscard]] bool owns_lock() const { return owned_; }

 private:
  friend class CondVar;
  Mutex* mutex_;
  bool owned_ = true;
};

/// RAII exclusive guard over a SharedMutex (replaces std::unique_lock).
class AKS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) AKS_ACQUIRE(mutex)
      : mutex_(&mutex) {
    mutex_->lock();
  }
  ~WriterMutexLock() AKS_RELEASE() { mutex_->unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mutex_;
};

/// RAII shared guard over a SharedMutex (replaces std::shared_lock).
class AKS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) AKS_ACQUIRE_SHARED(mutex)
      : mutex_(&mutex) {
    mutex_->lock_shared();
  }
  ~ReaderMutexLock() AKS_RELEASE_SHARED() { mutex_->unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mutex_;
};

/// Condition variable bound to aks::Mutex guards. Waits release and
/// re-acquire through the annotated mutex so lockdep sees the hand-off, and
/// report blocking-while-holding-other-locks (the lost-wakeup shape).
///
/// TSA cannot express "temporarily releases the caller's capability", so
/// wait/wait_for carry no annotation; the caller's guard object keeps the
/// capability nominally held across the call, which matches the state on
/// return. Callers must re-check predicates in a loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& guard) {
    Mutex& mutex = *guard.mutex_;
    check::lockdep::on_wait_block(mutex.class_id_);
    check::lockdep::on_release(mutex.class_id_);
    {
      std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
      cv_.wait(native);
      native.release();  // ownership returns to `guard`
    }
    check::lockdep::on_acquire(mutex.class_id_);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& guard,
                          const std::chrono::duration<Rep, Period>& timeout) {
    Mutex& mutex = *guard.mutex_;
    check::lockdep::on_wait_block(mutex.class_id_);
    check::lockdep::on_release(mutex.class_id_);
    std::cv_status status;
    {
      std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
      status = cv_.wait_for(native, timeout);
      native.release();
    }
    check::lockdep::on_acquire(mutex.class_id_);
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aks
