#include "serve/selection_service.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/online.hpp"
#include "core/selector.hpp"
#include "store/selection_store.hpp"
#include "trace/trace.hpp"

namespace aks::serve {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(1, n));
}

// select() latency is *sampled* (1 request in 32 per thread): recording
// every call would put three shared atomic RMWs on the cache-hit path and
// the resulting cache-line bouncing flattens throughput scaling. The first
// request of every thread is always sampled.
constexpr std::uint32_t kLatencySampleStride = 32;
thread_local std::uint32_t tl_latency_tick = 0;

}  // namespace

SelectionService::SelectionService(WarmUpFn warm_up, ServiceOptions options)
    : warm_up_(std::move(warm_up)),
      fallback_(options.fallback),
      hits_(metrics_.counter("serve.hits")),
      misses_(metrics_.counter("serve.misses")),
      coalesced_waits_(metrics_.counter("serve.coalesced_waits")),
      duplicate_sweeps_(metrics_.counter("serve.duplicate_sweeps")),
      warmup_failures_(metrics_.counter("serve.warmup_failures")),
      fallbacks_served_(metrics_.counter("serve.fallbacks_served")),
      preloaded_(metrics_.counter("serve.preloaded")),
      transfer_priors_(metrics_.counter("serve.transfer_priors")),
      provisional_refreshes_(metrics_.counter("serve.provisional_refreshes")),
      warmup_seconds_(metrics_.accumulator("serve.warmup_seconds")),
      select_latency_(metrics_.histogram("serve.select_latency")),
      warmup_latency_(metrics_.histogram("serve.warmup_latency")) {
  AKS_CHECK(warm_up_ != nullptr, "selection service needs a warm-up function");
  const std::size_t shards = round_up_pow2(options.num_shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
}

SelectionService::SelectionService(const select::KernelSelector& selector,
                                   ServiceOptions options)
    : SelectionService(
          [&selector](const gemm::GemmShape& shape) {
            return selector.select_config(shape);
          },
          options) {
  record_source_ = store::Source::kLearnedSelector;
}

SelectionService::SelectionService(select::OnlineTuner& tuner,
                                   ServiceOptions options)
    : SelectionService(
          [&tuner](const gemm::GemmShape& shape) {
            return tuner.select(shape);
          },
          options) {
  tuner_ = &tuner;
}

SelectionService::Shard& SelectionService::shard_for(
    const gemm::GemmShape& shape) {
  const std::size_t h = std::hash<gemm::GemmShape>{}(shape);
  return *shards_[h & shard_mask_];
}

gemm::KernelConfig SelectionService::select(const gemm::GemmShape& shape) {
  std::optional<common::ScopedLatency> latency;
  if ((tl_latency_tick++ & (kLatencySampleStride - 1)) == 0) {
    latency.emplace(select_latency_);
  }
  const std::size_t shard_index =
      std::hash<gemm::GemmShape>{}(shape) & shard_mask_;
  Shard& shard = *shards_[shard_index];

  trace::Span span;
  if (trace::enabled()) {
    span.arm("serve.select",
             {trace::arg("m", shape.m), trace::arg("k", shape.k),
              trace::arg("n", shape.n), trace::arg("shard", shard_index)});
  }

  std::shared_ptr<Entry> entry;
  bool leader = false;
  {
    std::lock_guard lock(shard.m);
    auto& slot = shard.map[shape];
    if (!slot) {
      slot = std::make_shared<Entry>();
      leader = true;
    }
    entry = slot;
  }

  if (leader) {
    // Store-backed services consult the nearest-device prior before paying
    // for a sweep; a hit publishes the entry (provisionally) sweep-free.
    if (store_ != nullptr && try_transfer_prior(shape, entry)) {
      span.annotate(trace::arg("outcome", "transfer_prior"));
      return entry->config;
    }
    span.annotate(trace::arg("outcome", "miss"));
    return run_warm_up(shape, shard, entry);
  }

  if (entry->ready.load(std::memory_order_acquire)) {
    // Hot path: published entries are immutable, no entry lock needed, and
    // the hit count goes to the shard's stripe, not a global line.
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    span.annotate(trace::arg("outcome", "hit"));
  } else {
    coalesced_waits_.add();
    span.annotate(trace::arg("outcome", "coalesced_wait"));
    std::unique_lock lock(entry->m);
    entry->cv.wait(lock, [&entry] {
      return entry->ready.load(std::memory_order_acquire);
    });
  }
  if (entry->error) std::rethrow_exception(entry->error);
  if (entry->fallback) {
    fallbacks_served_.add();
    span.annotate(trace::arg("fallback", std::uint64_t{1}));
  }
  return entry->config;
}

std::size_t SelectionService::warm_start(store::SelectionStore& store,
                                         const perf::DeviceSpec& device) {
  store_ = &store;
  device_ = device;
  device_fingerprint_ = device.fingerprint();
  // Record our own profile so entries flushed from this run are
  // transferable to *other* devices later.
  store.put_device(device);

  const auto& configs = gemm::enumerate_configs();
  std::size_t seeded = 0;
  for (const store::SelectionRecord& record : store.selections()) {
    if (record.device_fingerprint != device_fingerprint_) continue;
    Shard& shard = shard_for(record.shape);
    std::lock_guard lock(shard.m);
    auto& slot = shard.map[record.shape];
    if (slot) continue;  // already cached (warm_start called twice)
    slot = std::make_shared<Entry>();
    slot->config = configs[record.config_index];
    // A transferred record was never measured here: serve it, but leave it
    // provisional so refresh_provisional() still re-tunes it locally.
    slot->provisional = record.source == store::Source::kTransfer;
    slot->ready.store(true, std::memory_order_release);
    if (!slot->provisional && tuner_ != nullptr) {
      (void)tuner_->preseed(record.shape, record.config_index);
    }
    preloaded_.add();
    ++seeded;
  }
  return seeded;
}

bool SelectionService::try_transfer_prior(
    const gemm::GemmShape& shape, const std::shared_ptr<Entry>& entry) {
  const auto prior = store_->lookup_transfer(*device_, shape);
  if (!prior.has_value()) return false;

  const gemm::KernelConfig config =
      gemm::enumerate_configs()[prior->record.config_index];
  {
    std::lock_guard lock(entry->m);
    entry->config = config;
    entry->provisional = true;
    entry->ready.store(true, std::memory_order_release);
  }
  entry->cv.notify_all();
  transfer_priors_.add();

  // Persist the adoption under *our* fingerprint, tagged kTransfer so a
  // later warm_start still knows it is due a local re-tune.
  store::SelectionRecord record = prior->record;
  record.device_fingerprint = device_fingerprint_;
  record.source = store::Source::kTransfer;
  record.sweeps = 0;
  (void)store_->put(std::move(record));
  return true;
}

void SelectionService::record_to_store(const gemm::GemmShape& shape,
                                       const gemm::KernelConfig& config,
                                       double seconds) {
  store::SelectionRecord record;
  record.device_fingerprint = device_fingerprint_;
  record.shape = shape;
  try {
    record.config_index =
        static_cast<std::uint32_t>(gemm::config_index(config));
  } catch (const common::Error&) {
    return;  // non-canonical config (custom warm-up fn): nothing to persist
  }
  record.warmup_seconds = seconds;
  record.sweeps = 1;
  if (tuner_ != nullptr) {
    record.quarantined_candidates =
        static_cast<std::uint32_t>(tuner_->quarantined().size());
  }
  record.source = record_source_;
  (void)store_->put(std::move(record));
}

std::vector<gemm::GemmShape> SelectionService::provisional_shapes() const {
  std::vector<gemm::GemmShape> shapes;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->m);
    for (const auto& [shape, entry] : shard->map) {
      if (entry->ready.load(std::memory_order_acquire) && entry->provisional) {
        shapes.push_back(shape);
      }
    }
  }
  std::sort(shapes.begin(), shapes.end());
  return shapes;
}

std::size_t SelectionService::refresh_provisional() {
  std::size_t refreshed = 0;
  for (const gemm::GemmShape& shape : provisional_shapes()) {
    gemm::KernelConfig config{};
    common::Timer timer;
    try {
      config = warm_up_(shape);
    } catch (...) {
      warmup_failures_.add();
      continue;  // the prior stays in place; a later refresh retries
    }
    const double seconds = timer.elapsed_seconds();
    warmup_latency_.record_seconds(seconds);
    warmup_seconds_.add(seconds);

    // Published entries are immutable, so the refreshed answer goes in as
    // a *new* ready entry swapped under the shard lock; in-flight readers
    // of the old entry still see the coherent prior.
    auto fresh = std::make_shared<Entry>();
    fresh->config = config;
    fresh->ready.store(true, std::memory_order_release);
    Shard& shard = shard_for(shape);
    {
      std::lock_guard lock(shard.m);
      shard.map[shape] = std::move(fresh);
    }
    provisional_refreshes_.add();
    ++refreshed;
    if (store_ != nullptr) record_to_store(shape, config, seconds);
  }
  return refreshed;
}

gemm::KernelConfig SelectionService::run_warm_up(
    const gemm::GemmShape& shape, Shard& shard,
    const std::shared_ptr<Entry>& entry) {
  misses_.add();
  if (entry->sweeps.fetch_add(1, std::memory_order_relaxed) > 0) {
    duplicate_sweeps_.add();
  }

  trace::Span span;
  if (trace::enabled()) {
    span.arm("serve.warmup",
             {trace::arg("m", shape.m), trace::arg("k", shape.k),
              trace::arg("n", shape.n)});
  }
  gemm::KernelConfig config{};
  std::exception_ptr error;
  common::Timer timer;
  try {
    config = warm_up_(shape);
  } catch (...) {
    error = std::current_exception();
  }
  const double seconds = timer.elapsed_seconds();
  warmup_latency_.record_seconds(seconds);
  warmup_seconds_.add(seconds);
  span.annotate(trace::arg("seconds", seconds));

  bool degraded = false;
  if (error) {
    warmup_failures_.add();
    span.annotate(trace::arg(
        "outcome", fallback_.has_value() ? "fallback" : "error"));
    if (fallback_.has_value()) {
      // Degradation contract: serve the fallback to the leader and every
      // waiter instead of propagating; select() never throws. The entry is
      // still dropped below so the next request retries the warm-up.
      config = *fallback_;
      error = nullptr;
      degraded = true;
    }
  }

  {
    std::lock_guard lock(entry->m);
    entry->config = config;
    entry->error = error;
    entry->fallback = degraded;
    entry->ready.store(true, std::memory_order_release);
  }
  entry->cv.notify_all();

  if (error || degraded) {
    // Drop the failed entry so a later request retries the warm-up;
    // current waiters still observe the published result (error or
    // fallback) through their Entry ref.
    std::lock_guard lock(shard.m);
    const auto it = shard.map.find(shape);
    if (it != shard.map.end() && it->second == entry) shard.map.erase(it);
  }
  if (error) std::rethrow_exception(error);
  if (degraded) {
    // A fallback served over a failed warm-up is not a tuned decision —
    // never persisted, so a warm start cannot resurrect it.
    fallbacks_served_.add();
    return config;
  }
  // Write-behind: a successfully tuned answer becomes a store record (in
  // memory only — flushing is the owner's call, off the serving path).
  if (store_ != nullptr) record_to_store(shape, config, seconds);
  return config;
}

void SelectionService::sync_hits() const {
  std::lock_guard lock(sync_mutex_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hits.load(std::memory_order_relaxed);
  }
  // Shard stripes only grow and synced_hits_ (the total already folded in)
  // only advances here under the sync mutex, so the delta is non-negative
  // and never double-counted — independent of what else hits_ reports.
  hits_.add(total - synced_hits_);
  synced_hits_ = total;
}

const common::MetricsRegistry& SelectionService::metrics() const {
  sync_hits();
  return metrics_;
}

ServiceStats SelectionService::stats() const {
  ServiceStats stats;
  sync_hits();
  stats.hits = hits_.value();
  stats.misses = misses_.value();
  stats.coalesced_waits = coalesced_waits_.value();
  stats.duplicate_sweeps = duplicate_sweeps_.value();
  stats.warmup_failures = warmup_failures_.value();
  stats.fallbacks_served = fallbacks_served_.value();
  stats.preloaded = preloaded_.value();
  stats.transfer_priors = transfer_priors_.value();
  stats.provisional_refreshes = provisional_refreshes_.value();
  stats.warmup_seconds = warmup_seconds_.value();
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->m);
    stats.cached_shapes += shard->map.size();
  }
  return stats;
}

}  // namespace aks::serve
