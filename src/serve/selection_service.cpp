#include "serve/selection_service.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/online.hpp"
#include "core/selector.hpp"
#include "store/selection_store.hpp"
#include "trace/trace.hpp"

namespace aks::serve {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(1, n));
}

// select() latency is *sampled* (1 request in 32 per thread): recording
// every call would put three shared atomic RMWs on the cache-hit path and
// the resulting cache-line bouncing flattens throughput scaling. The first
// request of every thread is always sampled.
constexpr std::uint32_t kLatencySampleStride = 32;
thread_local std::uint32_t tl_latency_tick = 0;

}  // namespace

SelectionService::SelectionService(WarmUpFn warm_up, ServiceOptions options)
    : warm_up_(std::move(warm_up)),
      fallback_(options.fallback),
      async_pool_(options.async_pool),
      hits_(metrics_.counter("serve.hits")),
      misses_(metrics_.counter("serve.misses")),
      coalesced_waits_(metrics_.counter("serve.coalesced_waits")),
      duplicate_sweeps_(metrics_.counter("serve.duplicate_sweeps")),
      warmup_failures_(metrics_.counter("serve.warmup_failures")),
      fallbacks_served_(metrics_.counter("serve.fallbacks_served")),
      preloaded_(metrics_.counter("serve.preloaded")),
      transfer_priors_(metrics_.counter("serve.transfer_priors")),
      provisional_refreshes_(metrics_.counter("serve.provisional_refreshes")),
      batch_requests_(metrics_.counter("serve.batch_requests")),
      batch_shapes_(metrics_.counter("serve.batch_shapes")),
      batch_dedup_(metrics_.counter("serve.batch_dedup")),
      batch_wave_shapes_(metrics_.counter("serve.batch_wave_shapes")),
      warmup_seconds_(metrics_.accumulator("serve.warmup_seconds")),
      select_latency_(metrics_.histogram("serve.select_latency")),
      warmup_latency_(metrics_.histogram("serve.warmup_latency")),
      batch_size_(metrics_.histogram("serve.batch_size")),
      batch_amortized_latency_(
          metrics_.histogram("serve.batch_amortized_latency")) {
  AKS_CHECK(warm_up_ != nullptr, "selection service needs a warm-up function");
  const std::size_t shards = round_up_pow2(options.num_shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
}

SelectionService::SelectionService(const select::KernelSelector& selector,
                                   ServiceOptions options)
    : SelectionService(
          [&selector](const gemm::GemmShape& shape) {
            return selector.select_config(shape);
          },
          options) {
  record_source_ = store::Source::kLearnedSelector;
}

SelectionService::SelectionService(select::OnlineTuner& tuner,
                                   ServiceOptions options)
    : SelectionService(
          [&tuner](const gemm::GemmShape& shape) {
            return tuner.select(shape);
          },
          options) {
  tuner_ = &tuner;
}

SelectionService::Shard& SelectionService::shard_for(
    const gemm::GemmShape& shape) {
  const std::size_t h = std::hash<gemm::GemmShape>{}(shape);
  return *shards_[h & shard_mask_];
}

gemm::KernelConfig SelectionService::select(const gemm::GemmShape& shape) {
  std::optional<common::ScopedLatency> latency;
  if ((tl_latency_tick++ & (kLatencySampleStride - 1)) == 0) {
    latency.emplace(select_latency_);
  }
  const std::size_t shard_index =
      std::hash<gemm::GemmShape>{}(shape) & shard_mask_;
  Shard& shard = *shards_[shard_index];

  trace::Span span;
  if (trace::enabled()) {
    span.arm("serve.select",
             {trace::arg("m", shape.m), trace::arg("k", shape.k),
              trace::arg("n", shape.n), trace::arg("shard", shard_index)});
  }

  std::shared_ptr<Entry> entry;
  bool leader = false;
  {
    aks::MutexLock lock(shard.m);
    auto& slot = shard.map[shape];
    if (!slot) {
      slot = std::make_shared<Entry>();
      leader = true;
    }
    entry = slot;
  }

  if (leader) {
    // Store-backed services consult the nearest-device prior before paying
    // for a sweep; a hit publishes the entry (provisionally) sweep-free.
    if (store_ != nullptr && try_transfer_prior(shape, entry)) {
      span.annotate(trace::arg("outcome", "transfer_prior"));
      return entry->config;
    }
    span.annotate(trace::arg("outcome", "miss"));
    return run_warm_up(shape, shard, entry);
  }

  if (entry->ready.load(std::memory_order_acquire)) {
    // Hot path: published entries are immutable, no entry lock needed, and
    // the hit count goes to the shard's stripe, not a global line.
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    span.annotate(trace::arg("outcome", "hit"));
  } else {
    coalesced_waits_.add();
    span.annotate(trace::arg("outcome", "coalesced_wait"));
    aks::MutexLock lock(entry->m);
    while (!entry->ready.load(std::memory_order_acquire)) {
      entry->cv.wait(lock);
    }
  }
  if (entry->error) std::rethrow_exception(entry->error);
  if (entry->fallback) {
    fallbacks_served_.add();
    span.annotate(trace::arg("fallback", std::uint64_t{1}));
  }
  return entry->config;
}

std::vector<gemm::KernelConfig> SelectionService::select_batch(
    std::span<const gemm::GemmShape> shapes) {
  batch_requests_.add();
  const std::size_t n = shapes.size();
  batch_shapes_.add(n);
  batch_size_.record_value(n);
  if (n == 0) return {};

  common::Timer timer;
  trace::Span span;
  if (trace::enabled()) {
    span.arm("serve.select_batch", {trace::arg("batch", n)});
  }

  // -- Deduplicate: one open-addressed pass assigns every input a unique id
  // in first-occurrence input order (so unique id order *is* the order a
  // sequential caller would first see each shape — the order the miss wave
  // must run in, because the tuner's quarantine health evolves with it).
  constexpr std::uint32_t kEmpty = std::numeric_limits<std::uint32_t>::max();
  const std::size_t table_size = std::bit_ceil(2 * n);
  const std::size_t table_mask = table_size - 1;
  std::vector<std::uint32_t> table(table_size, kEmpty);
  std::vector<std::uint32_t> remap(n);
  std::vector<std::uint32_t> uniq_first;  // input index of first occurrence
  std::vector<std::size_t> uniq_hash;     // hashed once, reused for shards
  uniq_first.reserve(n);
  uniq_hash.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t h = std::hash<gemm::GemmShape>{}(shapes[i]);
    std::size_t slot = h & table_mask;
    while (true) {
      const std::uint32_t id = table[slot];
      if (id == kEmpty) {
        table[slot] = static_cast<std::uint32_t>(uniq_first.size());
        remap[i] = table[slot];
        uniq_first.push_back(static_cast<std::uint32_t>(i));
        uniq_hash.push_back(h);
        break;
      }
      if (uniq_hash[id] == h && shapes[uniq_first[id]] == shapes[i]) {
        remap[i] = id;
        break;
      }
      slot = (slot + 1) & table_mask;
    }
  }
  const std::size_t nu = uniq_first.size();
  span.annotate(trace::arg("dedup", n - nu));

  // -- Per-unique resolution state.
  enum : std::uint8_t { kPending, kDone, kForeign };
  std::vector<std::uint8_t> ustate(nu, kPending);
  std::vector<gemm::KernelConfig> uconfig(nu);
  std::vector<std::shared_ptr<Entry>> uentry(nu);
  std::vector<std::exception_ptr> uerror(nu);
  // A unique whose answer came from a degraded path (fallback or error):
  // its entry was dropped, so later occurrences must re-select — exactly
  // what a sequential caller would do.
  std::vector<std::uint8_t> udegraded(nu, 0);
  std::vector<std::uint32_t> wave;  // uniques this batch must warm up

  // -- Group uniques by shard and classify each group under one shard lock
  // (a sequential caller would lock per request; the batch pays one lock
  // per *shard touched*).
  std::vector<std::uint32_t> order(nu);
  for (std::size_t u = 0; u < nu; ++u) {
    order[u] = static_cast<std::uint32_t>(u);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return (uniq_hash[a] & shard_mask_) <
                            (uniq_hash[b] & shard_mask_);
                   });
  std::size_t shard_groups = 0;
  std::uint64_t ready_fallbacks = 0;
  for (std::size_t g = 0; g < nu;) {
    const std::size_t shard_index = uniq_hash[order[g]] & shard_mask_;
    Shard& shard = *shards_[shard_index];
    ++shard_groups;
    std::uint64_t local_hits = 0;
    aks::MutexLock lock(shard.m);
    for (; g < nu && (uniq_hash[order[g]] & shard_mask_) == shard_index; ++g) {
      const std::uint32_t u = order[g];
      auto& slot = shard.map[shapes[uniq_first[u]]];
      if (!slot) {
        slot = std::make_shared<Entry>();
        uentry[u] = slot;
        wave.push_back(u);
        continue;  // this batch leads the warm-up (after the lock pass)
      }
      if (!slot->ready.load(std::memory_order_acquire)) {
        uentry[u] = slot;  // another thread's in-flight warm-up
        ustate[u] = kForeign;
        continue;
      }
      // Published entries are immutable: reading past the acquire on
      // `ready` is safe without the entry lock, same as select()'s hot
      // path. A ready entry carrying an error/fallback is the transient
      // window before its leader drops it — a sequential select() would
      // count the hit and adopt the published outcome, so the batch does.
      ++local_hits;
      ustate[u] = kDone;
      if (slot->error) {
        uerror[u] = slot->error;
        udegraded[u] = 1;
      } else {
        uconfig[u] = slot->config;
        if (slot->fallback) {
          udegraded[u] = 1;
          ++ready_fallbacks;
        }
      }
    }
    shard.hits.fetch_add(local_hits, std::memory_order_relaxed);
  }
  if (ready_fallbacks > 0) fallbacks_served_.add(ready_fallbacks);
  span.annotate(trace::arg("shard_groups", shard_groups));
  span.annotate(trace::arg("miss_wave", wave.size()));

  // -- Miss wave: warm every cold unique through the same single-flight
  // entries select() uses, sequentially in first-occurrence input order
  // (unique ids are assigned in that order, so sorting by id restores it
  // across shard groups). Store write-behind records are deferred into one
  // put_batch below. A failure degrades only its own shape; the wave always
  // completes, so no entry is ever left unpublished.
  std::sort(wave.begin(), wave.end());
  batch_wave_shapes_.add(wave.size());
  std::vector<store::SelectionRecord> wave_records;
  for (const std::uint32_t u : wave) {
    const gemm::GemmShape& shape = shapes[uniq_first[u]];
    Shard& shard = *shards_[uniq_hash[u] & shard_mask_];
    ustate[u] = kDone;
    if (store_ != nullptr && try_transfer_prior(shape, uentry[u])) {
      uconfig[u] = uentry[u]->config;
      continue;
    }
    try {
      uconfig[u] = run_warm_up(shape, shard, uentry[u],
                               store_ != nullptr ? &wave_records : nullptr);
      udegraded[u] = uentry[u]->fallback ? 1 : 0;
    } catch (...) {
      uerror[u] = std::current_exception();
      udegraded[u] = 1;
    }
  }
  if (store_ != nullptr && !wave_records.empty()) {
    // One write-behind enqueue for the whole wave; its cost stays on the
    // cold-path ledger, same as the per-shape enqueue it replaces.
    common::Timer enqueue_timer;
    (void)store_->put_batch(std::move(wave_records));
    warmup_seconds_.add(enqueue_timer.elapsed_seconds());
  }

  // -- Adopt foreign in-flight warm-ups (another thread leads; we wait,
  // counted as coalesced, exactly like select() would).
  for (std::size_t u = 0; u < nu; ++u) {
    if (ustate[u] != kForeign) continue;
    const std::shared_ptr<Entry>& entry = uentry[u];
    coalesced_waits_.add();
    {
      aks::MutexLock lock(entry->m);
      while (!entry->ready.load(std::memory_order_acquire)) {
        entry->cv.wait(lock);
      }
    }
    ustate[u] = kDone;
    if (entry->error) {
      uerror[u] = entry->error;
      udegraded[u] = 1;
    } else {
      uconfig[u] = entry->config;
      if (entry->fallback) {
        fallbacks_served_.add();
        udegraded[u] = 1;
      }
    }
  }

  // -- Fan out to input order. Duplicates of a healthy unique are answered
  // in place (counted as cache hits, like the sequential re-select they
  // replace); duplicates of a degraded unique re-select for real, because
  // the degraded entry was dropped and a sequential caller would retry the
  // warm-up. The first error in input order is rethrown only now, when the
  // whole wave has published — no entry is left dangling for waiters.
  std::vector<gemm::KernelConfig> out(n);
  std::uint64_t deduped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t u = remap[i];
    if (i == uniq_first[u]) {
      if (uerror[u]) std::rethrow_exception(uerror[u]);
      out[i] = uconfig[u];
      continue;
    }
    if (udegraded[u]) {
      out[i] = select(shapes[i]);  // sequential-equivalent retry; may throw
      continue;
    }
    out[i] = uconfig[u];
    shards_[uniq_hash[u] & shard_mask_]->hits.fetch_add(
        1, std::memory_order_relaxed);
    ++deduped;
  }
  batch_dedup_.add(deduped);
  batch_amortized_latency_.record_seconds(timer.elapsed_seconds() /
                                          static_cast<double>(n));
  return out;
}

std::future<gemm::KernelConfig> SelectionService::select_async(
    const gemm::GemmShape& shape) {
  auto promise = std::make_shared<std::promise<gemm::KernelConfig>>();
  std::future<gemm::KernelConfig> future = promise->get_future();
  async_pool().post([this, shape, promise] {
    try {
      promise->set_value(select(shape));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

std::future<std::vector<gemm::KernelConfig>>
SelectionService::select_batch_async(std::vector<gemm::GemmShape> shapes) {
  auto promise =
      std::make_shared<std::promise<std::vector<gemm::KernelConfig>>>();
  std::future<std::vector<gemm::KernelConfig>> future = promise->get_future();
  async_pool().post([this, shapes = std::move(shapes), promise] {
    try {
      promise->set_value(select_batch(shapes));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

common::ThreadPool& SelectionService::async_pool() const {
  return async_pool_ != nullptr ? *async_pool_ : common::ThreadPool::global();
}

std::size_t SelectionService::warm_start(store::SelectionStore& store,
                                         const perf::DeviceSpec& device) {
  store_ = &store;
  device_ = device;
  device_fingerprint_ = device.fingerprint();
  // Record our own profile so entries flushed from this run are
  // transferable to *other* devices later.
  store.put_device(device);

  const auto& configs = gemm::enumerate_configs();
  std::size_t seeded = 0;
  for (const store::SelectionRecord& record : store.selections()) {
    if (record.device_fingerprint != device_fingerprint_) continue;
    Shard& shard = shard_for(record.shape);
    aks::MutexLock lock(shard.m);
    auto& slot = shard.map[record.shape];
    if (slot) continue;  // already cached (warm_start called twice)
    slot = std::make_shared<Entry>();
    slot->config = configs[record.config_index];
    // A transferred record was never measured here: serve it, but leave it
    // provisional so refresh_provisional() still re-tunes it locally.
    slot->provisional = record.source == store::Source::kTransfer;
    slot->ready.store(true, std::memory_order_release);
    if (!slot->provisional && tuner_ != nullptr) {
      (void)tuner_->preseed(record.shape, record.config_index);
    }
    preloaded_.add();
    ++seeded;
  }
  return seeded;
}

bool SelectionService::try_transfer_prior(
    const gemm::GemmShape& shape, const std::shared_ptr<Entry>& entry) {
  const auto prior = store_->lookup_transfer(*device_, shape);
  if (!prior.has_value()) return false;

  const gemm::KernelConfig config =
      gemm::enumerate_configs()[prior->record.config_index];
  {
    aks::MutexLock lock(entry->m);
    entry->config = config;
    entry->provisional = true;
    entry->ready.store(true, std::memory_order_release);
  }
  entry->cv.notify_all();
  transfer_priors_.add();

  // Persist the adoption under *our* fingerprint, tagged kTransfer so a
  // later warm_start still knows it is due a local re-tune.
  store::SelectionRecord record = prior->record;
  record.device_fingerprint = device_fingerprint_;
  record.source = store::Source::kTransfer;
  record.sweeps = 0;
  (void)store_->put(std::move(record));
  return true;
}

std::optional<store::SelectionRecord> SelectionService::make_record(
    const gemm::GemmShape& shape, const gemm::KernelConfig& config,
    double seconds) const {
  store::SelectionRecord record;
  record.device_fingerprint = device_fingerprint_;
  record.shape = shape;
  try {
    record.config_index =
        static_cast<std::uint32_t>(gemm::config_index(config));
  } catch (const common::Error&) {
    // Non-canonical config (custom warm-up fn): nothing to persist.
    return std::nullopt;
  }
  record.warmup_seconds = seconds;
  record.sweeps = 1;
  if (tuner_ != nullptr) {
    record.quarantined_candidates =
        static_cast<std::uint32_t>(tuner_->quarantined().size());
  }
  record.source = record_source_;
  return record;
}

void SelectionService::record_to_store(const gemm::GemmShape& shape,
                                       const gemm::KernelConfig& config,
                                       double seconds) {
  auto record = make_record(shape, config, seconds);
  if (record.has_value()) (void)store_->put(*std::move(record));
}

std::vector<gemm::GemmShape> SelectionService::provisional_shapes() const {
  std::vector<gemm::GemmShape> shapes;
  for (const auto& shard : shards_) {
    aks::MutexLock lock(shard->m);
    for (const auto& [shape, entry] : shard->map) {
      if (entry->ready.load(std::memory_order_acquire) && entry->provisional) {
        shapes.push_back(shape);
      }
    }
  }
  std::sort(shapes.begin(), shapes.end());
  return shapes;
}

std::size_t SelectionService::refresh_provisional() {
  std::size_t refreshed = 0;
  for (const gemm::GemmShape& shape : provisional_shapes()) {
    gemm::KernelConfig config{};
    common::Timer timer;
    try {
      config = warm_up_(shape);
    } catch (...) {
      warmup_failures_.add();
      continue;  // the prior stays in place; a later refresh retries
    }
    const double sweep_seconds = timer.elapsed_seconds();

    // Published entries are immutable, so the refreshed answer goes in as
    // a *new* ready entry swapped under the shard lock; in-flight readers
    // of the old entry still see the coherent prior.
    auto fresh = std::make_shared<Entry>();
    fresh->config = config;
    fresh->ready.store(true, std::memory_order_release);
    Shard& shard = shard_for(shape);
    {
      aks::MutexLock lock(shard.m);
      shard.map[shape] = std::move(fresh);
    }
    provisional_refreshes_.add();
    ++refreshed;
    if (store_ != nullptr) record_to_store(shape, config, sweep_seconds);
    // Sampled after the publish and the write-behind enqueue, same cold-cost
    // accounting as run_warm_up.
    const double seconds = timer.elapsed_seconds();
    warmup_latency_.record_seconds(seconds);
    warmup_seconds_.add(seconds);
  }
  return refreshed;
}

gemm::KernelConfig SelectionService::run_warm_up(
    const gemm::GemmShape& shape, Shard& shard,
    const std::shared_ptr<Entry>& entry,
    std::vector<store::SelectionRecord>* wave_records) {
  misses_.add();
  if (entry->sweeps.fetch_add(1, std::memory_order_relaxed) > 0) {
    duplicate_sweeps_.add();
  }

  trace::Span span;
  if (trace::enabled()) {
    span.arm("serve.warmup",
             {trace::arg("m", shape.m), trace::arg("k", shape.k),
              trace::arg("n", shape.n)});
  }
  gemm::KernelConfig config{};
  std::exception_ptr error;
  common::Timer timer;
  try {
    config = warm_up_(shape);
  } catch (...) {
    error = std::current_exception();
  }
  const double sweep_seconds = timer.elapsed_seconds();
  span.annotate(trace::arg("seconds", sweep_seconds));

  bool degraded = false;
  if (error) {
    warmup_failures_.add();
    span.annotate(trace::arg(
        "outcome", fallback_.has_value() ? "fallback" : "error"));
    if (fallback_.has_value()) {
      // Degradation contract: serve the fallback to the leader and every
      // waiter instead of propagating; select() never throws. The entry is
      // still dropped below so the next request retries the warm-up.
      config = *fallback_;
      error = nullptr;
      degraded = true;
    }
  }

  {
    aks::MutexLock lock(entry->m);
    entry->config = config;
    entry->error = error;
    entry->fallback = degraded;
    entry->ready.store(true, std::memory_order_release);
  }
  entry->cv.notify_all();

  if (error || degraded) {
    // Drop the failed entry so a later request retries the warm-up;
    // current waiters still observe the published result (error or
    // fallback) through their Entry ref.
    aks::MutexLock lock(shard.m);
    const auto it = shard.map.find(shape);
    if (it != shard.map.end() && it->second == entry) shard.map.erase(it);
  } else if (store_ != nullptr) {
    // Write-behind: a successfully tuned answer becomes a store record (in
    // memory only — flushing is the owner's call, off the serving path). A
    // fallback served over a failed warm-up is not a tuned decision: never
    // persisted, so a warm start cannot resurrect it. On the batch path
    // the record is deferred into the wave's one put_batch enqueue.
    auto record = make_record(shape, config, sweep_seconds);
    if (record.has_value()) {
      if (wave_records != nullptr) {
        wave_records->push_back(*std::move(record));
      } else {
        (void)store_->put(*std::move(record));
      }
    }
  }

  // Sampled only now: the cold cost a miss actually adds over a hit is the
  // sweep *plus* the result publish plus the store write-behind enqueue.
  // Sampling right after the sweep (the old code) undercounted the cold
  // path — the warm-vs-cold regression test pins this ordering.
  const double cold_seconds = timer.elapsed_seconds();
  warmup_latency_.record_seconds(cold_seconds);
  warmup_seconds_.add(cold_seconds);

  if (error) std::rethrow_exception(error);
  if (degraded) {
    fallbacks_served_.add();
    return config;
  }
  return config;
}

void SelectionService::sync_hits() const {
  aks::MutexLock lock(sync_mutex_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hits.load(std::memory_order_relaxed);
  }
  // Shard stripes only grow and synced_hits_ (the total already folded in)
  // only advances here under the sync mutex, so the delta is non-negative
  // and never double-counted — independent of what else hits_ reports.
  hits_.add(total - synced_hits_);
  synced_hits_ = total;
}

const common::MetricsRegistry& SelectionService::metrics() const {
  sync_hits();
  return metrics_;
}

ServiceStats SelectionService::stats() const {
  ServiceStats stats;
  sync_hits();
  stats.hits = hits_.value();
  stats.misses = misses_.value();
  stats.coalesced_waits = coalesced_waits_.value();
  stats.duplicate_sweeps = duplicate_sweeps_.value();
  stats.warmup_failures = warmup_failures_.value();
  stats.fallbacks_served = fallbacks_served_.value();
  stats.preloaded = preloaded_.value();
  stats.transfer_priors = transfer_priors_.value();
  stats.provisional_refreshes = provisional_refreshes_.value();
  stats.batch_requests = batch_requests_.value();
  stats.batch_shapes = batch_shapes_.value();
  stats.batch_dedup = batch_dedup_.value();
  stats.batch_wave_shapes = batch_wave_shapes_.value();
  stats.warmup_seconds = warmup_seconds_.value();
  for (const auto& shard : shards_) {
    aks::MutexLock lock(shard->m);
    stats.cached_shapes += shard->map.size();
  }
  return stats;
}

}  // namespace aks::serve
