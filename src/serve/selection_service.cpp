#include "serve/selection_service.hpp"

#include <bit>
#include <optional>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/online.hpp"
#include "core/selector.hpp"

namespace aks::serve {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(1, n));
}

// select() latency is *sampled* (1 request in 32 per thread): recording
// every call would put three shared atomic RMWs on the cache-hit path and
// the resulting cache-line bouncing flattens throughput scaling. The first
// request of every thread is always sampled.
constexpr std::uint32_t kLatencySampleStride = 32;
thread_local std::uint32_t tl_latency_tick = 0;

}  // namespace

SelectionService::SelectionService(WarmUpFn warm_up, ServiceOptions options)
    : warm_up_(std::move(warm_up)),
      fallback_(options.fallback),
      hits_(metrics_.counter("serve.hits")),
      misses_(metrics_.counter("serve.misses")),
      coalesced_waits_(metrics_.counter("serve.coalesced_waits")),
      duplicate_sweeps_(metrics_.counter("serve.duplicate_sweeps")),
      warmup_failures_(metrics_.counter("serve.warmup_failures")),
      fallbacks_served_(metrics_.counter("serve.fallbacks_served")),
      warmup_seconds_(metrics_.accumulator("serve.warmup_seconds")),
      select_latency_(metrics_.histogram("serve.select_latency")),
      warmup_latency_(metrics_.histogram("serve.warmup_latency")) {
  AKS_CHECK(warm_up_ != nullptr, "selection service needs a warm-up function");
  const std::size_t shards = round_up_pow2(options.num_shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
}

SelectionService::SelectionService(const select::KernelSelector& selector,
                                   ServiceOptions options)
    : SelectionService(
          [&selector](const gemm::GemmShape& shape) {
            return selector.select_config(shape);
          },
          options) {}

SelectionService::SelectionService(select::OnlineTuner& tuner,
                                   ServiceOptions options)
    : SelectionService(
          [&tuner](const gemm::GemmShape& shape) {
            return tuner.select(shape);
          },
          options) {}

SelectionService::Shard& SelectionService::shard_for(
    const gemm::GemmShape& shape) {
  const std::size_t h = std::hash<gemm::GemmShape>{}(shape);
  return *shards_[h & shard_mask_];
}

gemm::KernelConfig SelectionService::select(const gemm::GemmShape& shape) {
  std::optional<common::ScopedLatency> latency;
  if ((tl_latency_tick++ & (kLatencySampleStride - 1)) == 0) {
    latency.emplace(select_latency_);
  }
  Shard& shard = shard_for(shape);

  std::shared_ptr<Entry> entry;
  bool leader = false;
  {
    std::lock_guard lock(shard.m);
    auto& slot = shard.map[shape];
    if (!slot) {
      slot = std::make_shared<Entry>();
      leader = true;
    }
    entry = slot;
  }

  if (leader) return run_warm_up(shape, shard, entry);

  if (entry->ready.load(std::memory_order_acquire)) {
    // Hot path: published entries are immutable, no entry lock needed, and
    // the hit count goes to the shard's stripe, not a global line.
    shard.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    coalesced_waits_.add();
    std::unique_lock lock(entry->m);
    entry->cv.wait(lock, [&entry] {
      return entry->ready.load(std::memory_order_acquire);
    });
  }
  if (entry->error) std::rethrow_exception(entry->error);
  if (entry->fallback) fallbacks_served_.add();
  return entry->config;
}

gemm::KernelConfig SelectionService::run_warm_up(
    const gemm::GemmShape& shape, Shard& shard,
    const std::shared_ptr<Entry>& entry) {
  misses_.add();
  if (entry->sweeps.fetch_add(1, std::memory_order_relaxed) > 0) {
    duplicate_sweeps_.add();
  }

  gemm::KernelConfig config{};
  std::exception_ptr error;
  common::Timer timer;
  try {
    config = warm_up_(shape);
  } catch (...) {
    error = std::current_exception();
  }
  const double seconds = timer.elapsed_seconds();
  warmup_latency_.record_seconds(seconds);
  warmup_seconds_.add(seconds);

  bool degraded = false;
  if (error) {
    warmup_failures_.add();
    if (fallback_.has_value()) {
      // Degradation contract: serve the fallback to the leader and every
      // waiter instead of propagating; select() never throws. The entry is
      // still dropped below so the next request retries the warm-up.
      config = *fallback_;
      error = nullptr;
      degraded = true;
    }
  }

  {
    std::lock_guard lock(entry->m);
    entry->config = config;
    entry->error = error;
    entry->fallback = degraded;
    entry->ready.store(true, std::memory_order_release);
  }
  entry->cv.notify_all();

  if (error || degraded) {
    // Drop the failed entry so a later request retries the warm-up;
    // current waiters still observe the published result (error or
    // fallback) through their Entry ref.
    std::lock_guard lock(shard.m);
    const auto it = shard.map.find(shape);
    if (it != shard.map.end() && it->second == entry) shard.map.erase(it);
  }
  if (error) std::rethrow_exception(error);
  if (degraded) fallbacks_served_.add();
  return config;
}

void SelectionService::sync_hits() const {
  std::lock_guard lock(sync_mutex_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hits.load(std::memory_order_relaxed);
  }
  // Shard stripes only grow and hits_ is only advanced here (under the
  // sync mutex), so the delta is non-negative and never double-counted.
  hits_.add(total - hits_.value());
}

const common::MetricsRegistry& SelectionService::metrics() const {
  sync_hits();
  return metrics_;
}

ServiceStats SelectionService::stats() const {
  ServiceStats stats;
  sync_hits();
  stats.hits = hits_.value();
  stats.misses = misses_.value();
  stats.coalesced_waits = coalesced_waits_.value();
  stats.duplicate_sweeps = duplicate_sweeps_.value();
  stats.warmup_failures = warmup_failures_.value();
  stats.fallbacks_served = fallbacks_served_.value();
  stats.warmup_seconds = warmup_seconds_.value();
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->m);
    stats.cached_shapes += shard->map.size();
  }
  return stats;
}

}  // namespace aks::serve
