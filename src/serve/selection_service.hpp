// Concurrent selection-serving layer — the deployment face of the library.
//
// The paper ends with a selector that picks among shipped kernels per
// incoming GEMM; this module is what actually serves that decision under
// concurrent traffic. SelectionService wraps any per-shape decision
// procedure (a trained KernelSelector, an OnlineTuner, or an arbitrary
// warm-up function) behind one thread-safe API:
//
//  * sharded cache — the shape → config map is split across N mutex-striped
//    shards keyed by std::hash<GemmShape>, so unrelated shapes never
//    contend and cache hits cost one shard lock plus one atomic counter;
//
//  * single-flight warm-up — the first request for a shape becomes the
//    leader and runs the warm-up (for an online tuner, the |candidates|
//    trial sweep) exactly once; concurrent requests for the same shape
//    block on the in-flight entry and adopt the leader's answer instead of
//    duplicating the sweep. A failed warm-up is rethrown to the leader and
//    to every waiter, and the entry is dropped so later requests retry;
//
//  * metrics — hit/miss/coalesced-wait counters, select() and warm-up
//    latency histograms, and total trial seconds, via common::MetricsRegistry
//    (CSV-exportable; see bench/selection_service_throughput and
//    `aks_tune serve`). Counters are exact; the select() latency histogram
//    is sampled 1-in-32 per thread so the cache-hit path stays free of
//    shared-cache-line histogram traffic;
//
//  * persistence (optional) — warm_start() pre-seeds the cache from a
//    store::SelectionStore so stored shapes are served with zero warm-up
//    sweeps, newly tuned shapes are written behind into the store (the
//    caller flushes), and shapes only known from a *different* device are
//    served as cross-device transfer priors: published immediately (marked
//    provisional), then re-tuned by refresh_provisional() which atomically
//    swaps in the locally measured answer. See DESIGN.md "Persistence &
//    warm-start";
//
//  * batched resolution — select_batch() resolves a whole vector of shapes
//    (a graph-build wave: real frameworks pick kernels for every layer at
//    once, not per inference call) in one pass: inputs are deduplicated,
//    grouped by shard so each shard lock is taken once per batch, cold
//    misses are coalesced into a single warm-up wave that runs through the
//    same single-flight entries select() uses, and the wave's store
//    write-behind is one batched enqueue instead of one put per shape.
//    Results come back in input order and are bit-identical to sequential
//    select() calls (tests/serve_batch_equivalence_test.cpp holds the
//    property). See DESIGN.md "Batched & async selection";
//
//  * async resolution — select_async()/select_batch_async() run the same
//    code on the reentrancy-safe common::ThreadPool and hand back a
//    std::future, so callers overlap warm-up sweeps with graph
//    construction. Deadlock-free by construction: a single-flight leader is
//    always already running when any waiter exists, and it completes
//    without needing another pool slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "gemm/config.hpp"
#include "gemm/shape.hpp"
#include "perfmodel/device_spec.hpp"

namespace aks::common {
class ThreadPool;
}  // namespace aks::common

namespace aks::select {
class KernelSelector;
class OnlineTuner;
}  // namespace aks::select

namespace aks::store {
class SelectionStore;
struct SelectionRecord;
enum class Source : std::uint8_t;
}  // namespace aks::store

namespace aks::serve {

struct ServiceOptions {
  /// Number of cache shards; rounded up to a power of two, minimum 1.
  std::size_t num_shards = 16;
  /// Degradation contract (see DESIGN.md "Fault model"): when set, a
  /// warm-up that throws serves this configuration to the leader and every
  /// coalesced waiter instead of rethrowing — select() never throws. The
  /// fallback answer is *not* cached: the entry is dropped so the next
  /// request for the shape retries the warm-up. When unset (the default),
  /// warm-up errors propagate to all callers as before.
  std::optional<gemm::KernelConfig> fallback;
  /// Pool running select_async()/select_batch_async() work (must outlive
  /// the service). Null means common::ThreadPool::global().
  common::ThreadPool* async_pool = nullptr;
};

/// Snapshot of the service counters (each individually monotonic).
struct ServiceStats {
  /// Requests answered from the cache.
  std::uint64_t hits = 0;
  /// Requests that ran the warm-up (one per shape under single-flight).
  std::uint64_t misses = 0;
  /// Requests that blocked on another thread's in-flight warm-up.
  std::uint64_t coalesced_waits = 0;
  /// Warm-ups that ran for an already-warm shape; 0 by construction.
  std::uint64_t duplicate_sweeps = 0;
  /// Warm-ups that threw (injected or real).
  std::uint64_t warmup_failures = 0;
  /// Requests (leader + waiters) answered with the fallback configuration
  /// after a failed warm-up; 0 unless ServiceOptions::fallback is set.
  std::uint64_t fallbacks_served = 0;
  /// Shapes pre-seeded from a persistent store by warm_start().
  std::uint64_t preloaded = 0;
  /// Cold shapes answered from a nearest-device store record instead of a
  /// warm-up sweep (cross-device transfer).
  std::uint64_t transfer_priors = 0;
  /// Provisional (transferred) answers replaced by a locally tuned one.
  std::uint64_t provisional_refreshes = 0;
  /// select_batch() calls (select_batch_async counts here on completion).
  std::uint64_t batch_requests = 0;
  /// Input shapes across every batch (before deduplication).
  std::uint64_t batch_shapes = 0;
  /// Batch inputs answered by an earlier occurrence in the same batch —
  /// batch_dedup / batch_shapes is the dedup ratio.
  std::uint64_t batch_dedup = 0;
  /// Cold shapes warmed inside batch miss waves (a subset of misses).
  std::uint64_t batch_wave_shapes = 0;
  /// Wall seconds of the cold path: warm-up function plus result publish
  /// plus the store write-behind enqueue (the full cost a miss adds over a
  /// hit — see the warm-vs-cold regression test).
  double warmup_seconds = 0.0;
  /// Shapes currently cached (including in-flight entries).
  std::size_t cached_shapes = 0;
};

class SelectionService {
 public:
  /// Decides the kernel for a never-seen shape. Runs at most once per shape
  /// (single-flight); may be expensive and may throw.
  using WarmUpFn = std::function<gemm::KernelConfig(const gemm::GemmShape&)>;

  explicit SelectionService(WarmUpFn warm_up, ServiceOptions options = {});
  /// Serves a trained selector (must outlive the service; fit() must have
  /// been called). Selector inference is read-only, hence shareable.
  explicit SelectionService(const select::KernelSelector& selector,
                            ServiceOptions options = {});
  /// Serves an online tuner (must outlive the service). Single-flight means
  /// the tuner sees each shape exactly once, so its own warm-up accounting
  /// stays exact under concurrency.
  explicit SelectionService(select::OnlineTuner& tuner,
                            ServiceOptions options = {});

  SelectionService(const SelectionService&) = delete;
  SelectionService& operator=(const SelectionService&) = delete;

  /// Thread-safe: the kernel configuration to use for `shape`.
  [[nodiscard]] gemm::KernelConfig select(const gemm::GemmShape& shape);

  /// Thread-safe batched resolution: the configuration for every shape in
  /// `shapes`, in input order, bit-identical to calling select() on each
  /// element sequentially. Duplicates are deduplicated, warm shapes are
  /// answered under one shard lock per shard touched, and cold shapes are
  /// warmed in one wave — in first-occurrence input order, through the same
  /// single-flight entries as select(), with the store write-behind
  /// enqueued once per wave. A warm-up failure degrades only that shape
  /// (fallback when configured); without a fallback the wave still
  /// completes — so no entry is ever left in flight — and the first error
  /// in input order is then rethrown.
  [[nodiscard]] std::vector<gemm::KernelConfig> select_batch(
      std::span<const gemm::GemmShape> shapes);

  /// select() on the async pool: returns immediately with a future that
  /// yields the selection (or rethrows the warm-up error). Lets callers
  /// overlap warm-up sweeps with graph construction. In-flight futures must
  /// be waited out before the service is destroyed.
  [[nodiscard]] std::future<gemm::KernelConfig> select_async(
      const gemm::GemmShape& shape);

  /// select_batch() on the async pool (one task for the whole batch, so the
  /// wave coalescing is preserved).
  [[nodiscard]] std::future<std::vector<gemm::KernelConfig>>
  select_batch_async(std::vector<gemm::GemmShape> shapes);

  /// Attaches a persistent store (must outlive the service) and pre-seeds
  /// the cache with every stored selection for `device`'s fingerprint —
  /// those shapes are then served with zero warm-up sweeps. Stored
  /// transfer-sourced records pre-seed as *provisional* (still due a local
  /// re-tune); tuner-sourced records also pre-seed the wrapped OnlineTuner
  /// so its own cache never re-sweeps them. Shapes absent for this device
  /// but present for another one are afterwards served via nearest-device
  /// transfer priors on their first request. Newly warmed shapes are
  /// written behind into the store; persisting them is the caller's
  /// flush()/compact() call, never the serving hot path. Records the
  /// device profile in the store. Returns the number of pre-seeded shapes.
  /// Call before serving traffic (not thread-safe against select()).
  std::size_t warm_start(store::SelectionStore& store,
                         const perf::DeviceSpec& device);

  /// Shapes currently served from a provisional (transferred) answer.
  [[nodiscard]] std::vector<gemm::GemmShape> provisional_shapes() const;

  /// Re-tunes every provisional shape through the warm-up function and
  /// atomically swaps the locally measured answer (and its store record)
  /// in place of the transferred prior. Concurrent select() calls keep
  /// being answered throughout — first by the prior, then by the refreshed
  /// entry. A warm-up failure leaves that shape's prior in place (counted
  /// in warmup_failures). Returns the number of shapes refreshed.
  std::size_t refresh_provisional();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

  /// Live registry backing stats(); export with metrics().write_csv(out).
  /// (Reconciles the shard-striped hit counts into `serve.hits` first.)
  [[nodiscard]] const common::MetricsRegistry& metrics() const;

 private:
  struct Entry {
    aks::Mutex m{"serve.entry"};
    aks::CondVar cv;
    /// Publishes config/error: written once under m, read lock-free by the
    /// hit path after an acquire load.
    std::atomic<bool> ready{false};
    // config/error/fallback/provisional are deliberately NOT AKS_GUARDED_BY:
    // their protocol is release/acquire publication through `ready`, which
    // the static analysis cannot express. Writers hold m and set the fields
    // before the release-store of ready; the lock-free hit path reads them
    // only after an acquire-load of ready observes true.
    gemm::KernelConfig config{};
    std::exception_ptr error;
    /// True when `config` is the service-level fallback published after a
    /// failed warm-up (written once under m before `ready`).
    bool fallback = false;
    /// True when `config` is a cross-device transfer prior still awaiting
    /// a local re-tune (written once under m before `ready`); cleared by
    /// refresh_provisional() swapping in a fresh Entry, never in place.
    bool provisional = false;
    /// Warm-up invocations for this shape; >1 would be a duplicate sweep.
    std::atomic<std::uint32_t> sweeps{0};
  };

  struct Shard {
    /// Every stripe shares one lock class: all shards are interchangeable
    /// for ordering purposes, and no code path nests two shard locks.
    mutable aks::Mutex m{"serve.shard"};
    std::unordered_map<gemm::GemmShape, std::shared_ptr<Entry>> map
        AKS_GUARDED_BY(m);
    /// Hit count striped per shard: a single global hit counter would put
    /// one contended cache line on every cache hit and flatten throughput
    /// scaling. Reconciled into the registry's serve.hits by sync_hits().
    std::atomic<std::uint64_t> hits{0};
  };

  [[nodiscard]] Shard& shard_for(const gemm::GemmShape& shape);
  /// Leader path: runs the warm-up, publishes the entry, and accounts the
  /// cold cost. When `wave_records` is set (the batch path) the store
  /// write-behind record is appended there for one batched enqueue instead
  /// of being put per shape.
  [[nodiscard]] gemm::KernelConfig run_warm_up(
      const gemm::GemmShape& shape, Shard& shard,
      const std::shared_ptr<Entry>& entry,
      std::vector<store::SelectionRecord>* wave_records = nullptr);
  /// Leader-path store consult: true when a transfer prior was published
  /// into `entry` (the warm-up sweep is then skipped for this request).
  [[nodiscard]] bool try_transfer_prior(const gemm::GemmShape& shape,
                                        const std::shared_ptr<Entry>& entry);
  /// The store record for a locally tuned decision, or nullopt for a
  /// non-canonical config (custom warm-up fn): nothing to persist.
  [[nodiscard]] std::optional<store::SelectionRecord> make_record(
      const gemm::GemmShape& shape, const gemm::KernelConfig& config,
      double seconds) const;
  /// Write-behind: records a locally tuned decision in the attached store.
  void record_to_store(const gemm::GemmShape& shape,
                       const gemm::KernelConfig& config, double seconds);
  [[nodiscard]] common::ThreadPool& async_pool() const;
  /// Folds the per-shard hit counts into the registry's serve.hits counter
  /// (serialized so concurrent observers never double-add a delta).
  void sync_hits() const;

  WarmUpFn warm_up_;
  std::optional<gemm::KernelConfig> fallback_;
  common::ThreadPool* async_pool_ = nullptr;
  /// Set by the OnlineTuner constructor so warm_start() can pre-seed the
  /// tuner's own cache alongside the service cache.
  select::OnlineTuner* tuner_ = nullptr;
  /// Persistence, armed by warm_start(); null means no store attached.
  store::SelectionStore* store_ = nullptr;
  /// Provenance tag for write-behind records (which layer this service
  /// wraps); set by the typed constructors, kOnlineTuner by default.
  store::Source record_source_{};
  std::optional<perf::DeviceSpec> device_;
  std::uint64_t device_fingerprint_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
  mutable aks::Mutex sync_mutex_{"serve.hit_sync"};
  /// Stripe total already folded into hits_; guarded so the reconciliation
  /// delta never depends on reading hits_ back.
  mutable std::uint64_t synced_hits_ AKS_GUARDED_BY(sync_mutex_) = 0;

  common::MetricsRegistry metrics_;
  // Resolved once so the hot path never touches the registry lock.
  common::Counter& hits_;
  common::Counter& misses_;
  common::Counter& coalesced_waits_;
  common::Counter& duplicate_sweeps_;
  common::Counter& warmup_failures_;
  common::Counter& fallbacks_served_;
  common::Counter& preloaded_;
  common::Counter& transfer_priors_;
  common::Counter& provisional_refreshes_;
  common::Counter& batch_requests_;
  common::Counter& batch_shapes_;
  common::Counter& batch_dedup_;
  common::Counter& batch_wave_shapes_;
  common::Accumulator& warmup_seconds_;
  common::LatencyHistogram& select_latency_;
  common::LatencyHistogram& warmup_latency_;
  /// Batch sizes (record_value: power-of-two count buckets).
  common::LatencyHistogram& batch_size_;
  /// Per-shape amortized select_batch latency (batch wall time / shapes).
  common::LatencyHistogram& batch_amortized_latency_;
};

}  // namespace aks::serve
