// Declarative access metadata for the kernel families.
//
// The symbolic verifier (src/check/symbolic) needs to know, per kernel
// family, the structural facts that govern its memory behaviour: tile
// shape, work-group schedule, whether the entry guard covers the padded
// launch, whether edge tiles clamp their ranges, and how much local memory
// a work-group commits. These facts are properties of the kernel *source*
// (tiled_kernel.hpp, hierarchical_kernel.hpp); this header states them
// once, next to that source, so the verifier consumes a description rather
// than re-deriving it — and so a negative test can hand the verifier a
// deliberately wrong description and watch the corresponding proof fail.
#pragma once

#include <cstddef>

#include "gemm/config.hpp"

namespace aks::gemm {

/// Structural access facts for one configured kernel launch.
struct KernelAccessPattern {
  int row_tile = 1;
  int col_tile = 1;
  int acc_size = 1;
  int wg_rows = 1;
  int wg_cols = 1;

  /// The kernel returns early for items whose tile origin lies outside the
  /// logical output (the `row0 >= M || col0 >= N` guard). Padded launch
  /// items are therefore harmless.
  bool shape_guarded = true;
  /// Edge tiles clamp their row/col ranges to the logical shape (the
  /// min() in compute_edge); interior tiles prove in-bounds structurally.
  bool edge_clamped = true;
  /// The K loop clamps its final partial accumulator step (`k_end`).
  bool k_tail_clamped = true;
  /// Whether the kernel reads C before writing it (the tiled family never
  /// does, which is what makes its output tiles race-free by slicing).
  bool reads_output = false;

  /// Local memory the work-group commits, in bytes.
  std::size_t local_memory_bytes = 0;

  [[nodiscard]] int work_group_size() const { return wg_rows * wg_cols; }
};

/// Pattern of TiledGemmKernel / BatchedTiledGemmKernel under `config`.
/// local_memory_bytes uses the same staged-panel formula the config lint
/// charges (check::local_memory_footprint_bytes) so the static layers agree.
[[nodiscard]] KernelAccessPattern tiled_access_pattern(
    const KernelConfig& config);

/// Pattern of basic_hierarchical_gemm<Tile>: a Tile x Tile cooperative
/// work-group staging three Tile^2 float panels in local memory.
[[nodiscard]] KernelAccessPattern hierarchical_access_pattern(int tile);

}  // namespace aks::gemm
