#include "gemm/access_metadata.hpp"

namespace aks::gemm {

KernelAccessPattern tiled_access_pattern(const KernelConfig& config) {
  KernelAccessPattern pattern;
  pattern.row_tile = config.row_tile;
  pattern.col_tile = config.col_tile;
  pattern.acc_size = config.acc_size;
  pattern.wg_rows = config.wg_rows;
  pattern.wg_cols = config.wg_cols;
  pattern.shape_guarded = true;   // compute_tile: row0 >= M || col0 >= N
  pattern.edge_clamped = true;    // compute_edge: min(row0+RT, M) etc.
  pattern.k_tail_clamped = true;  // compute_edge: k_end = min(k0+AS, K)
  pattern.reads_output = false;   // C is write-only in both paths
  // Charge the same staged-panel footprint the config lint does so the two
  // static layers can never disagree on local-memory capacity.
  const auto rows = static_cast<std::size_t>(config.wg_rows) *
                    static_cast<std::size_t>(config.row_tile);
  const auto cols = static_cast<std::size_t>(config.wg_cols) *
                    static_cast<std::size_t>(config.col_tile);
  const auto acc = static_cast<std::size_t>(config.acc_size);
  pattern.local_memory_bytes = sizeof(float) * (rows * acc + acc * cols);
  return pattern;
}

KernelAccessPattern hierarchical_access_pattern(int tile) {
  KernelAccessPattern pattern;
  pattern.row_tile = 1;  // each item owns one output element
  pattern.col_tile = 1;
  pattern.acc_size = tile;  // K advances one staged panel at a time
  pattern.wg_rows = tile;
  pattern.wg_cols = tile;
  pattern.shape_guarded = true;   // loads zero-fill, write-back is guarded
  pattern.edge_clamped = true;
  pattern.k_tail_clamped = true;  // k_len = min(Tile, K - k0)
  pattern.reads_output = false;
  // a_panel + b_panel + acc, each Tile^2 floats of body-scope storage.
  const auto t = static_cast<std::size_t>(tile);
  pattern.local_memory_bytes = 3 * t * t * sizeof(float);
  return pattern;
}

}  // namespace aks::gemm
