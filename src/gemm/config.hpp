// The kernel configuration space of the case study.
//
// The SYCL-DNN matrix-multiply kernel exposes three compile-time parameters
// — the two dimensions of the per-work-item output tile and the accumulator
// step along K — each drawn from {1, 2, 4, 8} (64 compiled kernels), plus a
// runtime work-group shape drawn from ten options, for 640 configurations
// total. `enumerate_configs()` produces them in a canonical order that every
// dataset column, pruner and selector in this repo indexes into.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace aks::gemm {

/// One point in the 640-element configuration space.
struct KernelConfig {
  /// Rows of the per-work-item output tile (compile-time in the kernel).
  int row_tile = 1;
  /// Columns of the per-work-item output tile (compile-time).
  int col_tile = 1;
  /// Number of K values accumulated per inner-loop step (compile-time).
  int acc_size = 1;
  /// Work-group shape, rows x cols (runtime parameter).
  int wg_rows = 8;
  int wg_cols = 8;

  [[nodiscard]] int work_group_size() const { return wg_rows * wg_cols; }

  /// Registers the kernel needs per work-item for accumulators and staging
  /// (used by the occupancy model).
  [[nodiscard]] int registers_per_item() const {
    return row_tile * col_tile         // accumulator tile
           + row_tile * acc_size       // staged A values
           + acc_size * col_tile       // staged B values
           + 8;                        // index arithmetic overhead
  }

  /// Stable human-readable name, e.g. "t4x2_a8_wg16x8".
  [[nodiscard]] std::string name() const;

  /// Inverse of name(); throws common::Error on malformed input.
  static KernelConfig parse(const std::string& name);

  [[nodiscard]] bool operator==(const KernelConfig&) const = default;
};

/// The tile/accumulator sizes considered by the case study.
[[nodiscard]] const std::array<int, 4>& tile_sizes();

/// The ten work-group shapes considered by the case study, as (rows, cols).
[[nodiscard]] const std::array<std::pair<int, int>, 10>& work_group_shapes();

/// All 640 configurations in canonical order. The order is: row_tile
/// (slowest), col_tile, acc_size, work-group shape (fastest), so
/// index = ((rt_i * 4 + ct_i) * 4 + acc_i) * 10 + wg_i.
[[nodiscard]] const std::vector<KernelConfig>& enumerate_configs();

/// Canonical index of a configuration; throws if it is not one of the 640.
[[nodiscard]] std::size_t config_index(const KernelConfig& config);

/// Number of distinct compiled kernels (compile-time parameter combinations)
/// present in a set of configurations — the paper's library-size cost metric.
[[nodiscard]] std::size_t count_compiled_kernels(
    const std::vector<KernelConfig>& configs);

}  // namespace aks::gemm
