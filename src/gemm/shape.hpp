// GEMM problem shape: C[M x N] = A[M x K] * B[K x N], row-major.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace aks::gemm {

struct GemmShape {
  std::size_t m = 0;
  std::size_t k = 0;
  std::size_t n = 0;

  /// Floating-point operations for one GEMM (multiply + add).
  [[nodiscard]] double flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
           static_cast<double>(n);
  }

  /// Bytes touched assuming each operand is read/written exactly once
  /// (the compulsory traffic lower bound), with 4-byte elements.
  [[nodiscard]] double min_bytes() const {
    return 4.0 * (static_cast<double>(m) * static_cast<double>(k) +
                  static_cast<double>(k) * static_cast<double>(n) +
                  static_cast<double>(m) * static_cast<double>(n));
  }

  [[nodiscard]] std::string to_string() const {
    return std::to_string(m) + "x" + std::to_string(k) + "x" +
           std::to_string(n);
  }

  [[nodiscard]] auto operator<=>(const GemmShape&) const = default;
};

}  // namespace aks::gemm

/// Hash support so shapes can key unordered containers (the serving layer's
/// sharded cache). SplitMix64-style mixing keeps nearby layer shapes —
/// which differ in one dimension by a small factor — well distributed.
///
/// Mixing scheme: each dimension is folded into the running state with a
/// boost::hash_combine-style step (golden-ratio additive constant plus
/// `h << 6` / `h >> 2` feedback, so equal inputs in different positions
/// land differently — (m,k,n) permutations collide only by chance), then
/// diffused with a SplitMix64 finalizer round (odd multiplicative constant
/// + xor-shift) so every input bit reaches the LOW output bits. The low
/// bits matter: serve::SelectionService picks shards as
/// `hash & (num_shards - 1)`, and real corpora are highly structured
/// (powers of two, small multiples of 8). The seed is pi's fraction —
/// a nothing-up-my-sleeve non-zero start.
/// tests/gemm_shape_hash_test.cpp holds the chi-squared distribution gate
/// over the benchmark corpus; change the scheme and those thresholds must
/// still pass.
template <>
struct std::hash<aks::gemm::GemmShape> {
  [[nodiscard]] std::size_t operator()(
      const aks::gemm::GemmShape& shape) const noexcept {
    auto mix = [](std::uint64_t h, std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xbf58476d1ce4e5b9ULL;
      return h ^ (h >> 31);
    };
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    h = mix(h, shape.m);
    h = mix(h, shape.k);
    h = mix(h, shape.n);
    return static_cast<std::size_t>(h);
  }
};
