// GEMM problem shape: C[M x N] = A[M x K] * B[K x N], row-major.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>

namespace aks::gemm {

struct GemmShape {
  std::size_t m = 0;
  std::size_t k = 0;
  std::size_t n = 0;

  /// Floating-point operations for one GEMM (multiply + add).
  [[nodiscard]] double flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
           static_cast<double>(n);
  }

  /// Bytes touched assuming each operand is read/written exactly once
  /// (the compulsory traffic lower bound), with 4-byte elements.
  [[nodiscard]] double min_bytes() const {
    return 4.0 * (static_cast<double>(m) * static_cast<double>(k) +
                  static_cast<double>(k) * static_cast<double>(n) +
                  static_cast<double>(m) * static_cast<double>(n));
  }

  [[nodiscard]] std::string to_string() const {
    return std::to_string(m) + "x" + std::to_string(k) + "x" +
           std::to_string(n);
  }

  [[nodiscard]] auto operator<=>(const GemmShape&) const = default;
};

}  // namespace aks::gemm
