// Type-erased launch table over the 64 compiled kernel instantiations.
//
// This is the piece the paper's library-size argument is about: every entry
// here is a separately compiled kernel that a shipping library must carry.
// `launch_gemm` picks the instantiation matching a KernelConfig's
// compile-time parameters and launches it with the config's runtime
// work-group shape.
#pragma once

#include <functional>
#include <span>

#include "gemm/config.hpp"
#include "gemm/shape.hpp"
#include "syclrt/queue.hpp"

namespace aks::gemm {

/// Signature of a type-erased kernel launcher.
using KernelLauncher = std::function<syclrt::Event(
    syclrt::Queue&, std::span<const float>, std::span<const float>,
    std::span<float>, GemmShape, int wg_rows, int wg_cols)>;

/// Number of compiled kernel instantiations in the registry (64).
[[nodiscard]] std::size_t registry_size();

/// The launcher for a (row_tile, col_tile, acc_size) triple; throws
/// common::Error when the triple is not one of the 64 compiled kernels.
[[nodiscard]] const KernelLauncher& find_kernel(int row_tile, int col_tile,
                                                int acc_size);

/// Runs C = A * B with the given configuration on `queue`.
/// Validates operand sizes; returns the launch event (with wall time).
syclrt::Event launch_gemm(syclrt::Queue& queue, const KernelConfig& config,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c, const GemmShape& shape);

/// Runs `batch` independent multiplies of identical `shape` as ONE launch.
/// Operands are packed contiguously per batch entry (A: batch*m*k floats,
/// etc.). Used by the Winograd path for its sixteen transformed multiplies.
syclrt::Event launch_batched_gemm(syclrt::Queue& queue,
                                  const KernelConfig& config,
                                  std::span<const float> a,
                                  std::span<const float> b,
                                  std::span<float> c, const GemmShape& shape,
                                  std::size_t batch);

}  // namespace aks::gemm
