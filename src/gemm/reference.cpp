#include "gemm/reference.hpp"

#include "common/error.hpp"

namespace aks::gemm {

void reference_gemm(std::span<const float> a, std::span<const float> b,
                    std::span<float> c, const GemmShape& shape) {
  AKS_CHECK(a.size() == shape.m * shape.k, "A size mismatch");
  AKS_CHECK(b.size() == shape.k * shape.n, "B size mismatch");
  AKS_CHECK(c.size() == shape.m * shape.n, "C size mismatch");
  // i-k-j loop order: streams B rows, accumulates into C rows.
  std::fill(c.begin(), c.end(), 0.0f);
  for (std::size_t i = 0; i < shape.m; ++i) {
    for (std::size_t kk = 0; kk < shape.k; ++kk) {
      const float aik = a[i * shape.k + kk];
      const float* b_row = &b[kk * shape.n];
      float* c_row = &c[i * shape.n];
      for (std::size_t j = 0; j < shape.n; ++j) c_row[j] += aik * b_row[j];
    }
  }
}

}  // namespace aks::gemm
