// Work-group cooperative GEMM using the hierarchical runtime API.
//
// The paper notes SYCL-DNN tiles "at a work group level for programmatically
// caching values" as well as per work-item; the register-tiled family in
// tiled_kernel.hpp only does the latter. This kernel demonstrates the former
// on the syclrt hierarchical API: each work-group stages a K-panel of A and
// B into work-group local memory (body-scope storage shared by the group's
// items, with barrier semantics between parallel_for_work_item passes) and
// every item computes one output element from the staged panels.
//
// It is a runtime/API demonstration and correctness fixture, not part of
// the benchmarked 640-point space (its local-memory traffic pattern is a
// different design axis than the paper's study).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "gemm/shape.hpp"
#include "syclrt/queue.hpp"

namespace aks::gemm {

/// C = A * B with TILE x TILE work-groups staging TILE-wide K-panels in
/// local memory. M and N need not be multiples of TILE (edges are guarded);
/// any K is supported. Generic over the accessor types so the checked
/// execution mode (src/check) can instantiate the same body over recording
/// accessors; call through `hierarchical_gemm` for the plain span form.
template <int Tile, typename ConstAcc, typename MutAcc>
syclrt::Event basic_hierarchical_gemm(syclrt::Queue& queue, ConstAcc a,
                                      ConstAcc b, MutAcc c,
                                      const GemmShape& shape) {
  static_assert(Tile >= 1);
  AKS_CHECK(a.size() == shape.m * shape.k, "A size mismatch");
  AKS_CHECK(b.size() == shape.k * shape.n, "B size mismatch");
  AKS_CHECK(c.size() == shape.m * shape.n, "C size mismatch");

  constexpr auto kTile = static_cast<std::size_t>(Tile);
  const std::size_t groups_r = (shape.m + kTile - 1) / kTile;
  const std::size_t groups_c = (shape.n + kTile - 1) / kTile;

  return queue.parallel_for_work_group(
      syclrt::Range<2>(groups_r, groups_c), syclrt::Range<2>(kTile, kTile),
      [=](const syclrt::WorkGroup<2>& group) {
        // Work-group local memory: one A panel, one B panel, one
        // accumulator per item. Body scope = shared by the group's items.
        std::vector<float> a_panel(kTile * kTile);
        std::vector<float> b_panel(kTile * kTile);
        std::vector<float> acc(kTile * kTile, 0.0f);

        const std::size_t row0 = group.get_group(0) * kTile;
        const std::size_t col0 = group.get_group(1) * kTile;

        for (std::size_t k0 = 0; k0 < shape.k; k0 += kTile) {
          const std::size_t k_len = std::min(kTile, shape.k - k0);
          // Phase 1: cooperative load of the panels (item (r, c) loads one
          // element of each). Implicit barrier afterwards.
          group.parallel_for_work_item([&](const syclrt::NdItem<2>& item) {
            const std::size_t lr = item.get_local_id(0);
            const std::size_t lc = item.get_local_id(1);
            const std::size_t row = row0 + lr;
            const std::size_t col = col0 + lc;
            a_panel[lr * kTile + lc] =
                (row < shape.m && lc < k_len)
                    ? a[row * shape.k + k0 + lc]
                    : 0.0f;
            b_panel[lr * kTile + lc] =
                (lr < k_len && col < shape.n)
                    ? b[(k0 + lr) * shape.n + col]
                    : 0.0f;
          });
          // Phase 2: every item accumulates from the staged panels.
          group.parallel_for_work_item([&](const syclrt::NdItem<2>& item) {
            const std::size_t lr = item.get_local_id(0);
            const std::size_t lc = item.get_local_id(1);
            float sum = acc[lr * kTile + lc];
            for (std::size_t kk = 0; kk < k_len; ++kk) {
              sum += a_panel[lr * kTile + kk] * b_panel[kk * kTile + lc];
            }
            acc[lr * kTile + lc] = sum;
          });
        }

        // Final phase: guarded write-back.
        group.parallel_for_work_item([&](const syclrt::NdItem<2>& item) {
          const std::size_t row = row0 + item.get_local_id(0);
          const std::size_t col = col0 + item.get_local_id(1);
          if (row < shape.m && col < shape.n) {
            c[row * shape.n + col] =
                acc[item.get_local_id(0) * kTile + item.get_local_id(1)];
          }
        });
      });
}

/// The plain span entry point used by library code and tests.
template <int Tile = 8>
syclrt::Event hierarchical_gemm(syclrt::Queue& queue, std::span<const float> a,
                                std::span<const float> b, std::span<float> c,
                                const GemmShape& shape) {
  return basic_hierarchical_gemm<Tile>(queue, a, b, c, shape);
}

}  // namespace aks::gemm
