#include "gemm/registry.hpp"

#include <map>
#include <optional>

#include "common/error.hpp"
#include "gemm/config.hpp"
#include "gemm/tiled_kernel.hpp"
#include "trace/trace.hpp"

namespace aks::gemm {

namespace {

using Key = std::tuple<int, int, int>;

template <int RowTile, int ColTile, int AccSize>
syclrt::Event launch_instantiation(syclrt::Queue& queue,
                                   std::span<const float> a,
                                   std::span<const float> b,
                                   std::span<float> c, GemmShape shape,
                                   int wg_rows, int wg_cols) {
  // One work-item per output tile; pad the launch to whole work-groups and
  // let the kernel guard (SYCL-DNN launch convention).
  const std::size_t tiles_r =
      (shape.m + RowTile - 1) / static_cast<std::size_t>(RowTile);
  const std::size_t tiles_c =
      (shape.n + ColTile - 1) / static_cast<std::size_t>(ColTile);
  const syclrt::NdRange<2> range(
      syclrt::Range<2>(tiles_r, tiles_c),
      syclrt::Range<2>(static_cast<std::size_t>(wg_rows),
                       static_cast<std::size_t>(wg_cols)));
  TiledGemmKernel<RowTile, ColTile, AccSize> kernel(a, b, c, shape);
  return queue.parallel_for(range, kernel);
}

template <int RowTile, int ColTile, int AccSize>
syclrt::Event launch_batched_instantiation(
    syclrt::Queue& queue, std::span<const float> a, std::span<const float> b,
    std::span<float> c, GemmShape shape, std::size_t batch, int wg_rows,
    int wg_cols) {
  const std::size_t tiles_r =
      (shape.m + RowTile - 1) / static_cast<std::size_t>(RowTile);
  const std::size_t tiles_c =
      (shape.n + ColTile - 1) / static_cast<std::size_t>(ColTile);
  // One work-group handles one batch entry's tile block: local (1, wg, wg).
  const syclrt::NdRange<3> range(
      syclrt::Range<3>(batch, tiles_r, tiles_c),
      syclrt::Range<3>(std::size_t{1}, static_cast<std::size_t>(wg_rows),
                       static_cast<std::size_t>(wg_cols)));
  BatchedTiledGemmKernel<RowTile, ColTile, AccSize> kernel(a, b, c, shape,
                                                           batch);
  return queue.parallel_for(range, kernel);
}

using BatchedLauncher = std::function<syclrt::Event(
    syclrt::Queue&, std::span<const float>, std::span<const float>,
    std::span<float>, GemmShape, std::size_t, int, int)>;

template <int RowTile, int ColTile, int AccSize>
void register_one(std::map<Key, KernelLauncher>& table) {
  table.emplace(Key{RowTile, ColTile, AccSize},
                [](syclrt::Queue& queue, std::span<const float> a,
                   std::span<const float> b, std::span<float> c,
                   GemmShape shape, int wg_rows, int wg_cols) {
                  return launch_instantiation<RowTile, ColTile, AccSize>(
                      queue, a, b, c, shape, wg_rows, wg_cols);
                });
}

// Instantiate the full {1,2,4,8}^3 cross product at compile time.
template <int RowTile, int ColTile>
void register_acc(std::map<Key, KernelLauncher>& table) {
  register_one<RowTile, ColTile, 1>(table);
  register_one<RowTile, ColTile, 2>(table);
  register_one<RowTile, ColTile, 4>(table);
  register_one<RowTile, ColTile, 8>(table);
}

template <int RowTile>
void register_col(std::map<Key, KernelLauncher>& table) {
  register_acc<RowTile, 1>(table);
  register_acc<RowTile, 2>(table);
  register_acc<RowTile, 4>(table);
  register_acc<RowTile, 8>(table);
}

const std::map<Key, KernelLauncher>& registry() {
  static const std::map<Key, KernelLauncher> table = [] {
    std::map<Key, KernelLauncher> t;
    register_col<1>(t);
    register_col<2>(t);
    register_col<4>(t);
    register_col<8>(t);
    return t;
  }();
  return table;
}

template <int RowTile, int ColTile, int AccSize>
void register_batched_one(std::map<Key, BatchedLauncher>& table) {
  table.emplace(Key{RowTile, ColTile, AccSize},
                [](syclrt::Queue& queue, std::span<const float> a,
                   std::span<const float> b, std::span<float> c,
                   GemmShape shape, std::size_t batch, int wg_rows,
                   int wg_cols) {
                  return launch_batched_instantiation<RowTile, ColTile,
                                                      AccSize>(
                      queue, a, b, c, shape, batch, wg_rows, wg_cols);
                });
}

template <int RowTile, int ColTile>
void register_batched_acc(std::map<Key, BatchedLauncher>& table) {
  register_batched_one<RowTile, ColTile, 1>(table);
  register_batched_one<RowTile, ColTile, 2>(table);
  register_batched_one<RowTile, ColTile, 4>(table);
  register_batched_one<RowTile, ColTile, 8>(table);
}

template <int RowTile>
void register_batched_col(std::map<Key, BatchedLauncher>& table) {
  register_batched_acc<RowTile, 1>(table);
  register_batched_acc<RowTile, 2>(table);
  register_batched_acc<RowTile, 4>(table);
  register_batched_acc<RowTile, 8>(table);
}

const std::map<Key, BatchedLauncher>& batched_registry() {
  static const std::map<Key, BatchedLauncher> table = [] {
    std::map<Key, BatchedLauncher> t;
    register_batched_col<1>(t);
    register_batched_col<2>(t);
    register_batched_col<4>(t);
    register_batched_col<8>(t);
    return t;
  }();
  return table;
}

}  // namespace

std::size_t registry_size() { return registry().size(); }

const KernelLauncher& find_kernel(int row_tile, int col_tile, int acc_size) {
  const auto it = registry().find(Key{row_tile, col_tile, acc_size});
  AKS_CHECK(it != registry().end(),
            "no compiled kernel for tile " << row_tile << "x" << col_tile
            << " acc " << acc_size);
  return it->second;
}

namespace {

trace::LaunchAnnotation::Info launch_info(const KernelConfig& config,
                                          const GemmShape& shape,
                                          std::size_t batch) {
  trace::LaunchAnnotation::Info info;
  try {
    info.config_index = config_index(config);
  } catch (const common::Error&) {
    // Non-canonical (hand-built) config: no stable index to attach.
    info.config_index = ~std::uint64_t{0};
  }
  info.m = shape.m;
  info.k = shape.k;
  info.n = shape.n;
  info.batch = batch;
  return info;
}

}  // namespace

syclrt::Event launch_gemm(syclrt::Queue& queue, const KernelConfig& config,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c, const GemmShape& shape) {
  AKS_CHECK(shape.m > 0 && shape.k > 0 && shape.n > 0,
            "degenerate GEMM shape " << shape.to_string());
  AKS_CHECK(a.size() == shape.m * shape.k,
            "A has " << a.size() << " elements, shape needs " << shape.m * shape.k);
  AKS_CHECK(b.size() == shape.k * shape.n,
            "B has " << b.size() << " elements, shape needs " << shape.k * shape.n);
  AKS_CHECK(c.size() == shape.m * shape.n,
            "C has " << c.size() << " elements, shape needs " << shape.m * shape.n);
  const auto& launcher =
      find_kernel(config.row_tile, config.col_tile, config.acc_size);
  // The queue's launch span picks the annotation up from thread-local state
  // — this is the layer that knows which selection decision is being run.
  std::optional<trace::LaunchAnnotation> annotation;
  if (trace::enabled()) {
    annotation.emplace(launch_info(config, shape, /*batch=*/1));
  }
  return launcher(queue, a, b, c, shape, config.wg_rows, config.wg_cols);
}

syclrt::Event launch_batched_gemm(syclrt::Queue& queue,
                                  const KernelConfig& config,
                                  std::span<const float> a,
                                  std::span<const float> b,
                                  std::span<float> c, const GemmShape& shape,
                                  std::size_t batch) {
  AKS_CHECK(batch > 0, "batched GEMM needs at least one batch entry");
  AKS_CHECK(shape.m > 0 && shape.k > 0 && shape.n > 0,
            "degenerate GEMM shape " << shape.to_string());
  AKS_CHECK(a.size() == batch * shape.m * shape.k, "batched A size mismatch");
  AKS_CHECK(b.size() == batch * shape.k * shape.n, "batched B size mismatch");
  AKS_CHECK(c.size() == batch * shape.m * shape.n, "batched C size mismatch");
  const auto it = batched_registry().find(
      Key{config.row_tile, config.col_tile, config.acc_size});
  AKS_CHECK(it != batched_registry().end(),
            "no compiled batched kernel for " << config.name());
  std::optional<trace::LaunchAnnotation> annotation;
  if (trace::enabled()) {
    annotation.emplace(launch_info(config, shape, batch));
  }
  return it->second(queue, a, b, c, shape, batch, config.wg_rows,
                    config.wg_cols);
}

}  // namespace aks::gemm
