#include "gemm/config.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace aks::gemm {

namespace {

int tile_index(int value) {
  const auto& sizes = tile_sizes();
  const auto it = std::find(sizes.begin(), sizes.end(), value);
  AKS_CHECK(it != sizes.end(), "tile size " << value << " not in {1,2,4,8}");
  return static_cast<int>(std::distance(sizes.begin(), it));
}

int wg_index(int rows, int cols) {
  const auto& shapes = work_group_shapes();
  const auto it = std::find(shapes.begin(), shapes.end(),
                            std::make_pair(rows, cols));
  AKS_CHECK(it != shapes.end(),
            "work-group shape " << rows << "x" << cols << " not supported");
  return static_cast<int>(std::distance(shapes.begin(), it));
}

}  // namespace

std::string KernelConfig::name() const {
  return "t" + std::to_string(row_tile) + "x" + std::to_string(col_tile) +
         "_a" + std::to_string(acc_size) + "_wg" + std::to_string(wg_rows) +
         "x" + std::to_string(wg_cols);
}

KernelConfig KernelConfig::parse(const std::string& name) {
  // Format: t<rt>x<ct>_a<acc>_wg<rows>x<cols>
  const auto parts = common::split(name, '_');
  AKS_CHECK(parts.size() == 3 && common::starts_with(parts[0], "t") &&
                common::starts_with(parts[1], "a") &&
                common::starts_with(parts[2], "wg"),
            "malformed kernel config name: " << name);
  const auto tiles = common::split(parts[0].substr(1), 'x');
  const auto wg = common::split(parts[2].substr(2), 'x');
  AKS_CHECK(tiles.size() == 2 && wg.size() == 2,
            "malformed kernel config name: " << name);
  KernelConfig config;
  try {
    config.row_tile = std::stoi(tiles[0]);
    config.col_tile = std::stoi(tiles[1]);
    config.acc_size = std::stoi(parts[1].substr(1));
    config.wg_rows = std::stoi(wg[0]);
    config.wg_cols = std::stoi(wg[1]);
  } catch (const std::exception&) {
    AKS_FAIL("malformed kernel config name: " << name);
  }
  // Validate by round-tripping through the canonical index.
  (void)config_index(config);
  return config;
}

const std::array<int, 4>& tile_sizes() {
  static const std::array<int, 4> sizes = {1, 2, 4, 8};
  return sizes;
}

const std::array<std::pair<int, int>, 10>& work_group_shapes() {
  // The ten shapes listed in Section II of the paper.
  static const std::array<std::pair<int, int>, 10> shapes = {{
      {1, 64}, {1, 128}, {8, 8}, {8, 16}, {8, 32},
      {16, 8}, {16, 16}, {32, 8}, {64, 1}, {128, 1},
  }};
  return shapes;
}

const std::vector<KernelConfig>& enumerate_configs() {
  static const std::vector<KernelConfig> configs = [] {
    std::vector<KernelConfig> out;
    out.reserve(640);
    for (int rt : tile_sizes())
      for (int ct : tile_sizes())
        for (int acc : tile_sizes())
          for (const auto& [rows, cols] : work_group_shapes())
            out.push_back(KernelConfig{rt, ct, acc, rows, cols});
    return out;
  }();
  return configs;
}

std::size_t config_index(const KernelConfig& config) {
  const auto rt = static_cast<std::size_t>(tile_index(config.row_tile));
  const auto ct = static_cast<std::size_t>(tile_index(config.col_tile));
  const auto acc = static_cast<std::size_t>(tile_index(config.acc_size));
  const auto wg =
      static_cast<std::size_t>(wg_index(config.wg_rows, config.wg_cols));
  return ((rt * 4 + ct) * 4 + acc) * 10 + wg;
}

std::size_t count_compiled_kernels(const std::vector<KernelConfig>& configs) {
  std::set<std::tuple<int, int, int>> compiled;
  for (const auto& c : configs)
    compiled.emplace(c.row_tile, c.col_tile, c.acc_size);
  return compiled.size();
}

}  // namespace aks::gemm
