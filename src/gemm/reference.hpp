// Scalar reference GEMM used as the correctness oracle for every tiled
// kernel instantiation.
#pragma once

#include <span>

#include "gemm/shape.hpp"

namespace aks::gemm {

/// C = A * B with A[M x K], B[K x N], C[M x N], all row-major.
/// C is overwritten. Sizes are validated against `shape`.
void reference_gemm(std::span<const float> a, std::span<const float> b,
                    std::span<float> c, const GemmShape& shape);

}  // namespace aks::gemm
