// The register-tiled GEMM kernel family, modelled on SYCL-DNN's matmul.
//
// Each work-item computes a RowTile x ColTile tile of C, stepping AccSize
// values along K per iteration. RowTile, ColTile and AccSize are template
// parameters — exactly the compile-time specialisation scheme the paper
// describes ("C++ templates are used throughout SYCL-DNN to provide
// specializations for ... tile sizes and other constants") — so each of the
// 64 combinations is a separately compiled kernel. The work-group shape is
// a runtime launch parameter and needs no extra instantiations.
//
// Interior work-items (whole tiles, whole accumulator steps) run a fully
// unrolled fast path over fixed-size register arrays; edge items fall back
// to a guarded path. This mirrors how the real kernels trade register
// pressure against unrolling, which is what gives each instantiation its
// distinct performance character on a GPU.
//
// The accessor types are template parameters defaulting to spans so the
// checked execution mode (src/check) can instantiate the very same kernel
// over recording accessors — the analysed code path is the shipped one, not
// a checked re-implementation.
#pragma once

#include <span>

#include "gemm/shape.hpp"
#include "syclrt/nd_item.hpp"

namespace aks::gemm {

template <int RowTile, int ColTile, int AccSize,
          typename ConstAcc = std::span<const float>,
          typename MutAcc = std::span<float>>
class TiledGemmKernel {
  static_assert(RowTile >= 1 && ColTile >= 1 && AccSize >= 1);

 public:
  static constexpr std::size_t kRowTile = RowTile;
  static constexpr std::size_t kColTile = ColTile;
  static constexpr std::size_t kAccSize = AccSize;

  TiledGemmKernel(ConstAcc a, ConstAcc b, MutAcc c, GemmShape shape)
      : a_(a), b_(b), c_(c), shape_(shape) {}

  void operator()(const syclrt::NdItem<2>& item) const {
    // Global id (r, c) addresses one output tile; the launch is padded to
    // whole work-groups so out-of-range items simply return.
    compute_tile(item.get_global_id(0), item.get_global_id(1));
  }

  /// Computes the output tile at tile coordinates (tile_row, tile_col);
  /// silently returns for out-of-range tiles (padded launches). Exposed so
  /// the batched kernel can reuse the exact same compute paths.
  void compute_tile(std::size_t tile_row, std::size_t tile_col) const {
    const std::size_t row0 = tile_row * kRowTile;
    const std::size_t col0 = tile_col * kColTile;
    if (row0 >= shape_.m || col0 >= shape_.n) return;

    const bool interior = row0 + kRowTile <= shape_.m &&
                          col0 + kColTile <= shape_.n &&
                          shape_.k % kAccSize == 0;
    if (interior) {
      compute_interior(row0, col0);
    } else {
      compute_edge(row0, col0);
    }
  }

 private:
  void compute_interior(std::size_t row0, std::size_t col0) const {
    float acc[kRowTile][kColTile] = {};
    for (std::size_t k0 = 0; k0 < shape_.k; k0 += kAccSize) {
      // Stage operands in registers, as the GPU kernel does.
      float a_block[kRowTile][kAccSize];
      for (int r = 0; r < RowTile; ++r)
        for (int s = 0; s < AccSize; ++s)
          a_block[r][s] = a_[(row0 + static_cast<std::size_t>(r)) * shape_.k +
                             k0 + static_cast<std::size_t>(s)];
      float b_block[kAccSize][kColTile];
      for (int s = 0; s < AccSize; ++s)
        for (int c = 0; c < ColTile; ++c)
          b_block[s][c] = b_[(k0 + static_cast<std::size_t>(s)) * shape_.n +
                             col0 + static_cast<std::size_t>(c)];
      for (int s = 0; s < AccSize; ++s)
        for (int r = 0; r < RowTile; ++r)
          for (int c = 0; c < ColTile; ++c)
            acc[r][c] += a_block[r][s] * b_block[s][c];
    }
    for (int r = 0; r < RowTile; ++r)
      for (int c = 0; c < ColTile; ++c)
        c_[(row0 + static_cast<std::size_t>(r)) * shape_.n + col0 +
           static_cast<std::size_t>(c)] = acc[r][c];
  }

  void compute_edge(std::size_t row0, std::size_t col0) const {
    const std::size_t row_end = std::min(row0 + kRowTile, shape_.m);
    const std::size_t col_end = std::min(col0 + kColTile, shape_.n);
    float acc[kRowTile][kColTile] = {};
    for (std::size_t k0 = 0; k0 < shape_.k; k0 += kAccSize) {
      const std::size_t k_end = std::min(k0 + kAccSize, shape_.k);
      for (std::size_t kk = k0; kk < k_end; ++kk) {
        for (std::size_t r = row0; r < row_end; ++r) {
          const float av = a_[r * shape_.k + kk];
          for (std::size_t c = col0; c < col_end; ++c) {
            acc[r - row0][c - col0] += av * b_[kk * shape_.n + c];
          }
        }
      }
    }
    for (std::size_t r = row0; r < row_end; ++r)
      for (std::size_t c = col0; c < col_end; ++c)
        c_[r * shape_.n + c] = acc[r - row0][c - col0];
  }

  ConstAcc a_;
  ConstAcc b_;
  MutAcc c_;
  GemmShape shape_;
};

/// Batched variant: `batch` independent multiplies of identical shape, with
/// A/B/C packed contiguously per batch entry, executed as one 3-D launch
/// (batch x tile rows x tile cols). This is how the sixteen Winograd
/// multiplies ship as a single kernel instead of sixteen launches.
template <int RowTile, int ColTile, int AccSize,
          typename ConstAcc = std::span<const float>,
          typename MutAcc = std::span<float>>
class BatchedTiledGemmKernel {
 public:
  BatchedTiledGemmKernel(ConstAcc a, ConstAcc b, MutAcc c, GemmShape shape,
                         std::size_t batch)
      : a_(a), b_(b), c_(c), shape_(shape), batch_(batch) {}

  void operator()(const syclrt::NdItem<3>& item) const {
    const std::size_t bi = item.get_global_id(0);
    if (bi >= batch_) return;
    const std::size_t a_stride = shape_.m * shape_.k;
    const std::size_t b_stride = shape_.k * shape_.n;
    const std::size_t c_stride = shape_.m * shape_.n;
    const TiledGemmKernel<RowTile, ColTile, AccSize, ConstAcc, MutAcc> kernel(
        a_.subspan(bi * a_stride, a_stride),
        b_.subspan(bi * b_stride, b_stride),
        c_.subspan(bi * c_stride, c_stride), shape_);
    kernel.compute_tile(item.get_global_id(1), item.get_global_id(2));
  }

 private:
  ConstAcc a_;
  ConstAcc b_;
  MutAcc c_;
  GemmShape shape_;
  std::size_t batch_;
};

}  // namespace aks::gemm
