#include "tune/extended_space.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace aks::tune {

const std::vector<int>& vector_widths() {
  static const std::vector<int> widths = {1, 2, 4};
  return widths;
}

const std::vector<ExtendedConfig>& enumerate_extended_configs() {
  static const std::vector<ExtendedConfig> configs = [] {
    std::vector<ExtendedConfig> out;
    out.reserve(gemm::enumerate_configs().size() * vector_widths().size());
    for (const auto& base : gemm::enumerate_configs()) {
      for (const int width : vector_widths()) {
        out.push_back(ExtendedConfig{base, width});
      }
    }
    return out;
  }();
  return configs;
}

std::size_t extended_config_index(const ExtendedConfig& config) {
  const auto& widths = vector_widths();
  const auto it = std::find(widths.begin(), widths.end(), config.vector_width);
  AKS_CHECK(it != widths.end(),
            "vector width " << config.vector_width << " not in {1,2,4}");
  return gemm::config_index(config.base) * widths.size() +
         static_cast<std::size_t>(std::distance(widths.begin(), it));
}

double predict_extended_seconds(const perf::CostModel& model,
                                const ExtendedConfig& config,
                                const gemm::GemmShape& shape) {
  (void)extended_config_index(config);  // validates the width
  const auto breakdown = model.evaluate(config.base, shape);

  // The base model assumes loads vectorise up to width min(acc, 4) for A
  // and min(col_tile, 4) for B. An explicit width w rescales the load
  // instruction share of compute time by (implicit / w), clamped so a
  // width wider than the contiguous run the kernel actually has buys
  // nothing (the extra lanes read data the tile discards).
  const double vw = config.vector_width;
  const double usable_a = std::min<double>(config.base.acc_size, vw);
  const double usable_b = std::min<double>(config.base.col_tile, vw);
  const double implicit_a = std::min(config.base.acc_size, 4);
  const double implicit_b = std::min(config.base.col_tile, 4);
  // Load instructions are roughly proportional to 1/width; weight A and B
  // streams equally (the model does not separate their instruction shares).
  const double instr_scale =
      0.5 * (implicit_a / usable_a + implicit_b / usable_b);
  // Loads are a minority of compute time next to the FMAs; apply the scale
  // to a fixed load share.
  constexpr double kLoadShare = 0.30;
  const double compute =
      breakdown.compute_s * ((1.0 - kLoadShare) + kLoadShare * instr_scale);

  // Memory side: wider vectors waste bandwidth when they overshoot the
  // contiguous run (fetching discarded elements).
  const double waste_a = vw / usable_a;
  const double waste_b = vw / usable_b;
  const double mem_scale = 0.5 * (waste_a + waste_b);
  const double memory = breakdown.memory_s * std::max(1.0, 0.5 + 0.5 * mem_scale);

  return std::max(compute, memory) + 0.15 * std::min(compute, memory) +
         breakdown.launch_s;
}

ExtendedSearchResult exhaustive_extended_search(const perf::CostModel& model,
                                                const gemm::GemmShape& shape) {
  ExtendedSearchResult result;
  result.best_value = std::numeric_limits<double>::max();
  for (const auto& config : enumerate_extended_configs()) {
    const double value = predict_extended_seconds(model, config, shape);
    ++result.evaluations;
    if (value < result.best_value) {
      result.best_value = value;
      result.best = config;
    }
  }
  return result;
}

}  // namespace aks::tune
