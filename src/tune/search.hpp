// Parameter-space search strategies for kernel tuning.
//
// The paper brute-forces all 640 configurations and notes that "this is not
// feasible for more general kernels that have significantly more parameters
// ... more complex tuning algorithms have been proposed, such as basin
// hopping and evolutionary algorithms" (citing Kernel Tuner). This module
// implements those strategies over the configuration space so the trade-off
// between search budget and solution quality can be studied on the same
// case study (see bench/ablation_search_methods).
//
// The space is navigated through its four coordinates: row-tile index,
// column-tile index, accumulator index (each 0..3 over {1,2,4,8}) and
// work-group shape index (0..9). A "neighbour" differs by one step in one
// coordinate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gemm/config.hpp"

namespace aks::tune {

/// Cost to minimise for a candidate configuration (e.g. modelled seconds).
using Objective = std::function<double(const gemm::KernelConfig&)>;

/// Outcome of a search run.
struct SearchResult {
  gemm::KernelConfig best;
  double best_value = 0.0;
  /// Total objective evaluations spent (cache misses only).
  std::size_t evaluations = 0;
  /// Best-so-far value after each evaluation (for budget/quality curves).
  std::vector<double> trajectory;
};

/// Evaluates every configuration; the ground truth the others chase.
[[nodiscard]] SearchResult exhaustive_search(const Objective& objective);

/// Uniform random sampling without replacement up to `budget` evaluations.
[[nodiscard]] SearchResult random_search(const Objective& objective,
                                         std::size_t budget,
                                         std::uint64_t seed);

struct AnnealingOptions {
  std::size_t budget = 100;
  /// Initial temperature as a fraction of the first objective value.
  double initial_temperature = 0.3;
  /// Multiplicative cooling per step.
  double cooling = 0.95;
  /// Random restarts when a basin is exhausted (basin hopping).
  int restarts = 3;
  std::uint64_t seed = 0;
};

/// Simulated annealing with restarts (a basin-hopping variant).
[[nodiscard]] SearchResult simulated_annealing(const Objective& objective,
                                               const AnnealingOptions& options);

struct EvolutionOptions {
  std::size_t budget = 100;
  int population = 12;
  /// Probability of mutating each coordinate of a child.
  double mutation_rate = 0.25;
  /// Tournament size for parent selection.
  int tournament = 3;
  std::uint64_t seed = 0;
};

/// Steady-state genetic algorithm: tournament selection, uniform crossover
/// over the four coordinates, per-coordinate step mutation.
[[nodiscard]] SearchResult evolutionary_search(const Objective& objective,
                                               const EvolutionOptions& options);

}  // namespace aks::tune
