#include "tune/search.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aks::tune {

namespace {

/// Coordinate representation of a configuration: three tile indices into
/// {1,2,4,8} plus a work-group shape index.
struct Coords {
  std::array<int, 4> v = {0, 0, 0, 0};

  [[nodiscard]] bool operator<(const Coords& other) const {
    return v < other.v;
  }
};

constexpr std::array<int, 4> kCoordLimits = {4, 4, 4, 10};

Coords to_coords(const gemm::KernelConfig& config) {
  const auto& sizes = gemm::tile_sizes();
  auto tile_index = [&](int value) {
    return static_cast<int>(
        std::find(sizes.begin(), sizes.end(), value) - sizes.begin());
  };
  const auto& shapes = gemm::work_group_shapes();
  const auto wg = static_cast<int>(
      std::find(shapes.begin(), shapes.end(),
                std::make_pair(config.wg_rows, config.wg_cols)) -
      shapes.begin());
  return Coords{{tile_index(config.row_tile), tile_index(config.col_tile),
                 tile_index(config.acc_size), wg}};
}

gemm::KernelConfig to_config(const Coords& coords) {
  const auto& sizes = gemm::tile_sizes();
  const auto& shapes = gemm::work_group_shapes();
  gemm::KernelConfig config;
  config.row_tile = sizes[static_cast<std::size_t>(coords.v[0])];
  config.col_tile = sizes[static_cast<std::size_t>(coords.v[1])];
  config.acc_size = sizes[static_cast<std::size_t>(coords.v[2])];
  const auto& [rows, cols] = shapes[static_cast<std::size_t>(coords.v[3])];
  config.wg_rows = rows;
  config.wg_cols = cols;
  return config;
}

/// Memoises the objective and records the best-so-far trajectory.
class Evaluator {
 public:
  explicit Evaluator(const Objective& objective) : objective_(objective) {}

  double operator()(const Coords& coords) {
    const auto [it, inserted] = cache_.try_emplace(coords, 0.0);
    if (inserted) {
      it->second = objective_(to_config(coords));
      AKS_CHECK(std::isfinite(it->second),
                "objective returned a non-finite value");
      if (it->second < result_.best_value || result_.evaluations == 0) {
        result_.best_value = it->second;
        result_.best = to_config(coords);
      }
      ++result_.evaluations;
      result_.trajectory.push_back(result_.best_value);
    }
    return it->second;
  }

  [[nodiscard]] bool seen(const Coords& coords) const {
    return cache_.contains(coords);
  }
  [[nodiscard]] std::size_t distinct() const { return cache_.size(); }
  [[nodiscard]] SearchResult result() const { return result_; }

 private:
  const Objective& objective_;
  std::map<Coords, double> cache_;
  SearchResult result_{gemm::KernelConfig{}, std::numeric_limits<double>::max(),
                       0, {}};
};

Coords random_coords(common::Rng& rng) {
  Coords coords;
  for (std::size_t d = 0; d < 4; ++d) {
    coords.v[d] = static_cast<int>(
        rng.uniform_index(static_cast<std::size_t>(kCoordLimits[d])));
  }
  return coords;
}

/// A random single-coordinate step (clamped to the space).
Coords neighbour(const Coords& coords, common::Rng& rng) {
  Coords out = coords;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const auto d = rng.uniform_index(4);
    const int step = rng.uniform() < 0.5 ? -1 : 1;
    const int moved = coords.v[d] + step;
    if (moved >= 0 && moved < kCoordLimits[d]) {
      out.v[d] = moved;
      return out;
    }
  }
  return out;  // stuck in a corner: return unchanged, caller handles
}

}  // namespace

SearchResult exhaustive_search(const Objective& objective) {
  Evaluator evaluate(objective);
  for (const auto& config : gemm::enumerate_configs()) {
    evaluate(to_coords(config));
  }
  return evaluate.result();
}

SearchResult random_search(const Objective& objective, std::size_t budget,
                           std::uint64_t seed) {
  AKS_CHECK(budget > 0, "random search needs a positive budget");
  Evaluator evaluate(objective);
  common::Rng rng(seed);
  std::size_t attempts = 0;
  while (evaluate.distinct() < budget &&
         evaluate.distinct() < gemm::enumerate_configs().size() &&
         attempts < budget * 50) {
    evaluate(random_coords(rng));
    ++attempts;
  }
  return evaluate.result();
}

SearchResult simulated_annealing(const Objective& objective,
                                 const AnnealingOptions& options) {
  AKS_CHECK(options.budget > 0, "annealing needs a positive budget");
  AKS_CHECK(options.cooling > 0.0 && options.cooling < 1.0,
            "cooling must be in (0,1)");
  AKS_CHECK(options.restarts >= 1, "need at least one start");
  Evaluator evaluate(objective);
  common::Rng rng(options.seed);

  const std::size_t per_start =
      std::max<std::size_t>(2, options.budget /
                                   static_cast<std::size_t>(options.restarts));
  for (int start = 0;
       start < options.restarts && evaluate.distinct() < options.budget;
       ++start) {
    Coords current = random_coords(rng);
    double current_value = evaluate(current);
    double temperature = options.initial_temperature * std::abs(current_value);
    if (temperature <= 0.0) temperature = 1e-12;

    for (std::size_t step = 0;
         step < per_start && evaluate.distinct() < options.budget; ++step) {
      const Coords candidate = neighbour(current, rng);
      const double value = evaluate(candidate);
      const double delta = value - current_value;
      if (delta <= 0.0 ||
          rng.uniform() < std::exp(-delta / std::max(temperature, 1e-300))) {
        current = candidate;
        current_value = value;
      }
      temperature *= options.cooling;
    }
  }
  return evaluate.result();
}

SearchResult evolutionary_search(const Objective& objective,
                                 const EvolutionOptions& options) {
  AKS_CHECK(options.budget > 0, "evolution needs a positive budget");
  AKS_CHECK(options.population >= 2, "population must be at least 2");
  AKS_CHECK(options.tournament >= 1, "tournament must be at least 1");
  Evaluator evaluate(objective);
  common::Rng rng(options.seed);

  struct Member {
    Coords coords;
    double value = 0.0;
  };
  std::vector<Member> population;
  for (int i = 0;
       i < options.population && evaluate.distinct() < options.budget; ++i) {
    Member member;
    member.coords = random_coords(rng);
    member.value = evaluate(member.coords);
    population.push_back(member);
  }

  auto tournament_pick = [&]() -> const Member& {
    const Member* best = &population[rng.uniform_index(population.size())];
    for (int i = 1; i < options.tournament; ++i) {
      const Member& candidate =
          population[rng.uniform_index(population.size())];
      if (candidate.value < best->value) best = &candidate;
    }
    return *best;
  };

  // Generation cap guards against a fully converged population producing
  // only already-evaluated children.
  std::size_t generations = 0;
  const std::size_t max_generations = options.budget * 50;
  while (evaluate.distinct() < options.budget &&
         generations++ < max_generations) {
    const Member& a = tournament_pick();
    const Member& b = tournament_pick();
    Member child;
    for (std::size_t d = 0; d < 4; ++d) {
      child.coords.v[d] = rng.uniform() < 0.5 ? a.coords.v[d] : b.coords.v[d];
      if (rng.uniform() < options.mutation_rate) {
        const int step = rng.uniform() < 0.5 ? -1 : 1;
        child.coords.v[d] = std::clamp(child.coords.v[d] + step, 0,
                                       kCoordLimits[d] - 1);
      }
    }
    child.value = evaluate(child.coords);
    // Steady state: replace the worst member if the child improves on it.
    auto worst = std::max_element(
        population.begin(), population.end(),
        [](const Member& x, const Member& y) { return x.value < y.value; });
    if (child.value < worst->value) *worst = child;
  }
  return evaluate.result();
}

}  // namespace aks::tune
