// The extended kernel-parameter space the paper warns about.
//
// Section II: "Further parameters include the vector widths used to load
// and store values from memory" — the case study fixes those to keep the
// space brute-forceable (640 points), and Section V notes the approach must
// eventually face spaces where that is "not feasible". This module models
// that next step: the 640-point space crossed with explicit load/store
// vector widths (1920 points), with a cost-model objective that accounts
// for the vector width's effect on instruction count and coalescing. The
// search strategies in search.hpp operate on it through the same Objective
// interface; bench/ablation_extended_space compares budgets there.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gemm/config.hpp"
#include "gemm/shape.hpp"
#include "perfmodel/cost_model.hpp"

namespace aks::tune {

/// One point of the extended space: a base configuration plus an explicit
/// vector width for global loads/stores.
struct ExtendedConfig {
  gemm::KernelConfig base;
  /// Elements per vector load/store: 1, 2 or 4.
  int vector_width = 1;

  [[nodiscard]] std::string name() const {
    return base.name() + "_v" + std::to_string(vector_width);
  }
  [[nodiscard]] bool operator==(const ExtendedConfig&) const = default;
};

/// The vector widths considered (1920 = 640 x 3 points total).
[[nodiscard]] const std::vector<int>& vector_widths();

/// All extended configurations in canonical order
/// (index = config_index(base) * 3 + width index).
[[nodiscard]] const std::vector<ExtendedConfig>& enumerate_extended_configs();

/// Canonical index of an extended configuration.
[[nodiscard]] std::size_t extended_config_index(const ExtendedConfig& config);

/// Modelled execution time of an extended configuration: the base model's
/// prediction adjusted for the explicit vector width — wider vectors cut
/// load instruction counts and improve strided coalescing, but widths that
/// exceed the accumulator/tile geometry waste bandwidth on unused lanes.
[[nodiscard]] double predict_extended_seconds(const perf::CostModel& model,
                                              const ExtendedConfig& config,
                                              const gemm::GemmShape& shape);

/// Objective over the extended space for the search strategies; the
/// searcher still navigates by base-space coordinates, so this flattens the
/// extended index into the objective: each base config is evaluated at its
/// BEST vector width (the common auto-tuner practice of nesting cheap
/// parameters inside the expensive search).
using ExtendedObjective = std::function<double(const ExtendedConfig&)>;

/// Exhaustive optimum over all 1920 points (the ground truth).
struct ExtendedSearchResult {
  ExtendedConfig best;
  double best_value = 0.0;
  std::size_t evaluations = 0;
};
[[nodiscard]] ExtendedSearchResult exhaustive_extended_search(
    const perf::CostModel& model, const gemm::GemmShape& shape);

}  // namespace aks::tune
