#include "core/online.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "faults/injector.hpp"
#include "trace/trace.hpp"

namespace aks::select {

namespace {

std::uint64_t trial_key(const gemm::GemmShape& shape, std::size_t candidate,
                        int attempt) {
  return faults::mix_key(shape.m, shape.k, shape.n,
                         static_cast<std::uint64_t>(candidate),
                         static_cast<std::uint64_t>(attempt));
}

}  // namespace

OnlineTuner::OnlineTuner(std::vector<std::size_t> candidates, TimerFn timer,
                         TunerOptions options)
    : candidates_(std::move(candidates)),
      timer_(std::move(timer)),
      options_(options),
      health_(candidates_.size()) {
  AKS_CHECK(!candidates_.empty(), "online tuner needs candidates");
  AKS_CHECK(timer_ != nullptr, "online tuner needs a timer function");
  AKS_CHECK(options_.trial_attempts > 0, "trial_attempts must be positive");
  const auto num_configs = gemm::enumerate_configs().size();
  for (const std::size_t c : candidates_) {
    AKS_CHECK(c < num_configs, "candidate index " << c << " out of range");
  }
}

gemm::KernelConfig OnlineTuner::select(const gemm::GemmShape& shape) {
  {
    aks::ReaderMutexLock lock(mutex_);
    const auto it = cache_.find(shape);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return gemm::enumerate_configs()[it->second];
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Snapshot quarantine state so the sweep runs unlocked; position 0 (the
  // fallback) is eligible by construction.
  std::vector<bool> eligible(candidates_.size(), true);
  {
    aks::ReaderMutexLock lock(mutex_);
    for (std::size_t i = 1; i < health_.size(); ++i) {
      eligible[i] = !health_[i].quarantined;
    }
  }

  trace::Span sweep_span;
  if (trace::enabled()) {
    sweep_span.arm("tuner.sweep",
                   {trace::arg("m", shape.m), trace::arg("k", shape.k),
                    trace::arg("n", shape.n),
                    trace::arg("candidates", candidates_.size())});
  }

  double best_time = std::numeric_limits<double>::infinity();
  std::size_t best = candidates_.front();
  bool any_valid = false;
  double sweep_seconds = 0.0;
  // failed[i]: candidate i produced no usable trial this sweep.
  std::vector<bool> failed(candidates_.size(), false);
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (!eligible[i]) continue;
    const std::size_t candidate = candidates_[i];
    trace::Span trial_span;
    if (trace::enabled()) {
      trial_span.arm("tuner.trial", {trace::arg("config", candidate)});
    }
    double candidate_best = std::numeric_limits<double>::infinity();
    for (int attempt = 0; attempt < options_.trial_attempts; ++attempt) {
      // Arm both the warm-up-trial and kernel-launch sites: the timer may
      // route through syclrt::Queue (host mode) or be pure host timing.
      faults::FaultScope scope(
          faults::site_bit(faults::Site::kWarmUpTrial) |
              faults::site_bit(faults::Site::kKernelLaunch),
          trial_key(shape, candidate, attempt));
      double t;
      try {
        t = timer_(gemm::enumerate_configs()[candidate], shape);
        if (const auto fault = faults::probe(faults::Site::kWarmUpTrial)) {
          switch (fault.kind) {
            case faults::FaultKind::kLaunchFailure:
              throw faults::LaunchFailure("injected warm-up launch failure");
            case faults::FaultKind::kHang:
              throw faults::DeadlineExceeded("injected warm-up hang");
            case faults::FaultKind::kTimingOutlier:
              t *= fault.magnitude;
              break;
            case faults::FaultKind::kTimingNan:
              t = std::numeric_limits<double>::quiet_NaN();
              break;
            default:
              break;
          }
        }
      } catch (const std::exception&) {
        trial_failures_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!std::isfinite(t) || t <= 0.0) {
        trial_failures_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      sweep_seconds += t;
      candidate_best = std::min(candidate_best, t);
      // Fault-free trials are deterministic; one valid sample settles the
      // candidate (and keeps the legacy one-timer-call-per-candidate
      // accounting intact when no plan is installed).
      if (!faults::plan_active()) break;
    }
    if (std::isfinite(candidate_best)) {
      any_valid = true;
      trial_span.annotate(trace::arg("best_seconds", candidate_best));
      if (candidate_best < best_time) {
        best_time = candidate_best;
        best = candidate;
      }
    } else {
      failed[i] = true;
      trial_span.annotate(trace::arg("outcome", "failed"));
    }
  }
  trial_seconds_.add(sweep_seconds);
  sweep_span.annotate(trace::arg("sweep_seconds", sweep_seconds));
  sweep_span.annotate(trace::arg("winner", best));
  if (!any_valid) {
    // Whole sweep failed: serve the guaranteed fallback instead of
    // throwing. The result is still cached — single-flight layers above
    // would cache it anyway, and a fully-dead sweep for a shape is a plan
    // property, so retrying per-request would only re-pay the sweep.
    degraded_selects_.fetch_add(1, std::memory_order_relaxed);
    sweep_span.annotate(trace::arg("outcome", "degraded"));
  }

  aks::WriterMutexLock lock(mutex_);
  if (options_.quarantine_threshold > 0) {
    for (std::size_t i = 1; i < candidates_.size(); ++i) {
      if (!eligible[i]) continue;
      auto& health = health_[i];
      if (failed[i]) {
        if (++health.consecutive_failures >= options_.quarantine_threshold) {
          health.quarantined = true;
          trace::instant("tuner.quarantine",
                         {trace::arg("config", candidates_[i])});
        }
      } else {
        health.consecutive_failures = 0;
      }
    }
  }
  // First finished sweep wins; racing losers adopt its answer so every
  // caller observes the same winner for a shape.
  const auto [it, inserted] = cache_.emplace(shape, best);
  return gemm::enumerate_configs()[it->second];
}

bool OnlineTuner::preseed(const gemm::GemmShape& shape,
                          std::size_t canonical_index) {
  if (std::find(candidates_.begin(), candidates_.end(), canonical_index) ==
      candidates_.end()) {
    return false;
  }
  aks::WriterMutexLock lock(mutex_);
  return cache_.emplace(shape, canonical_index).second;
}

std::vector<std::pair<gemm::GemmShape, std::size_t>> OnlineTuner::snapshot()
    const {
  aks::ReaderMutexLock lock(mutex_);
  return {cache_.begin(), cache_.end()};
}

gemm::KernelConfig OnlineTuner::fallback_config() const {
  return gemm::enumerate_configs()[candidates_.front()];
}

std::size_t OnlineTuner::cached_shapes() const {
  aks::ReaderMutexLock lock(mutex_);
  return cache_.size();
}

std::vector<std::size_t> OnlineTuner::quarantined() const {
  aks::ReaderMutexLock lock(mutex_);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (health_[i].quarantined) out.push_back(candidates_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool OnlineTuner::is_quarantined(std::size_t canonical_index) const {
  aks::ReaderMutexLock lock(mutex_);
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i] == canonical_index) return health_[i].quarantined;
  }
  return false;
}

}  // namespace aks::select
