#include "core/online.hpp"

#include <limits>
#include <mutex>

#include "common/error.hpp"

namespace aks::select {

OnlineTuner::OnlineTuner(std::vector<std::size_t> candidates, TimerFn timer)
    : candidates_(std::move(candidates)), timer_(std::move(timer)) {
  AKS_CHECK(!candidates_.empty(), "online tuner needs candidates");
  AKS_CHECK(timer_ != nullptr, "online tuner needs a timer function");
  const auto num_configs = gemm::enumerate_configs().size();
  for (const std::size_t c : candidates_) {
    AKS_CHECK(c < num_configs, "candidate index " << c << " out of range");
  }
}

gemm::KernelConfig OnlineTuner::select(const gemm::GemmShape& shape) {
  {
    std::shared_lock lock(mutex_);
    const auto it = cache_.find(shape);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return gemm::enumerate_configs()[it->second];
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  double best_time = std::numeric_limits<double>::infinity();
  std::size_t best = candidates_.front();
  double sweep_seconds = 0.0;
  for (const std::size_t candidate : candidates_) {
    const double t =
        timer_(gemm::enumerate_configs()[candidate], shape);
    AKS_CHECK(t > 0.0, "timer returned non-positive time");
    sweep_seconds += t;
    if (t < best_time) {
      best_time = t;
      best = candidate;
    }
  }
  trial_seconds_.add(sweep_seconds);
  std::unique_lock lock(mutex_);
  // First finished sweep wins; racing losers adopt its answer so every
  // caller observes the same winner for a shape.
  const auto [it, inserted] = cache_.emplace(shape, best);
  return gemm::enumerate_configs()[it->second];
}

std::size_t OnlineTuner::cached_shapes() const {
  std::shared_lock lock(mutex_);
  return cache_.size();
}

}  // namespace aks::select
