// Online (dynamic) kernel tuning — the strategy the paper's introduction
// attributes to ML frameworks: "doing trial runs the first time an input
// size is used and choosing the best for subsequent runs".
//
// The tuner holds a candidate configuration set (typically a pruned set).
// The first request for a shape times every candidate through the supplied
// timing function and caches the winner; later requests hit the cache. This
// is the baseline a learned selector competes with: zero selection error
// asymptotically, but a warm-up cost of |candidates| trial runs per novel
// shape — exactly the trade-off bench/ablation_online_vs_learned measures.
//
// Thread safety: select() may be called concurrently. Cache lookups take a
// shared lock; the trial sweep runs unlocked and the first finished sweep
// for a shape wins (every caller returns that winner, so results are
// consistent across threads). Two threads racing on the same cold shape may
// both run the sweep — each counts a miss and its trial time, so the stats
// keep reporting work actually done. The serving layer
// (serve::SelectionService) adds single-flight coalescing on top when
// duplicate sweeps must not happen at all. Single-threaded behaviour —
// including the hits/misses/trial_seconds accounting — is unchanged.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <shared_mutex>
#include <vector>

#include "common/metrics.hpp"
#include "gemm/config.hpp"
#include "gemm/shape.hpp"

namespace aks::select {

class OnlineTuner {
 public:
  /// Times one run of `config` on `shape`, returning seconds.
  using TimerFn =
      std::function<double(const gemm::KernelConfig&, const gemm::GemmShape&)>;

  /// `candidates` are canonical configuration indices; `timer` is invoked
  /// once per candidate on every cache miss.
  OnlineTuner(std::vector<std::size_t> candidates, TimerFn timer);

  /// Best candidate for the shape; benchmarks on first sight of the shape.
  [[nodiscard]] gemm::KernelConfig select(const gemm::GemmShape& shape);

  /// Statistics for the warm-up-cost analysis.
  [[nodiscard]] std::size_t cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t cache_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Total seconds of trial runs spent warming the cache (as reported by
  /// the timer function).
  [[nodiscard]] double trial_seconds() const { return trial_seconds_.value(); }
  [[nodiscard]] std::size_t cached_shapes() const;

 private:
  std::vector<std::size_t> candidates_;
  TimerFn timer_;
  mutable std::shared_mutex mutex_;
  std::map<gemm::GemmShape, std::size_t> cache_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  common::Accumulator trial_seconds_;
};

}  // namespace aks::select
