// Online (dynamic) kernel tuning — the strategy the paper's introduction
// attributes to ML frameworks: "doing trial runs the first time an input
// size is used and choosing the best for subsequent runs".
//
// The tuner holds a candidate configuration set (typically a pruned set).
// The first request for a shape times every candidate through the supplied
// timing function and caches the winner; later requests hit the cache. This
// is the baseline a learned selector competes with: zero selection error
// asymptotically, but a warm-up cost of |candidates| trial runs per novel
// shape — exactly the trade-off bench/ablation_online_vs_learned measures.
//
// Degradation contract (see DESIGN.md "Fault model"): a trial that throws
// (launch failure, hang killed at the deadline) or returns a non-finite /
// non-positive time is *not* an error of select(). The trial is retried up
// to TunerOptions::trial_attempts; a candidate whose sweeps keep failing is
// quarantined after quarantine_threshold consecutive sweep-level failures
// and skipped from then on (so a kernel that cannot launch stops burning
// warm-up budget and can never win); and when every candidate of a sweep
// fails, select() returns the guaranteed fallback configuration — the first
// candidate, which is immune to quarantine — instead of throwing. select()
// never throws on a degraded zoo. Faults are drawn at Site::kWarmUpTrial /
// Site::kKernelLaunch (the trial arms both), keyed on (shape, candidate,
// attempt) so fault sequences replay bit-identically.
//
// Thread safety: select() may be called concurrently. Cache lookups take a
// shared lock; the trial sweep runs unlocked and the first finished sweep
// for a shape wins (every caller returns that winner, so results are
// consistent across threads). Two threads racing on the same cold shape may
// both run the sweep — each counts a miss and its trial time, so the stats
// keep reporting work actually done. The serving layer
// (serve::SelectionService) adds single-flight coalescing on top when
// duplicate sweeps must not happen at all. Single-threaded behaviour —
// including the hits/misses/trial_seconds accounting — is unchanged.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "common/metrics.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "gemm/config.hpp"
#include "gemm/shape.hpp"

namespace aks::select {

struct TunerOptions {
  /// Consecutive failed sweeps (no valid trial for the candidate in a
  /// select() sweep) before a candidate is quarantined. 0 disables
  /// quarantine.
  std::size_t quarantine_threshold = 3;
  /// Trial attempts per candidate per sweep before the candidate counts as
  /// failed for that sweep.
  int trial_attempts = 2;
};

class OnlineTuner {
 public:
  /// Times one run of `config` on `shape`, returning seconds. May throw and
  /// may return garbage under fault injection; the tuner owns recovery.
  using TimerFn =
      std::function<double(const gemm::KernelConfig&, const gemm::GemmShape&)>;

  /// `candidates` are canonical configuration indices; `timer` is invoked
  /// up to trial_attempts times per eligible candidate on every cache miss.
  /// The first candidate doubles as the guaranteed fallback: it is never
  /// quarantined and is served when a whole sweep fails.
  OnlineTuner(std::vector<std::size_t> candidates, TimerFn timer,
              TunerOptions options = {});

  /// Best candidate for the shape; benchmarks on first sight of the shape.
  /// Never throws on trial failures — degrades to the fallback config.
  [[nodiscard]] gemm::KernelConfig select(const gemm::GemmShape& shape);

  /// Warm-start: adopts a previously tuned decision so select() serves it
  /// without a trial sweep. Returns false — and stores nothing — when
  /// `canonical_index` is not one of this tuner's candidates (a stored
  /// decision for a config we no longer ship must re-tune, not resurrect
  /// it) or the shape is already cached (first decision wins, matching the
  /// select() race rule). Thread-safe.
  bool preseed(const gemm::GemmShape& shape, std::size_t canonical_index);

  /// Every cached (shape -> canonical index) decision, ordered by shape —
  /// what a persistent store flushes back after serving. Thread-safe.
  [[nodiscard]] std::vector<std::pair<gemm::GemmShape, std::size_t>>
  snapshot() const;

  /// The configuration served when every candidate of a sweep fails (the
  /// first candidate — always a valid, runnable member of the zoo).
  [[nodiscard]] gemm::KernelConfig fallback_config() const;

  /// Statistics for the warm-up-cost analysis.
  [[nodiscard]] std::size_t cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t cache_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Total seconds of trial runs spent warming the cache (as reported by
  /// the timer function).
  [[nodiscard]] double trial_seconds() const { return trial_seconds_.value(); }
  [[nodiscard]] std::size_t cached_shapes() const;

  // -- Degradation telemetry.

  /// Canonical indices currently quarantined, ascending.
  [[nodiscard]] std::vector<std::size_t> quarantined() const;
  [[nodiscard]] bool is_quarantined(std::size_t canonical_index) const;
  /// Trials that failed (threw or returned an unusable time).
  [[nodiscard]] std::size_t trial_failures() const {
    return trial_failures_.load(std::memory_order_relaxed);
  }
  /// Sweeps in which every candidate failed and the fallback was served.
  [[nodiscard]] std::size_t degraded_selects() const {
    return degraded_selects_.load(std::memory_order_relaxed);
  }

 private:
  struct CandidateHealth {
    std::size_t consecutive_failures = 0;
    bool quarantined = false;
  };

  std::vector<std::size_t> candidates_;
  TimerFn timer_;
  TunerOptions options_;
  // Reader/writer split: select() fast path and the telemetry accessors
  // read shared; sweep adoption, preseed and quarantine write exclusive.
  // Trial sweeps run with the lock dropped, so the timer callback may block
  // or take its own locks without ordering against tuner.state.
  mutable aks::SharedMutex mutex_{"tuner.state"};
  std::map<gemm::GemmShape, std::size_t> cache_ AKS_GUARDED_BY(mutex_);
  /// Health per candidate (by position in candidates_).
  std::vector<CandidateHealth> health_ AKS_GUARDED_BY(mutex_);
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> trial_failures_{0};
  std::atomic<std::size_t> degraded_selects_{0};
  common::Accumulator trial_seconds_;
};

}  // namespace aks::select
