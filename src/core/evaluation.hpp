// Scoring of pruned configuration sets and trained selectors, exactly as
// the paper does it: every number is a geometric mean over test shapes of
// performance relative to the *absolute* optimum (all 640 configurations).
#pragma once

#include <vector>

#include "core/selector.hpp"
#include "dataset/perf_dataset.hpp"

namespace aks::select {

/// Figure 4's metric: geometric mean over `test` rows of the best score
/// achievable when restricted to `allowed`. 1.0 means the restriction never
/// loses anything.
[[nodiscard]] double pruning_ceiling(const data::PerfDataset& test,
                                     const std::vector<std::size_t>& allowed);

/// Table I's metric: geometric mean over `test` rows of the score of the
/// configuration the (already fitted) selector picks.
[[nodiscard]] double selector_score(const KernelSelector& selector,
                                    const data::PerfDataset& test);

/// Fraction of test rows where the selector picks the best *allowed*
/// configuration (classification accuracy of the selection task).
[[nodiscard]] double selector_accuracy(const KernelSelector& selector,
                                       const data::PerfDataset& test);

}  // namespace aks::select
