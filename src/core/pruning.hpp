// Configuration pruning — Section III of the paper.
//
// A pruner looks at the training dataset (shapes x 640 normalised scores)
// and picks at most N configurations to ship in the compute library. Five
// approaches are implemented, matching the paper:
//
//   top_n      — the N configurations that are optimal most often;
//   kmeans     — k-means over the 640-dim performance vectors; each cluster
//                medoid contributes its best configuration;
//   hdbscan    — HDBSCAN over the same vectors; the N most stable clusters
//                contribute their medoids' best configurations;
//   pca_kmeans — k-means in PCA space; centroids are mapped back to the
//                original space and contribute their argmax configuration;
//   dtree      — a multi-output regression tree from matrix sizes to the
//                performance vector, grown to at most N leaves; each leaf's
//                mean vector contributes its argmax configuration.
//
// Every pruner returns *exactly* min(N, 640) distinct canonical indices:
// when clustering yields duplicates (two clusters preferring the same
// kernel) or too few clusters, the list is padded from the top-N ranking so
// downstream comparisons always see the same budget.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/perf_dataset.hpp"

namespace aks::select {

class ConfigPruner {
 public:
  virtual ~ConfigPruner() = default;

  /// Human-readable identifier used in reports (e.g. "PCA+KMeans").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Chooses at most `max_configs` canonical configuration indices from the
  /// training data. The result is deduplicated, padded to exactly
  /// min(max_configs, 640) entries and sorted ascending.
  [[nodiscard]] virtual std::vector<std::size_t> prune(
      const data::PerfDataset& train, std::size_t max_configs) const = 0;
};

/// Ranks configurations by how often they are optimal, breaking ties with
/// the mean score (used by TopNPruner and as padding by all others).
[[nodiscard]] std::vector<std::size_t> rank_by_optimal_count(
    const data::PerfDataset& train);

class TopNPruner final : public ConfigPruner {
 public:
  [[nodiscard]] std::string name() const override { return "TopN"; }
  [[nodiscard]] std::vector<std::size_t> prune(
      const data::PerfDataset& train, std::size_t max_configs) const override;
};

class KMeansPruner final : public ConfigPruner {
 public:
  explicit KMeansPruner(std::uint64_t seed = 0) : seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "KMeans"; }
  [[nodiscard]] std::vector<std::size_t> prune(
      const data::PerfDataset& train, std::size_t max_configs) const override;

 private:
  std::uint64_t seed_;
};

class PcaKMeansPruner final : public ConfigPruner {
 public:
  /// `pca_components` 0 selects the smallest count covering 90% variance.
  explicit PcaKMeansPruner(int pca_components = 0, std::uint64_t seed = 0)
      : pca_components_(pca_components), seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "PCA+KMeans"; }
  [[nodiscard]] std::vector<std::size_t> prune(
      const data::PerfDataset& train, std::size_t max_configs) const override;

 private:
  int pca_components_;
  std::uint64_t seed_;
};

class HdbscanPruner final : public ConfigPruner {
 public:
  explicit HdbscanPruner(int min_cluster_size = 4)
      : min_cluster_size_(min_cluster_size) {}
  [[nodiscard]] std::string name() const override { return "HDBScan"; }
  [[nodiscard]] std::vector<std::size_t> prune(
      const data::PerfDataset& train, std::size_t max_configs) const override;

 private:
  int min_cluster_size_;
};

class DecisionTreePruner final : public ConfigPruner {
 public:
  [[nodiscard]] std::string name() const override { return "DecisionTree"; }
  [[nodiscard]] std::vector<std::size_t> prune(
      const data::PerfDataset& train, std::size_t max_configs) const override;
};

/// Extension beyond the paper's five: deterministic bottom-up hierarchical
/// clustering of the performance vectors (average linkage), medoids as
/// representatives. Unlike k-means it needs no seeding and unlike HDBSCAN
/// it honours the budget exactly.
class AgglomerativePruner final : public ConfigPruner {
 public:
  [[nodiscard]] std::string name() const override { return "Agglomerative"; }
  [[nodiscard]] std::vector<std::size_t> prune(
      const data::PerfDataset& train, std::size_t max_configs) const override;
};

/// Decorator that removes configurations flagged invalid by the static
/// config lint (akscheck) from another pruner's selection, re-padding from
/// the validity-restricted top-N ranking so the budget is still met. The
/// mask is a plain per-config bitmap (index = canonical config index, true
/// = valid) — typically `check::LintReport::valid_mask()` carried across
/// the process boundary as a report file, keeping this layer free of a
/// dependency on the analysis tooling.
class ValidityFilteredPruner final : public ConfigPruner {
 public:
  ValidityFilteredPruner(std::unique_ptr<ConfigPruner> inner,
                         std::vector<bool> valid);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<std::size_t> prune(
      const data::PerfDataset& train, std::size_t max_configs) const override;

 private:
  std::unique_ptr<ConfigPruner> inner_;
  std::vector<bool> valid_;
};

/// Decorator that removes configurations whose symbolic safety certificate
/// is not SAFE from another pruner's selection, re-padding from the
/// safety-restricted top-N ranking so the budget is still met. The mask is
/// a plain per-config bitmap (index = canonical config index, true = SAFE
/// on the target device(s)) — typically
/// `check::symbolic::CertifyReport::safe_mask()`, carried across the
/// process boundary as a certificate file, keeping this layer free of a
/// dependency on the analysis tooling. Where ValidityFilteredPruner
/// enforces per-replay dynamic findings, this enforces the for-all-shapes
/// static verdicts: a config without a SAFE certificate never ships.
class CertifiedPruner final : public ConfigPruner {
 public:
  CertifiedPruner(std::unique_ptr<ConfigPruner> inner, std::vector<bool> safe);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<std::size_t> prune(
      const data::PerfDataset& train, std::size_t max_configs) const override;

 private:
  std::unique_ptr<ConfigPruner> inner_;
  std::vector<bool> safe_;
};

/// Removes quarantined canonical indices (e.g. OnlineTuner::quarantined())
/// from a pruned candidate list, preserving order. A shipped config set must
/// never go empty — when quarantine would drop everything, the first
/// original candidate is retained so the degradation contract (see DESIGN.md
/// "Fault model") keeps a guaranteed fallback to serve.
[[nodiscard]] std::vector<std::size_t> drop_quarantined(
    const std::vector<std::size_t>& candidates,
    const std::vector<std::size_t>& quarantined);

/// The paper's five pruning approaches, in Figure 4's order.
[[nodiscard]] std::vector<std::unique_ptr<ConfigPruner>> all_pruners(
    std::uint64_t seed = 0);

}  // namespace aks::select
