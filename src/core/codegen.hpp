// C++ code generation for decision-tree selectors.
//
// Section IV: "Decision trees can be implemented as a series of nested if
// statements and so are a good target for deployment." This module turns a
// fitted DecisionTreeSelector into exactly that — a self-contained C++
// function a library can compile in, with zero runtime dependencies on the
// ML stack.
#pragma once

#include <string>

#include "core/selector.hpp"

namespace aks::select {

struct CodegenOptions {
  /// Name of the emitted function.
  std::string function_name = "select_gemm_kernel";
  /// Emitted namespace; empty for none.
  std::string namespace_name = "aks_generated";
  /// Indentation width in spaces.
  int indent = 2;
};

/// Emits a C++ translation unit containing
///   KernelChoice <function_name>(double m, double k, double n);
/// where KernelChoice carries the five configuration parameters. The
/// emitted control flow replicates `selector.tree()` exactly.
[[nodiscard]] std::string generate_selector_code(
    const DecisionTreeSelector& selector, const CodegenOptions& options = {});

/// Interprets the same nested-if logic the generated code would execute —
/// used to property-test that codegen preserves tree semantics without
/// invoking a compiler.
[[nodiscard]] gemm::KernelConfig evaluate_generated_logic(
    const DecisionTreeSelector& selector, double m, double k, double n);

}  // namespace aks::select
