// Whole-network cost estimation under a deployed selection strategy.
//
// The paper motivates kernel selection with end-to-end training/inference
// time; this module rolls the per-GEMM decisions up to that level: for
// every layer of a network (at a given batch size), the estimator compares
// the modelled GEMM time of
//   * the deployed plan (ConvEngine: selector + transform choice),
//   * a single fixed kernel (the no-selection baseline), and
//   * the brute-force optimum over all 640 configurations and transforms,
// and reports per-layer and total times. bench/network_end_to_end prints
// the resulting table for the three networks.
#pragma once

#include <string>
#include <vector>

#include "core/conv_engine.hpp"
#include "dataset/networks.hpp"

namespace aks::select {

struct LayerEstimate {
  std::string layer;
  gemm::GemmShape gemm_shape;       // of the engine's chosen lowering
  data::Transform transform = data::Transform::kIm2col;
  gemm::KernelConfig chosen;
  double engine_seconds = 0.0;      // deployed plan
  double fixed_seconds = 0.0;       // single fixed kernel, best lowering
  double optimal_seconds = 0.0;     // best config x lowering (brute force)
};

struct NetworkEstimate {
  std::string network;
  std::vector<LayerEstimate> layers;
  double engine_seconds = 0.0;
  double fixed_seconds = 0.0;
  double optimal_seconds = 0.0;

  /// Fraction of brute-force-optimal performance the engine achieves.
  [[nodiscard]] double engine_efficiency() const {
    return engine_seconds > 0.0 ? optimal_seconds / engine_seconds : 0.0;
  }
  /// Speedup of the engine over the fixed-kernel baseline.
  [[nodiscard]] double speedup_vs_fixed() const {
    return engine_seconds > 0.0 ? fixed_seconds / engine_seconds : 0.0;
  }
};

/// Estimates every GEMM-lowerable layer of `network` at `batch`, using
/// `engine` for the deployed plan and `fixed` as the no-selection baseline
/// configuration. Depthwise convolutions are skipped (no dense GEMM
/// lowering). FC layers are included.
[[nodiscard]] NetworkEstimate estimate_network(const ConvEngine& engine,
                                               const perf::CostModel& model,
                                               const data::Network& network,
                                               int batch,
                                               const gemm::KernelConfig& fixed);

}  // namespace aks::select
