// End-to-end tuning pipeline: dataset -> prune -> train selector -> report.
//
// This is the workflow the paper proposes for shipping a SYCL library:
// benchmark offline, cluster to a kernel budget, train a cheap runtime
// selector, and deploy kernels + selector together. The pipeline wraps the
// pieces with a single options struct so examples, benches and downstream
// users drive one entry point.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/pruning.hpp"
#include "core/selector.hpp"
#include "dataset/perf_dataset.hpp"

namespace aks::select {

enum class PruneMethod {
  kTopN,
  kKMeans,
  kHdbscan,
  kPcaKMeans,
  kDecisionTree,
  // Extension beyond the paper's five:
  kAgglomerative,
};
enum class SelectorMethod {
  kDecisionTree,
  kRandomForest,
  k1Nn,
  k3Nn,
  kLinearSvm,
  kRadialSvm,
  // Extension beyond Table I (the related work's boosted regression trees):
  kGradientBoosting,
};

[[nodiscard]] std::string to_string(PruneMethod method);
[[nodiscard]] std::string to_string(SelectorMethod method);

[[nodiscard]] std::unique_ptr<ConfigPruner> make_pruner(
    PruneMethod method, std::uint64_t seed = 0);
[[nodiscard]] std::unique_ptr<KernelSelector> make_selector(
    SelectorMethod method, std::uint64_t seed = 0,
    bool scale_features = false);

struct PipelineOptions {
  /// Kernel budget (the paper examines 4..15).
  std::size_t num_configs = 8;
  PruneMethod prune_method = PruneMethod::kDecisionTree;
  SelectorMethod selector_method = SelectorMethod::kDecisionTree;
  /// Train fraction of the dataset (the paper: 136/170 = 0.8).
  double train_fraction = 0.8;
  std::uint64_t split_seed = 1;
  std::uint64_t model_seed = 0;
  bool scale_features = false;
  FeatureMap feature_map = FeatureMap::kRaw;
  /// Per-config safety certificates (index = canonical config index, true =
  /// statically certified SAFE; typically
  /// `check::symbolic::CertifyReport::safe_mask()`). When non-empty the
  /// pruner is wrapped in a CertifiedPruner so uncertified configurations
  /// never enter the shipped set.
  std::vector<bool> certified_mask;
};

struct PipelineResult {
  /// Canonical indices of the shipped configurations.
  std::vector<std::size_t> configs;
  /// Geomean % of optimal achievable with those configs on the test set.
  double ceiling = 0.0;
  /// Geomean % of optimal the trained selector achieves on the test set.
  double achieved = 0.0;
  /// Selection accuracy (picked the best allowed config) on the test set.
  double accuracy = 0.0;
  /// Compiled kernels the shipped set needs (library-size metric).
  std::size_t compiled_kernels = 0;
  /// The trained selector, ready for deployment.
  std::unique_ptr<KernelSelector> selector;
};

/// Runs split -> prune -> fit -> evaluate on `dataset`.
[[nodiscard]] PipelineResult run_pipeline(const data::PerfDataset& dataset,
                                          const PipelineOptions& options = {});

/// The shipped configurations as full KernelConfig values.
[[nodiscard]] std::vector<gemm::KernelConfig> configs_of(
    const std::vector<std::size_t>& indices);

}  // namespace aks::select
