// Persistence for trained decision-tree selectors.
//
// A tuned library wants to train once and ship the selector; this module
// writes the selector to a small self-describing text file and restores it
// exactly (thresholds round-trip via hex doubles). The generated-code path
// (codegen.hpp) covers compile-time deployment; this covers data-file
// deployment.
//
// Format (line-oriented):
//   aks-tree-selector v1
//   features <count>
//   allowed <count> <canonical config indices...>
//   nodes <count>
//   <feature> <threshold-hex> <left> <right> <n_samples> <value...>  (x count)
#pragma once

#include <filesystem>

#include "core/selector.hpp"

namespace aks::select {

/// Writes a fitted tree selector. Throws on I/O failure, unfitted
/// selectors, or selectors with scaling / feature maps (which are training
/// concerns that do not belong in the deployment artefact).
void save_selector(const DecisionTreeSelector& selector,
                   const std::filesystem::path& path);

/// Restores a selector saved by save_selector. Validates the file format
/// and node graph; throws common::Error on any mismatch.
[[nodiscard]] DecisionTreeSelector load_selector(
    const std::filesystem::path& path);

}  // namespace aks::select
