#include "core/pipeline.hpp"

#include "common/error.hpp"

namespace aks::select {

std::string to_string(PruneMethod method) {
  switch (method) {
    case PruneMethod::kTopN: return "TopN";
    case PruneMethod::kKMeans: return "KMeans";
    case PruneMethod::kHdbscan: return "HDBScan";
    case PruneMethod::kPcaKMeans: return "PCA+KMeans";
    case PruneMethod::kDecisionTree: return "DecisionTree";
    case PruneMethod::kAgglomerative: return "Agglomerative";
  }
  return "?";
}

std::string to_string(SelectorMethod method) {
  switch (method) {
    case SelectorMethod::kDecisionTree: return "DecisionTree";
    case SelectorMethod::kRandomForest: return "RandomForest";
    case SelectorMethod::k1Nn: return "1NearestNeighbor";
    case SelectorMethod::k3Nn: return "3NearestNeighbors";
    case SelectorMethod::kLinearSvm: return "LinearSVM";
    case SelectorMethod::kRadialSvm: return "RadialSVM";
    case SelectorMethod::kGradientBoosting: return "GradientBoosting";
  }
  return "?";
}

std::unique_ptr<ConfigPruner> make_pruner(PruneMethod method,
                                          std::uint64_t seed) {
  switch (method) {
    case PruneMethod::kTopN:
      return std::make_unique<TopNPruner>();
    case PruneMethod::kKMeans:
      return std::make_unique<KMeansPruner>(seed);
    case PruneMethod::kHdbscan:
      return std::make_unique<HdbscanPruner>();
    case PruneMethod::kPcaKMeans:
      return std::make_unique<PcaKMeansPruner>(0, seed);
    case PruneMethod::kDecisionTree:
      return std::make_unique<DecisionTreePruner>();
    case PruneMethod::kAgglomerative:
      return std::make_unique<AgglomerativePruner>();
  }
  AKS_FAIL("unknown prune method");
}

std::unique_ptr<KernelSelector> make_selector(SelectorMethod method,
                                              std::uint64_t seed,
                                              bool scale_features) {
  switch (method) {
    case SelectorMethod::kDecisionTree:
      return std::make_unique<DecisionTreeSelector>(ml::TreeOptions{},
                                                    scale_features);
    case SelectorMethod::kRandomForest: {
      ml::ForestOptions options;
      options.seed = seed;
      return std::make_unique<RandomForestSelector>(options, scale_features);
    }
    case SelectorMethod::k1Nn:
      return std::make_unique<KnnSelector>(1, scale_features);
    case SelectorMethod::k3Nn:
      return std::make_unique<KnnSelector>(3, scale_features);
    case SelectorMethod::kLinearSvm: {
      ml::SvmOptions options;
      options.kernel = ml::SvmKernel::kLinear;
      options.seed = seed;
      return std::make_unique<SvmSelector>(options, scale_features);
    }
    case SelectorMethod::kRadialSvm: {
      ml::SvmOptions options;
      options.kernel = ml::SvmKernel::kRbf;
      options.seed = seed;
      return std::make_unique<SvmSelector>(options, scale_features);
    }
    case SelectorMethod::kGradientBoosting: {
      ml::GbmOptions options;
      options.seed = seed;
      return std::make_unique<GbmSelector>(options, scale_features);
    }
  }
  AKS_FAIL("unknown selector method");
}

PipelineResult run_pipeline(const data::PerfDataset& dataset,
                            const PipelineOptions& options) {
  AKS_CHECK(options.num_configs >= 2,
            "pipeline needs a budget of at least 2 configs");
  const auto split = dataset.split(options.train_fraction, options.split_seed);

  PipelineResult result;
  auto pruner = make_pruner(options.prune_method, options.model_seed);
  if (!options.certified_mask.empty()) {
    pruner = std::make_unique<CertifiedPruner>(std::move(pruner),
                                               options.certified_mask);
  }
  result.configs = pruner->prune(split.train, options.num_configs);
  result.ceiling = pruning_ceiling(split.test, result.configs);
  result.compiled_kernels =
      gemm::count_compiled_kernels(configs_of(result.configs));

  result.selector = make_selector(options.selector_method, options.model_seed,
                                  options.scale_features);
  result.selector->set_feature_map(options.feature_map);
  result.selector->fit(split.train, result.configs);
  result.achieved = selector_score(*result.selector, split.test);
  result.accuracy = selector_accuracy(*result.selector, split.test);
  return result;
}

std::vector<gemm::KernelConfig> configs_of(
    const std::vector<std::size_t>& indices) {
  const auto& all = gemm::enumerate_configs();
  std::vector<gemm::KernelConfig> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) {
    AKS_CHECK(i < all.size(), "config index out of range");
    out.push_back(all[i]);
  }
  return out;
}

}  // namespace aks::select
