// Runtime kernel selection — Section IV of the paper.
//
// Once a library ships N kernels, something must choose among them for each
// incoming (M, K, N) workload. A KernelSelector is trained on the tuning
// dataset restricted to the pruned configuration set: the training label of
// a shape is the best *allowed* configuration for it, and the selector
// learns sizes -> label. Six selectors mirror Table I: decision tree,
// random forest, 1-NN, 3-NN, linear SVM and radial (RBF) SVM.
//
// Feature scaling is optional and off by default, matching the paper's
// setup (see svm.hpp for why that matters).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/perf_dataset.hpp"
#include "gemm/config.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"
#include "ml/scaler.hpp"
#include "ml/svm.hpp"

namespace aks::select {

/// Optional feature engineering applied before any scaling/model. Matrix
/// sizes span five orders of magnitude, so a log transform often helps the
/// distance- and margin-based selectors (bench/ablation_feature_maps).
enum class FeatureMap { kRaw, kLog2 };

[[nodiscard]] std::string to_string(FeatureMap map);

class KernelSelector {
 public:
  virtual ~KernelSelector() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Trains on `train` restricted to the `allowed` configuration indices.
  virtual void fit(const data::PerfDataset& train,
                   std::vector<std::size_t> allowed) = 0;

  /// Canonical configuration index chosen for a feature row (M, K, N).
  [[nodiscard]] virtual std::size_t select(
      std::span<const double> features) const = 0;

  /// Convenience: the full KernelConfig for a GEMM shape.
  [[nodiscard]] gemm::KernelConfig select_config(
      const gemm::GemmShape& shape) const;

  /// The configurations this selector can return (set by fit()).
  [[nodiscard]] const std::vector<std::size_t>& allowed() const {
    return allowed_;
  }

  /// Whether fit()/select() standardise features internally.
  [[nodiscard]] bool scales_features() const { return scale_features_; }

  /// Sets the feature map; must be called before fit().
  void set_feature_map(FeatureMap map) { feature_map_ = map; }
  [[nodiscard]] FeatureMap feature_map() const { return feature_map_; }

 protected:
  /// Builds classification labels: for each training row, the index *into
  /// `allowed_`* of the best allowed configuration.
  [[nodiscard]] std::vector<int> make_labels(
      const data::PerfDataset& train) const;

  /// Applies the feature map, fits the scaler when enabled, and returns the
  /// matrix the model trains on. Call exactly once per fit().
  [[nodiscard]] common::Matrix prepare_fit(const common::Matrix& x);

  /// Applies the feature map and scaler to one query row.
  [[nodiscard]] std::vector<double> prepare_row(
      std::span<const double> row) const;

  std::vector<std::size_t> allowed_;
  ml::StandardScaler scaler_;
  bool scale_features_ = false;
  FeatureMap feature_map_ = FeatureMap::kRaw;
};

class DecisionTreeSelector final : public KernelSelector {
 public:
  explicit DecisionTreeSelector(ml::TreeOptions options = {},
                                bool scale_features = false);

  /// Reconstructs a fitted selector from a deserialised tree (see
  /// core/serialize.hpp). The tree's class count must match `allowed`.
  DecisionTreeSelector(ml::DecisionTreeClassifier tree,
                       std::vector<std::size_t> allowed);
  [[nodiscard]] std::string name() const override { return "DecisionTree"; }
  void fit(const data::PerfDataset& train,
           std::vector<std::size_t> allowed) override;
  [[nodiscard]] std::size_t select(
      std::span<const double> features) const override;
  [[nodiscard]] const ml::DecisionTreeClassifier& tree() const { return tree_; }

 private:
  ml::TreeOptions options_;
  ml::DecisionTreeClassifier tree_;
};

class RandomForestSelector final : public KernelSelector {
 public:
  explicit RandomForestSelector(ml::ForestOptions options = {},
                                bool scale_features = false);
  [[nodiscard]] std::string name() const override { return "RandomForest"; }
  void fit(const data::PerfDataset& train,
           std::vector<std::size_t> allowed) override;
  [[nodiscard]] std::size_t select(
      std::span<const double> features) const override;

 private:
  ml::ForestOptions options_;
  ml::RandomForestClassifier forest_;
};

class KnnSelector final : public KernelSelector {
 public:
  explicit KnnSelector(int k = 1, bool scale_features = false);
  [[nodiscard]] std::string name() const override {
    return std::to_string(k_) + "NearestNeighbor" + (k_ > 1 ? "s" : "");
  }
  void fit(const data::PerfDataset& train,
           std::vector<std::size_t> allowed) override;
  [[nodiscard]] std::size_t select(
      std::span<const double> features) const override;

 private:
  int k_;
  ml::KnnClassifier knn_;
};

class SvmSelector final : public KernelSelector {
 public:
  explicit SvmSelector(ml::SvmOptions options = {},
                       bool scale_features = false);
  [[nodiscard]] std::string name() const override {
    return options_.kernel == ml::SvmKernel::kLinear ? "LinearSVM"
                                                     : "RadialSVM";
  }
  void fit(const data::PerfDataset& train,
           std::vector<std::size_t> allowed) override;
  [[nodiscard]] std::size_t select(
      std::span<const double> features) const override;

 private:
  ml::SvmOptions options_;
  ml::SvmClassifier svm_;
};

/// Gradient-boosted trees (Bergstra et al.'s model family from the paper's
/// related work) — an extension selector beyond Table I.
class GbmSelector final : public KernelSelector {
 public:
  explicit GbmSelector(ml::GbmOptions options = {},
                       bool scale_features = false);
  [[nodiscard]] std::string name() const override {
    return "GradientBoosting";
  }
  void fit(const data::PerfDataset& train,
           std::vector<std::size_t> allowed) override;
  [[nodiscard]] std::size_t select(
      std::span<const double> features) const override;

 private:
  ml::GbmOptions options_;
  ml::GradientBoostedClassifier gbm_;
};

/// The six Table I selectors, in row order. `scale_features` applies a
/// StandardScaler inside every selector (the ablation variant).
[[nodiscard]] std::vector<std::unique_ptr<KernelSelector>> all_selectors(
    std::uint64_t seed = 0, bool scale_features = false);

}  // namespace aks::select
