#include "core/pruning.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "ml/agglomerative.hpp"
#include "ml/decision_tree.hpp"
#include "ml/hdbscan.hpp"
#include "ml/kmeans.hpp"
#include "ml/pca.hpp"

namespace aks::select {

namespace {

/// Deduplicates `chosen` (keeping order), pads from the top-count ranking,
/// truncates to the budget and sorts — the common post-processing of every
/// pruner (see file comment in pruning.hpp).
std::vector<std::size_t> finalize_selection(std::vector<std::size_t> chosen,
                                            const data::PerfDataset& train,
                                            std::size_t max_configs) {
  const std::size_t budget = std::min(max_configs, train.num_configs());
  AKS_CHECK(budget > 0, "config budget must be positive");
  std::vector<std::size_t> out;
  std::set<std::size_t> seen;
  for (const std::size_t c : chosen) {
    AKS_CHECK(c < train.num_configs(), "config index out of range");
    if (out.size() == budget) break;
    if (seen.insert(c).second) out.push_back(c);
  }
  if (out.size() < budget) {
    for (const std::size_t c : rank_by_optimal_count(train)) {
      if (out.size() == budget) break;
      if (seen.insert(c).second) out.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Best configuration for each of a set of representative score vectors.
std::vector<std::size_t> argmax_configs(
    const std::vector<std::vector<double>>& representatives) {
  std::vector<std::size_t> out;
  out.reserve(representatives.size());
  for (const auto& rep : representatives) {
    out.push_back(common::argmax(rep));
  }
  return out;
}

/// Shared body of the mask-filtering decorators: runs `inner`, drops
/// configurations the mask rejects, and re-pads from the mask-restricted
/// ranking. The budget caps at how many configurations survive the mask.
std::vector<std::size_t> prune_with_mask(const ConfigPruner& inner,
                                         const std::vector<bool>& mask,
                                         const data::PerfDataset& train,
                                         std::size_t max_configs) {
  AKS_CHECK(mask.size() == train.num_configs(),
            "config mask covers " << mask.size() << " configs, dataset has "
                                  << train.num_configs());
  const auto allowed = [&mask](std::size_t c) { return mask[c]; };

  std::vector<std::size_t> chosen;
  for (const std::size_t c : inner.prune(train, max_configs)) {
    if (allowed(c)) chosen.push_back(c);
  }
  const std::size_t num_allowed = static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), true));
  const std::size_t budget =
      std::min({max_configs, train.num_configs(), num_allowed});
  if (chosen.size() < budget) {
    std::set<std::size_t> seen(chosen.begin(), chosen.end());
    for (const std::size_t c : rank_by_optimal_count(train)) {
      if (chosen.size() == budget) break;
      if (allowed(c) && seen.insert(c).second) chosen.push_back(c);
    }
  }
  return finalize_selection(std::move(chosen), train, budget);
}

}  // namespace

std::vector<std::size_t> rank_by_optimal_count(const data::PerfDataset& train) {
  const auto counts = train.optimal_counts();
  const auto means = train.mean_scores();
  // Composite key: count dominates, mean score breaks ties.
  std::vector<double> key(counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    key[c] = static_cast<double>(counts[c]) + means[c];
  }
  return common::argsort_descending(key);
}

std::vector<std::size_t> TopNPruner::prune(const data::PerfDataset& train,
                                           std::size_t max_configs) const {
  return finalize_selection(rank_by_optimal_count(train), train, max_configs);
}

std::vector<std::size_t> KMeansPruner::prune(const data::PerfDataset& train,
                                             std::size_t max_configs) const {
  ml::KMeansOptions opts;
  opts.n_clusters = static_cast<int>(
      std::min(max_configs, train.num_shapes()));
  opts.seed = seed_;
  ml::KMeans kmeans(opts);
  kmeans.fit(train.scores());
  // Each centroid is the mean performance vector of a behaviour family; its
  // argmax is the configuration that serves that family best on average
  // (the paper: the configuration "that gives the best performance result
  // for each of the representatives").
  std::vector<std::size_t> chosen;
  for (std::size_t c = 0; c < kmeans.centroids().rows(); ++c) {
    chosen.push_back(common::argmax(kmeans.centroids().row(c)));
  }
  return finalize_selection(std::move(chosen), train, max_configs);
}

std::vector<std::size_t> PcaKMeansPruner::prune(const data::PerfDataset& train,
                                                std::size_t max_configs) const {
  ml::Pca pca;
  pca.fit(train.scores());
  const std::size_t dims =
      pca_components_ > 0
          ? std::min<std::size_t>(static_cast<std::size_t>(pca_components_),
                                  pca.num_components())
          : pca.components_for_variance(0.90);

  // Re-fit with the chosen dimensionality to keep transform cheap.
  ml::Pca reduced(static_cast<int>(dims));
  reduced.fit(train.scores());
  const common::Matrix projected = reduced.transform(train.scores());

  ml::KMeansOptions opts;
  opts.n_clusters =
      static_cast<int>(std::min(max_configs, train.num_shapes()));
  opts.seed = seed_;
  ml::KMeans kmeans(opts);
  kmeans.fit(projected);

  // Map centroids back to the 640-dim space (the paper: "centroids ...
  // mapped back to the original coordinate space to give representatives").
  const common::Matrix representatives =
      reduced.inverse_transform(kmeans.centroids());
  std::vector<std::size_t> chosen;
  for (std::size_t c = 0; c < representatives.rows(); ++c) {
    chosen.push_back(common::argmax(representatives.row(c)));
  }
  return finalize_selection(std::move(chosen), train, max_configs);
}

std::vector<std::size_t> HdbscanPruner::prune(const data::PerfDataset& train,
                                              std::size_t max_configs) const {
  ml::HdbscanOptions opts;
  opts.min_cluster_size = min_cluster_size_;
  ml::Hdbscan clusterer(opts);
  clusterer.fit(train.scores());

  // Rank clusters by stability, keep the medoids of the most stable N.
  const auto& stabilities = clusterer.cluster_stabilities();
  const auto medoids = clusterer.medoid_rows(train.scores());
  const auto order = common::argsort_descending(stabilities);
  std::vector<std::size_t> chosen;
  for (const std::size_t cluster : order) {
    if (chosen.size() == max_configs) break;
    chosen.push_back(train.best_config(medoids[cluster]));
  }
  return finalize_selection(std::move(chosen), train, max_configs);
}

std::vector<std::size_t> DecisionTreePruner::prune(
    const data::PerfDataset& train, std::size_t max_configs) const {
  ml::TreeOptions opts;
  opts.max_leaf_nodes = static_cast<int>(std::max<std::size_t>(2, max_configs));
  ml::DecisionTreeRegressor tree(opts);
  tree.fit(train.features(), train.scores());
  std::vector<std::size_t> chosen = argmax_configs(tree.leaf_values());
  return finalize_selection(std::move(chosen), train, max_configs);
}

std::vector<std::size_t> AgglomerativePruner::prune(
    const data::PerfDataset& train, std::size_t max_configs) const {
  ml::AgglomerativeOptions opts;
  opts.n_clusters =
      static_cast<int>(std::min(max_configs, train.num_shapes()));
  opts.linkage = ml::Linkage::kAverage;
  ml::Agglomerative clusterer(opts);
  clusterer.fit(train.scores());
  std::vector<std::size_t> chosen;
  for (const std::size_t row : clusterer.medoid_rows(train.scores())) {
    chosen.push_back(train.best_config(row));
  }
  return finalize_selection(std::move(chosen), train, max_configs);
}

ValidityFilteredPruner::ValidityFilteredPruner(
    std::unique_ptr<ConfigPruner> inner, std::vector<bool> valid)
    : inner_(std::move(inner)), valid_(std::move(valid)) {
  AKS_CHECK(inner_ != nullptr, "ValidityFilteredPruner needs an inner pruner");
  AKS_CHECK(std::find(valid_.begin(), valid_.end(), true) != valid_.end(),
            "validity mask rejects every configuration");
}

std::string ValidityFilteredPruner::name() const {
  return inner_->name() + "+Lint";
}

std::vector<std::size_t> ValidityFilteredPruner::prune(
    const data::PerfDataset& train, std::size_t max_configs) const {
  return prune_with_mask(*inner_, valid_, train, max_configs);
}

CertifiedPruner::CertifiedPruner(std::unique_ptr<ConfigPruner> inner,
                                 std::vector<bool> safe)
    : inner_(std::move(inner)), safe_(std::move(safe)) {
  AKS_CHECK(inner_ != nullptr, "CertifiedPruner needs an inner pruner");
  AKS_CHECK(std::find(safe_.begin(), safe_.end(), true) != safe_.end(),
            "safety mask rejects every configuration");
}

std::string CertifiedPruner::name() const {
  return inner_->name() + "+Certified";
}

std::vector<std::size_t> CertifiedPruner::prune(
    const data::PerfDataset& train, std::size_t max_configs) const {
  return prune_with_mask(*inner_, safe_, train, max_configs);
}

std::vector<std::size_t> drop_quarantined(
    const std::vector<std::size_t>& candidates,
    const std::vector<std::size_t>& quarantined) {
  const std::set<std::size_t> bad(quarantined.begin(), quarantined.end());
  std::vector<std::size_t> out;
  out.reserve(candidates.size());
  for (const std::size_t c : candidates) {
    if (bad.count(c) == 0) out.push_back(c);
  }
  if (out.empty() && !candidates.empty()) out.push_back(candidates.front());
  return out;
}

std::vector<std::unique_ptr<ConfigPruner>> all_pruners(std::uint64_t seed) {
  std::vector<std::unique_ptr<ConfigPruner>> pruners;
  pruners.push_back(std::make_unique<TopNPruner>());
  pruners.push_back(std::make_unique<KMeansPruner>(seed));
  pruners.push_back(std::make_unique<HdbscanPruner>());
  pruners.push_back(std::make_unique<PcaKMeansPruner>(0, seed));
  pruners.push_back(std::make_unique<DecisionTreePruner>());
  return pruners;
}

}  // namespace aks::select
