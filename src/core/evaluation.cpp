#include "core/evaluation.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace aks::select {

double pruning_ceiling(const data::PerfDataset& test,
                       const std::vector<std::size_t>& allowed) {
  AKS_CHECK(test.num_shapes() > 0, "empty test set");
  std::vector<double> best(test.num_shapes());
  for (std::size_t r = 0; r < test.num_shapes(); ++r) {
    best[r] = test.best_restricted_score(r, allowed);
  }
  return common::geometric_mean(best);
}

double selector_score(const KernelSelector& selector,
                      const data::PerfDataset& test) {
  AKS_CHECK(test.num_shapes() > 0, "empty test set");
  std::vector<double> achieved(test.num_shapes());
  for (std::size_t r = 0; r < test.num_shapes(); ++r) {
    const std::size_t chosen = selector.select(test.features().row(r));
    achieved[r] = test.scores()(r, chosen);
  }
  return common::geometric_mean(achieved);
}

double selector_accuracy(const KernelSelector& selector,
                         const data::PerfDataset& test) {
  AKS_CHECK(test.num_shapes() > 0, "empty test set");
  std::size_t hits = 0;
  for (std::size_t r = 0; r < test.num_shapes(); ++r) {
    const std::size_t chosen = selector.select(test.features().row(r));
    const double best = test.best_restricted_score(r, selector.allowed());
    hits += test.scores()(r, chosen) == best ? 1u : 0u;
  }
  return static_cast<double>(hits) / static_cast<double>(test.num_shapes());
}

}  // namespace aks::select
