// Convolution engine: the deployed library surface the paper's pipeline
// feeds into.
//
// For each convolution the engine (a) decides between the im2col and
// Winograd lowerings using the device cost model over their GEMM shapes,
// (b) asks the trained KernelSelector for the kernel configuration of the
// chosen GEMM, and (c) executes the convolution on the host runtime. This
// is the integration point of every layer of the repo: dataset-trained
// selector + perfmodel + conv transforms + tiled kernels + SYCL-like
// runtime.
#pragma once

#include <memory>
#include <span>

#include "conv/direct.hpp"
#include "core/selector.hpp"
#include "dataset/lowering.hpp"
#include "perfmodel/cost_model.hpp"
#include "syclrt/queue.hpp"

namespace aks::select {

class ConvEngine {
 public:
  /// The engine shares ownership of the selector (typically the pipeline's
  /// result) and copies the device cost model used for transform choice.
  ConvEngine(std::shared_ptr<const KernelSelector> selector,
             perf::CostModel cost_model);

  /// The lowering and kernel configuration the engine would use.
  struct Plan {
    data::Transform transform = data::Transform::kIm2col;
    gemm::KernelConfig config;
    gemm::GemmShape gemm_shape;
    /// Modelled execution time of the GEMM work (seconds).
    double modelled_seconds = 0.0;
  };
  [[nodiscard]] Plan plan(const conv::ConvShape& shape) const;

  /// The selector driving kernel choice (shared with the pipeline).
  [[nodiscard]] const KernelSelector& selector() const { return *selector_; }

  /// Executes the convolution per plan(); layouts as in conv::direct_conv2d.
  Plan run(syclrt::Queue& queue, std::span<const float> input,
           std::span<const float> filter, std::span<float> output,
           const conv::ConvShape& shape) const;

 private:
  std::shared_ptr<const KernelSelector> selector_;
  perf::CostModel cost_model_;
};

}  // namespace aks::select
