#include "core/conv_engine.hpp"

#include "common/error.hpp"
#include "conv/im2col.hpp"
#include "conv/winograd.hpp"

namespace aks::select {

ConvEngine::ConvEngine(std::shared_ptr<const KernelSelector> selector,
                       perf::CostModel cost_model)
    : selector_(std::move(selector)), cost_model_(std::move(cost_model)) {
  AKS_CHECK(selector_ != nullptr, "ConvEngine needs a selector");
  AKS_CHECK(!selector_->allowed().empty(), "ConvEngine selector is unfitted");
}

ConvEngine::Plan ConvEngine::plan(const conv::ConvShape& shape) const {
  auto plan_for = [&](data::Transform transform,
                      const gemm::GemmShape& gemm_shape, std::size_t batch) {
    Plan candidate;
    candidate.transform = transform;
    candidate.gemm_shape = gemm_shape;
    candidate.config = selector_->select_config(gemm_shape);
    candidate.modelled_seconds = cost_model_.predict_batched_seconds(
        candidate.config, gemm_shape, batch);
    return candidate;
  };

  Plan best =
      plan_for(data::Transform::kIm2col, conv::im2col_gemm_shape(shape), 1);
  if (conv::winograd_applicable(shape)) {
    // Both Winograd tile sizes run their multiplies as one batched launch.
    const Plan wino = plan_for(data::Transform::kWinograd,
                               conv::winograd_gemm_shape(shape), 16);
    if (wino.modelled_seconds < best.modelled_seconds) best = wino;
    const Plan wino4 = plan_for(data::Transform::kWinograd4,
                                conv::winograd4_gemm_shape(shape), 36);
    if (wino4.modelled_seconds < best.modelled_seconds) best = wino4;
  }
  return best;
}

ConvEngine::Plan ConvEngine::run(syclrt::Queue& queue,
                                 std::span<const float> input,
                                 std::span<const float> filter,
                                 std::span<float> output,
                                 const conv::ConvShape& shape) const {
  const Plan chosen = plan(shape);
  switch (chosen.transform) {
    case data::Transform::kWinograd:
      conv::winograd_conv2d(queue, chosen.config, input, filter, output,
                            shape);
      break;
    case data::Transform::kWinograd4:
      conv::winograd4_conv2d(queue, chosen.config, input, filter, output,
                             shape);
      break;
    default:
      conv::im2col_conv2d(queue, chosen.config, input, filter, output, shape);
      break;
  }
  return chosen;
}

}  // namespace aks::select
