#include "core/serialize.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace aks::select {

namespace {

constexpr const char* kMagic = "aks-tree-selector v1";

/// Exact round-trip encoding for doubles.
std::string hex_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

double parse_hex_double(const std::string& text) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    AKS_CHECK(consumed == text.size(), "trailing characters in number");
    return value;
  } catch (const common::Error&) {
    throw;
  } catch (const std::exception&) {
    AKS_FAIL("malformed number in selector file: '" << text << "'");
  }
}

}  // namespace

void save_selector(const DecisionTreeSelector& selector,
                   const std::filesystem::path& path) {
  AKS_CHECK(!selector.allowed().empty(), "selector is not fitted");
  AKS_CHECK(!selector.scales_features() &&
                selector.feature_map() == FeatureMap::kRaw,
            "only raw-feature selectors are serialisable");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  AKS_CHECK(out.is_open(), "cannot write selector file " << path);

  out << kMagic << "\n";
  out << "features 3\n";
  out << "allowed " << selector.allowed().size();
  for (const std::size_t c : selector.allowed()) out << " " << c;
  out << "\n";
  const auto& nodes = selector.tree().nodes();
  out << "nodes " << nodes.size() << "\n";
  for (const auto& node : nodes) {
    out << node.feature << " " << hex_double(node.threshold) << " "
        << node.left << " " << node.right << " " << node.n_samples;
    out << " " << node.value.size();
    for (const double v : node.value) out << " " << hex_double(v);
    out << "\n";
  }
  AKS_CHECK(out.good(), "I/O error writing selector file " << path);
}

DecisionTreeSelector load_selector(const std::filesystem::path& path) {
  std::ifstream in(path);
  AKS_CHECK(in.is_open(), "cannot open selector file " << path);

  std::string line;
  AKS_CHECK(std::getline(in, line) && line == kMagic,
            "not a selector file (bad magic): " << path);

  std::string keyword;
  std::size_t feature_count = 0;
  in >> keyword >> feature_count;
  AKS_CHECK(in.good() && keyword == "features" && feature_count == 3,
            "malformed features line in " << path);

  std::size_t allowed_count = 0;
  in >> keyword >> allowed_count;
  AKS_CHECK(in.good() && keyword == "allowed" && allowed_count > 0,
            "malformed allowed line in " << path);
  std::vector<std::size_t> allowed(allowed_count);
  for (auto& c : allowed) {
    in >> c;
    AKS_CHECK(in.good(), "truncated allowed list in " << path);
  }

  std::size_t node_count = 0;
  in >> keyword >> node_count;
  AKS_CHECK(in.good() && keyword == "nodes" && node_count > 0,
            "malformed nodes line in " << path);

  std::vector<ml::TreeNode> nodes(node_count);
  for (auto& node : nodes) {
    std::string threshold_text;
    std::size_t value_count = 0;
    in >> node.feature >> threshold_text >> node.left >> node.right >>
        node.n_samples >> value_count;
    AKS_CHECK(in.good(), "truncated node in " << path);
    node.threshold = parse_hex_double(threshold_text);
    node.value.resize(value_count);
    for (auto& v : node.value) {
      std::string value_text;
      in >> value_text;
      AKS_CHECK(!in.fail(), "truncated node values in " << path);
      v = parse_hex_double(value_text);
    }
  }

  auto tree = ml::DecisionTreeClassifier::from_nodes(
      std::move(nodes), static_cast<int>(allowed_count), feature_count);
  return DecisionTreeSelector(std::move(tree), std::move(allowed));
}

}  // namespace aks::select
