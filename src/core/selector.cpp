#include "core/selector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace aks::select {

std::string to_string(FeatureMap map) {
  switch (map) {
    case FeatureMap::kRaw: return "raw";
    case FeatureMap::kLog2: return "log2";
  }
  return "?";
}

namespace {

double map_value(FeatureMap map, double v) {
  switch (map) {
    case FeatureMap::kRaw:
      return v;
    case FeatureMap::kLog2:
      return std::log2(std::max(v, 1.0));
  }
  return v;
}

}  // namespace

gemm::KernelConfig KernelSelector::select_config(
    const gemm::GemmShape& shape) const {
  const double features[3] = {static_cast<double>(shape.m),
                              static_cast<double>(shape.k),
                              static_cast<double>(shape.n)};
  return gemm::enumerate_configs()[select(features)];
}

std::vector<int> KernelSelector::make_labels(
    const data::PerfDataset& train) const {
  AKS_CHECK(!allowed_.empty(), "selector fitted with empty config set");
  std::vector<int> labels(train.num_shapes());
  for (std::size_t r = 0; r < train.num_shapes(); ++r) {
    double best = -1.0;
    int best_idx = 0;
    for (std::size_t i = 0; i < allowed_.size(); ++i) {
      const double score = train.scores()(r, allowed_[i]);
      if (score > best) {
        best = score;
        best_idx = static_cast<int>(i);
      }
    }
    labels[r] = best_idx;
  }
  return labels;
}

common::Matrix KernelSelector::prepare_fit(const common::Matrix& x) {
  common::Matrix mapped(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      mapped(r, c) = map_value(feature_map_, x(r, c));
    }
  }
  if (!scale_features_) return mapped;
  scaler_.fit(mapped);
  return scaler_.transform(mapped);
}

std::vector<double> KernelSelector::prepare_row(
    std::span<const double> row) const {
  std::vector<double> mapped(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    mapped[c] = map_value(feature_map_, row[c]);
  }
  if (!scale_features_) return mapped;
  return scaler_.transform_row(mapped);
}

DecisionTreeSelector::DecisionTreeSelector(ml::TreeOptions options,
                                           bool scale_features)
    : options_(options), tree_(options) {
  scale_features_ = scale_features;
}

DecisionTreeSelector::DecisionTreeSelector(ml::DecisionTreeClassifier tree,
                                           std::vector<std::size_t> allowed)
    : tree_(std::move(tree)) {
  AKS_CHECK(tree_.fitted(), "tree must be fitted");
  AKS_CHECK(!allowed.empty(), "allowed set must be non-empty");
  AKS_CHECK(tree_.num_classes() == static_cast<int>(allowed.size()),
            "tree has " << tree_.num_classes() << " classes for "
            << allowed.size() << " allowed configs");
  const auto num_configs = gemm::enumerate_configs().size();
  for (const std::size_t c : allowed) {
    AKS_CHECK(c < num_configs, "allowed config index out of range");
  }
  allowed_ = std::move(allowed);
}

void DecisionTreeSelector::fit(const data::PerfDataset& train,
                               std::vector<std::size_t> allowed) {
  allowed_ = std::move(allowed);
  const auto x = prepare_fit(train.features());
  tree_ = ml::DecisionTreeClassifier(options_);
  tree_.fit(x, make_labels(train), static_cast<int>(allowed_.size()));
}

std::size_t DecisionTreeSelector::select(
    std::span<const double> features) const {
  return allowed_[static_cast<std::size_t>(
      tree_.predict_row(prepare_row(features)))];
}

RandomForestSelector::RandomForestSelector(ml::ForestOptions options,
                                           bool scale_features)
    : options_(options), forest_(options) {
  scale_features_ = scale_features;
}

void RandomForestSelector::fit(const data::PerfDataset& train,
                               std::vector<std::size_t> allowed) {
  allowed_ = std::move(allowed);
  const auto x = prepare_fit(train.features());
  forest_ = ml::RandomForestClassifier(options_);
  forest_.fit(x, make_labels(train), static_cast<int>(allowed_.size()));
}

std::size_t RandomForestSelector::select(
    std::span<const double> features) const {
  return allowed_[static_cast<std::size_t>(
      forest_.predict_row(prepare_row(features)))];
}

KnnSelector::KnnSelector(int k, bool scale_features) : k_(k), knn_(k) {
  scale_features_ = scale_features;
}

void KnnSelector::fit(const data::PerfDataset& train,
                      std::vector<std::size_t> allowed) {
  allowed_ = std::move(allowed);
  const auto x = prepare_fit(train.features());
  knn_ = ml::KnnClassifier(k_);
  knn_.fit(x, make_labels(train), static_cast<int>(allowed_.size()));
}

std::size_t KnnSelector::select(std::span<const double> features) const {
  return allowed_[static_cast<std::size_t>(
      knn_.predict_row(prepare_row(features)))];
}

SvmSelector::SvmSelector(ml::SvmOptions options, bool scale_features)
    : options_(options), svm_(options) {
  scale_features_ = scale_features;
}

void SvmSelector::fit(const data::PerfDataset& train,
                      std::vector<std::size_t> allowed) {
  allowed_ = std::move(allowed);
  const auto x = prepare_fit(train.features());
  svm_ = ml::SvmClassifier(options_);
  svm_.fit(x, make_labels(train), static_cast<int>(allowed_.size()));
}

std::size_t SvmSelector::select(std::span<const double> features) const {
  return allowed_[static_cast<std::size_t>(
      svm_.predict_row(prepare_row(features)))];
}

GbmSelector::GbmSelector(ml::GbmOptions options, bool scale_features)
    : options_(options), gbm_(options) {
  scale_features_ = scale_features;
}

void GbmSelector::fit(const data::PerfDataset& train,
                      std::vector<std::size_t> allowed) {
  allowed_ = std::move(allowed);
  const auto x = prepare_fit(train.features());
  gbm_ = ml::GradientBoostedClassifier(options_);
  gbm_.fit(x, make_labels(train), static_cast<int>(allowed_.size()));
}

std::size_t GbmSelector::select(std::span<const double> features) const {
  return allowed_[static_cast<std::size_t>(
      gbm_.predict_row(prepare_row(features)))];
}

std::vector<std::unique_ptr<KernelSelector>> all_selectors(
    std::uint64_t seed, bool scale_features) {
  std::vector<std::unique_ptr<KernelSelector>> out;
  out.push_back(
      std::make_unique<DecisionTreeSelector>(ml::TreeOptions{}, scale_features));
  ml::ForestOptions forest;
  forest.seed = seed;
  out.push_back(std::make_unique<RandomForestSelector>(forest, scale_features));
  out.push_back(std::make_unique<KnnSelector>(1, scale_features));
  out.push_back(std::make_unique<KnnSelector>(3, scale_features));
  ml::SvmOptions linear;
  linear.kernel = ml::SvmKernel::kLinear;
  linear.seed = seed;
  out.push_back(std::make_unique<SvmSelector>(linear, scale_features));
  ml::SvmOptions radial;
  radial.kernel = ml::SvmKernel::kRbf;
  radial.seed = seed;
  out.push_back(std::make_unique<SvmSelector>(radial, scale_features));
  return out;
}

}  // namespace aks::select
