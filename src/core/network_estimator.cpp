#include "core/network_estimator.hpp"

#include <limits>

#include "common/error.hpp"
#include "conv/im2col.hpp"
#include "conv/winograd.hpp"
#include "dataset/lowering.hpp"

namespace aks::select {

namespace {

/// Candidate lowering of one layer: the GEMM it produces and how many
/// multiplies run per launch.
struct Lowering {
  data::Transform transform;
  gemm::GemmShape shape;
  std::size_t batch_multiplies;
};

std::vector<Lowering> lowerings_of_conv(const data::ConvLayer& conv,
                                        int batch) {
  std::vector<Lowering> out;
  if (const auto im2col = data::im2col_shape(conv, batch)) {
    out.push_back({data::Transform::kIm2col, *im2col, 1});
  }
  if (const auto wino = data::winograd_shape(conv, batch)) {
    out.push_back({data::Transform::kWinograd, *wino, 16});
    // F(4x4, 3x3) applies exactly where F(2x2, 3x3) does.
    conv::ConvShape shape;
    shape.batch = batch;
    shape.in_height = conv.in_height;
    shape.in_width = conv.in_width;
    shape.in_channels = conv.in_channels;
    shape.out_channels = conv.out_channels;
    shape.kernel = conv.kernel;
    shape.stride = conv.stride;
    shape.padding = conv.padding;
    out.push_back({data::Transform::kWinograd4,
                   conv::winograd4_gemm_shape(shape), 36});
  }
  return out;
}

/// Best modelled time for one lowering over all 640 configurations.
double optimal_time(const perf::CostModel& model, const Lowering& lowering) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& config : gemm::enumerate_configs()) {
    best = std::min(best, model.predict_batched_seconds(
                              config, lowering.shape,
                              lowering.batch_multiplies));
  }
  return best;
}

}  // namespace

NetworkEstimate estimate_network(const ConvEngine& engine,
                                 const perf::CostModel& model,
                                 const data::Network& network, int batch,
                                 const gemm::KernelConfig& fixed) {
  AKS_CHECK(batch > 0, "batch must be positive");
  NetworkEstimate estimate;
  estimate.network = network.name;

  auto add_layer = [&](const std::string& name,
                       const std::vector<Lowering>& lowerings,
                       const ConvEngine::Plan& plan) {
    LayerEstimate layer;
    layer.layer = name;
    layer.transform = plan.transform;
    layer.gemm_shape = plan.gemm_shape;
    layer.chosen = plan.config;
    layer.engine_seconds = plan.modelled_seconds;

    layer.fixed_seconds = std::numeric_limits<double>::infinity();
    layer.optimal_seconds = std::numeric_limits<double>::infinity();
    for (const auto& lowering : lowerings) {
      layer.fixed_seconds = std::min(
          layer.fixed_seconds,
          model.predict_batched_seconds(fixed, lowering.shape,
                                        lowering.batch_multiplies));
      layer.optimal_seconds =
          std::min(layer.optimal_seconds, optimal_time(model, lowering));
    }

    estimate.engine_seconds += layer.engine_seconds;
    estimate.fixed_seconds += layer.fixed_seconds;
    estimate.optimal_seconds += layer.optimal_seconds;
    estimate.layers.push_back(std::move(layer));
  };

  for (const auto& conv : network.convs) {
    const auto lowerings = lowerings_of_conv(conv, batch);
    if (lowerings.empty()) continue;  // depthwise: no dense GEMM lowering

    conv::ConvShape shape;
    shape.batch = batch;
    shape.in_height = conv.in_height;
    shape.in_width = conv.in_width;
    shape.in_channels = conv.in_channels;
    shape.out_channels = conv.out_channels;
    shape.kernel = conv.kernel;
    shape.stride = conv.stride;
    shape.padding = conv.padding;
    add_layer(conv.name, lowerings, engine.plan(shape));
  }

  for (const auto& fc : network.fcs) {
    const Lowering lowering{data::Transform::kFullyConnected,
                            data::fc_shape(fc, batch), 1};
    // FC layers have exactly one lowering; plan it directly through the
    // selector (the engine API is convolution-shaped).
    ConvEngine::Plan plan;
    plan.transform = data::Transform::kFullyConnected;
    plan.gemm_shape = lowering.shape;
    plan.config = [&] {
      // Reuse the engine's selector via a 1x1 convolution equivalent is
      // unnecessary; select directly on the GEMM shape.
      return engine.selector().select_config(lowering.shape);
    }();
    plan.modelled_seconds = model.predict_seconds(plan.config, lowering.shape);
    add_layer(fc.name, {lowering}, plan);
  }
  return estimate;
}

}  // namespace aks::select
