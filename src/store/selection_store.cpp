#include "store/selection_store.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "gemm/config.hpp"
#include "store/journal.hpp"
#include "trace/trace.hpp"

namespace aks::store {

SelectionStore::SelectionStore(std::filesystem::path path,
                               StoreOptions options)
    : path_(std::move(path)), options_(std::move(options)) {
  const JournalContents contents = read_journal(path_, options_.strict);
  // No concurrent access is possible during construction, but the replay
  // below funnels through put_locked(), whose AKS_REQUIRES(mutex_) contract
  // is checked at every call site — constructors included.
  aks::MutexLock lock(mutex_);
  stats_.records_loaded = contents.stats.records;
  stats_.corrupt_tail_records = contents.stats.corrupt_tail_records;
  stats_.bytes_dropped = contents.stats.bytes_dropped;

  for (const RawRecord& raw : contents.records) {
    try {
      if (raw.kind == RecordKind::kDeviceProfile) {
        DeviceProfileRecord profile = decode_device_profile(raw.payload);
        devices_[profile.fingerprint] = std::move(profile);
      } else {
        // Last record for a key wins: append-only upserts replay in order.
        (void)put_locked(decode_selection(raw.payload), /*from_load=*/true);
      }
    } catch (const common::Error&) {
      if (options_.strict) throw;
      ++stats_.rejected_malformed;
    }
  }
  // Loading replays history, it does not create new dirt.
  dirty_.clear();
  dirty_devices_.clear();
}

bool SelectionStore::put_locked(SelectionRecord record, bool from_load) {
  const auto& configs = gemm::enumerate_configs();
  if (record.config_index >= configs.size()) {
    AKS_CHECK(!options_.strict, "store " << path_ << ": config index "
                                         << record.config_index
                                         << " out of range");
    ++stats_.rejected_malformed;
    return false;
  }
  if (!options_.certified_mask.empty()) {
    const bool certified =
        record.config_index < options_.certified_mask.size() &&
        options_.certified_mask[record.config_index];
    if (!certified) {
      AKS_CHECK(!options_.strict,
                "store " << path_ << ": config "
                         << configs[record.config_index].name()
                         << " has no SAFE certificate");
      ++stats_.rejected_uncertified;
      return false;
    }
  }
  if (!options_.cert_digests.empty() &&
      record.config_index < options_.cert_digests.size()) {
    const std::uint64_t expected = options_.cert_digests[record.config_index];
    if (record.cert_digest == 0) {
      record.cert_digest = expected;
    } else if (expected != 0 && record.cert_digest != expected) {
      AKS_CHECK(!options_.strict,
                "store " << path_ << ": certificate digest mismatch for "
                         << configs[record.config_index].name()
                         << " (certificates changed since the store was "
                            "written)");
      ++stats_.rejected_digest;
      return false;
    }
  }

  const Key key{record.device_fingerprint, record.shape};
  selections_[key] = record;
  if (!from_load &&
      std::find(dirty_.begin(), dirty_.end(), key) == dirty_.end()) {
    dirty_.push_back(key);
  }
  return true;
}

std::optional<SelectionRecord> SelectionStore::lookup(
    std::uint64_t device_fingerprint, const gemm::GemmShape& shape) const {
  aks::MutexLock lock(mutex_);
  const auto it = selections_.find(Key{device_fingerprint, shape});
  if (it == selections_.end()) return std::nullopt;
  return it->second;
}

std::optional<SelectionStore::TransferPrior> SelectionStore::lookup_transfer(
    const perf::DeviceSpec& device, const gemm::GemmShape& shape) const {
  aks::MutexLock lock(mutex_);
  ++stats_.transfer_lookups;
  const std::uint64_t own = device.fingerprint();
  const auto own_features = device.similarity_features();

  struct Ranked {
    double similarity;
    const DeviceProfileRecord* profile;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(devices_.size());
  for (const auto& [fingerprint, profile] : devices_) {
    if (fingerprint == own) continue;
    ranked.push_back(
        {feature_similarity(own_features, profile.features), &profile});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.profile->name < b.profile->name;  // deterministic tie-break
  });

  for (const Ranked& r : ranked) {
    const auto it = selections_.find(Key{r.profile->fingerprint, shape});
    if (it == selections_.end()) continue;
    ++stats_.transfer_hits;
    return TransferPrior{it->second, r.profile->name, r.similarity};
  }
  return std::nullopt;
}

bool SelectionStore::put(SelectionRecord record) {
  aks::MutexLock lock(mutex_);
  return put_locked(std::move(record), /*from_load=*/false);
}

std::size_t SelectionStore::put_batch(std::vector<SelectionRecord> records) {
  if (records.empty()) return 0;
  aks::MutexLock lock(mutex_);
  std::size_t accepted = 0;
  for (SelectionRecord& record : records) {
    if (put_locked(std::move(record), /*from_load=*/false)) ++accepted;
  }
  return accepted;
}

void SelectionStore::put_device(const perf::DeviceSpec& spec) {
  put_profile(DeviceProfileRecord::from_spec(spec));
}

void SelectionStore::put_profile(DeviceProfileRecord profile) {
  aks::MutexLock lock(mutex_);
  const std::uint64_t fingerprint = profile.fingerprint;
  const auto it = devices_.find(fingerprint);
  const bool changed = it == devices_.end() || !(it->second == profile);
  devices_[fingerprint] = std::move(profile);
  if (changed && std::find(dirty_devices_.begin(), dirty_devices_.end(),
                           fingerprint) == dirty_devices_.end()) {
    dirty_devices_.push_back(fingerprint);
  }
}

std::size_t SelectionStore::flush() {
  aks::MutexLock lock(mutex_);
  if (dirty_.empty() && dirty_devices_.empty()) return 0;

  trace::Span span;
  if (trace::enabled()) {
    span.arm("store.flush",
             {trace::arg("dirty", dirty_.size() + dirty_devices_.size())});
  }
  JournalWriter writer(path_);
  std::size_t persisted = 0;
  std::vector<std::uint8_t> payload;
  try {
    // Profiles first: a reader of a partially flushed journal can then
    // always resolve the fingerprints of the selections that follow.
    while (!dirty_devices_.empty()) {
      payload.clear();
      encode(devices_.at(dirty_devices_.front()), payload);
      writer.append(RecordKind::kDeviceProfile, payload);
      dirty_devices_.erase(dirty_devices_.begin());
      ++persisted;
    }
    while (!dirty_.empty()) {
      payload.clear();
      encode(selections_.at(dirty_.front()), payload);
      writer.append(RecordKind::kSelection, payload);
      dirty_.erase(dirty_.begin());
      ++persisted;
    }
  } catch (const common::Error&) {
    // The persisted prefix is durable; the failed record and everything
    // after it stay dirty, so a retry after the fault resolves no-ops the
    // already-flushed entries and re-attempts the rest.
    stats_.appended += persisted;
    ++stats_.write_failures;
    span.annotate(trace::arg("outcome", "failed"));
    span.annotate(trace::arg("persisted", persisted));
    throw;
  }
  stats_.appended += persisted;
  span.annotate(trace::arg("persisted", persisted));
  return persisted;
}

std::vector<RawRecord> SelectionStore::live_records_locked() const {
  std::vector<RawRecord> records;
  records.reserve(devices_.size() + selections_.size());
  for (const auto& [fingerprint, profile] : devices_) {
    RawRecord raw;
    raw.kind = RecordKind::kDeviceProfile;
    encode(profile, raw.payload);
    records.push_back(std::move(raw));
  }
  for (const auto& [key, record] : selections_) {
    RawRecord raw;
    raw.kind = RecordKind::kSelection;
    encode(record, raw.payload);
    records.push_back(std::move(raw));
  }
  return records;
}

void SelectionStore::compact() {
  aks::MutexLock lock(mutex_);
  trace::Span span;
  if (trace::enabled()) {
    span.arm("store.compact",
             {trace::arg("live", devices_.size() + selections_.size())});
  }
  try {
    compact_journal(path_, live_records_locked());
  } catch (const common::Error&) {
    ++stats_.write_failures;
    span.annotate(trace::arg("outcome", "failed"));
    throw;
  }
  // The rewrite persisted the full live set, dirty entries included.
  dirty_.clear();
  dirty_devices_.clear();
}

std::vector<SelectionRecord> SelectionStore::selections() const {
  aks::MutexLock lock(mutex_);
  std::vector<SelectionRecord> out;
  out.reserve(selections_.size());
  for (const auto& [key, record] : selections_) out.push_back(record);
  return out;
}

std::vector<DeviceProfileRecord> SelectionStore::devices() const {
  aks::MutexLock lock(mutex_);
  std::vector<DeviceProfileRecord> out;
  out.reserve(devices_.size());
  for (const auto& [fingerprint, profile] : devices_) out.push_back(profile);
  return out;
}

std::size_t SelectionStore::merge_from(const SelectionStore& other) {
  // Snapshot the other store first so lock order cannot deadlock even if
  // someone merges two stores into each other concurrently.
  const auto other_devices = other.devices();
  const auto other_selections = other.selections();

  aks::MutexLock lock(mutex_);
  std::size_t adopted = 0;
  for (const DeviceProfileRecord& profile : other_devices) {
    if (devices_.contains(profile.fingerprint)) continue;
    devices_[profile.fingerprint] = profile;
    dirty_devices_.push_back(profile.fingerprint);
    ++adopted;
  }
  for (const SelectionRecord& record : other_selections) {
    const Key key{record.device_fingerprint, record.shape};
    if (selections_.contains(key)) continue;  // left-biased: ours wins
    if (put_locked(record, /*from_load=*/false)) ++adopted;
  }
  return adopted;
}

StoreStats SelectionStore::stats() const {
  aks::MutexLock lock(mutex_);
  StoreStats stats = stats_;
  stats.selections = selections_.size();
  stats.devices = devices_.size();
  stats.dirty = dirty_.size() + dirty_devices_.size();
  return stats;
}

}  // namespace aks::store
