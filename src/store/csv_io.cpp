#include "store/csv_io.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "gemm/registry.hpp"
#include "store/selection_store.hpp"

namespace aks::store {

namespace {

/// Shared context for parse errors: 1-based line and column plus the field
/// name, so a failed import points at the exact offending cell.
[[noreturn]] void fail_field(std::size_t line_no, std::size_t column,
                             const char* field_name, const std::string& text,
                             const char* what) {
  AKS_FAIL("store csv line " << line_no << ", column " << column + 1 << " ("
                             << field_name << "): " << what << ": '" << text
                             << "'");
}

std::uint64_t parse_u64(const std::string& text, std::size_t line_no,
                        std::size_t column, const char* field_name,
                        int base = 10) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, base);
  if (ec == std::errc::result_out_of_range) {
    fail_field(line_no, column, field_name, text, "value overflows uint64");
  }
  if (ec != std::errc{} || ptr != end || text.empty()) {
    fail_field(line_no, column, field_name, text,
               base == 16 ? "expected a hexadecimal integer"
                          : "expected an unsigned integer");
  }
  return value;
}

std::uint32_t parse_u32(const std::string& text, std::size_t line_no,
                        std::size_t column, const char* field_name) {
  const std::uint64_t value = parse_u64(text, line_no, column, field_name);
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    fail_field(line_no, column, field_name, text, "value overflows uint32");
  }
  return static_cast<std::uint32_t>(value);
}

double parse_double(const std::string& text, std::size_t line_no,
                    std::size_t column, const char* field_name) {
  if (text.empty()) {
    fail_field(line_no, column, field_name, text, "expected a number");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    fail_field(line_no, column, field_name, text, "expected a number");
  }
  if (errno == ERANGE && std::abs(value) == HUGE_VAL) {
    fail_field(line_no, column, field_name, text, "value overflows double");
  }
  return value;
}

}  // namespace

std::string fingerprint_hex(std::uint64_t fingerprint) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << fingerprint;
  return out.str();
}

Source source_from_string(const std::string& name) {
  if (name == "online-tuner") return Source::kOnlineTuner;
  if (name == "learned-selector") return Source::kLearnedSelector;
  if (name == "transfer") return Source::kTransfer;
  return Source::kImported;
}

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

void export_store_csv(const SelectionStore& store, std::ostream& out) {
  out << std::setprecision(17);
  for (const auto& profile : store.devices()) {
    out << "device," << fingerprint_hex(profile.fingerprint) << ","
        << profile.name;
    for (const double f : profile.features) out << "," << f;
    out << "\n";
  }
  const auto& configs = gemm::enumerate_configs();
  for (const auto& record : store.selections()) {
    out << "selection," << fingerprint_hex(record.device_fingerprint) << ","
        << record.shape.m << "," << record.shape.k << "," << record.shape.n
        << "," << record.config_index << ","
        << configs[record.config_index].name() << "," << record.warmup_seconds
        << "," << record.sweeps << "," << record.quarantined_candidates << ","
        << to_string(record.source) << ","
        << fingerprint_hex(record.cert_digest) << "\n";
  }
}

std::size_t import_store_csv(std::istream& in, SelectionStore& store) {
  const std::size_t num_configs = gemm::enumerate_configs().size();
  std::size_t imported = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_csv_row(line);
    if (fields[0] == "device") {
      AKS_CHECK(fields.size() ==
                    3 + perf::DeviceSpec::kNumSimilarityFeatures,
                "store csv line "
                    << line_no << ": device row needs "
                    << 3 + perf::DeviceSpec::kNumSimilarityFeatures
                    << " fields, got " << fields.size());
      DeviceProfileRecord profile;
      profile.fingerprint =
          parse_u64(fields[1], line_no, 1, "fingerprint", 16);
      profile.name = fields[2];
      for (std::size_t f = 0; f < profile.features.size(); ++f) {
        profile.features[f] =
            parse_double(fields[3 + f], line_no, 3 + f, "feature");
      }
      store.put_profile(std::move(profile));
      ++imported;
    } else if (fields[0] == "selection") {
      AKS_CHECK(fields.size() == 12,
                "store csv line " << line_no
                                  << ": selection row needs 12 fields, got "
                                  << fields.size());
      SelectionRecord record;
      record.device_fingerprint =
          parse_u64(fields[1], line_no, 1, "device_fingerprint", 16);
      record.shape.m = parse_u64(fields[2], line_no, 2, "m");
      record.shape.k = parse_u64(fields[3], line_no, 3, "k");
      record.shape.n = parse_u64(fields[4], line_no, 4, "n");
      record.config_index = parse_u32(fields[5], line_no, 5, "config_index");
      AKS_CHECK(record.config_index < num_configs,
                "store csv line " << line_no << ": config index "
                                  << record.config_index
                                  << " out of range (have " << num_configs
                                  << " configs)");
      // fields[6] is the config name, informational only.
      record.warmup_seconds =
          parse_double(fields[7], line_no, 7, "warmup_seconds");
      record.sweeps = parse_u32(fields[8], line_no, 8, "sweeps");
      record.quarantined_candidates =
          parse_u32(fields[9], line_no, 9, "quarantined_candidates");
      record.source = source_from_string(fields[10]);
      record.cert_digest =
          parse_u64(fields[11], line_no, 11, "cert_digest", 16);
      if (store.put(std::move(record))) ++imported;
    } else {
      AKS_FAIL("store csv line " << line_no << ": unknown record type '"
                                 << fields[0] << "'");
    }
  }
  return imported;
}

}  // namespace aks::store
