// Versioned binary records for the persistent selection store.
//
// The store persists two record kinds, both encoded little-endian with
// fixed-width fields (no struct memcpy, so the format is identical across
// compilers and platforms):
//
//   selection      — one tuned decision, keyed by (device fingerprint,
//                    GemmShape): the winning canonical config index, the
//                    measured warm-up cost behind it, tuner provenance
//                    (sweeps run, quarantine state at save time, which
//                    layer produced it) and the symbolic-certificate digest
//                    of the config (0 when no certificate was attached);
//
//   device profile — the fingerprint -> (name, similarity feature vector)
//                    mapping that lets a store opened on a *different*
//                    device rank stored devices by architectural similarity
//                    and serve the nearest device's selection as a warm
//                    prior (cross-device transfer).
//
// Encoding/decoding throws common::Error on any structural mismatch
// (truncated payload, trailing bytes, unknown enum value); integrity
// against torn writes and bit flips is the journal's job (per-record CRC32,
// see journal.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gemm/shape.hpp"
#include "perfmodel/device_spec.hpp"

namespace aks::store {

/// Which layer produced a stored selection (provenance, kept on merge).
enum class Source : std::uint8_t {
  kOnlineTuner = 0,      ///< winner of an OnlineTuner trial sweep
  kLearnedSelector = 1,  ///< prediction of a trained KernelSelector
  kImported = 2,         ///< loaded through `aks_tune store import`
  kTransfer = 3,         ///< adopted from the nearest device as a prior
};

[[nodiscard]] const char* to_string(Source source);

/// One persisted tuning decision.
struct SelectionRecord {
  /// perf::DeviceSpec::fingerprint() of the device the decision was tuned
  /// on.
  std::uint64_t device_fingerprint = 0;
  gemm::GemmShape shape;
  /// Canonical index into gemm::enumerate_configs().
  std::uint32_t config_index = 0;
  /// Wall seconds the warm-up that produced this decision cost (what a
  /// warm-started process saves by not re-sweeping).
  double warmup_seconds = 0.0;
  /// Trial sweeps behind the decision (provenance; >= 1 for tuner wins).
  std::uint32_t sweeps = 0;
  /// Candidates quarantined in the producing tuner when the decision was
  /// saved (provenance: a high count means the decision was made under
  /// degraded conditions).
  std::uint32_t quarantined_candidates = 0;
  Source source = Source::kOnlineTuner;
  /// Digest of the config's symbolic safety certificate (common::fnv1a64
  /// over the certificate row); 0 when none was attached. Checked against
  /// the expected digest table on load when one is supplied.
  std::uint64_t cert_digest = 0;

  [[nodiscard]] bool operator==(const SelectionRecord&) const = default;
};

/// Persisted device identity: enough to rank stored devices by similarity
/// without the full DeviceSpec file.
struct DeviceProfileRecord {
  std::uint64_t fingerprint = 0;
  std::string name;
  /// perf::DeviceSpec::similarity_features() at save time.
  std::array<double, perf::DeviceSpec::kNumSimilarityFeatures> features{};

  [[nodiscard]] static DeviceProfileRecord from_spec(
      const perf::DeviceSpec& spec);

  [[nodiscard]] bool operator==(const DeviceProfileRecord&) const = default;
};

/// Similarity between two persisted feature vectors — same formula as
/// perf::device_similarity, but computable against a profile whose full
/// DeviceSpec is not available.
[[nodiscard]] double feature_similarity(
    std::span<const double> a, std::span<const double> b);

/// Encoders append to `out`; decoders consume the whole payload and throw
/// common::Error on malformed input.
void encode(const SelectionRecord& record, std::vector<std::uint8_t>& out);
void encode(const DeviceProfileRecord& record, std::vector<std::uint8_t>& out);
[[nodiscard]] SelectionRecord decode_selection(
    std::span<const std::uint8_t> payload);
[[nodiscard]] DeviceProfileRecord decode_device_profile(
    std::span<const std::uint8_t> payload);

}  // namespace aks::store
