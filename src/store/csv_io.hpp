// Human-editable CSV interchange for the selection store, used by
// `aks_tune store export/import`.
//
// Lives in the library (not the CLI) so the parser is unit-testable:
// every numeric field goes through a checked parser that raises
// common::Error with row/column context instead of letting std::stoull's
// std::invalid_argument / std::out_of_range escape to the user, and field
// counts are validated per record kind before any field is touched.
//
// Row formats (leading record-type column makes rows self-describing;
// blank lines and `#` comments are skipped):
//
//   device,<fingerprint-hex16>,<name>,<feature0>,...,<featureN-1>
//   selection,<fingerprint-hex16>,<m>,<k>,<n>,<config-index>,
//             <config-name>,<warmup-seconds>,<sweeps>,<quarantined>,
//             <source>,<cert-digest-hex16>
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "store/record.hpp"

namespace aks::store {

class SelectionStore;

/// 16-digit zero-padded lowercase hex (the fingerprint wire format).
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

/// Inverse of to_string(Source); unknown names map to Source::kImported so
/// hand-authored rows carry the import provenance tag.
[[nodiscard]] Source source_from_string(const std::string& name);

/// Naive split on ',' (fields are numbers, identifiers and config names —
/// none may contain commas, which import re-checks where it matters).
[[nodiscard]] std::vector<std::string> split_csv_row(const std::string& line);

/// Writes every device profile then every selection, full double precision.
void export_store_csv(const SelectionStore& store, std::ostream& out);

/// Replays rows into `store`; returns the number of rows applied (a
/// selection row superseded by a newer stored record counts as skipped).
/// Throws common::Error naming the 1-based line and column on any malformed
/// row: wrong field count, unknown record type, non-numeric or overflowing
/// field, bad hex fingerprint, or out-of-range config index.
std::size_t import_store_csv(std::istream& in, SelectionStore& store);

}  // namespace aks::store
