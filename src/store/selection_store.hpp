// Persistent selection store — the durable tuning cache over the journal.
//
// A SelectionStore maps (device fingerprint, GemmShape) to the tuned
// SelectionRecord, loaded from an append-only journal (journal.hpp) and
// mutated write-behind: put() only updates memory and marks the entry
// dirty; flush() appends the dirty set, so the serving hot path never
// touches the filesystem. Append-only means the last record for a key wins
// on load — an upsert is just another append, and compact() folds the
// history down to the live set with an atomic rename.
//
// Trust boundary: records are integrity-checked by the journal (CRC32,
// torn-tail recovery) and then *validated* here — an out-of-range config
// index, a config outside the certified-safe mask, or a certificate-digest
// mismatch rejects the record at load (counted, never served). A store is
// data, not code, but a stale or corrupt store must degrade to a cold
// start, never to serving an unsafe or unknown kernel.
//
// Cross-device transfer: when the running device's fingerprint has no
// entry for a shape, lookup_transfer() ranks the *stored* device profiles
// by architectural similarity (perfmodel feature space) and returns the
// nearest device's decision as a prior — the portability result of
// Lawson's follow-up paper. Callers count it and re-tune in the background
// (serve::SelectionService::refresh_provisional).
//
// All public methods are thread-safe (one mutex; the store sits behind the
// serving layer's single-flight warm-up, so it is never on the per-request
// hot path).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "gemm/shape.hpp"
#include "perfmodel/device_spec.hpp"
#include "store/journal.hpp"
#include "store/record.hpp"

namespace aks::store {

struct StoreOptions {
  /// Per-canonical-config certificate gate (index = canonical config
  /// index, true = certified SAFE). When non-empty, selections whose
  /// config is not certified are rejected at load and by put(). Typically
  /// check::symbolic::CertifyReport::safe_mask() carried across the
  /// process boundary — the store stays free of analysis-tool deps.
  std::vector<bool> certified_mask;
  /// Expected per-config certificate digests (0 = no expectation). A
  /// loaded record carrying a non-zero digest that disagrees is rejected:
  /// the certificate regime changed since the store was written.
  std::vector<std::uint64_t> cert_digests;
  /// Escalate any journal corruption or record rejection to common::Error
  /// instead of dropping and counting (import validation).
  bool strict = false;
};

struct StoreStats {
  // -- Load-time accounting (fixed after construction).
  std::size_t records_loaded = 0;
  std::size_t corrupt_tail_records = 0;
  std::size_t bytes_dropped = 0;
  std::size_t rejected_malformed = 0;
  std::size_t rejected_uncertified = 0;
  std::size_t rejected_digest = 0;

  // -- Live state.
  std::size_t selections = 0;
  std::size_t devices = 0;
  std::size_t dirty = 0;

  // -- Mutation/IO counters.
  std::size_t appended = 0;
  std::size_t write_failures = 0;
  std::size_t transfer_lookups = 0;
  std::size_t transfer_hits = 0;
};

class SelectionStore {
 public:
  /// Loads `path` (a missing file is an empty store). Throws common::Error
  /// on an unreadable header, or on any corruption when options.strict.
  explicit SelectionStore(std::filesystem::path path, StoreOptions options = {});

  SelectionStore(const SelectionStore&) = delete;
  SelectionStore& operator=(const SelectionStore&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Exact lookup for (fingerprint, shape).
  [[nodiscard]] std::optional<SelectionRecord> lookup(
      std::uint64_t device_fingerprint, const gemm::GemmShape& shape) const;

  struct TransferPrior {
    SelectionRecord record;       ///< the nearest device's decision
    std::string source_device;    ///< its stored profile name
    double similarity = 0.0;      ///< perfmodel feature-space similarity
  };

  /// Nearest-device prior for a shape the running device has no entry for:
  /// stored profiles are ranked by similarity to `device` (descending,
  /// name-tiebroken for determinism) and the closest one holding the shape
  /// wins. Returns nullopt when no stored device has the shape.
  [[nodiscard]] std::optional<TransferPrior> lookup_transfer(
      const perf::DeviceSpec& device, const gemm::GemmShape& shape) const;

  /// Upserts a selection (write-behind; call flush() to persist). Fills an
  /// empty cert_digest from the expected-digest table when one is
  /// configured. Returns false — and stores nothing — when the config
  /// index is out of range or fails the certificate gate.
  bool put(SelectionRecord record);

  /// Upserts a whole wave of selections under one lock acquisition — the
  /// write-behind path for serve::SelectionService::select_batch, which
  /// enqueues the records of a cold miss wave together instead of taking
  /// the store mutex once per shape. Same per-record validation as put();
  /// returns how many records were accepted.
  std::size_t put_batch(std::vector<SelectionRecord> records);

  /// Upserts the device profile that makes this fingerprint transferable.
  void put_device(const perf::DeviceSpec& spec);
  /// Upserts a raw persisted profile (import/merge path; prefer put_device
  /// when a live DeviceSpec is at hand).
  void put_profile(DeviceProfileRecord profile);

  /// Appends every dirty record to the journal; returns how many were
  /// persisted. On a write failure the persisted prefix is clean, the rest
  /// stays dirty for retry, and the error propagates (callers on the
  /// serving path catch and degrade — losing warm-start data must never
  /// take serving down).
  std::size_t flush();

  /// Rewrites the journal to exactly the live set (atomic rename), folding
  /// superseded appends away. Flushes dirty entries as part of the rewrite.
  void compact();

  /// Live selections, ordered by (fingerprint, shape) for determinism.
  [[nodiscard]] std::vector<SelectionRecord> selections() const;
  /// Stored device profiles, ordered by fingerprint.
  [[nodiscard]] std::vector<DeviceProfileRecord> devices() const;

  /// Folds `other`'s live set into this store: profiles union; selections
  /// union, keeping the existing record on key conflicts (left-biased, so
  /// merge order is an explicit policy choice of the caller).
  std::size_t merge_from(const SelectionStore& other);

  [[nodiscard]] StoreStats stats() const;

 private:
  using Key = std::pair<std::uint64_t, gemm::GemmShape>;

  bool put_locked(SelectionRecord record, bool from_load)
      AKS_REQUIRES(mutex_);
  [[nodiscard]] std::vector<RawRecord> live_records_locked() const
      AKS_REQUIRES(mutex_);

  std::filesystem::path path_;
  StoreOptions options_;

  // Lock order: store.state ("store.state") before the journal's own
  // store.journal mutex — flush()/compact() append while holding mutex_.
  mutable aks::Mutex mutex_{"store.state"};
  std::map<Key, SelectionRecord> selections_ AKS_GUARDED_BY(mutex_);
  std::map<std::uint64_t, DeviceProfileRecord> devices_ AKS_GUARDED_BY(mutex_);
  /// selection keys to flush
  std::vector<Key> dirty_ AKS_GUARDED_BY(mutex_);
  /// profile keys to flush
  std::vector<std::uint64_t> dirty_devices_ AKS_GUARDED_BY(mutex_);
  /// mutable: const lookups still count (transfer_lookups/hits telemetry).
  mutable StoreStats stats_ AKS_GUARDED_BY(mutex_);
};

}  // namespace aks::store
