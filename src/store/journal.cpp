#include "store/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "faults/injector.hpp"
#include "trace/trace.hpp"

namespace aks::store {

namespace {

constexpr char kMagic[8] = {'A', 'K', 'S', 'S', 'T', 'O', 'R', 'E'};
constexpr std::uint32_t kEndianMarker = 0x01020304u;
constexpr std::size_t kHeaderBytes = 16;
/// kind + payload length framing in front of each payload.
constexpr std::size_t kFrameBytes = 5;
constexpr std::size_t kCrcBytes = 4;

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::vector<std::uint8_t> header_bytes() {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u32le(out, kJournalVersion);
  put_u32le(out, kEndianMarker);
  return out;
}

/// Framed record bytes: kind | length | payload | crc(kind+length+payload).
std::vector<std::uint8_t> frame_record(RecordKind kind,
                                       const std::vector<std::uint8_t>& payload) {
  AKS_CHECK(payload.size() <= kMaxPayloadBytes,
            "journal record payload too large: " << payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(kFrameBytes + payload.size() + kCrcBytes);
  out.push_back(static_cast<std::uint8_t>(kind));
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32le(out, common::crc32(out.data(), out.size()));
  return out;
}

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::filesystem::path& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    // strerror: error paths only, and the message is copied into the
    // exception before any other call could clobber the buffer.
    AKS_CHECK(n > 0, "journal " << path << ": write failed: "
                                << std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

JournalContents read_journal(const std::filesystem::path& path, bool strict) {
  JournalContents contents;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return contents;

  std::ifstream in(path, std::ios::binary);
  AKS_CHECK(in.is_open(), "cannot open journal " << path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  AKS_CHECK(!in.bad(), "I/O error reading journal " << path);

  if (bytes.empty()) return contents;  // created but never written: empty
  AKS_CHECK(bytes.size() >= kHeaderBytes,
            "journal " << path << ": truncated header ("
                       << bytes.size() << " bytes)");
  AKS_CHECK(std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
            "journal " << path << ": bad magic (not an AKS selection store)");
  const std::uint32_t version = read_u32le(bytes.data() + 8);
  AKS_CHECK(version == kJournalVersion,
            "journal " << path << ": unsupported version " << version);
  AKS_CHECK(read_u32le(bytes.data() + 12) == kEndianMarker,
            "journal " << path << ": endianness marker mismatch");

  std::size_t pos = kHeaderBytes;
  auto& stats = contents.stats;
  stats.valid_bytes = kHeaderBytes;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    const char* why = nullptr;
    std::size_t record_end = 0;
    if (remaining < kFrameBytes + kCrcBytes) {
      why = "torn record framing";
    } else {
      const std::uint8_t kind = bytes[pos];
      const std::uint32_t len = read_u32le(bytes.data() + pos + 1);
      if (len > kMaxPayloadBytes) {
        why = "implausible record length";
      } else if (remaining < kFrameBytes + len + kCrcBytes) {
        why = "torn record payload";
      } else {
        record_end = pos + kFrameBytes + len + kCrcBytes;
        const std::uint32_t expected =
            read_u32le(bytes.data() + record_end - kCrcBytes);
        const std::uint32_t actual =
            common::crc32(bytes.data() + pos, kFrameBytes + len);
        if (actual != expected) {
          why = "CRC mismatch";
        } else if (kind != static_cast<std::uint8_t>(RecordKind::kSelection) &&
                   kind !=
                       static_cast<std::uint8_t>(RecordKind::kDeviceProfile)) {
          why = "unknown record kind";
        } else {
          RawRecord record;
          record.kind = static_cast<RecordKind>(kind);
          record.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(
                                                    pos + kFrameBytes),
                                bytes.begin() + static_cast<std::ptrdiff_t>(
                                                    record_end - kCrcBytes));
          contents.records.push_back(std::move(record));
          ++stats.records;
          pos = record_end;
          stats.valid_bytes = pos;
          continue;
        }
      }
    }
    // First untrustworthy byte: drop it and everything after. Records past
    // a corrupt one would be framed by corrupt lengths — never trust them.
    AKS_CHECK(!strict, "journal " << path << ": " << why << " at offset "
                                  << pos << " (" << remaining
                                  << " bytes dropped)");
    stats.corrupt_tail_records = 1;
    stats.bytes_dropped = remaining;
    break;
  }
  return contents;
}

JournalWriter::JournalWriter(std::filesystem::path path)
    : path_(std::move(path)),
      path_key_(common::fnv1a64(path_.string())) {
  // Crash recovery: find the last trustworthy byte and truncate the torn
  // tail (if any) before appending, so new records stay readable.
  const JournalContents existing = read_journal(path_);
  // The writer is not shared until the constructor returns, but the guarded
  // members keep their capability contract uniform across all writes.
  aks::MutexLock lock(mutex_);
  record_index_ = existing.stats.records;
  const bool fresh = !std::filesystem::exists(path_) ||
                     std::filesystem::file_size(path_) == 0;
  if (!fresh && existing.stats.bytes_dropped > 0) {
    std::filesystem::resize_file(path_, existing.stats.valid_bytes);
  }
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  AKS_CHECK(fd_ >= 0, "cannot open journal " << path_ << " for append: "
                                             << std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  if (fresh) {
    const auto header = header_bytes();
    write_all(fd_, header.data(), header.size(), path_);
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(RecordKind kind,
                           const std::vector<std::uint8_t>& payload) {
  aks::MutexLock lock(mutex_);
  AKS_CHECK(!poisoned_,
            "journal " << path_ << ": writer poisoned by a torn write; "
                          "reopen the journal to recover");
  const std::vector<std::uint8_t> framed = frame_record(kind, payload);

  // Deterministic fault key: (path digest, absolute record index) — stable
  // across reruns and independent of thread interleaving.
  faults::FaultScope scope(
      faults::site_bit(faults::Site::kStoreWrite),
      faults::mix_key(path_key_, static_cast<std::uint64_t>(record_index_)));
  if (const auto fault = faults::probe(faults::Site::kStoreWrite)) {
    if (fault.kind == faults::FaultKind::kWriteFailure) {
      throw common::Error("injected fault: journal write failed (no bytes "
                          "reached " + path_.string() + ")");
    }
    if (fault.kind == faults::FaultKind::kTornWrite) {
      // Simulated crash mid-append: a strict prefix lands, then the writer
      // dies. magnitude in [0, 1) scales the prefix, so every cut point in
      // the record (framing, payload, CRC) gets exercised across draws.
      const auto cut = static_cast<std::size_t>(
          fault.magnitude * static_cast<double>(framed.size()));
      write_all(fd_, framed.data(), cut, path_);
      poisoned_ = true;
      throw common::Error("injected fault: torn journal write (" +
                          std::to_string(cut) + " of " +
                          std::to_string(framed.size()) + " bytes reached " +
                          path_.string() + ")");
    }
  }

  write_all(fd_, framed.data(), framed.size(), path_);
  ++record_index_;
  ++appended_;
  trace::instant("store.append", {trace::arg("bytes", framed.size())});
}

void compact_journal(const std::filesystem::path& path,
                     const std::vector<RawRecord>& records) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    JournalWriter writer(tmp);
    for (const RawRecord& record : records) {
      writer.append(record.kind, record.payload);
    }
  }
  // Atomic publish: readers see either the old journal or the complete new
  // one, never a half-written file.
  std::filesystem::rename(tmp, path);
}

}  // namespace aks::store
