// Append-only record journal with torn-tail recovery — the durability layer
// under the selection store.
//
// File layout (all integers little-endian):
//
//   header   "AKSSTORE" | u32 version | u32 endian marker 0x01020304
//   record*  u8 kind | u32 payload length | payload bytes | u32 crc32
//
// The CRC covers kind + length + payload, so a bit flip anywhere in a
// record — including its length field — fails the checksum. The crash
// model is append-only with no overwrite: a torn write (power loss,
// SIGKILL mid-append) leaves a strict prefix of one record at the tail.
// read_journal() accepts every record up to the first structural or CRC
// failure and drops the rest of the file — a corrupt byte is never
// resynchronised past, because the following "records" would be attacker-
// chosen framing. Dropping is counted, never silent; strict mode turns any
// drop into a common::Error (for import validation). A corrupt *header* is
// always an error: nothing after it can be trusted.
//
// JournalWriter re-runs that recovery on open — the file is truncated back
// to its last valid record before new appends — so a process that crashed
// mid-write self-heals on restart instead of appending unreadable records
// after the torn tail. Each append probes faults::Site::kStoreWrite
// (write-failure: nothing lands, the append throws; torn-write: a prefix
// lands, the writer is poisoned exactly like a real crash). Compaction
// writes a fresh journal beside the target and publishes it with an atomic
// rename, so a crash mid-compaction leaves the old store intact.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace aks::store {

inline constexpr std::uint32_t kJournalVersion = 1;
/// Records larger than this are structurally invalid (the store's records
/// are well under 1 KiB; a huge length is a corrupt length field).
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

enum class RecordKind : std::uint8_t {
  kSelection = 1,
  kDeviceProfile = 2,
};

struct RawRecord {
  RecordKind kind = RecordKind::kSelection;
  std::vector<std::uint8_t> payload;
};

struct JournalReadStats {
  /// Records decoded and CRC-verified.
  std::size_t records = 0;
  /// 1 when the file ended in a torn or corrupt record (everything from the
  /// first bad byte was dropped).
  std::size_t corrupt_tail_records = 0;
  /// Bytes dropped with the corrupt tail.
  std::size_t bytes_dropped = 0;
  /// File offset up to which the journal is valid (= safe truncation
  /// point for crash recovery).
  std::uint64_t valid_bytes = 0;
};

struct JournalContents {
  std::vector<RawRecord> records;
  JournalReadStats stats;
};

/// Reads every trustworthy record. A missing file is an empty journal.
/// `strict` escalates any dropped byte to common::Error; the default
/// tolerates a corrupt tail (crash recovery). A bad header always throws.
[[nodiscard]] JournalContents read_journal(const std::filesystem::path& path,
                                           bool strict = false);

/// Appends records to a journal, creating it (with header) when missing and
/// truncating a torn tail from a previous crash before the first append.
class JournalWriter {
 public:
  explicit JournalWriter(std::filesystem::path path);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Writes one record (framing + CRC) and flushes it to the OS. Throws
  /// common::Error on an injected or real write failure; after an injected
  /// torn write the writer is poisoned (like the process that died) and
  /// every later append throws — reopen to recover. Appends from different
  /// threads serialize on the writer's own mutex, so the record stream
  /// never interleaves mid-frame.
  void append(RecordKind kind, const std::vector<std::uint8_t>& payload)
      AKS_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t appended() const {
    aks::MutexLock lock(mutex_);
    return appended_;
  }

 private:
  std::filesystem::path path_;
  std::uint64_t path_key_ = 0;  ///< digest of the path, part of fault keys
  // Guards the append-side state (the counters used to be mutated bare and
  // appended() read them unlocked — the annotation pass pinned that down).
  // Ordered after store.state: SelectionStore::flush() appends while
  // holding its own mutex.
  mutable aks::Mutex mutex_{"store.journal"};
  /// absolute index for deterministic keys
  std::size_t record_index_ AKS_GUARDED_BY(mutex_) = 0;
  std::size_t appended_ AKS_GUARDED_BY(mutex_) = 0;
  bool poisoned_ AKS_GUARDED_BY(mutex_) = false;
  int fd_ = -1;  ///< set once in the constructor, immutable afterwards
};

/// Atomically replaces `path` with a journal holding exactly `records`:
/// writes `<path>.tmp`, then renames over the target. A crash before the
/// rename leaves the original untouched; after it, the new file is
/// complete. The temp write probes the same fault site as appends.
void compact_journal(const std::filesystem::path& path,
                     const std::vector<RawRecord>& records);

}  // namespace aks::store
