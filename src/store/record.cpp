#include "store/record.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace aks::store {

namespace {

// Little-endian byte-at-a-time codec: immune to host endianness and struct
// layout, and every field width is spelled at the call site.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::string string() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  void expect_done() const {
    AKS_CHECK(pos_ == data_.size(), "store record: " << data_.size() - pos_
                                                     << " trailing bytes");
  }

 private:
  void need(std::size_t n) const {
    AKS_CHECK(pos_ + n <= data_.size(),
              "store record: truncated payload (need " << n << " bytes at "
                                                       << pos_ << " of "
                                                       << data_.size() << ")");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(Source source) {
  switch (source) {
    case Source::kOnlineTuner: return "online-tuner";
    case Source::kLearnedSelector: return "learned-selector";
    case Source::kImported: return "imported";
    case Source::kTransfer: return "transfer";
  }
  return "unknown";
}

DeviceProfileRecord DeviceProfileRecord::from_spec(
    const perf::DeviceSpec& spec) {
  DeviceProfileRecord record;
  record.fingerprint = spec.fingerprint();
  record.name = spec.name;
  record.features = spec.similarity_features();
  return record;
}

double feature_similarity(std::span<const double> a,
                          std::span<const double> b) {
  AKS_CHECK(a.size() == b.size(), "feature vectors differ in length");
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return 1.0 / (1.0 + std::sqrt(d2));
}

void encode(const SelectionRecord& record, std::vector<std::uint8_t>& out) {
  put_u64(out, record.device_fingerprint);
  put_u64(out, record.shape.m);
  put_u64(out, record.shape.k);
  put_u64(out, record.shape.n);
  put_u32(out, record.config_index);
  put_f64(out, record.warmup_seconds);
  put_u32(out, record.sweeps);
  put_u32(out, record.quarantined_candidates);
  put_u8(out, static_cast<std::uint8_t>(record.source));
  put_u64(out, record.cert_digest);
}

void encode(const DeviceProfileRecord& record,
            std::vector<std::uint8_t>& out) {
  put_u64(out, record.fingerprint);
  put_string(out, record.name);
  put_u32(out, static_cast<std::uint32_t>(record.features.size()));
  for (const double f : record.features) put_f64(out, f);
}

SelectionRecord decode_selection(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  SelectionRecord record;
  record.device_fingerprint = in.u64();
  record.shape.m = in.u64();
  record.shape.k = in.u64();
  record.shape.n = in.u64();
  record.config_index = in.u32();
  record.warmup_seconds = in.f64();
  record.sweeps = in.u32();
  record.quarantined_candidates = in.u32();
  const std::uint8_t source = in.u8();
  AKS_CHECK(source <= static_cast<std::uint8_t>(Source::kTransfer),
            "store record: unknown selection source " << int{source});
  record.source = static_cast<Source>(source);
  record.cert_digest = in.u64();
  in.expect_done();
  return record;
}

DeviceProfileRecord decode_device_profile(
    std::span<const std::uint8_t> payload) {
  Reader in(payload);
  DeviceProfileRecord record;
  record.fingerprint = in.u64();
  record.name = in.string();
  const std::uint32_t count = in.u32();
  AKS_CHECK(count == record.features.size(),
            "store record: device profile carries " << count << " features, "
                                                    << record.features.size()
                                                    << " expected");
  for (double& f : record.features) f = in.f64();
  in.expect_done();
  return record;
}

}  // namespace aks::store
