#include "dataset/extract.hpp"

#include <map>

#include "dataset/networks.hpp"

namespace aks::data {

const std::vector<int>& ExtractionOptions::batches_for(
    const std::string& network) const {
  if (network == "ResNet50") return resnet_batches;
  if (network == "MobileNetV2") return mobilenet_batches;
  return vgg_batches;
}

std::vector<LoweredGemm> deduplicate(std::vector<LoweredGemm> lowered) {
  std::map<gemm::GemmShape, bool> seen;
  std::vector<LoweredGemm> out;
  out.reserve(lowered.size());
  for (auto& item : lowered) {
    if (seen.emplace(item.shape, true).second) {
      out.push_back(std::move(item));
    }
  }
  return out;
}

std::vector<NetworkShapes> extract_paper_shapes(
    const ExtractionOptions& options) {
  std::vector<NetworkShapes> out;
  for (const auto& network : paper_networks()) {
    NetworkShapes entry;
    entry.network = network.name;
    entry.shapes =
        deduplicate(lower_network(network, options.batches_for(network.name)));
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<LoweredGemm> extract_all_shapes(const ExtractionOptions& options) {
  std::vector<LoweredGemm> out;
  for (auto& per_network : extract_paper_shapes(options)) {
    out.insert(out.end(), per_network.shapes.begin(), per_network.shapes.end());
  }
  return out;
}

}  // namespace aks::data
