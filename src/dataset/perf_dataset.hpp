// The tuning dataset: for every benchmark shape, the normalised performance
// of every kernel configuration.
//
// Rows are GEMM shapes (the paper's 170), columns are the 640 kernel
// configurations in canonical order. `scores(r, c)` is the performance of
// configuration c on shape r relative to the best configuration for that
// shape, in (0, 1] — the representation Figures 1-4 and Table I are built
// from. `features` carries (M, K, N) per row for the learned selectors.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "common/matrix.hpp"
#include "dataset/lowering.hpp"
#include "gemm/shape.hpp"

namespace aks::data {

struct DatasetSplit;

class PerfDataset {
 public:
  PerfDataset() = default;

  /// `times(r, c)` are raw execution times in seconds; scores are derived
  /// as time_best(r) / time(r, c).
  PerfDataset(std::vector<LoweredGemm> shapes, common::Matrix times);

  [[nodiscard]] std::size_t num_shapes() const { return shapes_.size(); }
  [[nodiscard]] std::size_t num_configs() const { return scores_.cols(); }

  [[nodiscard]] const std::vector<LoweredGemm>& shapes() const {
    return shapes_;
  }
  /// n x 3 feature matrix: (M, K, N) as doubles.
  [[nodiscard]] const common::Matrix& features() const { return features_; }
  /// n x 640 normalised performance in (0, 1].
  [[nodiscard]] const common::Matrix& scores() const { return scores_; }
  /// n x 640 raw times in seconds.
  [[nodiscard]] const common::Matrix& times() const { return times_; }

  /// Index of the best configuration for a shape row.
  [[nodiscard]] std::size_t best_config(std::size_t row) const;

  /// Achieved GFLOP/s of one (shape, config) cell — the second quantity
  /// the paper's harness records ("the runtime of the kernel and number of
  /// flops attained").
  [[nodiscard]] double gflops(std::size_t row, std::size_t config) const;

  /// How many rows each configuration wins (Figure 2's histogram).
  [[nodiscard]] std::vector<std::size_t> optimal_counts() const;

  /// Mean normalised score of each configuration across all rows
  /// (Figure 1's ordering key).
  [[nodiscard]] std::vector<double> mean_scores() const;

  /// Best score achievable per row when restricted to `allowed` configs.
  [[nodiscard]] double best_restricted_score(
      std::size_t row, const std::vector<std::size_t>& allowed) const;

  /// Returns a dataset containing the given rows.
  [[nodiscard]] PerfDataset subset(
      const std::vector<std::size_t>& rows) const;

  /// Row indices whose shape came from the named network (e.g. "VGG16").
  [[nodiscard]] std::vector<std::size_t> rows_of_network(
      const std::string& network) const;

  /// The distinct network names present, in row order of first appearance.
  [[nodiscard]] std::vector<std::string> networks() const;

  /// Random split into train/test by fraction (the paper: 136/34 = 80/20).
  [[nodiscard]] DatasetSplit split(double train_fraction,
                                   std::uint64_t seed) const;

  /// CSV round-trip. The file stores provenance, features and raw times.
  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static PerfDataset load(const std::filesystem::path& path);

 private:
  void derive_from_times();

  std::vector<LoweredGemm> shapes_;
  common::Matrix features_;
  common::Matrix times_;
  common::Matrix scores_;
};

/// Result of PerfDataset::split.
struct DatasetSplit {
  PerfDataset train;
  PerfDataset test;
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> test_rows;
};

}  // namespace aks::data
