#include "dataset/lowering.hpp"

#include "common/error.hpp"

namespace aks::data {

std::string to_string(Transform t) {
  switch (t) {
    case Transform::kIm2col: return "im2col";
    case Transform::kWinograd: return "winograd";
    case Transform::kFullyConnected: return "fc";
    case Transform::kWinograd4: return "winograd4";
  }
  return "?";
}

std::optional<gemm::GemmShape> im2col_shape(const ConvLayer& conv, int batch) {
  AKS_CHECK(batch > 0, "batch must be positive");
  if (conv.groups != 1) return std::nullopt;
  gemm::GemmShape shape;
  shape.m = static_cast<std::size_t>(batch) *
            static_cast<std::size_t>(conv.out_height()) *
            static_cast<std::size_t>(conv.out_width());
  shape.k = static_cast<std::size_t>(conv.in_channels) *
            static_cast<std::size_t>(conv.kernel) *
            static_cast<std::size_t>(conv.kernel);
  shape.n = static_cast<std::size_t>(conv.out_channels);
  return shape;
}

std::optional<gemm::GemmShape> winograd_shape(const ConvLayer& conv,
                                              int batch) {
  AKS_CHECK(batch > 0, "batch must be positive");
  if (!conv.winograd_applicable()) return std::nullopt;
  const auto tiles_h = static_cast<std::size_t>((conv.out_height() + 1) / 2);
  const auto tiles_w = static_cast<std::size_t>((conv.out_width() + 1) / 2);
  gemm::GemmShape shape;
  shape.m = static_cast<std::size_t>(batch) * tiles_h * tiles_w;
  shape.k = static_cast<std::size_t>(conv.in_channels);
  shape.n = static_cast<std::size_t>(conv.out_channels);
  return shape;
}

gemm::GemmShape fc_shape(const FcLayer& fc, int batch) {
  AKS_CHECK(batch > 0, "batch must be positive");
  gemm::GemmShape shape;
  shape.m = static_cast<std::size_t>(batch);
  shape.k = static_cast<std::size_t>(fc.in_features);
  shape.n = static_cast<std::size_t>(fc.out_features);
  return shape;
}

std::vector<LoweredGemm> lower_network(const Network& network,
                                       const std::vector<int>& batch_sizes) {
  AKS_CHECK(!batch_sizes.empty(), "need at least one batch size");
  std::vector<LoweredGemm> out;
  for (int batch : batch_sizes) {
    for (const auto& conv : network.convs) {
      if (auto shape = im2col_shape(conv, batch)) {
        out.push_back({*shape, Transform::kIm2col, conv.name, network.name,
                       batch});
      }
      if (auto shape = winograd_shape(conv, batch)) {
        out.push_back({*shape, Transform::kWinograd, conv.name, network.name,
                       batch});
      }
    }
    for (const auto& fc : network.fcs) {
      out.push_back({fc_shape(fc, batch), Transform::kFullyConnected, fc.name,
                     network.name, batch});
    }
  }
  return out;
}

}  // namespace aks::data
