// Layer tables for the three networks the paper mines for GEMM shapes:
// VGG-16, ResNet-50 and MobileNetV2.
//
// Only the information needed to derive matrix-multiply shapes is kept:
// convolution geometry and fully-connected dimensions. Grouped/depthwise
// convolutions are recorded but excluded from GEMM lowering (they do not
// lower to a dense matrix multiply), which is why MobileNetV2 contributes
// the fewest shapes — matching the ordering in the paper (78/66/26).
#pragma once

#include <string>
#include <vector>

namespace aks::data {

struct ConvLayer {
  std::string name;
  int in_channels = 0;
  int out_channels = 0;
  int kernel = 1;   // square kernels only; all three networks comply
  int stride = 1;
  int padding = 0;
  int in_height = 0;
  int in_width = 0;
  /// groups == in_channels marks a depthwise convolution.
  int groups = 1;

  [[nodiscard]] int out_height() const {
    return (in_height + 2 * padding - kernel) / stride + 1;
  }
  [[nodiscard]] int out_width() const {
    return (in_width + 2 * padding - kernel) / stride + 1;
  }
  [[nodiscard]] bool is_depthwise() const { return groups == in_channels && groups > 1; }
  /// Winograd F(2x2, 3x3) applies to dense 3x3 stride-1 convolutions.
  [[nodiscard]] bool winograd_applicable() const {
    return kernel == 3 && stride == 1 && groups == 1;
  }
};

struct FcLayer {
  std::string name;
  int in_features = 0;
  int out_features = 0;
};

struct Network {
  std::string name;
  std::vector<ConvLayer> convs;
  std::vector<FcLayer> fcs;
};

/// VGG-16 (configuration D): thirteen 3x3 convolutions, three FC layers.
[[nodiscard]] Network vgg16();

/// ResNet-50: 7x7 stem plus four stages of bottleneck blocks.
[[nodiscard]] Network resnet50();

/// MobileNetV2: 3x3 stem, inverted-residual blocks (1x1 expand, 3x3
/// depthwise, 1x1 project), 1x1 head, one FC.
[[nodiscard]] Network mobilenet_v2();

/// All three, in the paper's order.
[[nodiscard]] std::vector<Network> paper_networks();

}  // namespace aks::data
