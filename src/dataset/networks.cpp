#include "dataset/networks.hpp"

#include "common/error.hpp"

namespace aks::data {

namespace {

/// Appends a dense convolution and returns its output spatial size.
int add_conv(Network& net, const std::string& name, int in_c, int out_c,
             int kernel, int stride, int padding, int spatial, int groups = 1) {
  ConvLayer layer;
  layer.name = name;
  layer.in_channels = in_c;
  layer.out_channels = out_c;
  layer.kernel = kernel;
  layer.stride = stride;
  layer.padding = padding;
  layer.in_height = spatial;
  layer.in_width = spatial;
  layer.groups = groups;
  const int out = layer.out_height();
  AKS_CHECK(out > 0, "conv " << name << " produces empty output");
  net.convs.push_back(std::move(layer));
  return out;
}

}  // namespace

Network vgg16() {
  Network net;
  net.name = "VGG16";
  int s = 224;
  // Block 1
  add_conv(net, "conv1_1", 3, 64, 3, 1, 1, s);
  add_conv(net, "conv1_2", 64, 64, 3, 1, 1, s);
  s /= 2;  // maxpool
  // Block 2
  add_conv(net, "conv2_1", 64, 128, 3, 1, 1, s);
  add_conv(net, "conv2_2", 128, 128, 3, 1, 1, s);
  s /= 2;
  // Block 3
  add_conv(net, "conv3_1", 128, 256, 3, 1, 1, s);
  add_conv(net, "conv3_2", 256, 256, 3, 1, 1, s);
  add_conv(net, "conv3_3", 256, 256, 3, 1, 1, s);
  s /= 2;
  // Block 4
  add_conv(net, "conv4_1", 256, 512, 3, 1, 1, s);
  add_conv(net, "conv4_2", 512, 512, 3, 1, 1, s);
  add_conv(net, "conv4_3", 512, 512, 3, 1, 1, s);
  s /= 2;
  // Block 5
  add_conv(net, "conv5_1", 512, 512, 3, 1, 1, s);
  add_conv(net, "conv5_2", 512, 512, 3, 1, 1, s);
  add_conv(net, "conv5_3", 512, 512, 3, 1, 1, s);
  // Classifier
  net.fcs.push_back({"fc6", 512 * 7 * 7, 4096});
  net.fcs.push_back({"fc7", 4096, 4096});
  net.fcs.push_back({"fc8", 4096, 1000});
  return net;
}

Network resnet50() {
  Network net;
  net.name = "ResNet50";
  add_conv(net, "conv1", 3, 64, 7, 2, 3, 224);

  // Bottleneck stages: {mid channels, out channels, blocks, input spatial}.
  struct Stage {
    const char* name;
    int mid;
    int out;
    int blocks;
    int spatial;   // input spatial size of the stage (after any downsample)
    int stride;    // stride of the first block's 3x3
  };
  const Stage stages[] = {
      {"layer1", 64, 256, 3, 56, 1},
      {"layer2", 128, 512, 4, 56, 2},
      {"layer3", 256, 1024, 6, 28, 2},
      {"layer4", 512, 2048, 3, 14, 2},
  };
  int in_c = 64;
  for (const auto& st : stages) {
    int spatial = st.spatial;
    for (int b = 0; b < st.blocks; ++b) {
      const std::string prefix =
          std::string(st.name) + "_b" + std::to_string(b + 1);
      const int stride = (b == 0) ? st.stride : 1;
      add_conv(net, prefix + "_conv1", in_c, st.mid, 1, 1, 0, spatial);
      const int mid_spatial =
          add_conv(net, prefix + "_conv2", st.mid, st.mid, 3, stride, 1, spatial);
      add_conv(net, prefix + "_conv3", st.mid, st.out, 1, 1, 0, mid_spatial);
      if (b == 0) {
        add_conv(net, prefix + "_down", in_c, st.out, 1, stride, 0, spatial);
      }
      spatial = mid_spatial;
      in_c = st.out;
    }
  }
  net.fcs.push_back({"fc", 2048, 1000});
  return net;
}

Network mobilenet_v2() {
  Network net;
  net.name = "MobileNetV2";
  add_conv(net, "conv_stem", 3, 32, 3, 2, 1, 224);

  // Inverted residual settings (t = expansion, c = out channels,
  // n = repeats, s = stride of first repeat), per the MobileNetV2 paper.
  struct Block {
    int t, c, n, s;
  };
  const Block blocks[] = {
      {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},  {6, 64, 4, 2},
      {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1},
  };
  int in_c = 32;
  int spatial = 112;
  int idx = 0;
  for (const auto& blk : blocks) {
    for (int r = 0; r < blk.n; ++r) {
      const std::string prefix = "ir" + std::to_string(++idx);
      const int stride = (r == 0) ? blk.s : 1;
      const int expanded = in_c * blk.t;
      if (blk.t != 1) {
        add_conv(net, prefix + "_expand", in_c, expanded, 1, 1, 0, spatial);
      }
      // Depthwise 3x3: recorded for completeness, excluded from GEMM
      // lowering by its group count.
      ConvLayer dw;
      dw.name = prefix + "_dw";
      dw.in_channels = expanded;
      dw.out_channels = expanded;
      dw.kernel = 3;
      dw.stride = stride;
      dw.padding = 1;
      dw.in_height = spatial;
      dw.in_width = spatial;
      dw.groups = expanded;
      const int dw_spatial = dw.out_height();
      net.convs.push_back(dw);
      add_conv(net, prefix + "_project", expanded, blk.c, 1, 1, 0, dw_spatial);
      spatial = dw_spatial;
      in_c = blk.c;
    }
  }
  add_conv(net, "conv_head", 320, 1280, 1, 1, 0, spatial);
  net.fcs.push_back({"fc", 1280, 1000});
  return net;
}

std::vector<Network> paper_networks() {
  return {vgg16(), resnet50(), mobilenet_v2()};
}

}  // namespace aks::data
