#include "dataset/perf_dataset.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "gemm/config.hpp"

namespace aks::data {

PerfDataset::PerfDataset(std::vector<LoweredGemm> shapes, common::Matrix times)
    : shapes_(std::move(shapes)), times_(std::move(times)) {
  AKS_CHECK(times_.rows() == shapes_.size(),
            "times has " << times_.rows() << " rows for " << shapes_.size()
            << " shapes");
  AKS_CHECK(times_.cols() == gemm::enumerate_configs().size(),
            "times has " << times_.cols() << " columns, expected "
            << gemm::enumerate_configs().size());
  derive_from_times();
}

void PerfDataset::derive_from_times() {
  const std::size_t n = shapes_.size();
  features_.resize(n, 3);
  scores_.resize(n, times_.cols());
  for (std::size_t r = 0; r < n; ++r) {
    features_(r, 0) = static_cast<double>(shapes_[r].shape.m);
    features_(r, 1) = static_cast<double>(shapes_[r].shape.k);
    features_(r, 2) = static_cast<double>(shapes_[r].shape.n);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < times_.cols(); ++c) {
      AKS_CHECK(times_(r, c) > 0.0, "non-positive time at (" << r << "," << c << ")");
      best = std::min(best, times_(r, c));
    }
    for (std::size_t c = 0; c < times_.cols(); ++c) {
      scores_(r, c) = best / times_(r, c);
    }
  }
}

std::size_t PerfDataset::best_config(std::size_t row) const {
  return common::argmax(scores_.row(row));
}

double PerfDataset::gflops(std::size_t row, std::size_t config) const {
  AKS_CHECK(row < num_shapes() && config < num_configs(),
            "gflops index out of range");
  return shapes_[row].shape.flops() / times_(row, config) * 1e-9;
}

std::vector<std::size_t> PerfDataset::optimal_counts() const {
  std::vector<std::size_t> counts(num_configs(), 0);
  for (std::size_t r = 0; r < num_shapes(); ++r) ++counts[best_config(r)];
  return counts;
}

std::vector<double> PerfDataset::mean_scores() const {
  std::vector<double> means(num_configs());
  for (std::size_t c = 0; c < num_configs(); ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < num_shapes(); ++r) sum += scores_(r, c);
    means[c] = sum / static_cast<double>(num_shapes());
  }
  return means;
}

double PerfDataset::best_restricted_score(
    std::size_t row, const std::vector<std::size_t>& allowed) const {
  AKS_CHECK(!allowed.empty(), "restricted score over empty config set");
  double best = 0.0;
  for (std::size_t c : allowed) {
    AKS_CHECK(c < num_configs(), "config index " << c << " out of range");
    best = std::max(best, scores_(row, c));
  }
  return best;
}

std::vector<std::size_t> PerfDataset::rows_of_network(
    const std::string& network) const {
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < num_shapes(); ++r) {
    if (shapes_[r].network == network) rows.push_back(r);
  }
  return rows;
}

std::vector<std::string> PerfDataset::networks() const {
  std::vector<std::string> names;
  for (const auto& shape : shapes_) {
    if (std::find(names.begin(), names.end(), shape.network) == names.end()) {
      names.push_back(shape.network);
    }
  }
  return names;
}

PerfDataset PerfDataset::subset(const std::vector<std::size_t>& rows) const {
  std::vector<LoweredGemm> shapes;
  shapes.reserve(rows.size());
  for (std::size_t r : rows) {
    AKS_CHECK(r < num_shapes(), "row " << r << " out of range");
    shapes.push_back(shapes_[r]);
  }
  return PerfDataset(std::move(shapes), times_.select_rows(rows));
}

DatasetSplit PerfDataset::split(double train_fraction,
                                std::uint64_t seed) const {
  AKS_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0,1), got " << train_fraction);
  common::Rng rng(seed);
  auto perm = rng.permutation(num_shapes());
  const auto n_train = static_cast<std::size_t>(
      std::round(train_fraction * static_cast<double>(num_shapes())));
  AKS_CHECK(n_train > 0 && n_train < num_shapes(),
            "split leaves an empty partition");
  DatasetSplit out;
  out.train_rows.assign(perm.begin(),
                        perm.begin() + static_cast<std::ptrdiff_t>(n_train));
  out.test_rows.assign(perm.begin() + static_cast<std::ptrdiff_t>(n_train),
                       perm.end());
  std::sort(out.train_rows.begin(), out.train_rows.end());
  std::sort(out.test_rows.begin(), out.test_rows.end());
  out.train = subset(out.train_rows);
  out.test = subset(out.test_rows);
  return out;
}

void PerfDataset::save(const std::filesystem::path& path) const {
  common::CsvTable table;
  table.header = {"network", "layer", "transform", "batch", "m", "k", "n"};
  const auto& configs = gemm::enumerate_configs();
  for (const auto& config : configs) table.header.push_back(config.name());
  for (std::size_t r = 0; r < num_shapes(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.header.size());
    const auto& s = shapes_[r];
    row.push_back(s.network);
    row.push_back(s.layer);
    row.push_back(to_string(s.transform));
    row.push_back(std::to_string(s.batch));
    row.push_back(std::to_string(s.shape.m));
    row.push_back(std::to_string(s.shape.k));
    row.push_back(std::to_string(s.shape.n));
    for (std::size_t c = 0; c < num_configs(); ++c) {
      // Kernel times are < 1 s; 17 fixed decimals keeps >= 12 significant
      // digits so a save/load round-trip is lossless for analysis purposes.
      row.push_back(common::format_fixed(times_(r, c), 17));
    }
    table.rows.push_back(std::move(row));
  }
  common::write_csv(path, table);
}

PerfDataset PerfDataset::load(const std::filesystem::path& path) {
  const auto table = common::read_csv(path);
  const std::size_t n_configs = gemm::enumerate_configs().size();
  AKS_CHECK(table.num_cols() == 7 + n_configs,
            "dataset file has " << table.num_cols() << " columns, expected "
            << 7 + n_configs);
  std::vector<LoweredGemm> shapes;
  common::Matrix times(table.num_rows(), n_configs);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const auto& row = table.rows[r];
    LoweredGemm item;
    item.network = row[0];
    item.layer = row[1];
    if (row[2] == "winograd") {
      item.transform = Transform::kWinograd;
    } else if (row[2] == "fc") {
      item.transform = Transform::kFullyConnected;
    } else {
      item.transform = Transform::kIm2col;
    }
    item.batch = std::stoi(row[3]);
    item.shape.m = std::stoull(row[4]);
    item.shape.k = std::stoull(row[5]);
    item.shape.n = std::stoull(row[6]);
    shapes.push_back(std::move(item));
    for (std::size_t c = 0; c < n_configs; ++c) {
      times(r, c) = std::stod(row[7 + c]);
    }
  }
  return PerfDataset(std::move(shapes), std::move(times));
}

}  // namespace aks::data
