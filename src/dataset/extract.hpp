// Extraction of the benchmark shape set from the network zoo.
//
// Mirrors Section II.A of the paper: lower every layer of VGG, ResNet and
// MobileNet to GEMM shapes and deduplicate *within each network*, keeping
// one entry per distinct (M, K, N). The paper reports 78/66/26 shape
// combinations; our public layer tables and batch set land in the same
// regime (the exact counts are recorded in EXPERIMENTS.md).
#pragma once

#include <vector>

#include "dataset/lowering.hpp"

namespace aks::data {

struct ExtractionOptions {
  /// Batch sizes to lower each network at. The defaults are chosen so the
  /// per-network deduplicated shape counts land next to the paper's
  /// 78 / 66 / 26: VGG-16 yields 78, ResNet-50 yields 73 and MobileNetV2
  /// yields 21, for 172 total (the paper: 170).
  std::vector<int> vgg_batches = {1, 4, 16, 64};
  std::vector<int> resnet_batches = {1, 4, 16};
  std::vector<int> mobilenet_batches = {1};

  /// Batch set for a network by name; falls back to `vgg_batches`.
  [[nodiscard]] const std::vector<int>& batches_for(
      const std::string& network) const;
};

struct NetworkShapes {
  std::string network;
  /// Deduplicated shapes with the first provenance record kept.
  std::vector<LoweredGemm> shapes;
};

/// Deduplicates lowered GEMMs by (m, k, n), preserving first occurrence.
[[nodiscard]] std::vector<LoweredGemm> deduplicate(
    std::vector<LoweredGemm> lowered);

/// Per-network deduplicated shape sets for the paper's three networks.
[[nodiscard]] std::vector<NetworkShapes> extract_paper_shapes(
    const ExtractionOptions& options = {});

/// The concatenation of all per-network shape sets (the paper's 170-row
/// dataset; duplicates across networks are kept, as in the paper's count).
[[nodiscard]] std::vector<LoweredGemm> extract_all_shapes(
    const ExtractionOptions& options = {});

}  // namespace aks::data
