#include "dataset/benchmark_runner.hpp"

#include <atomic>
#include <mutex>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gemm/registry.hpp"
#include "syclrt/queue.hpp"

namespace aks::data {

PerfDataset run_model_benchmarks(const std::vector<LoweredGemm>& shapes,
                                 const perf::DeviceSpec& device,
                                 const RunnerOptions& options) {
  AKS_CHECK(!shapes.empty(), "no shapes to benchmark");
  AKS_CHECK(options.iterations > 0, "need at least one iteration");
  const auto& configs = gemm::enumerate_configs();
  const perf::TimingModel timing(device, options.noise_sigma, options.seed);

  common::Matrix times(shapes.size(), configs.size());
  std::atomic<std::size_t> done{0};
  // Workers finish rows concurrently; the progress callback is serialized
  // under a mutex so user code (typically stream output) never interleaves.
  std::mutex progress_mutex;
  common::ThreadPool::global().parallel_for(
      shapes.size(), [&](std::size_t r) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
          times(r, c) =
              timing.best_of(configs[c], shapes[r].shape, options.iterations);
        }
        if (options.progress) {
          std::lock_guard lock(progress_mutex);
          const std::size_t d =
              done.fetch_add(1, std::memory_order_relaxed) + 1;
          options.progress(d, shapes.size());
        } else {
          done.fetch_add(1, std::memory_order_relaxed);
        }
      });
  return PerfDataset(shapes, std::move(times));
}

PerfDataset build_paper_dataset(const RunnerOptions& options,
                                const ExtractionOptions& extraction) {
  return run_model_benchmarks(extract_all_shapes(extraction),
                              perf::DeviceSpec::amd_r9_nano(), options);
}

double time_host_run(const gemm::KernelConfig& config,
                     const gemm::GemmShape& shape) {
  // Deterministic input data; contents do not affect timing meaningfully
  // but keep the kernels honest (no denormal or NaN shortcuts).
  common::Rng rng(7);
  std::vector<float> a(shape.m * shape.k);
  std::vector<float> b(shape.k * shape.n);
  std::vector<float> c(shape.m * shape.n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  syclrt::Queue queue;
  const auto event = gemm::launch_gemm(queue, config, a, b, c, shape);
  return event.elapsed_seconds;
}

}  // namespace aks::data
