#include "dataset/benchmark_runner.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "faults/injector.hpp"
#include "gemm/registry.hpp"
#include "syclrt/queue.hpp"

namespace aks::data {

namespace {

// Counters shared across the worker threads of one run, flushed into the
// caller's MetricsRegistry at the end (a run is one logical operation; the
// registry sees totals, not per-row noise).
struct RunnerCounters {
  std::atomic<std::uint64_t> launch_failures{0};
  std::atomic<std::uint64_t> hangs{0};
  std::atomic<std::uint64_t> timing_nans{0};
  std::atomic<std::uint64_t> outliers_rejected{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> cells_fell_back{0};
  std::atomic<std::uint64_t> rows_corrupted{0};
  std::atomic<std::uint64_t> rows_repaired{0};
  aks::Mutex backoff_mutex{"dataset.backoff"};
  double backoff_seconds AKS_GUARDED_BY(backoff_mutex) = 0.0;

  void flush(common::MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    double backoff = 0.0;
    {
      aks::MutexLock lock(backoff_mutex);
      backoff = backoff_seconds;
    }
    metrics->counter("runner.launch_failures").add(launch_failures.load());
    metrics->counter("runner.hangs").add(hangs.load());
    metrics->counter("runner.timing_nans").add(timing_nans.load());
    metrics->counter("runner.outliers_rejected").add(outliers_rejected.load());
    metrics->counter("runner.retries").add(retries.load());
    metrics->counter("runner.cells_fell_back").add(cells_fell_back.load());
    metrics->counter("runner.rows_corrupted").add(rows_corrupted.load());
    metrics->counter("runner.rows_repaired").add(rows_repaired.load());
    metrics->accumulator("runner.backoff_seconds").add(backoff);
  }
};

std::uint64_t cell_key(const gemm::GemmShape& shape, std::size_t config_index,
                       int attempt) {
  return faults::mix_key(shape.m, shape.k, shape.n,
                         static_cast<std::uint64_t>(config_index),
                         static_cast<std::uint64_t>(attempt));
}

double reduce_samples(std::vector<double>& samples,
                      const RunnerOptions& options, int* outliers_rejected) {
  const auto kept = common::reject_outliers_mad(samples, options.mad_threshold);
  *outliers_rejected +=
      static_cast<int>(samples.size()) - static_cast<int>(kept.size());
  switch (options.aggregate) {
    case RunnerOptions::Aggregate::kMedian:
      return common::median(kept);
    case RunnerOptions::Aggregate::kTrimmedMean:
      return common::trimmed_mean(kept, 0.2);
    case RunnerOptions::Aggregate::kBestOf:
      break;
  }
  return common::min_value(kept);
}

CellMeasurement measure_cell(const perf::TimingModel& timing,
                             const gemm::KernelConfig& config,
                             std::size_t config_index,
                             const gemm::GemmShape& shape,
                             const RunnerOptions& options,
                             RunnerCounters* counters) {
  CellMeasurement result;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options.iterations));
  double backoff = options.backoff_seconds;
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    result.attempts = attempt + 1;
    if (attempt > 0) {
      // Retry with exponential back-off: give a glitching device (or its
      // simulation) time to recover before burning another attempt.
      if (counters != nullptr) {
        aks::MutexLock lock(counters->backoff_mutex);
        counters->backoff_seconds += backoff;
      }
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= 2.0;
      }
      if (counters != nullptr) counters->retries.fetch_add(1);
    }
    faults::FaultScope scope(
        faults::site_bit(faults::Site::kKernelLaunch) |
            faults::site_bit(faults::Site::kHostTiming),
        cell_key(shape, config_index, attempt));
    samples.clear();
    for (int i = 0; i < options.iterations; ++i) {
      try {
        faults::maybe_inject_launch_fault();
      } catch (const faults::LaunchFailure&) {
        ++result.launch_failures;
        if (counters != nullptr) counters->launch_failures.fetch_add(1);
        continue;
      } catch (const faults::DeadlineExceeded&) {
        ++result.hangs;
        if (counters != nullptr) counters->hangs.fetch_add(1);
        continue;
      }
      double t = timing.time_run(
          config, shape,
          static_cast<std::uint64_t>(attempt * options.iterations + i));
      if (const auto fault = faults::probe(faults::Site::kHostTiming)) {
        if (fault.kind == faults::FaultKind::kTimingOutlier) {
          t *= fault.magnitude;
        } else if (fault.kind == faults::FaultKind::kTimingNan) {
          t = std::numeric_limits<double>::quiet_NaN();
        }
      }
      if (std::isfinite(t) && t > 0.0) {
        samples.push_back(t);
      } else {
        ++result.nan_samples;
        if (counters != nullptr) counters->timing_nans.fetch_add(1);
      }
    }
    // One valid sample is enough to aggregate, but keep retrying while a
    // majority was lost — a mostly-faulted window is not trustworthy.
    if (static_cast<int>(samples.size()) * 2 > options.iterations) break;
  }
  if (samples.empty()) {
    // Degradation of last resort: every attempt failed, so fall back to
    // the analytic noise-free prior rather than poisoning the dataset with
    // a NaN or aborting a 100k-cell sweep for one dead cell.
    result.fell_back = true;
    if (counters != nullptr) counters->cells_fell_back.fetch_add(1);
    result.seconds = timing.model().predict_seconds(config, shape);
    return result;
  }
  result.seconds = reduce_samples(samples, options, &result.outliers_rejected);
  if (counters != nullptr && result.outliers_rejected > 0) {
    counters->outliers_rejected.fetch_add(
        static_cast<std::uint64_t>(result.outliers_rejected));
  }
  return result;
}

/// Applies an injected corrupt-row fault: deterministically NaNs a spread
/// of cells, emulating a damaged CSV record / DMA'd row.
void corrupt_row(common::Matrix& times, std::size_t row, std::uint64_t key) {
  const std::size_t cols = times.cols();
  const std::size_t stride = 1 + faults::mix_key(key, 0x5eed) % 17;
  for (std::size_t c = faults::mix_key(key, 0xc0de) % stride; c < cols;
       c += stride) {
    times(row, c) = std::numeric_limits<double>::quiet_NaN();
  }
}

bool row_valid(const common::Matrix& times, std::size_t row) {
  for (std::size_t c = 0; c < times.cols(); ++c) {
    const double t = times(row, c);
    if (!std::isfinite(t) || t <= 0.0) return false;
  }
  return true;
}

}  // namespace

CellMeasurement measure_cell_robust(const perf::TimingModel& timing,
                                    const gemm::KernelConfig& config,
                                    const gemm::GemmShape& shape,
                                    const RunnerOptions& options) {
  AKS_CHECK(options.iterations > 0, "need at least one iteration");
  return measure_cell(timing, config, gemm::config_index(config), shape,
                      options, nullptr);
}

PerfDataset run_model_benchmarks(const std::vector<LoweredGemm>& shapes,
                                 const perf::DeviceSpec& device,
                                 const RunnerOptions& options) {
  AKS_CHECK(!shapes.empty(), "no shapes to benchmark");
  AKS_CHECK(options.iterations > 0, "need at least one iteration");
  const auto& configs = gemm::enumerate_configs();
  const perf::TimingModel timing(device, options.noise_sigma, options.seed);

  // The robust path engages only under an installed fault plan; without one
  // the legacy best-of-N measurement below is bit-identical to previous
  // releases (golden datasets and determinism tests depend on that).
  const bool robust = faults::plan_active();
  RunnerCounters counters;

  common::Matrix times(shapes.size(), configs.size());
  std::atomic<std::size_t> done{0};
  // Workers finish rows concurrently; the progress callback is serialized
  // under a mutex so user code (typically stream output) never interleaves.
  aks::Mutex progress_mutex{"dataset.progress"};
  common::ThreadPool::global().parallel_for(
      shapes.size(), [&](std::size_t r) {
        const gemm::GemmShape& shape = shapes[r].shape;
        const auto measure = [&](std::size_t c) {
          return robust ? measure_cell(timing, configs[c], c, shape, options,
                                       &counters)
                              .seconds
                        : timing.best_of(configs[c], shape,
                                         options.iterations);
        };
        for (std::size_t c = 0; c < configs.size(); ++c) {
          times(r, c) = measure(c);
        }
        if (robust) {
          // Corrupt-row faults damage the assembled record *after*
          // measurement (a truncated CSV write, a bit-flipped buffer).
          // Recovery: re-measure the damaged cells, re-probe; after
          // max_retries, repair survivors from the analytic prior so a
          // non-finite row never ships.
          const std::uint64_t row_key =
              faults::mix_key(shape.m, shape.k, shape.n, 0xdadaULL);
          for (int row_attempt = 0;; ++row_attempt) {
            {
              faults::FaultScope scope(
                  faults::site_bit(faults::Site::kDatasetRow),
                  faults::mix_key(row_key,
                                  static_cast<std::uint64_t>(row_attempt)));
              if (const auto fault = faults::probe(faults::Site::kDatasetRow);
                  fault.kind == faults::FaultKind::kCorruptRow) {
                corrupt_row(times, r, scope.key());
                counters.rows_corrupted.fetch_add(1);
              }
            }
            if (row_valid(times, r)) break;
            const bool out_of_retries = row_attempt >= options.max_retries;
            for (std::size_t c = 0; c < configs.size(); ++c) {
              const double t = times(r, c);
              if (std::isfinite(t) && t > 0.0) continue;
              times(r, c) =
                  out_of_retries
                      ? timing.model().predict_seconds(configs[c], shape)
                      : measure(c);
            }
            if (out_of_retries) {
              counters.rows_repaired.fetch_add(1);
              break;
            }
            counters.retries.fetch_add(1);
          }
        }
        if (options.progress) {
          aks::MutexLock lock(progress_mutex);
          const std::size_t d =
              done.fetch_add(1, std::memory_order_relaxed) + 1;
          options.progress(d, shapes.size());
        } else {
          done.fetch_add(1, std::memory_order_relaxed);
        }
      });
  counters.flush(options.metrics);
  return PerfDataset(shapes, std::move(times));
}

PerfDataset build_paper_dataset(const RunnerOptions& options,
                                const ExtractionOptions& extraction) {
  return run_model_benchmarks(extract_all_shapes(extraction),
                              perf::DeviceSpec::amd_r9_nano(), options);
}

double time_host_run(const gemm::KernelConfig& config,
                     const gemm::GemmShape& shape) {
  // Deterministic input data; contents do not affect timing meaningfully
  // but keep the kernels honest (no denormal or NaN shortcuts).
  common::Rng rng(7);
  std::vector<float> a(shape.m * shape.k);
  std::vector<float> b(shape.k * shape.n);
  std::vector<float> c(shape.m * shape.n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  syclrt::Queue queue;
  const auto event = gemm::launch_gemm(queue, config, a, b, c, shape);
  return event.elapsed_seconds;
}

}  // namespace aks::data
