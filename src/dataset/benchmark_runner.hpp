// The benchmark harness that builds the tuning dataset.
//
// Mirrors the paper's data collection: "For each of these sizes we ran a
// benchmark for each of the kernel configurations, recording the runtime of
// the kernel and number of flops attained over a number of iterations."
// Two backends are provided:
//
//  * model mode — each (shape, config) run is timed by the perfmodel
//    TimingModel (best-of-N with deterministic noise). This is the mode the
//    shipped dataset uses; see DESIGN.md for the hardware substitution.
//  * host mode — the configuration's kernel is actually executed on the
//    syclrt host runtime and wall-clock timed. Used for correctness-scale
//    problems and the kernel microbenchmarks, not the full sweep.
#pragma once

#include <cstdint>
#include <functional>

#include "common/metrics.hpp"
#include "dataset/extract.hpp"
#include "dataset/perf_dataset.hpp"
#include "perfmodel/cost_model.hpp"

namespace aks::data {

struct RunnerOptions {
  /// Timed iterations per (shape, config); the best is kept.
  int iterations = 5;
  /// Lognormal sigma of the simulated measurement noise.
  double noise_sigma = 0.03;
  /// Seed for the noise streams.
  std::uint64_t seed = 42;
  /// Progress callback, called after each completed shape row. Rows finish
  /// on pool worker threads, but invocations are serialized by the runner
  /// (an internal mutex), so the callback may write to a stream without its
  /// output interleaving. `done` is the completion count at call time and
  /// is strictly increasing across the serialized calls.
  std::function<void(std::size_t done, std::size_t total)> progress;

  // -- Robust measurement (active only under a fault plan; see src/faults).
  // Without an installed plan the runner takes the legacy best-of-N path,
  // bit-identical to previous releases.

  /// Extra measurement attempts per cell (and per row, for corrupt-row
  /// recovery) when faults leave too few valid samples.
  int max_retries = 3;
  /// Base back-off before a retry, doubled per attempt. The default 0 skips
  /// sleeping — in model mode a retry has no device to cool down — but the
  /// budget is still recorded in `runner.backoff_seconds`.
  double backoff_seconds = 0.0;
  /// Reduction applied to the MAD-filtered samples of a cell.
  enum class Aggregate { kBestOf, kMedian, kTrimmedMean };
  Aggregate aggregate = Aggregate::kBestOf;
  /// MAD rejection threshold (scaled MADs from the median).
  double mad_threshold = 3.5;
  /// Optional sink for the robustness counters: runner.launch_failures,
  /// runner.hangs, runner.timing_nans, runner.outliers_rejected,
  /// runner.retries, runner.cells_fell_back, runner.rows_corrupted,
  /// runner.rows_repaired, runner.backoff_seconds. Must outlive the run.
  common::MetricsRegistry* metrics = nullptr;
};

/// Outcome of one robustly measured (shape, config) cell.
struct CellMeasurement {
  /// Aggregated execution time; always finite and positive.
  double seconds = 0.0;
  /// Measurement attempts consumed (1 = no retry needed).
  int attempts = 0;
  /// Injected faults survived while measuring.
  int launch_failures = 0;
  int hangs = 0;
  int nan_samples = 0;
  int outliers_rejected = 0;
  /// True when every attempt failed and the analytic noise-free model value
  /// was used instead (the measurement layer's last-ditch degradation).
  bool fell_back = false;
};

/// Robustly measures one (shape, config) cell against the timing model:
/// retry-with-backoff around injected launch failures/hangs, NaN-sample
/// rejection, MAD-based outlier rejection, then the configured reduction.
/// Deterministic for a fixed fault plan: fault decisions are keyed on
/// (shape, config, attempt), never on thread identity. Exposed for tests
/// and the fault-matrix bench; run_model_benchmarks uses it per cell
/// whenever a fault plan is active.
[[nodiscard]] CellMeasurement measure_cell_robust(
    const perf::TimingModel& timing, const gemm::KernelConfig& config,
    const gemm::GemmShape& shape, const RunnerOptions& options = {});

/// Runs the full (shapes x 640 configs) sweep against the timing model for
/// `device` and returns the assembled dataset.
[[nodiscard]] PerfDataset run_model_benchmarks(
    const std::vector<LoweredGemm>& shapes, const perf::DeviceSpec& device,
    const RunnerOptions& options = {});

/// Convenience: extract the paper's shape set and sweep it on the paper's
/// device model (AMD R9 Nano).
[[nodiscard]] PerfDataset build_paper_dataset(
    const RunnerOptions& options = {},
    const ExtractionOptions& extraction = {});

/// Executes one (shape, config) run on the host runtime and returns
/// wall-clock seconds. Intended for small shapes.
[[nodiscard]] double time_host_run(const gemm::KernelConfig& config,
                                   const gemm::GemmShape& shape);

}  // namespace aks::data
