// The benchmark harness that builds the tuning dataset.
//
// Mirrors the paper's data collection: "For each of these sizes we ran a
// benchmark for each of the kernel configurations, recording the runtime of
// the kernel and number of flops attained over a number of iterations."
// Two backends are provided:
//
//  * model mode — each (shape, config) run is timed by the perfmodel
//    TimingModel (best-of-N with deterministic noise). This is the mode the
//    shipped dataset uses; see DESIGN.md for the hardware substitution.
//  * host mode — the configuration's kernel is actually executed on the
//    syclrt host runtime and wall-clock timed. Used for correctness-scale
//    problems and the kernel microbenchmarks, not the full sweep.
#pragma once

#include <cstdint>
#include <functional>

#include "dataset/extract.hpp"
#include "dataset/perf_dataset.hpp"
#include "perfmodel/cost_model.hpp"

namespace aks::data {

struct RunnerOptions {
  /// Timed iterations per (shape, config); the best is kept.
  int iterations = 5;
  /// Lognormal sigma of the simulated measurement noise.
  double noise_sigma = 0.03;
  /// Seed for the noise streams.
  std::uint64_t seed = 42;
  /// Progress callback, called after each completed shape row. Rows finish
  /// on pool worker threads, but invocations are serialized by the runner
  /// (an internal mutex), so the callback may write to a stream without its
  /// output interleaving. `done` is the completion count at call time and
  /// is strictly increasing across the serialized calls.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Runs the full (shapes x 640 configs) sweep against the timing model for
/// `device` and returns the assembled dataset.
[[nodiscard]] PerfDataset run_model_benchmarks(
    const std::vector<LoweredGemm>& shapes, const perf::DeviceSpec& device,
    const RunnerOptions& options = {});

/// Convenience: extract the paper's shape set and sweep it on the paper's
/// device model (AMD R9 Nano).
[[nodiscard]] PerfDataset build_paper_dataset(
    const RunnerOptions& options = {},
    const ExtractionOptions& extraction = {});

/// Executes one (shape, config) run on the host runtime and returns
/// wall-clock seconds. Intended for small shapes.
[[nodiscard]] double time_host_run(const gemm::KernelConfig& config,
                                   const gemm::GemmShape& shape);

}  // namespace aks::data
