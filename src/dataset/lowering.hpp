// Lowering of network layers to GEMM shapes.
//
// The paper: "Convolutional layers ... can be computed using a matrix
// multiply through transformations such as the im2col and Winograd, while
// fully connected layers are comprised of a matrix multiply and a bias add."
// These are those transformations, at the shape level.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dataset/networks.hpp"
#include "gemm/shape.hpp"

namespace aks::data {

/// Which transformation produced a GEMM shape. kWinograd is F(2x2, 3x3) —
/// the paper's variant; kWinograd4 is the F(4x4, 3x3) extension implemented
/// by conv/winograd.hpp (not part of the paper's dataset).
enum class Transform { kIm2col, kWinograd, kFullyConnected, kWinograd4 };

[[nodiscard]] std::string to_string(Transform t);

/// A GEMM shape together with where it came from.
struct LoweredGemm {
  gemm::GemmShape shape;
  Transform transform = Transform::kIm2col;
  std::string layer;
  std::string network;
  int batch = 1;
};

/// im2col: C[M x N] with M = batch * out_h * out_w, K = in_c * k * k,
/// N = out_c. Returns nullopt for depthwise convolutions (grouped
/// convolutions do not lower to one dense GEMM).
[[nodiscard]] std::optional<gemm::GemmShape> im2col_shape(
    const ConvLayer& conv, int batch);

/// Winograd F(2x2, 3x3): sixteen batched multiplies of identical shape
/// M = batch * ceil(out_h/2) * ceil(out_w/2), K = in_c, N = out_c.
/// Returns nullopt when the layer is not a dense 3x3 stride-1 convolution.
[[nodiscard]] std::optional<gemm::GemmShape> winograd_shape(
    const ConvLayer& conv, int batch);

/// Fully connected: M = batch, K = in_features, N = out_features.
[[nodiscard]] gemm::GemmShape fc_shape(const FcLayer& fc, int batch);

/// Lowers every layer of `network` at each batch size through every
/// applicable transformation.
[[nodiscard]] std::vector<LoweredGemm> lower_network(
    const Network& network, const std::vector<int>& batch_sizes);

}  // namespace aks::data
