#include "perfmodel/device_spec.hpp"

#include <cmath>
#include <fstream>
#include <functional>
#include <map>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace aks::perf {

namespace {

/// Field table shared by the reader and the writer so they cannot drift.
struct Field {
  std::function<void(DeviceSpec&, const std::string&)> set;
  std::function<std::string(const DeviceSpec&)> get;
};

template <typename T>
T parse_number(const std::string& text) {
  try {
    std::size_t consumed = 0;
    if constexpr (std::is_integral_v<T>) {
      const long long v = std::stoll(text, &consumed);
      AKS_CHECK(consumed == text.size(), "trailing characters");
      return static_cast<T>(v);
    } else {
      const double v = std::stod(text, &consumed);
      AKS_CHECK(consumed == text.size(), "trailing characters");
      return static_cast<T>(v);
    }
  } catch (const common::Error&) {
    throw;
  } catch (const std::exception&) {
    AKS_FAIL("malformed numeric value '" << text << "'");
  }
}

const std::map<std::string, Field>& fields() {
  auto num_field = [](auto member) {
    return Field{
        [member](DeviceSpec& spec, const std::string& text) {
          spec.*member = parse_number<
              std::remove_reference_t<decltype(spec.*member)>>(text);
        },
        [member](const DeviceSpec& spec) {
          using T = std::remove_cvref_t<decltype(spec.*member)>;
          if constexpr (std::is_integral_v<T>) {
            return std::to_string(spec.*member);
          } else {
            return common::format_fixed(static_cast<double>(spec.*member), 6);
          }
        }};
  };
  static const std::map<std::string, Field> table = {
      {"name",
       {[](DeviceSpec& spec, const std::string& text) { spec.name = text; },
        [](const DeviceSpec& spec) { return spec.name; }}},
      {"num_cus", num_field(&DeviceSpec::num_cus)},
      {"simd_width", num_field(&DeviceSpec::simd_width)},
      {"clock_ghz", num_field(&DeviceSpec::clock_ghz)},
      {"dram_bw_gbps", num_field(&DeviceSpec::dram_bw_gbps)},
      {"registers_per_lane", num_field(&DeviceSpec::registers_per_lane)},
      {"max_waves_per_cu", num_field(&DeviceSpec::max_waves_per_cu)},
      {"max_groups_per_cu", num_field(&DeviceSpec::max_groups_per_cu)},
      {"llc_bytes", num_field(&DeviceSpec::llc_bytes)},
      {"cacheline_bytes", num_field(&DeviceSpec::cacheline_bytes)},
      {"launch_overhead_s", num_field(&DeviceSpec::launch_overhead_s)},
      {"alu_hiding_waves", num_field(&DeviceSpec::alu_hiding_waves)},
      {"mem_hiding_waves", num_field(&DeviceSpec::mem_hiding_waves)},
      {"loop_overhead_cycles", num_field(&DeviceSpec::loop_overhead_cycles)},
      {"max_work_group_size", num_field(&DeviceSpec::max_work_group_size)},
      {"local_memory_bytes", num_field(&DeviceSpec::local_memory_bytes)},
      {"vector_width", num_field(&DeviceSpec::vector_width)},
  };
  return table;
}

}  // namespace

DeviceSpec DeviceSpec::from_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  AKS_CHECK(in.is_open(), "cannot open device file " << path);
  DeviceSpec spec = amd_r9_nano();  // unset keys keep sensible defaults
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto trimmed = common::trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    AKS_CHECK(eq != std::string_view::npos,
              path << ":" << line_no << ": expected 'key = value'");
    const std::string key{common::trim(trimmed.substr(0, eq))};
    const std::string value{common::trim(trimmed.substr(eq + 1))};
    const auto it = fields().find(key);
    AKS_CHECK(it != fields().end(),
              path << ":" << line_no << ": unknown device key '" << key << "'");
    try {
      it->second.set(spec, value);
    } catch (const common::Error& e) {
      AKS_FAIL(path << ":" << line_no << ": " << e.what());
    }
  }
  AKS_CHECK(spec.num_cus > 0 && spec.simd_width > 0 && spec.clock_ghz > 0,
            "device file " << path << " describes a degenerate device");
  return spec;
}

void DeviceSpec::save(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  AKS_CHECK(out.is_open(), "cannot write device file " << path);
  out << "# AKS device description (see perfmodel/device_spec.hpp)\n";
  for (const auto& [key, field] : fields()) {
    out << key << " = " << field.get(*this) << "\n";
  }
  AKS_CHECK(out.good(), "I/O error writing device file " << path);
}

DeviceSpec DeviceSpec::amd_r9_nano() {
  DeviceSpec d;
  d.name = "AMD R9 Nano (model)";
  d.num_cus = 64;
  d.simd_width = 64;
  d.clock_ghz = 1.0;
  d.dram_bw_gbps = 512.0;
  d.registers_per_lane = 256;
  d.max_waves_per_cu = 40;
  d.max_groups_per_cu = 16;
  d.llc_bytes = 2u << 20;  // 2 MiB L2
  d.cacheline_bytes = 64;
  d.launch_overhead_s = 8e-6;
  d.alu_hiding_waves = 4.0;
  d.mem_hiding_waves = 8.0;
  d.loop_overhead_cycles = 10.0;
  d.max_work_group_size = 256;  // GCN3 launch limit
  d.local_memory_bytes = 64 * 1024;  // LDS per work-group
  d.vector_width = 4;  // dwordx4 vector loads
  return d;
}

DeviceSpec DeviceSpec::embedded_accelerator() {
  DeviceSpec d;
  d.name = "Embedded accelerator (model)";
  d.num_cus = 4;
  d.simd_width = 16;
  d.clock_ghz = 0.8;
  d.dram_bw_gbps = 14.9;  // LPDDR4-3733 x32
  d.registers_per_lane = 128;
  d.max_waves_per_cu = 16;
  d.max_groups_per_cu = 8;
  d.llc_bytes = 512u << 10;
  d.cacheline_bytes = 64;
  d.launch_overhead_s = 25e-6;
  d.alu_hiding_waves = 3.0;
  d.mem_hiding_waves = 6.0;
  d.loop_overhead_cycles = 14.0;
  d.max_work_group_size = 256;
  // 48 KB: covers the zoo's largest staged panels (33 KB for the 8x8x8
  // tiles at 128-item groups) with headroom; smaller embedded parts are
  // modelled in tests via custom specs.
  d.local_memory_bytes = 48 * 1024;
  d.vector_width = 4;
  return d;
}

DeviceSpec DeviceSpec::integrated_gpu() {
  DeviceSpec d;
  d.name = "Integrated GPU (model)";
  d.num_cus = 24;
  d.simd_width = 8;
  d.clock_ghz = 1.15;
  d.dram_bw_gbps = 34.1;  // dual-channel DDR4-2133
  d.registers_per_lane = 128;
  d.max_waves_per_cu = 28;
  d.max_groups_per_cu = 16;
  d.llc_bytes = 768u << 10;
  d.cacheline_bytes = 64;
  d.launch_overhead_s = 12e-6;
  d.alu_hiding_waves = 4.0;
  d.mem_hiding_waves = 8.0;
  d.loop_overhead_cycles = 12.0;
  d.max_work_group_size = 256;
  d.local_memory_bytes = 64 * 1024;  // Gen9 SLM
  d.vector_width = 4;
  return d;
}

std::vector<DeviceSpec> DeviceSpec::shipped() {
  return {amd_r9_nano(), embedded_accelerator(), integrated_gpu()};
}

std::array<double, DeviceSpec::kNumSimilarityFeatures>
DeviceSpec::similarity_features() const {
  // log2 scaling keeps every axis in comparable units (one doubling = one
  // unit) regardless of whether the raw quantity is 4 lanes or 512 GB/s.
  const auto log2_of = [](double v) { return std::log2(std::max(v, 1e-12)); };
  return {
      log2_of(static_cast<double>(num_cus)),
      log2_of(static_cast<double>(simd_width)),
      log2_of(clock_ghz),
      log2_of(dram_bw_gbps),
      log2_of(static_cast<double>(registers_per_lane)),
      log2_of(static_cast<double>(llc_bytes)),
      log2_of(static_cast<double>(local_memory_bytes)),
      log2_of(static_cast<double>(max_waves_per_cu)),
  };
}

std::uint64_t DeviceSpec::fingerprint() const {
  // Digest the canonical key=value serialization (the same field table
  // from_file/save use), so the fingerprint covers every field exactly once
  // and cannot drift from the file format.
  std::uint64_t h = common::fnv1a64("aks-device-v1");
  for (const auto& [key, field] : fields()) {
    const std::string value = field.get(*this);
    h = common::fnv1a64(key.data(), key.size(), h);
    h = common::fnv1a64("=", 1, h);
    h = common::fnv1a64(value.data(), value.size(), h);
    h = common::fnv1a64("\n", 1, h);
  }
  return h;
}

double device_similarity(const DeviceSpec& a, const DeviceSpec& b) {
  const auto fa = a.similarity_features();
  const auto fb = b.similarity_features();
  double d2 = 0.0;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double d = fa[i] - fb[i];
    d2 += d * d;
  }
  return 1.0 / (1.0 + std::sqrt(d2));
}

}  // namespace aks::perf
