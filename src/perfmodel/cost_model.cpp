#include "perfmodel/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aks::perf {

namespace {

double ceil_div(double a, double b) { return std::ceil(a / b); }

/// Stable 64-bit mix of several values; used to seed per-run noise.
std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

CostModel::CostModel(DeviceSpec spec) : spec_(std::move(spec)) {
  AKS_CHECK(spec_.num_cus > 0 && spec_.simd_width > 0 && spec_.clock_ghz > 0,
            "malformed device spec " << spec_.name);
}

CostBreakdown CostModel::evaluate(const gemm::KernelConfig& config,
                                  const gemm::GemmShape& shape) const {
  AKS_CHECK(shape.m > 0 && shape.k > 0 && shape.n > 0,
            "degenerate shape " << shape.to_string());

  const double m = static_cast<double>(shape.m);
  const double k = static_cast<double>(shape.k);
  const double n = static_cast<double>(shape.n);
  const double rt = config.row_tile;
  const double ct = config.col_tile;
  const double acc = config.acc_size;
  const double wg_r = config.wg_rows;
  const double wg_c = config.wg_cols;
  const double simd = spec_.simd_width;
  const double clock_hz = spec_.clock_ghz * 1e9;

  // ---- Launch geometry -----------------------------------------------
  // One work-item per output tile; tiles padded to whole work-groups.
  const double tiles_r = ceil_div(m, rt);
  const double tiles_c = ceil_div(n, ct);
  const double groups_r = ceil_div(tiles_r, wg_r);
  const double groups_c = ceil_div(tiles_c, wg_c);
  const double num_groups = groups_r * groups_c;
  const double wg_size = wg_r * wg_c;
  const double waves_per_group = ceil_div(wg_size, simd);
  const double total_waves = num_groups * waves_per_group;

  // Lane utilisation: useful outputs over launched lane-slots (tile and
  // work-group padding, plus partially filled waves).
  const double launched_lanes = total_waves * simd;
  const double launched_outputs = launched_lanes * rt * ct;
  const double lane_utilization = std::min(1.0, (m * n) / launched_outputs);

  // ---- Occupancy -------------------------------------------------------
  // Register pressure limits resident waves; whole work-groups are resident
  // or not, and a per-CU group count cap applies.
  const double regs = config.registers_per_item();
  const double waves_by_regs =
      std::floor(static_cast<double>(spec_.registers_per_lane) / regs);
  double groups_per_cu =
      std::floor(std::max(1.0, waves_by_regs * 4.0) / waves_per_group);
  groups_per_cu = std::clamp(groups_per_cu, 1.0,
                             static_cast<double>(spec_.max_groups_per_cu));
  double resident_waves = groups_per_cu * waves_per_group;
  resident_waves =
      std::min(resident_waves, static_cast<double>(spec_.max_waves_per_cu));
  // Small launches cannot fill the device.
  resident_waves =
      std::min(resident_waves,
               std::max(1.0, total_waves / static_cast<double>(spec_.num_cus)));
  // Per-SIMD-scheduler depth, assuming 4 schedulers per CU (GCN-like).
  const double waves_per_scheduler = resident_waves / 4.0;

  // Latency hiding draws on two sources: thread-level parallelism
  // (resident waves) and instruction-level parallelism within a work-item
  // (the rt x ct accumulator tile is rt*ct independent FMA chains). This is
  // why register-tiled GEMMs tolerate the low occupancy their register
  // usage causes — and why one large-tile kernel tends to dominate the
  // compute-bound shapes.
  const double ilp = std::sqrt(rt * ct);
  const double alu_eff = std::min(
      1.0, std::max(waves_per_scheduler, 0.25) * ilp / spec_.alu_hiding_waves);
  const double mem_eff =
      std::sqrt(std::min(1.0, std::max(waves_per_scheduler, 0.25) /
                                  spec_.mem_hiding_waves));

  // ---- Instruction stream ---------------------------------------------
  // Per item and per K-step: rt*acc A loads and acc*ct B loads (vectorised
  // up to width 4), rt*ct*acc FMAs, plus fixed loop overhead.
  const double k_steps = ceil_div(k, acc);
  const double vec_a = std::min(acc, 4.0);
  const double vec_b = std::min(ct, 4.0);
  const double load_instrs_per_step =
      ceil_div(rt * acc, vec_a) + ceil_div(acc * ct, vec_b);
  const double fma_instrs = k * rt * ct;
  const double instrs_per_item =
      fma_instrs +
      k_steps * (spec_.loop_overhead_cycles + load_instrs_per_step) +
      rt * ct;  // final stores
  // One wave-instruction per CU per cycle; waves execute in lock-step so a
  // wave costs its per-item instruction count.
  const double total_wave_instrs = total_waves * instrs_per_item;
  // CU-count quantisation: the tail of the launch leaves CUs idle.
  const double cu_batches =
      ceil_div(total_waves, resident_waves * spec_.num_cus);
  const double cu_util = std::min(
      1.0, total_waves / (cu_batches * resident_waves * spec_.num_cus));
  const double compute_s = total_wave_instrs /
                           (static_cast<double>(spec_.num_cus) * clock_hz *
                            alu_eff * std::max(cu_util, 0.05));

  // ---- Memory traffic ---------------------------------------------------
  // Within a work-group, A rows are shared along columns and B columns
  // along rows, so per-group traffic is the group perimeter footprint.
  // Across groups, a whole column-band of groups re-reads A (and a row-band
  // re-reads B) unless the operand fits in the LLC.
  const double a_bytes = m * k * 4.0;
  const double b_bytes = k * n * 4.0;
  const double c_bytes = m * n * 4.0;
  double a_traffic = groups_c * (groups_r * wg_r * rt * k * 4.0);
  if (a_bytes <= static_cast<double>(spec_.llc_bytes)) {
    a_traffic = a_bytes;
  }
  double b_traffic = groups_r * (groups_c * wg_c * ct * k * 4.0);
  if (b_bytes <= static_cast<double>(spec_.llc_bytes)) {
    b_traffic = b_bytes;
  }

  // Coalescing: lanes are laid out row-major over the work-group with the
  // column dimension fastest. When wg_cols < simd, consecutive lanes span
  // multiple tile rows, so A accesses become strided; each lane reads `acc`
  // consecutive floats from rows rt*K apart. Efficiency is the contiguous
  // bytes per lane over one transaction.
  const double lanes_per_row = std::min(wg_c, simd);
  const double row_major_fraction = lanes_per_row / simd;
  const double strided_eff =
      std::min(1.0, (acc * 4.0) / static_cast<double>(spec_.cacheline_bytes));
  const double a_coalesce =
      row_major_fraction + (1.0 - row_major_fraction) * strided_eff;
  // B accesses are contiguous along columns: efficient when lanes advance
  // along the column dimension, strided (by ct) only in degenerate cases.
  const double b_coalesce =
      row_major_fraction +
      (1.0 - row_major_fraction) *
          std::min(1.0,
                   (ct * 4.0) / static_cast<double>(spec_.cacheline_bytes));
  const double effective_traffic =
      a_traffic / a_coalesce + b_traffic / b_coalesce + c_bytes;
  const double memory_s =
      effective_traffic / (spec_.dram_bw_gbps * 1e9 * mem_eff);

  CostBreakdown out;
  out.compute_s = compute_s;
  out.memory_s = memory_s;
  out.launch_s = spec_.launch_overhead_s;
  // Compute and memory overlap; the slower one dominates, with a mild
  // serialisation term for the other.
  out.total_s = std::max(compute_s, memory_s) +
                0.15 * std::min(compute_s, memory_s) + out.launch_s;
  out.occupancy_waves = resident_waves;
  out.lane_utilization = lane_utilization;
  out.dram_bytes = a_traffic + b_traffic + c_bytes;
  out.flops_fraction = shape.flops() / (out.total_s * spec_.peak_flops());
  return out;
}

double CostModel::predict_seconds(const gemm::KernelConfig& config,
                                  const gemm::GemmShape& shape) const {
  return evaluate(config, shape).total_s;
}

double CostModel::predict_batched_seconds(const gemm::KernelConfig& config,
                                          const gemm::GemmShape& shape,
                                          std::size_t batch) const {
  AKS_CHECK(batch > 0, "batch must be positive");
  // Model the batched launch as a single multiply with M scaled by the
  // batch count: the grid is `batch` independent copies of the tile grid,
  // which fills the device the same way a taller matrix would, and the
  // launch overhead is paid once. (Per-entry operand reuse is unchanged
  // because the batch entries touch disjoint data.)
  gemm::GemmShape stacked = shape;
  stacked.m = shape.m * batch;
  return evaluate(config, stacked).total_s;
}

TimingModel::TimingModel(DeviceSpec spec, double noise_sigma,
                         std::uint64_t seed)
    : model_(std::move(spec)), noise_sigma_(noise_sigma), seed_(seed) {
  AKS_CHECK(noise_sigma >= 0.0, "noise sigma must be non-negative");
}

double TimingModel::time_run(const gemm::KernelConfig& config,
                             const gemm::GemmShape& shape,
                             std::uint64_t iteration) const {
  const double base = model_.predict_seconds(config, shape);
  if (noise_sigma_ == 0.0) return base;
  std::uint64_t h = seed_;
  h = hash_combine(h, gemm::config_index(config));
  h = hash_combine(h, shape.m);
  h = hash_combine(h, shape.k);
  h = hash_combine(h, shape.n);
  h = hash_combine(h, iteration);
  common::Rng rng(h);
  return rng.lognormal_median(base, noise_sigma_);
}

double TimingModel::best_of(const gemm::KernelConfig& config,
                            const gemm::GemmShape& shape,
                            int iterations) const {
  AKS_CHECK(iterations > 0, "best_of needs at least one iteration");
  double best = time_run(config, shape, 0);
  for (int i = 1; i < iterations; ++i) {
    best = std::min(best,
                    time_run(config, shape, static_cast<std::uint64_t>(i)));
  }
  return best;
}

}  // namespace aks::perf
