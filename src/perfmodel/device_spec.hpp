// Performance-model device descriptors.
//
// The paper measured on an AMD R9 Nano; this repo has no GPU, so the device
// is described by the architectural parameters that drive GEMM kernel
// performance and the cost model in cost_model.hpp evaluates kernels against
// them. Three devices are provided, matching the paper's motivation of
// targeting "a range of heterogeneous devices from desktop GPUs to embedded
// accelerators".
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace aks::perf {

struct DeviceSpec {
  std::string name;

  /// Number of compute units (CUs / shader cores / subslices).
  int num_cus = 1;
  /// Lanes per hardware wave (wavefront/warp/subgroup width).
  int simd_width = 1;
  /// Core clock in GHz.
  double clock_ghz = 1.0;
  /// Sustainable DRAM bandwidth in GB/s.
  double dram_bw_gbps = 10.0;
  /// Registers available per lane before occupancy starts dropping.
  int registers_per_lane = 256;
  /// Maximum resident waves per CU (occupancy ceiling).
  int max_waves_per_cu = 40;
  /// Maximum resident work-groups per CU (scheduling limit).
  int max_groups_per_cu = 16;
  /// Last-level cache size in bytes (operand re-read filtering).
  std::size_t llc_bytes = 1 << 20;
  /// Cache line / memory transaction size in bytes.
  int cacheline_bytes = 64;
  /// Fixed kernel launch overhead in seconds.
  double launch_overhead_s = 8e-6;
  /// Waves per SIMD scheduler needed to fully hide ALU latency.
  double alu_hiding_waves = 4.0;
  /// Waves per SIMD scheduler needed to fully saturate the memory system.
  double mem_hiding_waves = 8.0;
  /// Extra ALU cycles charged per accumulator-loop iteration (branch,
  /// index arithmetic) — what a larger acc_size amortises away.
  double loop_overhead_cycles = 10.0;
  /// Maximum work-items per work-group the device will launch (execution
  /// limit, not a performance parameter — consumed by the config lint).
  int max_work_group_size = 256;
  /// Local ("shared") memory available per work-group, in bytes.
  std::size_t local_memory_bytes = 64 * 1024;
  /// Native vector load width in elements; vectorised staging loads must
  /// tile into (or be covered by) vectors of this width.
  int vector_width = 4;

  /// Peak single-precision throughput in FLOP/s (each lane one FMA/cycle).
  [[nodiscard]] double peak_flops() const {
    return static_cast<double>(num_cus) * simd_width * 2.0 * clock_ghz * 1e9;
  }

  /// Number of architectural features in similarity_features().
  static constexpr std::size_t kNumSimilarityFeatures = 8;

  /// The architectural parameters that drive kernel selection, log2-scaled
  /// so "twice the bandwidth" is one unit apart at any absolute scale. The
  /// persistent store's cross-device transfer ranks stored devices by
  /// distance in this space (see device_similarity).
  [[nodiscard]] std::array<double, kNumSimilarityFeatures>
  similarity_features() const;

  /// Stable 64-bit identity of this device description: an FNV-1a digest
  /// of the name and every numeric field, identical across processes and
  /// platforms. Two specs differing in any field (even one irrelevant to
  /// performance) get distinct fingerprints — the fingerprint identifies
  /// the *description*, similarity ranks the *behaviour*.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// The paper's benchmark platform: AMD R9 Nano (Fiji, GCN3).
  /// 64 CUs, wave64, ~1.0 GHz, 4096-bit HBM at 512 GB/s, 256 VGPRs/lane.
  static DeviceSpec amd_r9_nano();

  /// An embedded accelerator in the Mali/PowerVR class: few cores, narrow
  /// SIMD, LPDDR bandwidth, small register file.
  static DeviceSpec embedded_accelerator();

  /// A desktop integrated GPU in the Intel Gen9 class.
  static DeviceSpec integrated_gpu();

  /// The three shipped device descriptions, in the order above — the sweep
  /// set the static analyses (config lint, symbolic certify) default to.
  static std::vector<DeviceSpec> shipped();

  /// Loads a device description from a `key = value` text file (one pair
  /// per line; `#` comments). Unset keys keep the R9 Nano defaults, so a
  /// file only needs the parameters that differ. Throws common::Error on
  /// unknown keys or malformed values — a silently ignored typo would
  /// produce a quietly wrong tuning dataset.
  static DeviceSpec from_file(const std::filesystem::path& path);

  /// Writes the spec in from_file() format (round-trips exactly).
  void save(const std::filesystem::path& path) const;
};

/// Similarity in [0, 1]: 1 for identical feature vectors, falling towards 0
/// with the Euclidean distance between the log2-scaled feature vectors
/// (1 / (1 + d)). Symmetric; used by the selection store to pick the
/// nearest stored device when warm-starting on a fingerprint it has never
/// seen (the cross-device transfer of Lawson's follow-up paper).
[[nodiscard]] double device_similarity(const DeviceSpec& a,
                                       const DeviceSpec& b);

}  // namespace aks::perf
