// Analytic GPU cost model for the tiled GEMM kernel family.
//
// Substitutes for timing kernels on real hardware (see DESIGN.md). The model
// combines the first-order mechanisms that determine which configuration
// wins on which shape:
//
//   * tail quantisation — the launch is padded to whole tiles and whole
//     work-groups, so large tiles/work-groups waste lanes on small matrices;
//   * occupancy — accumulator registers per work-item limit resident waves,
//     which limits latency hiding (big tiles hurt small-K, memory-bound
//     shapes more than compute-bound ones);
//   * instruction economy — per-item FMA count is fixed, but loads scale
//     with (rows + cols)/(rows * cols) of the tile and loop overhead with
//     K / acc_size, so big tiles and big accumulator steps save instructions;
//   * memory traffic — per-work-group operand footprints give classic
//     perimeter-vs-area reuse, filtered by the LLC for operands that fit;
//   * coalescing — lanes are laid out row-major with the column dimension
//     fastest, so (64,1)/(128,1) work-groups issue strided A reads;
//   * wave and CU granularity — partially filled waves and CUs idle at the
//     tail of small launches.
//
// `TimingModel` adds deterministic lognormal measurement noise seeded from
// (device, config, shape) so repeated "runs" jitter the way real benchmark
// iterations do, without breaking reproducibility.
#pragma once

#include <cstdint>

#include "gemm/config.hpp"
#include "gemm/shape.hpp"
#include "perfmodel/device_spec.hpp"

namespace aks::perf {

/// Breakdown of one modelled kernel execution (seconds unless noted).
struct CostBreakdown {
  double compute_s = 0.0;
  double memory_s = 0.0;
  double launch_s = 0.0;
  double total_s = 0.0;
  /// Resident waves per CU after register/group limits.
  double occupancy_waves = 0.0;
  /// Fraction of launched lane-slots doing useful work.
  double lane_utilization = 0.0;
  /// Modelled DRAM traffic in bytes.
  double dram_bytes = 0.0;
  /// Achieved fraction of peak FLOP/s.
  double flops_fraction = 0.0;
};

class CostModel {
 public:
  explicit CostModel(DeviceSpec spec);

  [[nodiscard]] const DeviceSpec& device() const { return spec_; }

  /// Noise-free modelled execution time with full breakdown.
  [[nodiscard]] CostBreakdown evaluate(const gemm::KernelConfig& config,
                                       const gemm::GemmShape& shape) const;

  /// Noise-free modelled execution time in seconds.
  [[nodiscard]] double predict_seconds(const gemm::KernelConfig& config,
                                       const gemm::GemmShape& shape) const;

  /// Modelled time of `batch` identical multiplies issued as one launch:
  /// the per-multiply work replicates but the launch overhead is paid once
  /// and the larger grid improves device fill for small multiplies.
  [[nodiscard]] double predict_batched_seconds(const gemm::KernelConfig& config,
                                               const gemm::GemmShape& shape,
                                               std::size_t batch) const;

 private:
  DeviceSpec spec_;
};

/// Wraps a CostModel with deterministic measurement noise, emulating the
/// timing harness the paper ran on hardware.
class TimingModel {
 public:
  /// `noise_sigma` is the lognormal sigma of per-run jitter; 0 disables it.
  TimingModel(DeviceSpec spec, double noise_sigma = 0.03,
              std::uint64_t seed = 42);

  [[nodiscard]] const CostModel& model() const { return model_; }
  [[nodiscard]] double noise_sigma() const { return noise_sigma_; }

  /// One simulated timed run (seconds). `iteration` selects independent
  /// noise draws; everything is a pure function of its arguments.
  [[nodiscard]] double time_run(const gemm::KernelConfig& config,
                                const gemm::GemmShape& shape,
                                std::uint64_t iteration = 0) const;

  /// Best-of-N timing, the standard benchmarking reduction.
  [[nodiscard]] double best_of(const gemm::KernelConfig& config,
                               const gemm::GemmShape& shape,
                               int iterations) const;

 private:
  CostModel model_;
  double noise_sigma_;
  std::uint64_t seed_;
};

}  // namespace aks::perf
