// k-nearest-neighbour classifier (brute force, Euclidean).
//
// The paper's 1NearestNeighbor and 3NearestNeighbors selector baselines.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

class KnnClassifier {
 public:
  explicit KnnClassifier(int k = 1);

  void fit(const common::Matrix& x, const std::vector<int>& y,
           int num_classes = 0);

  [[nodiscard]] bool fitted() const { return !labels_.empty(); }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int num_classes() const { return num_classes_; }

  [[nodiscard]] int predict_row(std::span<const double> row) const;
  [[nodiscard]] std::vector<int> predict(const common::Matrix& x) const;

 private:
  int k_;
  int num_classes_ = 0;
  common::Matrix train_;
  std::vector<int> labels_;
};

}  // namespace aks::ml
