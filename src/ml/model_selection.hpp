// Model-selection utilities: k-fold cross-validation over any classifier.
//
// The paper notes its models "fail to generalize" on the small dataset;
// cross-validation is the standard way to see that without burning the test
// set, and bench/ablation_hyperparams uses it to pick classifier
// hyper-parameters honestly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

/// One train/validation partition of row indices.
struct Fold {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
};

/// Shuffled k-fold partition of [0, n). Every row appears in exactly one
/// validation set; folds differ in size by at most one row.
[[nodiscard]] std::vector<Fold> k_fold(std::size_t n, int folds,
                                       std::uint64_t seed);

/// Trains on each fold's train rows and scores accuracy on its validation
/// rows. `fit_predict` receives (x_train, y_train, x_validation) and
/// returns predicted labels for the validation rows.
using FitPredictFn = std::function<std::vector<int>(
    const common::Matrix&, const std::vector<int>&, const common::Matrix&)>;

/// Mean validation accuracy across folds.
[[nodiscard]] double cross_val_accuracy(const FitPredictFn& fit_predict,
                                        const common::Matrix& x,
                                        const std::vector<int>& y, int folds,
                                        std::uint64_t seed);

}  // namespace aks::ml
