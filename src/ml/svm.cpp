#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {

namespace {

/// scikit-learn's gamma="scale": 1 / (n_features * Var(all entries of X)).
double scale_gamma(const common::Matrix& x) {
  double mean = 0.0;
  for (const double v : x.data()) mean += v;
  mean /= static_cast<double>(x.size());
  double var = 0.0;
  for (const double v : x.data()) var += (v - mean) * (v - mean);
  var /= static_cast<double>(x.size());
  if (var <= 0.0) var = 1.0;
  return 1.0 / (static_cast<double>(x.cols()) * var);
}

}  // namespace

BinarySvm::BinarySvm(SvmOptions options) : options_(options) {
  AKS_CHECK(options_.c > 0.0, "C must be positive");
  AKS_CHECK(options_.tolerance > 0.0, "tolerance must be positive");
}

double BinarySvm::kernel(std::span<const double> a,
                         std::span<const double> b) const {
  switch (options_.kernel) {
    case SvmKernel::kLinear:
      return dot(a, b);
    case SvmKernel::kRbf:
      return std::exp(-gamma_ * squared_distance(a, b));
  }
  return 0.0;
}

void BinarySvm::fit(const common::Matrix& x, const std::vector<int>& y) {
  const std::size_t n = x.rows();
  AKS_CHECK(n == y.size(), "X/y size mismatch");
  AKS_CHECK(n >= 2, "SVM needs at least 2 samples");
  for (const int label : y) {
    AKS_CHECK(label == 1 || label == -1, "binary SVM labels must be +/-1");
  }
  if (options_.kernel == SvmKernel::kLinear) {
    fit_linear(x, y);
  } else {
    fit_smo(x, y);
  }
}

void BinarySvm::fit_linear(const common::Matrix& x, const std::vector<int>& y) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  support_ = x;  // kept only so fitted() and introspection work uniformly
  labels_ = y;
  alpha_.assign(n, 0.0);
  gamma_ = 0.0;
  // Bias is modelled as an extra always-one feature (liblinear's default),
  // so it is regularised along with the weights.
  weights_.assign(d + 1, 0.0);

  std::vector<double> q(n);  // Q_ii = ||x_i||^2 + 1 (bias feature)
  for (std::size_t i = 0; i < n; ++i) q[i] = dot(x.row(i), x.row(i)) + 1.0;

  common::Rng rng(options_.seed);
  const double c = options_.c;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int pass = 0; pass < options_.max_iterations; ++pass) {
    rng.shuffle(order);
    double max_violation = 0.0;
    for (const std::size_t i : order) {
      // Gradient of the dual objective along alpha_i.
      double wx = weights_[d];
      const auto row = x.row(i);
      for (std::size_t f = 0; f < d; ++f) wx += weights_[f] * row[f];
      const double g = y[i] * wx - 1.0;
      // Projected gradient decides whether the coordinate can move.
      double pg = g;
      if (alpha_[i] <= 0.0 && g > 0.0) pg = 0.0;
      if (alpha_[i] >= c && g < 0.0) pg = 0.0;
      max_violation = std::max(max_violation, std::abs(pg));
      if (pg == 0.0) continue;
      const double old = alpha_[i];
      alpha_[i] = std::clamp(old - g / q[i], 0.0, c);
      const double delta = (alpha_[i] - old) * y[i];
      if (delta == 0.0) continue;
      for (std::size_t f = 0; f < d; ++f) weights_[f] += delta * row[f];
      weights_[d] += delta;
    }
    if (max_violation < options_.tolerance) break;
  }
  bias_ = weights_[d];
}

void BinarySvm::fit_smo(const common::Matrix& x, const std::vector<int>& y) {
  const std::size_t n = x.rows();
  support_ = x;
  labels_ = y;
  alpha_.assign(n, 0.0);
  weights_.clear();
  bias_ = 0.0;
  gamma_ = options_.gamma > 0.0 ? options_.gamma : scale_gamma(x);

  // Cache the kernel matrix (n is small throughout this library).
  common::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(x.row(i), x.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }

  // Minimum meaningful alpha step: alphas scale as 1/K, so with raw
  // (unscaled) features and a linear kernel the optimum lives at alphas of
  // order 1e-10 — an absolute step floor would reject every update and
  // silently return the zero model. Scale the floor by the kernel diagonal.
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_diag += k(i, i);
  mean_diag /= static_cast<double>(n);
  const double step_floor = 1e-7 / std::max(1.0, mean_diag);

  // Error cache: f(i) = sum_j alpha_j y_j K(j, i); E_i = f(i) + b - y_i.
  // Updated incrementally after every successful alpha step, keeping each
  // SMO sweep at O(n^2) total.
  std::vector<double> f(n, 0.0);
  auto error = [&](std::size_t i) { return f[i] + bias_ - labels_[i]; };

  // Simplified SMO (Platt 1998 / Ng's CS229 variant): sweep examples, pick
  // the partner maximising |E_i - E_j|.
  common::Rng rng(options_.seed);
  const double c = options_.c;
  const double tol = options_.tolerance;
  int stale_passes = 0;
  for (int iter = 0;
       iter < options_.max_iterations && stale_passes < options_.max_stale_passes;
       ++iter) {
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = error(i);
      const bool violates = (labels_[i] * ei < -tol && alpha_[i] < c) ||
                            (labels_[i] * ei > tol && alpha_[i] > 0.0);
      if (!violates) continue;

      // Second-choice heuristic: maximise |E_i - E_j|, fall back to random.
      std::size_t j = n;
      double best_gap = -1.0;
      for (std::size_t cand = 0; cand < n; ++cand) {
        if (cand == i) continue;
        const double gap = std::abs(ei - error(cand));
        if (gap > best_gap) {
          best_gap = gap;
          j = cand;
        }
      }
      if (j == n) {
        j = rng.uniform_index(n - 1);
        if (j >= i) ++j;
      }
      const double ej = error(j);

      const double ai_old = alpha_[i];
      const double aj_old = alpha_[j];
      double lo = 0.0;
      double hi = c;
      if (labels_[i] == labels_[j]) {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      } else {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
      if (eta >= 0.0) continue;

      double aj = aj_old - labels_[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < step_floor) continue;
      const double ai =
          ai_old + labels_[i] * labels_[j] * (aj_old - aj);
      alpha_[i] = ai;
      alpha_[j] = aj;
      const double di = (ai - ai_old) * labels_[i];
      const double dj = (aj - aj_old) * labels_[j];
      for (std::size_t idx = 0; idx < n; ++idx) {
        f[idx] += di * k(i, idx) + dj * k(j, idx);
      }

      const double b1 = bias_ - ei - labels_[i] * (ai - ai_old) * k(i, i) -
                        labels_[j] * (aj - aj_old) * k(i, j);
      const double b2 = bias_ - ej - labels_[i] * (ai - ai_old) * k(i, j) -
                        labels_[j] * (aj - aj_old) * k(j, j);
      if (ai > 0.0 && ai < c) {
        bias_ = b1;
      } else if (aj > 0.0 && aj < c) {
        bias_ = b2;
      } else {
        bias_ = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    stale_passes = changed == 0 ? stale_passes + 1 : 0;
  }
}

double BinarySvm::decision(std::span<const double> row) const {
  AKS_CHECK(fitted(), "SVM used before fit");
  if (!weights_.empty()) {
    // Linear path: w . x + b with the bias stored as the last weight.
    AKS_CHECK(row.size() + 1 == weights_.size(), "feature count changed");
    double sum = weights_.back();
    for (std::size_t f = 0; f < row.size(); ++f) sum += weights_[f] * row[f];
    return sum;
  }
  double sum = bias_;
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    if (alpha_[i] != 0.0) {
      sum += alpha_[i] * labels_[i] * kernel(support_.row(i), row);
    }
  }
  return sum;
}

int BinarySvm::predict_row(std::span<const double> row) const {
  return decision(row) >= 0.0 ? 1 : -1;
}

std::size_t BinarySvm::num_support_vectors() const {
  std::size_t count = 0;
  for (const double a : alpha_) count += a != 0.0 ? 1 : 0;
  return count;
}

SvmClassifier::SvmClassifier(SvmOptions options) : options_(options) {}

void SvmClassifier::fit(const common::Matrix& x, const std::vector<int>& y,
                        int num_classes) {
  AKS_CHECK(x.rows() == y.size(), "X/y size mismatch");
  AKS_CHECK(!y.empty(), "empty training set");
  int max_label = 0;
  for (const int label : y) {
    AKS_CHECK(label >= 0, "negative class label");
    max_label = std::max(max_label, label);
  }
  num_classes_ = num_classes > 0 ? num_classes : max_label + 1;

  machines_.clear();
  class_present_.assign(static_cast<std::size_t>(num_classes_), false);
  for (const int label : y) class_present_[static_cast<std::size_t>(label)] = true;

  common::Rng seeder(options_.seed);
  for (int cls = 0; cls < num_classes_; ++cls) {
    SvmOptions opts = options_;
    opts.seed = seeder.fork_seed();
    BinarySvm machine(opts);
    if (class_present_[static_cast<std::size_t>(cls)]) {
      std::vector<int> binary(y.size());
      bool has_positive = false;
      bool has_negative = false;
      for (std::size_t i = 0; i < y.size(); ++i) {
        binary[i] = y[i] == cls ? 1 : -1;
        (binary[i] == 1 ? has_positive : has_negative) = true;
      }
      if (has_positive && has_negative) {
        machine.fit(x, binary);
      } else {
        // Single-class training data: mark as absent so decisions fall
        // through to other machines.
        class_present_[static_cast<std::size_t>(cls)] = has_positive;
      }
    }
    machines_.push_back(std::move(machine));
  }
}

std::vector<double> SvmClassifier::decision_row(
    std::span<const double> row) const {
  AKS_CHECK(fitted(), "SVM used before fit");
  std::vector<double> decisions(static_cast<std::size_t>(num_classes_),
                                -std::numeric_limits<double>::infinity());
  for (int cls = 0; cls < num_classes_; ++cls) {
    const auto idx = static_cast<std::size_t>(cls);
    if (!class_present_[idx]) continue;
    if (machines_[idx].fitted()) {
      decisions[idx] = machines_[idx].decision(row);
    } else {
      decisions[idx] = 0.0;  // only class seen in training
    }
  }
  return decisions;
}

int SvmClassifier::predict_row(std::span<const double> row) const {
  const auto decisions = decision_row(row);
  return static_cast<int>(std::distance(
      decisions.begin(), std::max_element(decisions.begin(), decisions.end())));
}

std::vector<int> SvmClassifier::predict(const common::Matrix& x) const {
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_row(x.row(r));
  return out;
}

}  // namespace aks::ml
