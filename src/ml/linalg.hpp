// Dense linear algebra for the ML stack.
//
// Everything operates on common::Matrix (row-major double). The eigensolver
// is a cyclic Jacobi rotation method for symmetric matrices — O(n^3) with
// excellent accuracy, entirely adequate for the covariance/Gram matrices
// (<= 640 x 640) this library sees.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

using common::Matrix;

/// C = A * B.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// y = A * x.
[[nodiscard]] std::vector<double> matvec(const Matrix& a,
                                         std::span<const double> x);

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm(std::span<const double> a);

/// Squared Euclidean distance between two vectors.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b);

/// Euclidean distance.
[[nodiscard]] double distance(std::span<const double> a,
                              std::span<const double> b);

/// Column means of a matrix.
[[nodiscard]] std::vector<double> column_means(const Matrix& x);

/// Returns X with column means subtracted.
[[nodiscard]] Matrix center_columns(const Matrix& x,
                                    std::span<const double> means);

/// Sample covariance matrix (n-1 denominator) of the rows of X.
[[nodiscard]] Matrix covariance(const Matrix& x);

/// Result of a symmetric eigendecomposition, sorted by descending
/// eigenvalue. eigenvectors.row(i) is the unit eigenvector for
/// eigenvalues[i].
struct EigenResult {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;
};

/// Cyclic Jacobi eigensolver for a symmetric matrix. Throws if `a` is not
/// square; symmetry is assumed (the lower triangle is read).
[[nodiscard]] EigenResult symmetric_eigen(const Matrix& a,
                                          int max_sweeps = 64,
                                          double tolerance = 1e-12);

/// Pairwise Euclidean distance matrix between rows of X (symmetric, zero
/// diagonal).
[[nodiscard]] Matrix pairwise_distances(const Matrix& x);

}  // namespace aks::ml
